#!/usr/bin/env python3
"""Validate the Ark stats endpoint's Prometheus and JSON payloads.

Two modes, shared validation:

  tools/check_prometheus.py --probe PATH/TO/metrics_probe
      Spawns the probe with an ephemeral stats port, parses the
      "listening on 127.0.0.1:PORT" line from its stderr, scrapes
      /metrics and /stats.json live while the probe holds the
      endpoint open, validates both payloads, and terminates the
      probe. This is what the telemetry ctest and the CI tier-1 job
      run.

  tools/check_prometheus.py --metrics-file F [--json-file F]
      Validates payloads previously saved to files (CI artifact
      checking, offline debugging).

Prometheus validation covers the text-exposition grammar (version
0.0.4): well-formed sample and # TYPE/# HELP lines, legal metric
names, a TYPE line preceding every family, histogram bucket series
that are cumulative with a +Inf bound matching _count, and the
presence of the ark_cache_ / ark_sim_ / ark_health_ families the
engine always registers. JSON validation checks that the payload
parses and carries the uptime/rates/metrics keys documented in
docs/TELEMETRY.md.

Exits 0 when every check passes, 1 with a diagnostic per failure
otherwise. Stdlib only.
"""

import argparse
import json
import re
import subprocess
import sys
import time
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$")
REQUIRED_FAMILY_PREFIXES = ("ark_cache_", "ark_sim_", "ark_health_")
LISTENING_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def base_family(name, declared_types):
    """Maps a sample name to its declared family, honouring the
    histogram suffixes."""
    if name in declared_types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[:-len(suffix)] in declared_types:
            return name[:-len(suffix)]
    return None


def parse_float(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def check_prometheus(text, errors):
    """Validates one exposition payload, appending diagnostics to
    `errors`. Returns the {family: type} map for further checks."""
    declared = {}
    samples = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                match = TYPE_RE.match(line)
                if not match:
                    errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                    continue
                name = match.group("name")
                if name in declared:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                declared[name] = match.group("type")
            elif not line.startswith("# HELP "):
                # Other comments are legal; nothing to check.
                pass
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        try:
            value = parse_float(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value: {line!r}")
            continue
        samples.append((match.group("name"), match.group("labels"), value))

    by_family = {}
    for name, labels, value in samples:
        family = base_family(name, declared)
        if family is None:
            errors.append(f"sample {name} has no preceding # TYPE line")
            continue
        by_family.setdefault(family, []).append((name, labels, value))

    for family, ftype in declared.items():
        rows = by_family.get(family, [])
        if not rows:
            errors.append(f"family {family} declared but has no samples")
            continue
        if ftype != "histogram":
            continue
        buckets = []
        count = None
        for name, labels, value in rows:
            if name == family + "_bucket":
                le = None
                for label in (labels or "").split(","):
                    key, _, raw = label.partition("=")
                    if key.strip() == "le":
                        le = parse_float(raw.strip().strip('"'))
                if le is None:
                    errors.append(f"{family}: bucket sample without le label")
                    continue
                buckets.append((le, value))
            elif name == family + "_count":
                count = value
        if not buckets:
            errors.append(f"{family}: histogram with no _bucket samples")
            continue
        bounds = [le for le, _ in buckets]
        if bounds != sorted(bounds):
            errors.append(f"{family}: bucket bounds are not increasing")
        if bounds and bounds[-1] != float("inf"):
            errors.append(f"{family}: missing +Inf bucket")
        values = [v for _, v in buckets]
        if any(b > a for a, b in zip(values[1:], values)):
            errors.append(f"{family}: bucket counts are not cumulative")
        if count is None:
            errors.append(f"{family}: missing _count sample")
        elif buckets and buckets[-1][1] != count:
            errors.append(
                f"{family}: +Inf bucket {buckets[-1][1]} != _count {count}")

    for prefix in REQUIRED_FAMILY_PREFIXES:
        if not any(family.startswith(prefix) for family in declared):
            errors.append(f"no {prefix}* family in the exposition")
    return declared


def check_stats_json(text, errors):
    """Validates one /stats.json payload."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        errors.append(f"stats.json does not parse: {err}")
        return
    if not isinstance(payload, dict):
        errors.append("stats.json is not an object")
        return
    for key in ("uptime_ns", "rates", "metrics"):
        if key not in payload:
            errors.append(f"stats.json missing key {key!r}")
    if not isinstance(payload.get("rates", {}), dict):
        errors.append("stats.json rates is not an object")
    if not isinstance(payload.get("metrics", {}), dict):
        errors.append("stats.json metrics is not an object")


def scrape(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8", "replace")


def run_probe_mode(probe, errors):
    """Spawns the probe, scrapes it live, and terminates it."""
    process = subprocess.Popen(
        [probe, "--stats-port", "0", "--stats-hold", "60"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    port = None
    try:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stderr.readline()
            if not line:
                break
            match = LISTENING_RE.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            errors.append("probe never reported a listening port")
            return
        # The probe serves while its workload runs, so early scrapes
        # may precede the workload's first instrumented event (metric
        # families register lazily at their instrumentation sites).
        # Poll until the required families appear — every intermediate
        # payload is still a live concurrent scrape — then validate
        # the final payload in full.
        text = ""
        while time.monotonic() < deadline:
            text = scrape(port, "/metrics")
            if all(f"# TYPE {prefix}" in text
                   for prefix in REQUIRED_FAMILY_PREFIXES):
                break
            time.sleep(0.2)
        check_prometheus(text, errors)
        check_stats_json(scrape(port, "/stats.json"), errors)
        # A second JSON scrape gives the server a previous snapshot
        # to compute rates against; it must still be well-formed.
        check_stats_json(scrape(port, "/stats.json"), errors)
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def main():
    parser = argparse.ArgumentParser(
        description="Validate Ark Prometheus/JSON stats payloads.")
    parser.add_argument("--probe",
                        help="metrics_probe binary to spawn and scrape")
    parser.add_argument("--metrics-file",
                        help="saved /metrics payload to validate")
    parser.add_argument("--json-file",
                        help="saved /stats.json payload to validate")
    args = parser.parse_args()
    if not args.probe and not args.metrics_file and not args.json_file:
        parser.error("one of --probe / --metrics-file / --json-file "
                     "is required")

    errors = []
    if args.probe:
        run_probe_mode(args.probe, errors)
    if args.metrics_file:
        with open(args.metrics_file, "r", encoding="utf-8") as handle:
            check_prometheus(handle.read(), errors)
    if args.json_file:
        with open(args.json_file, "r", encoding="utf-8") as handle:
            check_stats_json(handle.read(), errors)

    for error in errors:
        print(f"check_prometheus: {error}", file=sys.stderr)
    if errors:
        return 1
    print("check_prometheus: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
