/**
 * @file
 * metrics_probe — tiny end-to-end telemetry workload for CI and
 * bench_smoke.
 *
 * Runs a small PUF challenge battery (compile ladder + lane-batched
 * ensemble + artifact cache, twice so the second pass hits warm
 * artifacts), a small SPICE parameter sweep (structure grouping +
 * factor/refactor + stepper cache, also cold then warm), and — when a
 * host toolchain is available — a tier-5 JIT ensemble (cold kernel
 * compile, then warm kernel-cache serves) with metric collection
 * enabled, then emits a JSON summary:
 *
 *   {"cache_hit_rate": ..., "mean_lane_occupancy": ...,
 *    "refactor_share": ..., "jit_hit_rate": ..., "jit_compiles": ...,
 *    "jit_compile_ns_p95": ...,
 *    "quantiles": {<histogram>: {p50/p95/p99}},
 *    "counters": { <registry snapshot> }}
 *
 * bench_smoke embeds this object as the "metrics" block of
 * BENCH_perf.json; the CI tier-1 job additionally passes --trace to
 * produce the sample Chrome trace artifact it validates, and uses
 * --stats-port/--stats-hold to scrape the live Prometheus/JSON
 * endpoint while the probe idles after its workload. Exits nonzero
 * only when the workload itself fails — metric values are data, not
 * assertions.
 *
 * Usage: metrics_probe [--out summary.json] [--trace out.trace.json]
 *                      [--ledger ledger.json]
 *                      [--stats-port N] [--stats-hold SECONDS]
 *
 * --stats-port prints "metrics_probe: stats listening on
 * 127.0.0.1:PORT" to stderr once bound (port 0 = ephemeral), so a
 * harness can parse the port; --stats-hold keeps the process (and
 * the endpoint) alive that many seconds after the workload.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/puf.h"
#include "engine/session.h"
#include "expr/cjit.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "spice/map_tln.h"
#include "support/error.h"
#include "support/ledger.h"
#include "support/statsserver.h"
#include "support/telemetry.h"
#include "validator/validator.h"

namespace {

using namespace ark;

/** The PUF battery: compile + cache + lane-batched ensemble. */
void
runPufWorkload(const lang::LanguageRegistry &registry,
               const engine::Session &session)
{
    const lang::Language &gmc = registry.language("gmc-tln");
    apps::PufDesign design;
    design.mainSections = 8;
    design.numBranches = 2;
    design.stubSections = 2;
    design.responseBits = 8;
    apps::TlnPuf puf(gmc, design, session);

    const std::vector<std::uint32_t> challenges = {0, 1, 2, 3};
    const std::vector<std::uint64_t> chips = {1, 2, 3, 4};
    // Twice: the first battery builds every artifact, the second is
    // served from warm cache — so the probe exercises both cache
    // outcomes deterministically.
    puf.responseMatrix(challenges, chips);
    puf.responseMatrix(challenges, chips);
}

/**
 * The tier-5 JIT: a lane-batched mismatch ensemble with native
 * kernels requested, twice — the first pass pays the kernel compiles,
 * the second is served from the warm kernel cache. Skipped (the
 * summary reports zero JIT coverage) when the host has no toolchain.
 */
void
runJitWorkload(const lang::LanguageRegistry &registry,
               const engine::Session &session)
{
    if (!expr::jitToolchainAvailable())
        return;
    const lang::Language &gmc = registry.language("gmc-tln");
    std::vector<engine::SystemPtr> systems;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        paradigms::tln::LineSpec spec;
        spec.sections = 8;
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = seed;
        dg::Graph graph = paradigms::tln::buildLine(gmc, spec);
        systems.push_back(session.compile(graph, gmc));
    }
    sim::EnsembleOptions options;
    options.sim.jit = true;
    options.sim.recordDt = 1e-10;
    session.runEnsemble(systems, 0.0, 1e-9, options);
    session.runEnsemble(systems, 0.0, 1e-9, options);
}

/** The SPICE sweep: grouping + factor/refactor + stepper cache. */
void
runSpiceWorkload(const lang::LanguageRegistry &registry,
                 const engine::Session &session)
{
    const lang::Language &gmc = registry.language("gmc-tln");
    std::vector<spice::MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        paradigms::tln::LineSpec spec;
        spec.sections = 8;
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = seed;
        dg::Graph graph = paradigms::tln::buildLine(gmc, spec);
        validator::validateOrThrow(graph, gmc);
        mapped.push_back(spice::mapTlnToSpice(graph, gmc));
    }
    std::vector<const spice::Netlist *> netlists;
    for (const spice::MappedTln &m : mapped)
        netlists.push_back(&m.netlist);
    // Cold factors, then warm (cached steppers).
    session.runSweep(netlists, 0.0, 1e-9, 1e-11);
    session.runSweep(netlists, 0.0, 1e-9, 1e-11);
}

double
ratio(double numerator, double denominator)
{
    return denominator > 0.0 ? numerator / denominator : 0.0;
}

/** A named histogram's p95, or 0 when it never recorded. */
double
histogramP95(const telemetry::MetricsSnapshot &snap,
             const std::string &name)
{
    for (const telemetry::MetricsSnapshot::Entry &entry : snap.entries) {
        if (entry.kind == telemetry::MetricsSnapshot::Kind::Histogram &&
            entry.name == name)
            return entry.p95;
    }
    return 0.0;
}

/** {"<histogram>": {"p50": ..., "p95": ..., "p99": ...}, ...} */
std::string
quantilesJson(const telemetry::MetricsSnapshot &snap)
{
    std::string json = "{";
    bool first = true;
    for (const telemetry::MetricsSnapshot::Entry &entry : snap.entries) {
        if (entry.kind != telemetry::MetricsSnapshot::Kind::Histogram)
            continue;
        if (!first)
            json += ", ";
        first = false;
        json += "\"" + entry.name +
                "\": {\"p50\": " + std::to_string(entry.p50) +
                ", \"p95\": " + std::to_string(entry.p95) +
                ", \"p99\": " + std::to_string(entry.p99) + "}";
    }
    json += "}";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string ledgerPath;
    int statsPort = -1;
    double statsHold = 0.0;
    std::optional<telemetry::TraceSession> trace;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace.emplace(argv[++i]);
        } else if (arg == "--ledger" && i + 1 < argc) {
            ledgerPath = argv[++i];
        } else if (arg == "--stats-port" && i + 1 < argc) {
            statsPort = std::stoi(argv[++i]);
        } else if (arg == "--stats-hold" && i + 1 < argc) {
            statsHold = std::stod(argv[++i]);
        } else {
            std::cerr << "usage: metrics_probe [--out summary.json]"
                         " [--trace out.trace.json]"
                         " [--ledger ledger.json]"
                         " [--stats-port N] [--stats-hold SECONDS]\n";
            return 2;
        }
    }

    telemetry::setMetricsEnabled(true);
    telemetry::StatsServer server;
    if (statsPort >= 0) {
        std::string error;
        if (!server.start(static_cast<std::uint16_t>(statsPort),
                          &error)) {
            std::cerr << "metrics_probe: stats server: " << error
                      << "\n";
            return 1;
        }
        std::cerr << "metrics_probe: stats listening on 127.0.0.1:"
                  << server.port() << std::endl;
    }
    // A private cache isolates the probe's hit/miss arithmetic from
    // anything else the process ran.
    engine::ArtifactCache cache;
    telemetry::RunLedger ledger;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    if (!ledgerPath.empty())
        sessionOptions.ledger = &ledger;
    engine::Session session(sessionOptions);

    try {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        runPufWorkload(registry, session);
        runSpiceWorkload(registry, session);
        runJitWorkload(registry, session);
    } catch (const support::ArkError &error) {
        std::cerr << "metrics_probe: " << error.what() << "\n";
        return 1;
    }

    if (!ledgerPath.empty()) {
        std::ofstream out(ledgerPath);
        if (!out) {
            std::cerr << "metrics_probe: cannot write '" << ledgerPath
                      << "'\n";
            return 1;
        }
        out << ledger.json() << "\n";
    }

    const telemetry::MetricsSnapshot snap = session.metricsSnapshot();
    const double hits = snap.value("ark.cache.system_hits") +
                        snap.value("ark.cache.stepper_hits");
    const double misses = snap.value("ark.cache.system_misses") +
                          snap.value("ark.cache.stepper_misses");
    const double cacheHitRate = ratio(hits, hits + misses);
    const double occupancy = ratio(snap.value("ark.sim.block_lanes"),
                                   snap.value("ark.sim.block_width"));
    const double factors = snap.value("ark.spice.factors");
    const double refactors = snap.value("ark.spice.refactors");
    const double refactorShare = ratio(refactors, factors + refactors);
    // Tier-5 coverage: kernel-cache hit rate, compiles paid, and the
    // p95 compile latency (all zero on hosts without a toolchain).
    const double jitHits = snap.value("ark.cache.kernel_hits");
    const double jitMisses = snap.value("ark.cache.kernel_misses");
    const double jitHitRate = ratio(jitHits, jitHits + jitMisses);
    const double jitCompiles = snap.value("ark.compile.jit_compiles");
    const double jitCompileP95 =
        histogramP95(snap, "ark.compile.jit_compile_ns");

    std::string json = "{\"cache_hit_rate\": " +
                       std::to_string(cacheHitRate) +
                       ",\n \"mean_lane_occupancy\": " +
                       std::to_string(occupancy) +
                       ",\n \"refactor_share\": " +
                       std::to_string(refactorShare) +
                       ",\n \"jit_hit_rate\": " +
                       std::to_string(jitHitRate) +
                       ",\n \"jit_compiles\": " +
                       std::to_string(jitCompiles) +
                       ",\n \"jit_compile_ns_p95\": " +
                       std::to_string(jitCompileP95) +
                       ",\n \"quantiles\": " + quantilesJson(snap) +
                       ",\n \"counters\": " + snap.json() + "}\n";

    if (outPath.empty()) {
        std::cout << json;
    } else {
        std::ofstream out(outPath);
        if (!out) {
            std::cerr << "metrics_probe: cannot write '" << outPath
                      << "'\n";
            return 1;
        }
        out << json;
    }

    // Keep the endpoint alive for external scrapers (CI parses the
    // listening line, scrapes, then kills the probe early).
    if (statsPort >= 0 && statsHold > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(statsHold));
    return 0;
}
