#!/usr/bin/env python3
"""Compare two BENCH_perf.json snapshots produced by bench_smoke.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT] [--no-fail]

For every benchmark present in both snapshots the script compares
items_per_second when the benchmark reports it (higher is better) and
wall time otherwise (lower is better), prints a human-readable table,
and flags changes worse than --threshold percent (default 10) as
regressions. Exits 1 when any regression is flagged unless --no-fail
is given, so it can gate CI without blocking exploratory runs.

Benchmarks that appear in only one snapshot are listed as added or
removed but never flagged: renames and new coverage are routine
between PRs. A binary recorded with "ok": false contributes nothing —
bench_smoke is non-gating by design, and this script follows suit.

Snapshots may carry a top-level "metrics" block (cache hit rate, mean
lane occupancy, refactor share, and per-histogram p50/p95/p99
quantiles — embedded by bench_smoke when the metrics probe is
available). Metric and quantile deltas are printed informationally
but never flagged as regressions, and snapshots with and without the
block (or with the older block that predates quantiles) diff cleanly
against each other.
"""

import argparse
import json
import sys


def load_snapshot(path):
    """Loads one BENCH_perf.json, with clean diagnostics (code 2) for
    unreadable or malformed snapshots instead of a traceback, so CI
    logs stay legible."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_diff: {path} is not valid JSON: {err}")
    if not isinstance(snapshot, dict):
        sys.exit(f"bench_diff: {path} is not a bench_smoke snapshot")
    return snapshot


def load_entries(snapshot):
    """Maps (binary, benchmark name) -> benchmark record."""
    entries = {}
    for binary in snapshot.get("benchmarks", []):
        if not binary.get("ok") or "report" not in binary:
            continue
        for bench in binary["report"].get("benchmarks", []):
            # Aggregate rows (mean/median/stddev) would double-count.
            if bench.get("run_type") == "aggregate":
                continue
            if "name" not in bench:
                continue
            entries[(binary.get("binary", "?"), bench["name"])] = bench
    return entries


def diff_metrics(old_snapshot, new_snapshot):
    """Prints informational deltas for the telemetry metrics block.

    Purely advisory: older snapshots predate the block, a failed probe
    drops it, and ratio drift is workload-dependent — so nothing here
    is ever flagged as a regression.
    """
    old_metrics = old_snapshot.get("metrics")
    new_metrics = new_snapshot.get("metrics")
    if not isinstance(old_metrics, dict):
        old_metrics = {}
    if not isinstance(new_metrics, dict):
        new_metrics = {}
    keys = ("cache_hit_rate", "mean_lane_occupancy", "refactor_share")
    shown = [key for key in keys
             if key in old_metrics or key in new_metrics]
    if shown:
        print("\ntelemetry metrics (informational):")
        for key in shown:
            old_value = old_metrics.get(key)
            new_value = new_metrics.get(key)
            old_text = "n/a" if old_value is None else f"{old_value:.4f}"
            new_text = "n/a" if new_value is None else f"{new_value:.4f}"
            print(f"  {key}: {old_text} -> {new_text}")
    diff_quantiles(old_metrics, new_metrics)


def diff_quantiles(old_metrics, new_metrics):
    """Prints per-histogram p50/p95/p99 deltas from the "quantiles"
    block. Tolerant by construction: snapshots that predate the block
    (or carry a malformed one) contribute nothing, and histograms
    present on only one side print with n/a placeholders."""
    old_q = old_metrics.get("quantiles")
    new_q = new_metrics.get("quantiles")
    if not isinstance(old_q, dict):
        old_q = {}
    if not isinstance(new_q, dict):
        new_q = {}
    names = sorted(set(old_q) | set(new_q))
    if not names:
        return
    print("\nlatency quantiles (informational):")
    for name in names:
        old_hist = old_q.get(name)
        new_hist = new_q.get(name)
        if not isinstance(old_hist, dict):
            old_hist = {}
        if not isinstance(new_hist, dict):
            new_hist = {}
        parts = []
        for quantile in ("p50", "p95", "p99"):
            old_value = old_hist.get(quantile)
            new_value = new_hist.get(quantile)
            old_text = "n/a" if old_value is None else f"{old_value:.3g}"
            new_text = "n/a" if new_value is None else f"{new_value:.3g}"
            parts.append(f"{quantile} {old_text} -> {new_text}")
        print(f"  {name}: {', '.join(parts)}")


def metric_of(bench):
    """Returns (value, unit, higher_is_better), or None when the
    record carries no comparable metric."""
    if "items_per_second" in bench:
        return bench["items_per_second"], "items/s", True
    if "real_time" in bench:
        unit = bench.get("time_unit", "ns")
        return bench["real_time"], unit, False
    return None


def fmt(value):
    if value >= 1e6:
        return f"{value:.4g}"
    return f"{value:.6g}"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench_smoke BENCH_perf.json snapshots.")
    parser.add_argument("old", help="baseline snapshot")
    parser.add_argument("new", help="candidate snapshot")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--no-fail", action="store_true",
                        help="always exit 0, even with regressions")
    args = parser.parse_args()

    old_snapshot = load_snapshot(args.old)
    new_snapshot = load_snapshot(args.new)
    old = load_entries(old_snapshot)
    new = load_entries(new_snapshot)

    rows = []
    regressions = []
    for key in sorted(old.keys() & new.keys()):
        old_metric = metric_of(old[key])
        new_metric = metric_of(new[key])
        if old_metric is None or new_metric is None:
            rows.append((key, "no comparable metric", ""))
            continue
        old_value, unit, higher_better = old_metric
        new_value, new_unit, new_higher = new_metric
        if unit != new_unit or higher_better != new_higher:
            rows.append((key, "metric changed", ""))
            continue
        if old_value == 0 or new_value == 0:
            rows.append((key, "zero-valued metric", ""))
            continue
        # Positive delta = improvement in both metric directions.
        if higher_better:
            delta = (new_value / old_value - 1.0) * 100.0
        else:
            delta = (old_value / new_value - 1.0) * 100.0
        flag = ""
        if delta <= -args.threshold:
            flag = "REGRESSION"
            regressions.append(key)
        elif delta >= args.threshold:
            flag = "improved"
        rows.append(
            (key,
             f"{fmt(old_value)} -> {fmt(new_value)} {unit} "
             f"({delta:+.1f}%)",
             flag))

    name_width = max((len(f"{b}:{n}") for b, n in
                      old.keys() | new.keys()), default=20)
    for (binary, name), summary, flag in rows:
        label = f"{binary}:{name}"
        print(f"{label:<{name_width}}  {summary:<44}  {flag}")
    for key in sorted(new.keys() - old.keys()):
        print(f"{key[0]}:{key[1]:<{name_width - len(key[0])}}  (added)")
    for key in sorted(old.keys() - new.keys()):
        print(f"{key[0]}:{key[1]:<{name_width - len(key[0])}}  (removed)")

    diff_metrics(old_snapshot, new_snapshot)

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:")
        for binary, name in regressions:
            print(f"  {binary}:{name}")
        if not args.no_fail:
            return 1
    else:
        print(f"\nNo regressions beyond {args.threshold:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
