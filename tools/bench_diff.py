#!/usr/bin/env python3
"""Compare two BENCH_perf.json snapshots produced by bench_smoke.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT] [--no-fail]

For every benchmark present in both snapshots the script compares
items_per_second when the benchmark reports it (higher is better) and
wall time otherwise (lower is better), prints a human-readable table,
and flags changes worse than --threshold percent (default 10) as
regressions. Exits 1 when any regression is flagged unless --no-fail
is given, so it can gate CI without blocking exploratory runs.

Benchmarks that appear in only one snapshot are listed as added or
removed but never flagged: renames and new coverage are routine
between PRs. A binary recorded with "ok": false contributes nothing —
bench_smoke is non-gating by design, and this script follows suit.
"""

import argparse
import json
import sys


def load_entries(path):
    """Maps (binary, benchmark name) -> benchmark record."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    entries = {}
    for binary in snapshot.get("benchmarks", []):
        if not binary.get("ok") or "report" not in binary:
            continue
        for bench in binary["report"].get("benchmarks", []):
            # Aggregate rows (mean/median/stddev) would double-count.
            if bench.get("run_type") == "aggregate":
                continue
            entries[(binary["binary"], bench["name"])] = bench
    return entries


def metric_of(bench):
    """Returns (value, unit, higher_is_better) for one record."""
    if "items_per_second" in bench:
        return bench["items_per_second"], "items/s", True
    unit = bench.get("time_unit", "ns")
    return bench["real_time"], unit, False


def fmt(value):
    if value >= 1e6:
        return f"{value:.4g}"
    return f"{value:.6g}"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench_smoke BENCH_perf.json snapshots.")
    parser.add_argument("old", help="baseline snapshot")
    parser.add_argument("new", help="candidate snapshot")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--no-fail", action="store_true",
                        help="always exit 0, even with regressions")
    args = parser.parse_args()

    old = load_entries(args.old)
    new = load_entries(args.new)

    rows = []
    regressions = []
    for key in sorted(old.keys() & new.keys()):
        old_value, unit, higher_better = metric_of(old[key])
        new_value, new_unit, new_higher = metric_of(new[key])
        if unit != new_unit or higher_better != new_higher:
            rows.append((key, "metric changed", ""))
            continue
        if old_value == 0:
            rows.append((key, "baseline is 0", ""))
            continue
        # Positive delta = improvement in both metric directions.
        if higher_better:
            delta = (new_value / old_value - 1.0) * 100.0
        else:
            delta = (old_value / new_value - 1.0) * 100.0
        flag = ""
        if delta <= -args.threshold:
            flag = "REGRESSION"
            regressions.append(key)
        elif delta >= args.threshold:
            flag = "improved"
        rows.append(
            (key,
             f"{fmt(old_value)} -> {fmt(new_value)} {unit} "
             f"({delta:+.1f}%)",
             flag))

    name_width = max((len(f"{b}:{n}") for b, n in
                      old.keys() | new.keys()), default=20)
    for (binary, name), summary, flag in rows:
        label = f"{binary}:{name}"
        print(f"{label:<{name_width}}  {summary:<44}  {flag}")
    for key in sorted(new.keys() - old.keys()):
        print(f"{key[0]}:{key[1]:<{name_width - len(key[0])}}  (added)")
    for key in sorted(old.keys() - new.keys()):
        print(f"{key[0]}:{key[1]:<{name_width - len(key[0])}}  (removed)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:")
        for binary, name in regressions:
            print(f"  {binary}:{name}")
        if not args.no_fail:
            return 1
    else:
        print(f"\nNo regressions beyond {args.threshold:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
