/**
 * @file
 * arkc — command-line driver for the Ark framework (paper §4.6).
 *
 * Subcommands:
 *   arkc dump                         print the built-in paradigm DSLs
 *   arkc parse <file.ark>...          parse and list definitions
 *   arkc equations <file> <func> [args...]
 *                                     invoke + validate + print ODEs
 *   arkc run <file> <func> [args...] [--seed N] [--t-end T]
 *            [--record-dt D] [--observe n1,n2,...] [--jit|--no-jit]
 *                                     simulate and emit CSV
 *
 * Function arguments are positional literals: integers, reals, or
 * `true`/`false`. Built-in languages (tln, gmc-tln, cnn, hw-cnn, obc,
 * ofs-obc, intercon-obc) are preloaded, so user .ark files can extend
 * them directly.
 *
 * Compilation runs through the engine's content-addressed artifact
 * cache (ark::engine::Session); `--cache-stats` on equations/run
 * prints the hit/miss counters to stderr after the command.
 * `--ir-stats` prints compiler IR statistics to stderr: RHS tree vs.
 * unique (hash-consed) node counts and the sharing ratio, the
 * process-wide intern table counters, the reassociation pass's
 * rewrite deltas, and the FMA contraction share of the plain and
 * reassociated tape variants.
 * `--metrics` prints the engine telemetry registry to stderr,
 * `--trace out.json` records the command as Chrome trace-event JSON
 * (load it in chrome://tracing or Perfetto), `--ledger out.json`
 * writes the run's per-instance flight-recorder records, and
 * `--stats-port N` serves live Prometheus/JSON metrics on
 * 127.0.0.1:N for the duration of the command (0 = ephemeral port,
 * printed to stderr). See docs/TELEMETRY.md.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "compiler/compiler.h"
#include "engine/session.h"
#include "lang/parser.h"
#include "lang/registry.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "support/error.h"
#include "support/ledger.h"
#include "support/statsserver.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/telemetry.h"

namespace {

using namespace ark;

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  arkc dump\n"
        "  arkc parse <file.ark>...\n"
        "  arkc equations <file.ark> <func> [args...]\n"
        "  arkc run <file.ark> <func> [args...] [--seed N] [--t-end T]\n"
        "       [--record-dt D] [--observe node1,node2,...]\n"
        "       [--jit|--no-jit]\n"
        "\n"
        "--jit compiles the RHS to a native kernel (bit-identical to\n"
        "the interpreter; falls back silently without a toolchain).\n"
        "equations/run compile through the engine artifact cache;\n"
        "--cache-stats prints its hit/miss counters to stderr.\n"
        "--ir-stats prints IR statistics (node/sharing counts,\n"
        "rewrite deltas, FMA contraction share) to stderr.\n"
        "--metrics prints engine telemetry counters to stderr;\n"
        "--trace FILE writes a Chrome trace (chrome://tracing);\n"
        "--ledger FILE writes the run's flight-recorder JSON;\n"
        "--stats-port N serves /metrics + /stats.json on\n"
        "127.0.0.1:N while the command runs (0 = ephemeral).\n";
    return 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw support::IoError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

/** Parses a positional CLI literal into an Ark value. */
expr::Value
parseArgValue(const std::string &text)
{
    if (text == "true")
        return expr::Value::boolean(true);
    if (text == "false")
        return expr::Value::boolean(false);
    try {
        std::size_t used = 0;
        if (text.find_first_of(".eE") == std::string::npos) {
            long long i = std::stoll(text, &used);
            if (used == text.size())
                return expr::Value::integer(i);
        }
        double d = std::stod(text, &used);
        if (used == text.size())
            return expr::Value::real(d);
    } catch (const std::exception &) {
        // fall through
    }
    throw support::IoError("cannot parse argument '" + text + "'");
}

struct RunOptions
{
    std::string file;
    std::string func;
    std::vector<expr::Value> args;
    std::uint64_t seed = 0;
    double tEnd = 1.0;
    double recordDt = 0.0;
    std::vector<std::string> observe;
    bool jit = false;
    bool cacheStats = false;
    bool irStats = false;
    bool metrics = false;
    std::string tracePath;  ///< Empty = no trace recording.
    std::string ledgerPath; ///< Empty = no flight recorder.
    int statsPort = -1;     ///< -1 = no stats server; 0 = ephemeral.
};

RunOptions
parseRunArgs(int argc, char **argv, int first)
{
    RunOptions options;
    if (first + 1 >= argc)
        throw support::IoError("missing file or function name");
    options.file = argv[first];
    options.func = argv[first + 1];
    for (int i = first + 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw support::IoError("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--seed") {
            options.seed = std::stoull(next());
        } else if (arg == "--t-end") {
            options.tEnd = std::stod(next());
        } else if (arg == "--record-dt") {
            options.recordDt = std::stod(next());
        } else if (arg == "--observe") {
            options.observe = support::split(next(), ',');
        } else if (arg == "--jit") {
            options.jit = true;
        } else if (arg == "--no-jit") {
            options.jit = false;
        } else if (arg == "--cache-stats") {
            options.cacheStats = true;
        } else if (arg == "--ir-stats") {
            options.irStats = true;
        } else if (arg == "--metrics") {
            options.metrics = true;
        } else if (arg == "--trace") {
            options.tracePath = next();
        } else if (arg == "--ledger") {
            options.ledgerPath = next();
        } else if (arg == "--stats-port") {
            options.statsPort = std::stoi(next());
        } else {
            options.args.push_back(parseArgValue(arg));
        }
    }
    return options;
}

int
cmdDump()
{
    std::cout << paradigms::tln::tlnSource()
              << paradigms::tln::gmcTlnSource()
              << paradigms::tln::brFuncSource()
              << paradigms::cnn::cnnSource()
              << paradigms::cnn::hwCnnSource()
              << paradigms::obc::obcSource()
              << paradigms::obc::ofsObcSource()
              << paradigms::obc::interconObcSource();
    return 0;
}

int
cmdParse(int argc, char **argv)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    for (int i = 2; i < argc; ++i)
        registry.addProgram(readFile(argv[i]));
    support::Table langs({"language", "node types", "edge types",
                          "prod rules", "cstrs"});
    for (const std::string &name : registry.languageNames()) {
        const lang::Language &lang = registry.language(name);
        langs.addRow({name,
                      std::to_string(lang.types().nodeTypes().size()),
                      std::to_string(lang.types().edgeTypes().size()),
                      std::to_string(lang.prodRules().size()),
                      std::to_string(lang.cstrs().size())});
    }
    langs.print(std::cout);
    std::cout << "\nfunctions: "
              << support::join(registry.functionNames(), ", ") << "\n";
    return 0;
}

/** Shared invoke path for equations/run (validation happens inside
 *  the engine session's cached compile). */
dg::Graph
buildGraph(lang::LanguageRegistry &registry, const RunOptions &options,
           const lang::Language **langOut)
{
    registry.addProgram(readFile(options.file));
    dg::Graph graph =
        registry.invoke(options.func, options.args, options.seed);
    *langOut = &registry.language(graph.langName());
    return graph;
}

/**
 * Arms telemetry per the CLI flags for the duration of a command:
 * --metrics turns on metric collection, --trace records spans and
 * writes the Chrome trace file when the scope ends, and
 * --stats-port starts the live exporter (which needs collection on
 * to have anything to serve). The server's destructor joins its
 * thread before main returns.
 */
struct TelemetryScope
{
    explicit TelemetryScope(const RunOptions &options)
    {
        if (options.metrics || options.statsPort >= 0)
            telemetry::setMetricsEnabled(true);
        if (!options.tracePath.empty())
            trace.emplace(options.tracePath);
        if (options.statsPort >= 0) {
            std::string error;
            if (!server.start(
                    static_cast<std::uint16_t>(options.statsPort),
                    &error))
                throw support::IoError("stats server: " + error);
            std::cerr << "arkc: stats listening on 127.0.0.1:"
                      << server.port() << "\n";
        }
    }

    std::optional<telemetry::TraceSession> trace;
    telemetry::StatsServer server;
};

/**
 * Prints the compiled system's IR statistics to stderr: how much the
 * hash-consed IR shares (tree nodes counted as if expanded vs. unique
 * interned nodes), what the opt-in reassociation pass would change,
 * and how many tape instructions contract to FusedMulAdd with and
 * without it. Builds the lazy FMA/reassoc variants as a side effect —
 * acceptable for a diagnostics flag.
 */
void
reportIrStats(const compiler::OdeSystem &system)
{
    std::uint64_t treeNodes = 0;
    std::unordered_set<const expr::Expr *> unique;
    for (const expr::ExprPtr &e : system.rhsExprs()) {
        e->visit([&](const expr::Expr &node) {
            ++treeNodes;
            unique.insert(&node);
        });
    }
    const double sharing =
        unique.empty() ? 1.0
                       : static_cast<double>(treeNodes) /
                             static_cast<double>(unique.size());

    const expr::FusedTape &plain = system.fusedTape();
    const expr::FusedTape &fma = system.fusedTapeFma();
    const expr::FusedTape &reassoc = system.fusedTapeReassoc();
    const expr::RewriteStats &rw = system.reassocStats();
    auto share = [](std::uint64_t contractions, std::size_t plainOps) {
        return plainOps == 0 ? 0.0
                             : 100.0 * static_cast<double>(contractions) /
                                   static_cast<double>(plainOps);
    };
    expr::InternStats intern = expr::internStats();

    std::ostream &out = std::cerr;
    out << "arkc: ir: rhs tree nodes " << treeNodes << ", unique "
        << unique.size() << " (sharing x" << sharing << ")\n";
    out << "arkc: ir: intern table: live " << intern.liveNodes
        << ", interned " << intern.internedTotal << ", hits "
        << intern.hits << ", purged " << intern.purged << "\n";
    out << "arkc: ir: reassoc rewrite: nodes " << rw.nodesBefore
        << " -> " << rw.nodesAfter << " (div->recip "
        << rw.divReciprocals << ", const-folds " << rw.mulConstFolds
        << ", neg-folds " << rw.negFolds << ", sub->add "
        << rw.subToAdd << ")\n";
    out << "arkc: ir: fma contraction: plain "
        << fma.fmaContractions() << "/" << plain.size() << " ops ("
        << share(fma.fmaContractions(), plain.size())
        << "%), reassoc " << reassoc.fmaContractions() << "/"
        << plain.size() << " ops ("
        << share(reassoc.fmaContractions(), plain.size()) << "%)\n";
}

/** Prints cache counters / IR stats / telemetry metrics when
 *  requested. */
void
reportCacheStats(const RunOptions &options, const engine::Session &session)
{
    if (options.cacheStats)
        std::cerr << "arkc: cache: " << session.cache().stats().str()
                  << "\n";
    if (options.metrics)
        std::cerr << session.metricsSnapshot().str();
}

int
cmdEquations(int argc, char **argv)
{
    RunOptions options = parseRunArgs(argc, argv, 2);
    TelemetryScope telemetryScope(options);
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language *lang = nullptr;
    dg::Graph graph = buildGraph(registry, options, &lang);
    engine::Session session;
    engine::SystemPtr system = session.compile(graph, *lang);
    std::cout << system->equationsStr();
    if (options.irStats)
        reportIrStats(*system);
    reportCacheStats(options, session);
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    RunOptions options = parseRunArgs(argc, argv, 2);
    TelemetryScope telemetryScope(options);
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language *lang = nullptr;
    dg::Graph graph = buildGraph(registry, options, &lang);
    engine::Session session;
    engine::SystemPtr systemPtr = session.compile(graph, *lang);
    const compiler::OdeSystem &system = *systemPtr;

    sim::SimOptions simOptions;
    simOptions.recordDt = options.recordDt > 0
                              ? options.recordDt
                              : options.tEnd / 500.0;
    simOptions.jit = options.jit;
    // A single-system ensemble runs the scalar per-instance path,
    // bit-identical to serial sim::simulate — dispatched through the
    // session so the flight recorder sees it.
    telemetry::RunLedger ledger;
    sim::EnsembleOptions ensembleOptions;
    ensembleOptions.sim = simOptions;
    if (!options.ledgerPath.empty())
        ensembleOptions.ledger = &ledger;
    std::vector<sim::SimResult> results = session.runEnsemble(
        {systemPtr}, 0.0, options.tEnd, ensembleOptions);
    sim::SimResult result = std::move(results.front());
    if (!options.ledgerPath.empty()) {
        std::ofstream out(options.ledgerPath);
        if (!out)
            throw support::IoError("cannot open '" +
                                   options.ledgerPath + "'");
        out << ledger.json() << "\n";
        std::cerr << "arkc: ledger written to " << options.ledgerPath
                  << "\n";
    }
    if (!result.ok()) {
        std::cerr << "warning: " << result.failure->message
                  << " (emitting the partial trajectory)\n";
    }

    // Default: observe every state variable.
    std::vector<int> indices;
    std::vector<std::string> header{"t"};
    if (options.observe.empty()) {
        for (std::size_t i = 0; i < system.size(); ++i) {
            indices.push_back(static_cast<int>(i));
            header.push_back(system.vars()[i].label());
        }
    } else {
        for (const std::string &name : options.observe) {
            indices.push_back(system.stateIndex(name, 0));
            header.push_back(name);
        }
    }

    support::CsvWriter csv(std::cout);
    csv.writeRow(header);
    for (std::size_t s = 0; s < result.trajectory.size(); ++s) {
        std::vector<double> row{result.trajectory.time(s)};
        for (int idx : indices)
            row.push_back(result.trajectory.state(s)
                              [static_cast<std::size_t>(idx)]);
        csv.writeRow(row);
    }
    if (options.irStats)
        reportIrStats(system);
    reportCacheStats(options, session);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    try {
        if (command == "dump")
            return cmdDump();
        if (command == "parse")
            return argc >= 3 ? cmdParse(argc, argv) : usage();
        if (command == "equations")
            return cmdEquations(argc, argv);
        if (command == "run")
            return cmdRun(argc, argv);
    } catch (const support::ArkError &err) {
        std::cerr << "arkc: " << err.what() << "\n";
        return 1;
    }
    return usage();
}
