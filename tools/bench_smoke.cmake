# Runs every benchmark binary with a tiny min-time and merges the JSON
# reports into one BENCH_perf.json. Non-gating by design: a failing or
# missing benchmark is recorded in the report but never fails the
# script, so tier-1 ctest runs stay green while the perf trajectory is
# still captured per PR.
#
# Usage:
#   cmake -DBENCH_BINARIES="bin1;bin2" -DOUTPUT_JSON=out.json \
#         [-DMETRICS_PROBE=path/to/ark_metrics_probe] \
#         -P bench_smoke.cmake
#
# When METRICS_PROBE is set, its JSON summary (cache hit rate, mean
# lane occupancy, refactor share, raw counters) is embedded as the
# top-level "metrics" key. A failing probe only drops the key — the
# report stays valid JSON.

if(NOT DEFINED BENCH_BINARIES OR NOT DEFINED OUTPUT_JSON)
  message(STATUS "bench_smoke: BENCH_BINARIES/OUTPUT_JSON not set; no-op")
  return()
endif()

string(REPLACE "|" ";" BENCH_BINARIES "${BENCH_BINARIES}")

set(entries "")
foreach(bench_bin ${BENCH_BINARIES})
  get_filename_component(bench_name ${bench_bin} NAME)
  set(report ${OUTPUT_JSON}.${bench_name}.part.json)
  # Newer Google Benchmark (>= 1.8) wants an iteration/seconds suffix
  # ("0.01x"); 1.7 rejects it and wants a plain double. Try both.
  execute_process(
    COMMAND ${bench_bin}
            --benchmark_min_time=0.01x
            --benchmark_format=json
            --benchmark_out=${report}
            --benchmark_out_format=json
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    execute_process(
      COMMAND ${bench_bin}
              --benchmark_min_time=0.01
              --benchmark_format=json
              --benchmark_out=${report}
              --benchmark_out_format=json
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_VARIABLE err)
  endif()
  if(rc EQUAL 0 AND EXISTS ${report})
    file(READ ${report} content)
    string(APPEND entries
           "    {\"binary\": \"${bench_name}\", \"ok\": true,\n"
           "     \"report\": ${content}}")
  else()
    message(STATUS "bench_smoke: ${bench_name} failed (rc=${rc})")
    string(APPEND entries
           "    {\"binary\": \"${bench_name}\", \"ok\": false}")
  endif()
  string(APPEND entries ",\n")
  file(REMOVE ${report})
endforeach()

string(REGEX REPLACE ",\n$" "\n" entries "${entries}")

set(metrics_block "")
if(DEFINED METRICS_PROBE AND EXISTS ${METRICS_PROBE})
  set(metrics_json ${OUTPUT_JSON}.metrics.part.json)
  execute_process(
    COMMAND ${METRICS_PROBE} --out ${metrics_json}
    RESULT_VARIABLE probe_rc
    OUTPUT_QUIET ERROR_VARIABLE probe_err)
  if(probe_rc EQUAL 0 AND EXISTS ${metrics_json})
    file(READ ${metrics_json} metrics_content)
    string(STRIP "${metrics_content}" metrics_content)
    set(metrics_block ",\n  \"metrics\": ${metrics_content}")
  else()
    message(STATUS "bench_smoke: metrics probe failed (rc=${probe_rc})")
  endif()
  file(REMOVE ${metrics_json})
endif()

file(WRITE ${OUTPUT_JSON}
     "{\n  \"benchmarks\": [\n${entries}  ]${metrics_block}\n}\n")
message(STATUS "bench_smoke: wrote ${OUTPUT_JSON}")
