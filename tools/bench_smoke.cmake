# Runs every benchmark binary with a tiny min-time and merges the JSON
# reports into one BENCH_perf.json. Non-gating by design: a failing or
# missing benchmark is recorded in the report but never fails the
# script, so tier-1 ctest runs stay green while the perf trajectory is
# still captured per PR.
#
# Usage:
#   cmake -DBENCH_BINARIES="bin1;bin2" -DOUTPUT_JSON=out.json \
#         -P bench_smoke.cmake

if(NOT DEFINED BENCH_BINARIES OR NOT DEFINED OUTPUT_JSON)
  message(STATUS "bench_smoke: BENCH_BINARIES/OUTPUT_JSON not set; no-op")
  return()
endif()

string(REPLACE "|" ";" BENCH_BINARIES "${BENCH_BINARIES}")

set(entries "")
foreach(bench_bin ${BENCH_BINARIES})
  get_filename_component(bench_name ${bench_bin} NAME)
  set(report ${OUTPUT_JSON}.${bench_name}.part.json)
  # Newer Google Benchmark (>= 1.8) wants an iteration/seconds suffix
  # ("0.01x"); 1.7 rejects it and wants a plain double. Try both.
  execute_process(
    COMMAND ${bench_bin}
            --benchmark_min_time=0.01x
            --benchmark_format=json
            --benchmark_out=${report}
            --benchmark_out_format=json
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    execute_process(
      COMMAND ${bench_bin}
              --benchmark_min_time=0.01
              --benchmark_format=json
              --benchmark_out=${report}
              --benchmark_out_format=json
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_VARIABLE err)
  endif()
  if(rc EQUAL 0 AND EXISTS ${report})
    file(READ ${report} content)
    string(APPEND entries
           "    {\"binary\": \"${bench_name}\", \"ok\": true,\n"
           "     \"report\": ${content}}")
  else()
    message(STATUS "bench_smoke: ${bench_name} failed (rc=${rc})")
    string(APPEND entries
           "    {\"binary\": \"${bench_name}\", \"ok\": false}")
  endif()
  string(APPEND entries ",\n")
  file(REMOVE ${report})
endforeach()

string(REGEX REPLACE ",\n$" "\n" entries "${entries}")
file(WRITE ${OUTPUT_JSON} "{\n  \"benchmarks\": [\n${entries}  ]\n}\n")
message(STATUS "bench_smoke: wrote ${OUTPUT_JSON}")
