/**
 * @file
 * Example: the paper's progressive co-design flow (§1.2, §2.4).
 *
 * A domain specialist writes a computation in the ideal TLN
 * paradigm; the analog designer ships the gmc-tln extension; the
 * specialist then *selectively* rewrites parts of the computation to
 * use hardware types — same topology, progressively more analog
 * reality — and quantifies each nonideality's impact. The analysis
 * mirrors §2.4: Gm mismatch dominates Cint mismatch, so that is where
 * the analog designer should spend fidelity effort.
 */

#include <iostream>

#include "apps/experiments.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "support/table.h"

int
main()
{
    using namespace ark;
    namespace ptln = paradigms::tln;
    namespace exp = apps::experiments;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    const lang::Language &gmc = registry.language("gmc-tln");

    std::cout << "Step 1: the computation in the ideal paradigm\n";
    ptln::LineSpec ideal;
    ideal.sections = 10;
    dg::Graph idealLine = ptln::buildLine(tln, ideal);
    std::cout << "  built " << idealLine.numNodes() << "-node t-line in '"
              << idealLine.langName() << "'\n";

    std::cout << "\nStep 2: the same computation runs unchanged in the "
                 "hardware language\n";
    dg::Graph castLine = ptln::buildLine(gmc, ideal);
    exp::TlnTrace a = exp::fig4LinearTrace(tln);
    std::cout << "  gmc-tln reproduces the ideal dynamics (inheritance "
                 "guarantee, paper 4.1.1)\n";

    std::cout << "\nStep 3: selectively substitute hardware types and "
                 "measure each nonideality\n";
    const int trials = 40;
    auto cint = exp::fig4MismatchTraces(gmc, /*gmMismatch=*/false,
                                        trials);
    auto gm = exp::fig4MismatchTraces(gmc, /*gmMismatch=*/true, trials);
    exp::SpreadStats cintSpread =
        exp::spreadWithinWindow(cint, 1e-8, 3e-8);
    exp::SpreadStats gmSpread = exp::spreadWithinWindow(gm, 1e-8, 3e-8);

    support::Table table({"configuration", "types substituted",
                          "waveform spread (mean)"});
    table.addRow({"ideal", "-", "0"});
    table.addRow({"Cint mismatch", "Vm, Im",
                  std::to_string(cintSpread.meanRange)});
    table.addRow({"Gm mismatch", "Em",
                  std::to_string(gmSpread.meanRange)});
    table.print(std::cout);

    std::cout << "\nConclusion (paper 2.4): Gm mismatch produces "
              << gmSpread.meanRange / cintSpread.meanRange
              << "x the variation of Cint mismatch, so\n"
                 " (1) PUF architectures should harvest entropy from "
                 "Gm variation, and\n"
                 " (2) designers targeting *fidelity* should buy "
                 "matched transconductors first.\n";
    (void)castLine;
    (void)a;
    return 0;
}
