/**
 * @file
 * Example: solving max-cut with coupled oscillators (paper §7.2).
 *
 * Maps a graph onto anti-ferromagnetically coupled Kuramoto
 * oscillators with sub-harmonic injection locking, relaxes the
 * network, and reads the partition out of the binarized phases.
 */

#include <cstdio>
#include <iostream>
#include <numbers>

#include "compiler/compiler.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "sim/sim.h"
#include "validator/validator.h"

int
main()
{
    using namespace ark;
    namespace pobc = paradigms::obc;
    const double pi = std::numbers::pi;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &obc = registry.language("obc");

    // A 6-vertex graph: a 5-cycle plus a chord and a pendant.
    pobc::MaxcutInstance instance;
    instance.numVertices = 6;
    instance.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                      {4, 0}, {1, 3}, {4, 5}};

    pobc::MaxcutSpec spec;
    spec.initPhases = {0.3, 2.7, 1.4, 5.2, 4.0, 0.9};

    dg::Graph graph = pobc::buildMaxcut(obc, instance, spec);
    validator::validateOrThrow(graph, obc);
    compiler::OdeSystem system = compiler::compile(graph, obc);

    sim::SimOptions options;
    options.recordDt = 5e-10;
    sim::SimResult result = sim::simulate(system, 0.0, 5e-8, options);
    if (!result.ok()) {
        std::cerr << "simulation failed: " << result.failure->message
                  << "\n";
        return 1;
    }

    std::cout << "oscillator phases (in units of pi) over time:\n";
    std::printf("%-10s", "t (ns)");
    for (int v = 0; v < instance.numVertices; ++v)
        std::printf(" osc%-5d", v);
    std::printf("\n");
    for (double t = 0; t <= 5e-8; t += 1e-8) {
        std::printf("%-10.1f", t * 1e9);
        for (int v = 0; v < instance.numVertices; ++v) {
            double phase = result.trajectory.sampleAt(
                system.stateIndex(pobc::oscName(v), 0), t);
            std::printf(" %-8.3f", phase / pi);
        }
        std::printf("\n");
    }

    std::vector<double> finalPhases;
    for (int v = 0; v < instance.numVertices; ++v) {
        finalPhases.push_back(result.trajectory.state(
            result.trajectory.size() - 1)[static_cast<std::size_t>(
            system.stateIndex(pobc::oscName(v), 0))]);
    }
    auto partition = pobc::decodePartition(finalPhases, 0.1 * pi);
    if (!partition) {
        std::cout << "\nnetwork failed to synchronize\n";
        return 1;
    }

    std::cout << "\npartition: ";
    for (int side : *partition)
        std::cout << side;
    int cut = pobc::cutSize(instance, *partition);
    int best = pobc::bruteForceMaxCut(instance);
    std::cout << "\ncut size: " << cut << " (brute-force optimum: "
              << best << ")\n";
    std::cout << (cut == best ? "solved optimally by analog dynamics\n"
                              : "suboptimal local minimum\n");
    return cut == best ? 0 : 1;
}
