/**
 * @file
 * Quickstart: define an analog compute paradigm as an Ark DSL, write
 * a computation in it, validate, compile to ODEs, and simulate.
 *
 * The paradigm here is a tiny leaky-integrator network — the "hello
 * world" of dynamical-graph languages: nodes integrate weighted
 * contributions from their neighbours and leak toward zero.
 */

#include <iostream>

#include "compiler/compiler.h"
#include "lang/registry.h"
#include "sim/sim.h"
#include "validator/validator.h"

int
main()
{
    using namespace ark;

    // 1. Define the paradigm (a language) and a computation (a
    //    function) in Ark source.
    const std::string program = R"ARK(
        lang leaky {
            // One state variable per node; sum-aggregated dynamics.
            ntyp(1,sum) N {attr leak=real[0,10]};
            // Stateless input nodes carrying a waveform.
            ntyp(0,sum) Src {attr fn=lambd(t)};
            etyp W {attr w=real[-5,5]};

            // Neighbour contributions and the leak term.
            prod(e:W,s:N->t:N) t <= e.w*var(s);
            prod(e:W,s:Src->t:N) t <= e.w*s.fn(time);
            prod(e:W,s:N->s:N) s <= -s.leak*var(s);

            // Every node needs exactly one self (leak) edge.
            cstr N {acc[match(1,1,W,N),
                        match(0,inf,W,[N,Src]->N),
                        match(0,inf,W,N->[N])]}
        }

        // A two-stage filter: src -> a -> b.
        func two-stage (gain:real[0,5]) uses leaky {
            node src : Src;
            node a : N; node b : N;
            edge <src,a> in : W;
            edge <a,b> mid : W;
            edge <a,a> leak_a : W;
            edge <b,b> leak_b : W;
            set-attr src.fn = lambd(t): pulse(t, 0.2, 0.4);
            set-attr a.leak = 4.0; set-attr b.leak = 4.0;
            set-attr in.w = gain; set-attr mid.w = gain;
            set-attr leak_a.w = 0.0; set-attr leak_b.w = 0.0;
        }
    )ARK";

    lang::LanguageRegistry registry;
    registry.addProgram(program);

    // 2. Invoke the function to build a dynamical graph.
    dg::Graph graph =
        registry.invoke("two-stage", {expr::Value::real(2.0)});
    std::cout << graph.str() << "\n";

    // 3. Validate it against the language's rules.
    const lang::Language &leaky = registry.language("leaky");
    validator::validateOrThrow(graph, leaky);
    std::cout << "graph validates\n\n";

    // 4. Compile to differential equations.
    compiler::OdeSystem system = compiler::compile(graph, leaky);
    std::cout << "compiled equations:\n" << system.equationsStr()
              << "\n";

    // 5. Simulate the transient response.
    sim::SimOptions options;
    options.recordDt = 0.05;
    options.maxDt = 0.1; // resolve the 0.4-wide input pulse
    sim::SimResult result = sim::simulate(system, 0.0, 2.0, options);
    if (!result.ok()) {
        std::cerr << "simulation failed: " << result.failure->message
                  << "\n";
        return 1;
    }

    int a = system.stateIndex("a", 0);
    int b = system.stateIndex("b", 0);
    std::cout << "t       a        b\n";
    for (double t = 0.0; t <= 2.0; t += 0.2) {
        std::printf("%-7.2f %-8.4f %-8.4f\n", t,
                    result.trajectory.sampleAt(a, t),
                    result.trajectory.sampleAt(b, t));
    }
    std::cout << "\nthe pulse excites a, which drives b with a lag — "
                 "an analog two-stage filter.\n";
    return 0;
}
