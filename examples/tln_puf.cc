/**
 * @file
 * Example: the transmission-line PUF case study (paper §2).
 *
 * Builds a challenge-configurable branched t-line in the gmc-tln
 * design space, interrogates three simulated "fabricated chips" with
 * the same challenges, and prints their responses — device-unique
 * because each chip carries its own Gm mismatch.
 */

#include <iostream>

#include "apps/puf.h"
#include "paradigms/standard.h"

namespace {

std::string
bitsToString(const std::vector<std::uint8_t> &bits)
{
    std::string out;
    out.reserve(bits.size());
    for (std::uint8_t b : bits)
        out += b ? '1' : '0';
    return out;
}

} // namespace

int
main()
{
    using namespace ark;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmc = registry.language("gmc-tln");

    apps::PufDesign design;
    design.mainSections = 16;
    design.numBranches = 4;
    design.stubSections = 4;
    design.responseBits = 32;
    apps::TlnPuf puf(gmc, design);

    std::cout << "TLN PUF: " << design.mainSections
              << "-section line, " << design.numBranches
              << " switchable stubs, " << design.responseBits
              << "-bit responses\n\n";

    const std::uint32_t challenges[] = {0x0, 0x5, 0xF};
    for (std::uint32_t challenge : challenges) {
        std::cout << "challenge " << challenge << ":\n";
        for (std::uint64_t chip = 1; chip <= 3; ++chip) {
            auto response = puf.response(challenge, chip);
            std::cout << "  chip " << chip << ": "
                      << bitsToString(response) << "\n";
        }
    }

    std::cout << "\ninter-chip distances (challenge 5):\n";
    auto r1 = puf.response(5, 1);
    auto r2 = puf.response(5, 2);
    auto r3 = puf.response(5, 3);
    std::cout << "  chip1 vs chip2: " << apps::hammingFraction(r1, r2)
              << "\n  chip1 vs chip3: " << apps::hammingFraction(r1, r3)
              << "\n  chip2 vs chip3: " << apps::hammingFraction(r2, r3)
              << "\n";

    std::cout << "\nre-measurement stability of chip 1 under 2mV "
                 "noise:\n";
    auto noisy = puf.response(5, 1, 0.002, 1234);
    std::cout << "  intra-chip distance: "
              << apps::hammingFraction(r1, noisy) << "\n";
    std::cout << "\n(ideal PUF: inter-chip ~0.5, intra-chip ~0)\n";
    return 0;
}
