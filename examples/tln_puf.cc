/**
 * @file
 * Example: the transmission-line PUF case study (paper §2).
 *
 * Builds a challenge-configurable branched t-line in the gmc-tln
 * design space, interrogates three simulated "fabricated chips" with
 * the same challenges, and prints their responses — device-unique
 * because each chip carries its own Gm mismatch.
 *
 * `tln_puf --trace out.json` records the battery as a Chrome trace
 * (compile, lane-block, and cache spans; load in chrome://tracing or
 * Perfetto); `--metrics` dumps the engine telemetry counters to
 * stderr afterwards; `--ledger [out.json]` records per-instance
 * flight-recorder provenance (tier, lane width, block, steps) for
 * every ensemble the battery dispatches, written to the given file
 * or dumped to stderr; `--jit` serves the battery RHS from tier-5
 * native kernels (bit-identical responses; silently interpreted when
 * the host has no C toolchain).
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "apps/puf.h"
#include "engine/session.h"
#include "paradigms/standard.h"
#include "support/ledger.h"
#include "support/telemetry.h"

namespace {

std::string
bitsToString(const std::vector<std::uint8_t> &bits)
{
    std::string out;
    out.reserve(bits.size());
    for (std::uint8_t b : bits)
        out += b ? '1' : '0';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ark;

    bool metrics = false;
    bool jit = false;
    bool recordLedger = false;
    std::string ledgerPath;
    std::optional<telemetry::TraceSession> trace;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics") {
            metrics = true;
            telemetry::setMetricsEnabled(true);
        } else if (arg == "--trace" && i + 1 < argc) {
            trace.emplace(argv[++i]);
        } else if (arg == "--jit") {
            jit = true;
        } else if (arg == "--ledger") {
            recordLedger = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                ledgerPath = argv[++i];
        } else {
            std::cerr << "usage: tln_puf [--metrics] [--trace out.json]"
                         " [--jit] [--ledger [out.json]]\n";
            return 2;
        }
    }

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmc = registry.language("gmc-tln");

    apps::PufDesign design;
    design.mainSections = 16;
    design.numBranches = 4;
    design.stubSections = 4;
    design.responseBits = 32;
    design.jit = jit;
    // The session-level ledger captures every ensemble the battery
    // dispatches (results are bit-identical with and without it).
    telemetry::RunLedger ledger;
    engine::SessionOptions sessionOptions;
    if (recordLedger)
        sessionOptions.ledger = &ledger;
    apps::TlnPuf puf(gmc, design, engine::Session(sessionOptions));

    std::cout << "TLN PUF: " << design.mainSections
              << "-section line, " << design.numBranches
              << " switchable stubs, " << design.responseBits
              << "-bit responses\n\n";

    // The whole CRP block runs as one cached battery: each distinct
    // (challenge, chip) system compiles once through the engine's
    // artifact cache and all nine waveforms integrate in a single
    // ensemble dispatch.
    const std::vector<std::uint32_t> challenges = {0x0, 0x5, 0xF};
    const std::vector<std::uint64_t> chips = {1, 2, 3};
    auto crp = puf.responseMatrix(challenges, chips);
    for (std::size_t c = 0; c < challenges.size(); ++c) {
        std::cout << "challenge " << challenges[c] << ":\n";
        for (std::size_t chip = 0; chip < chips.size(); ++chip) {
            std::cout << "  chip " << chips[chip] << ": "
                      << bitsToString(crp[c][chip]) << "\n";
        }
    }

    std::cout << "\ninter-chip distances (challenge 5):\n";
    const auto &r1 = crp[1][0];
    const auto &r2 = crp[1][1];
    const auto &r3 = crp[1][2];
    std::cout << "  chip1 vs chip2: " << apps::hammingFraction(r1, r2)
              << "\n  chip1 vs chip3: " << apps::hammingFraction(r1, r3)
              << "\n  chip2 vs chip3: " << apps::hammingFraction(r2, r3)
              << "\n";

    std::cout << "\nre-measurement stability of chip 1 under 2mV "
                 "noise:\n";
    auto noisy = puf.response(5, 1, 0.002, 1234);
    std::cout << "  intra-chip distance: "
              << apps::hammingFraction(r1, noisy) << "\n";
    std::cout << "\n(ideal PUF: inter-chip ~0.5, intra-chip ~0)\n";

    if (metrics)
        std::cerr << puf.session().metricsSnapshot().str();
    if (recordLedger) {
        if (ledgerPath.empty()) {
            std::cerr << ledger.json() << "\n";
        } else {
            std::ofstream out(ledgerPath);
            if (!out) {
                std::cerr << "tln_puf: cannot write '" << ledgerPath
                          << "'\n";
                return 1;
            }
            out << ledger.json() << "\n";
            std::cerr << "tln_puf: ledger written to " << ledgerPath
                      << "\n";
        }
    }
    return 0;
}
