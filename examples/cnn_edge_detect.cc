/**
 * @file
 * Example: edge detection on a cellular nonlinear network (paper
 * §7.1). Builds a 16x16 reconfigurable CNN, programs the classic
 * EDGE template, and renders the analog computation's evolution.
 *
 * Optionally reads a binary PGM (P5) image path from argv[1]; images
 * larger than 32x32 are rejected to keep runtime interactive.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/experiments.h"
#include "apps/image.h"
#include "paradigms/standard.h"

int
main(int argc, char **argv)
{
    using namespace ark;
    namespace exp = apps::experiments;

    apps::Image input = apps::Image::letterT(16);
    if (argc > 1) {
        std::ifstream file(argv[1], std::ios::binary);
        if (!file) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        input = apps::Image::fromPgm(buffer.str()).binarized();
        if (input.width() > 32 || input.height() > 32) {
            std::cerr << "image too large (max 32x32)\n";
            return 1;
        }
    }

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &cnn = registry.language("cnn");

    paradigms::cnn::CnnSpec spec;
    spec.width = input.width();
    spec.height = input.height();

    std::cout << "input (" << input.width() << "x" << input.height()
              << "):\n" << input.ascii() << "\n";

    exp::CnnRun run = exp::runCnnEdgeDetect(
        cnn, spec, input, {0.0, 0.25, 0.5, 1.0, 2.0, 4.0});

    for (std::size_t f = 0; f < run.frames.size(); ++f) {
        std::cout << "t = " << run.frameTimes[f] << ":\n"
                  << run.frames[f].binarized().ascii() << "\n";
    }
    std::cout << "errors vs ground-truth edge map: "
              << run.outputErrors << "\n";
    std::cout << "converged: " << (run.converged ? "yes" : "no")
              << " (t = " << run.convergeTime << ")\n";
    return run.outputErrors == 0 ? 0 : 1;
}
