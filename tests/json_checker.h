#ifndef ARK_TESTS_JSON_CHECKER_H
#define ARK_TESTS_JSON_CHECKER_H

/**
 * @file
 * Minimal recursive-descent JSON syntax checker shared by the test
 * suite: accepts exactly the JSON grammar (objects, arrays, strings,
 * numbers, true/false/null). Used to round-trip-validate the Chrome
 * trace export, metrics snapshots, ledger dumps, and the stats
 * endpoint's JSON payload without a JSON library dependency.
 */

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace ark::testutil {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::string_view(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                ++pos_;
            }
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    value()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            if (consume('}'))
                return true;
            do {
                if (!string() || !consume(':') || !value())
                    return false;
            } while (consume(','));
            return consume('}');
        }
        if (c == '[') {
            ++pos_;
            if (consume(']'))
                return true;
            do {
                if (!value())
                    return false;
            } while (consume(','));
            return consume(']');
        }
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace ark::testutil

#endif // ARK_TESTS_JSON_CHECKER_H
