/**
 * @file
 * Tests for the lane-synchronized adaptive Dopri5 batch driver ("step
 * voting"): tolerance-level agreement with scalar Dopri5 on random
 * TLN/OBC/CNN ensembles, bit identity across thread counts, stiff-lane
 * voting, per-lane divergence retirement with block compaction and
 * scalar spill, ablation parity, and per-instance progress
 * monotonicity under lane retirement.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numbers>
#include <utility>
#include <vector>

#include "apps/puf.h"
#include "compiler/compiler.h"
#include "dg/graph.h"
#include "lang/registry.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using lang::GraphBuilder;
using sim::EnsembleOptions;
using sim::SimResult;

/** x'' = -w^2 x built through the full Ark pipeline. */
OdeSystem
oscillatorSystem(lang::LanguageRegistry &registry, double w)
{
    if (!registry.findLanguage("osc5")) {
        registry.addProgram(R"(
            lang osc5 {
                ntyp(2,sum) X {attr w2=real[0,100000],
                               init(0) real[-10,10],
                               init(1) real[-10,10]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.w2*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("osc5"), 0);
    builder.node("x", "X");
    builder.attr("x", "w2", w * w);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    builder.init("x", 1, 0.0);
    return compiler::compile(builder.take(), registry.language("osc5"));
}

/**
 * dx/dt = -sqrt(x): from x0 > 0 the state hits zero at t = 2 sqrt(x0)
 * and dips negative, so the RHS (and with it the Dopri5 error
 * estimate) goes NaN — the adaptive divergence-abort path.
 */
OdeSystem
drainSystem(lang::LanguageRegistry &registry)
{
    if (!registry.findLanguage("drain5")) {
        registry.addProgram(R"(
            lang drain5 {
                ntyp(1,sum) X {};
                etyp E {};
                prod(e:E,s:X->s:X) s <= 0-sqrt(var(s));
            }
        )");
    }
    GraphBuilder builder(registry.language("drain5"), 0);
    builder.node("x", "X");
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    return compiler::compile(builder.take(),
                             registry.language("drain5"));
}

void
expectIdenticalResults(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.rejectedSteps, b.rejectedSteps);
    EXPECT_EQ(a.ok(), b.ok());
    for (std::size_t s = 0; s < a.trajectory.size(); ++s) {
        EXPECT_EQ(a.trajectory.time(s), b.trajectory.time(s));
        auto stateA = a.trajectory.state(s);
        auto stateB = b.trajectory.state(s);
        ASSERT_EQ(stateA.size(), stateB.size());
        for (std::size_t i = 0; i < stateA.size(); ++i)
            EXPECT_EQ(stateA[i], stateB[i]) << "sample " << s;
    }
}

/**
 * Batched-vs-scalar agreement on one compiled system: N random
 * initial states integrated as a voting batch, as serial scalar
 * Dopri5 runs, and as a tight-tolerance reference. The voted grid
 * takes the minimum over per-lane controller steps, so every lane is
 * integrated at least as accurately as its own scalar run — the
 * batched solution must sit within `refFactor` x the configured
 * tolerance of the reference, and within the two paths' combined
 * drift allowance of the scalar run. Smooth systems (OBC, CNN) hold
 * refFactor = 10; pulse-driven TLN lines take a looser multiple
 * because a step straddling a pulse edge contributes an error the
 * smooth-order local control cannot see (cf. the SimOptions::maxDt
 * doc) — an artifact both adaptive paths share, with the batch
 * empirically the closer of the two to the reference.
 */
void
expectVotingAgreement(const OdeSystem &system, support::Rng &rng,
                      double t1, double stateScale,
                      double refFactor = 10.0)
{
    const std::size_t n = system.size();
    std::vector<std::vector<double>> initials;
    for (int inst = 0; inst < 6; ++inst) {
        std::vector<double> x0(n);
        for (std::size_t i = 0; i < n; ++i)
            x0[i] = rng.uniform(-stateScale, stateScale);
        initials.push_back(std::move(x0));
    }

    EnsembleOptions lane; // Dopri5 default
    lane.numThreads = 1;
    sim::SimOptions tight = lane.sim;
    tight.relTol = 1e-11;
    tight.absTol = 1e-14;
    std::vector<SimResult> batch =
        sim::simulateEnsemble(system, initials, 0.0, t1, lane);
    ASSERT_EQ(batch.size(), initials.size());
    for (std::size_t inst = 0; inst < initials.size(); ++inst) {
        SimResult serial =
            sim::simulate(system, initials[inst], 0.0, t1, lane.sim);
        SimResult reference =
            sim::simulate(system, initials[inst], 0.0, t1, tight);
        ASSERT_TRUE(batch[inst].ok());
        ASSERT_TRUE(serial.ok());
        ASSERT_TRUE(reference.ok());
        // Compare at the batch's own recorded sample times: the
        // batched value is then an exact solver state (no Hermite
        // interpolation on the tested side; the tight reference's
        // interpolation error is negligible at its step density).
        const std::size_t samples = batch[inst].trajectory.size();
        ASSERT_GT(samples, 1u);
        for (int pick = 0; pick <= 8; ++pick) {
            std::size_t s = samples - 1 -
                            (samples - 1) * static_cast<std::size_t>(pick) / 8;
            double t = batch[inst].trajectory.time(s);
            auto state = batch[inst].trajectory.state(s);
            for (std::size_t i = 0; i < n; ++i) {
                double a = state[i];
                double b = serial.trajectory.sampleAt(
                    static_cast<int>(i), t);
                double r = reference.trajectory.sampleAt(
                    static_cast<int>(i), t);
                double scale =
                    lane.sim.absTol +
                    lane.sim.relTol *
                        std::max({std::fabs(a), std::fabs(b),
                                  stateScale});
                // Batched global error stays a small multiple of the
                // configured tolerance.
                EXPECT_NEAR(a, r, refFactor * scale)
                    << "batch vs reference, instance " << inst
                    << " var " << i << " t=" << t;
                // Batch-vs-scalar gap is bounded by the batch's own
                // allowance plus however far the scalar run itself
                // drifted from truth (its global error is not bounded
                // by any fixed multiple of the local tolerance).
                EXPECT_NEAR(a, b, refFactor * scale + std::fabs(b - r))
                    << "batch vs scalar, instance " << inst << " var "
                    << i << " t=" << t;
            }
        }
    }
}

class VotingEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *VotingEquivalence::registry_ = nullptr;

TEST_P(VotingEquivalence, RandomTlnEnsemble)
{
    support::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(3, 16));
    spec.inductance = rng.uniform(0.5e-9, 2e-9);
    spec.capacitance = rng.uniform(0.5e-9, 2e-9);
    const lang::Language &tln = registry_->language("tln");
    OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    expectVotingAgreement(system, rng, 2e-8, 1.0, 25.0);
}

TEST_P(VotingEquivalence, RandomObcEnsemble)
{
    support::Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = static_cast<int>(rng.uniformInt(3, 6));
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            if (rng.bernoulli(0.6))
                instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(
            rng.uniform(0.0, 2.0 * std::numbers::pi));
    const lang::Language &obc = registry_->language("obc");
    OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    expectVotingAgreement(system, rng, 1e-8, 2.0);
}

TEST_P(VotingEquivalence, RandomCnnEnsemble)
{
    support::Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::cnn::CnnSpec spec;
    spec.width = static_cast<int>(rng.uniformInt(3, 5));
    spec.height = static_cast<int>(rng.uniformInt(3, 5));
    std::vector<double> input;
    for (int i = 0; i < spec.width * spec.height; ++i)
        input.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
    const lang::Language &cnn = registry_->language("cnn");
    OdeSystem system = compiler::compile(
        paradigms::cnn::buildCnn(cnn, spec, input), cnn);
    expectVotingAgreement(system, rng, 1e-8, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VotingEquivalence,
                         ::testing::Range(0, 4));

TEST(Dopri5BatchTest, BitIdenticalAcrossThreadCounts)
{
    // The voting sequence depends only on the block assignment, never
    // on scheduling: every thread count must produce byte-identical
    // batched results. 11 instances exercise a full 8-lane block plus
    // a padded 3-lane tail.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 3.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 11; ++i)
        initials.push_back({0.1 * (i + 1), -0.03 * i});

    EnsembleOptions options; // Dopri5 default, laneBatching on
    options.numThreads = 1;
    std::vector<SimResult> reference =
        sim::simulateEnsemble(system, initials, 0.0, 2.0, options);
    for (unsigned threads : {2u, 4u, 8u}) {
        options.numThreads = threads;
        std::vector<SimResult> batch =
            sim::simulateEnsemble(system, initials, 0.0, 2.0, options);
        ASSERT_EQ(batch.size(), reference.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            expectIdenticalResults(batch[i], reference[i]);
    }
}

TEST(Dopri5BatchTest, SingletonAdaptiveStaysScalar)
{
    // A one-instance batch has no lanes to vote with: it must take
    // the scalar path and match serial simulate() bit for bit.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0);
    EnsembleOptions options;
    std::vector<SimResult> batch = sim::simulateEnsemble(
        system, {{1.0, 0.0}}, 0.0, 1.0, options);
    SimResult serial =
        sim::simulate(system, {1.0, 0.0}, 0.0, 1.0, options.sim);
    ASSERT_EQ(batch.size(), 1u);
    expectIdenticalResults(batch[0], serial);
}

TEST(Dopri5BatchTest, StiffLaneSetsTheSharedPace)
{
    // Four oscillators sharing one structure, one of them 100x
    // stiffer: min-over-lanes voting must drive the whole block at
    // the stiff lane's step size (the relaxed lanes take far more
    // steps than they would alone), while every lane still meets its
    // own error test.
    // w = 1 would fold the `-w2 * q` multiply away entirely and land
    // the instance in a different structure class; every w here keeps
    // the multiply so all four share one instruction stream.
    lang::LanguageRegistry registry;
    std::vector<OdeSystem> systems;
    for (double w : {1.1, 1.4, 1.8, 200.0})
        systems.push_back(oscillatorSystem(registry, w));
    std::vector<const OdeSystem *> pointers;
    for (const OdeSystem &system : systems)
        pointers.push_back(&system);

    EnsembleOptions options;
    options.numThreads = 1;
    std::vector<SimResult> batch =
        sim::simulateEnsemble(pointers, 0.0, 1.0, options);
    ASSERT_EQ(batch.size(), 4u);
    SimResult serialSlow = sim::simulate(
        systems[0], systems[0].initialState(), 0.0, 1.0, options.sim);
    SimResult serialStiff = sim::simulate(
        systems[3], systems[3].initialState(), 0.0, 1.0, options.sim);
    for (const SimResult &result : batch)
        ASSERT_TRUE(result.ok());
    // All lanes share the voted grid...
    EXPECT_EQ(batch[0].steps, batch[3].steps);
    // ...which is much denser than the relaxed lane needs on its own
    // and no coarser than the stiff lane's serial grid (up to the
    // controller's reaction slack).
    EXPECT_GT(batch[0].steps, 4 * serialSlow.steps);
    EXPECT_GE(4 * batch[3].steps, serialStiff.steps);
    // And the relaxed lane is still accurate.
    EXPECT_NEAR(batch[0].trajectory.sampleAt(0, 1.0),
                serialSlow.trajectory.sampleAt(0, 1.0), 1e-4);
}

/** x'' = -w^2 x^3: amplitude-dependent stiffness, so the stiffest
 *  lane keeps failing proposed steps (charged to it alone) while its
 *  block-mates pass — the per-lane step-budget accounting fixture. */
OdeSystem
duffingSystem(lang::LanguageRegistry &registry, double w)
{
    if (!registry.findLanguage("duff5")) {
        registry.addProgram(R"(
            lang duff5 {
                ntyp(2,sum) X {attr w2=real[0,100000],
                               init(0) real[-10,10],
                               init(1) real[-10,10]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.w2*var(s)*var(s)*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("duff5"), 0);
    builder.node("x", "X");
    builder.attr("x", "w2", w * w);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    builder.init("x", 1, 0.0);
    return compiler::compile(builder.take(), registry.language("duff5"));
}

TEST(Dopri5BatchTest, BudgetExhaustionRetiresOnlyTheExhaustedLane)
{
    // Regression: an exhausted step budget on the voted lane path
    // used to throw SimError for the whole block. It must instead be
    // charged to the exhausted lane (steps + that lane's rejections)
    // as a structured BudgetExhausted failure while the healthy
    // lane-mates keep integrating to t1. One 100x-stiffer Duffing
    // lane accrues all the rejections in the block (~20 at these
    // tolerances; its mates none), so with the budget set between the
    // shared accepted-step count and the stiff lane's charged total,
    // only the stiff lane trips.
    lang::LanguageRegistry registry;
    std::vector<OdeSystem> systems;
    for (double w : {1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 200.0})
        systems.push_back(duffingSystem(registry, w));
    std::vector<const OdeSystem *> pointers;
    for (const OdeSystem &system : systems)
        pointers.push_back(&system);

    EnsembleOptions options;
    options.numThreads = 1;
    options.sim.maxSteps = 1000;
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    std::mutex m;
    options.progress = [&](std::size_t done, std::size_t total) {
        std::lock_guard lock(m);
        calls.emplace_back(done, total);
    };
    std::vector<SimResult> batch =
        sim::simulateEnsemble(pointers, 0.0, 1.0, options);
    ASSERT_EQ(batch.size(), 8u);

    for (std::size_t i = 0; i + 1 < batch.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << "instance " << i;
        EXPECT_NEAR(batch[i].trajectory.times().back(), 1.0, 1e-9);
    }
    const SimResult &stiff = batch.back();
    ASSERT_FALSE(stiff.ok());
    EXPECT_EQ(stiff.failure->reason, sim::AbortReason::BudgetExhausted);
    // The lane is charged its shared accepted steps plus its own
    // rejections, exactly like scalar simulate().
    EXPECT_GE(stiff.steps + stiff.rejectedSteps, options.sim.maxSteps);
    EXPECT_GT(stiff.rejectedSteps, 0u);
    EXPECT_LT(stiff.failure->time, 1.0);
    // The retirement surfaced through progress, which still reaches
    // the total exactly once.
    std::size_t prev = 0;
    for (auto [done, total] : calls) {
        EXPECT_EQ(total, batch.size());
        EXPECT_GT(done, prev);
        prev = done;
    }
    EXPECT_EQ(prev, batch.size());
}

TEST(Dopri5BatchTest, DivergingLanesRetireThroughCompactionAndSpill)
{
    // Eight instances of one drain system with staggered zero
    // crossings (t* = 2 sqrt(x0)): lanes retire as their error
    // estimates go NaN (divergence masking), the block compacts as
    // survivors dwindle, and the last lane spills to the scalar
    // continuation. Progress must tick per retirement, strictly
    // increasing, and reach the total exactly once.
    lang::LanguageRegistry registry;
    OdeSystem system = drainSystem(registry);
    const std::vector<double> x0s{0.0025, 0.01, 0.0225, 0.04, 0.0625,
                                  0.09,   0.1225, 9.0};
    std::vector<std::vector<double>> initials;
    for (double x0 : x0s)
        initials.push_back({x0});

    EnsembleOptions options;
    options.numThreads = 1;
    options.sim.maxSteps = 200'000;
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    std::mutex m;
    options.progress = [&](std::size_t done, std::size_t total) {
        std::lock_guard lock(m);
        calls.emplace_back(done, total);
    };
    std::vector<SimResult> batch =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, options);
    ASSERT_EQ(batch.size(), x0s.size());

    for (std::size_t i = 0; i + 1 < x0s.size(); ++i) {
        ASSERT_FALSE(batch[i].ok()) << "instance " << i;
        EXPECT_EQ(batch[i].failure->reason, sim::AbortReason::Diverged);
        EXPECT_LE(batch[i].failure->time, 1.0);
        // The trajectory keeps only pre-failure (finite) samples.
        for (std::size_t s = 0; s < batch[i].trajectory.size(); ++s)
            EXPECT_TRUE(
                std::isfinite(batch[i].trajectory.state(s)[0]));
    }
    const SimResult &survivor = batch.back();
    ASSERT_TRUE(survivor.ok());
    // x(t) = (sqrt(x0) - t/2)^2: the survivor stays well positive.
    EXPECT_NEAR(survivor.trajectory.sampleAt(0, 1.0), 6.25, 1e-3);

    // Retirements surface as strictly increasing progress that ends
    // exactly at the total; lanes retiring mid-block must report more
    // than one callback overall.
    ASSERT_GE(calls.size(), 2u);
    std::size_t prev = 0;
    for (auto [done, total] : calls) {
        EXPECT_EQ(total, x0s.size());
        EXPECT_GT(done, prev);
        prev = done;
    }
    EXPECT_EQ(prev, x0s.size());
}

TEST(Dopri5BatchTest, SurvivorsAlwaysRecordTheFinalSample)
{
    // Lane retirement near t1 must never eat the forced final record:
    // whenever a retirement triggers block compaction on the very
    // step that reaches t1, the survivors still get their t1 sample.
    // Sweep t1 across the divergers' blowup window with a record gate
    // so coarse that a skipped forced record is unmissable.
    // dx/dt = -sqrt(tc - time) goes NaN the moment a stage samples
    // past t = tc. With the diverger's deadline a sliver below t1,
    // only the final iteration's top stages cross it, so its lane
    // retires deterministically on the very step that reaches t1 —
    // and three lanes (width 4) make that retirement satisfy the
    // compaction threshold immediately. recordDt = 0.6 t1 gates the
    // final accepted step off, so only the forced end-of-run record
    // can produce the survivors' t1 sample.
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang deadline5 {
            ntyp(1,sum) X {attr tc=real[0,100]};
            etyp E {};
            prod(e:E,s:X->s:X) s <= 0-sqrt(s.tc-time);
        }
    )");
    auto deadlineSystem = [&](double tc) {
        GraphBuilder builder(registry.language("deadline5"), 0);
        builder.node("x", "X");
        builder.attr("x", "tc", tc);
        builder.edge("self", "E", "x", "x");
        builder.init("x", 0, 5.0);
        return compiler::compile(builder.take(),
                                 registry.language("deadline5"));
    };
    const double t1 = 1.0;
    std::vector<OdeSystem> systems;
    systems.push_back(deadlineSystem(t1 - 1e-9)); // retires on t1 step
    systems.push_back(deadlineSystem(100.0));
    systems.push_back(deadlineSystem(50.0));
    std::vector<const OdeSystem *> pointers;
    for (const OdeSystem &system : systems)
        pointers.push_back(&system);

    EnsembleOptions options;
    options.numThreads = 1;
    options.sim.recordDt = 0.6 * t1;
    std::vector<SimResult> batch =
        sim::simulateEnsemble(pointers, 0.0, t1, options);
    ASSERT_EQ(batch.size(), 3u);
    ASSERT_FALSE(batch[0].ok());
    EXPECT_EQ(batch[0].failure->reason, sim::AbortReason::Diverged);
    // The deadline lane held on until the step that lands t1.
    EXPECT_GT(batch[0].failure->time, 0.8 * t1);
    for (std::size_t i = 1; i < batch.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << "instance " << i;
        ASSERT_GT(batch[i].trajectory.size(), 0u);
        double last = batch[i].trajectory.times().back();
        EXPECT_NEAR(last, t1, 1e-9 * t1) << "instance " << i;
    }
}

TEST(Dopri5BatchTest, AblationMatchesSerialBitForBit)
{
    // laneBatching=false must reproduce the scalar per-instance
    // adaptive path exactly — the differential-testing anchor for the
    // voting driver.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 5; ++i)
        initials.push_back({0.2 * (i + 1), 0.1});
    EnsembleOptions options;
    options.laneBatching = false;
    for (unsigned threads : {1u, 4u}) {
        options.numThreads = threads;
        std::vector<SimResult> batch =
            sim::simulateEnsemble(system, initials, 0.0, 1.5, options);
        for (std::size_t i = 0; i < initials.size(); ++i) {
            SimResult serial = sim::simulate(system, initials[i], 0.0,
                                             1.5, options.sim);
            expectIdenticalResults(batch[i], serial);
        }
    }
}

TEST(Dopri5BatchTest, PufChipsVoteAndStayMoreAccurateThanScalar)
{
    // A real heterogeneous-parameter battery (shared circuit
    // structure, per-chip mismatch constants): the chips must merge
    // into one voting block — every member then shares the voted
    // accepted-step count — and each batched trajectory must sit no
    // farther from a tight reference than a small multiple of the
    // tolerance or the scalar adaptive path's own drift.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmcTln = registry.language("gmc-tln");
    apps::PufDesign design;
    design.mainSections = 8;
    design.numBranches = 2;
    design.stubSections = 2;
    design.simMethod = sim::Method::Dopri5;
    apps::TlnPuf puf(gmcTln, design);

    std::vector<OdeSystem> chips;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        dg::Graph graph = puf.buildGraph(2, seed);
        validator::validateOrThrow(graph, gmcTln);
        chips.push_back(compiler::compile(graph, gmcTln));
    }
    std::vector<const OdeSystem *> pointers;
    for (const OdeSystem &chip : chips)
        pointers.push_back(&chip);

    EnsembleOptions lane;
    lane.numThreads = 1;
    sim::SimOptions tight = lane.sim;
    tight.relTol = 1e-11;
    tight.absTol = 1e-14;
    std::vector<SimResult> batch = sim::simulateEnsemble(
        pointers, 0.0, design.windowEnd, lane);
    ASSERT_EQ(batch.size(), chips.size());
    for (const SimResult &result : batch) {
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.steps, batch.front().steps); // one voted grid
    }
    for (std::size_t c = 0; c < chips.size(); ++c) {
        SimResult serial = sim::simulate(
            chips[c], chips[c].initialState(), 0.0, design.windowEnd,
            lane.sim);
        SimResult reference = sim::simulate(
            chips[c], chips[c].initialState(), 0.0, design.windowEnd,
            tight);
        const auto &traj = batch[c].trajectory;
        double worstBatch = 0.0, worstScalar = 0.0;
        for (int pick = 0; pick <= 8; ++pick) {
            std::size_t s = (traj.size() - 1) *
                            static_cast<std::size_t>(pick) / 8;
            double t = traj.time(s);
            auto state = traj.state(s);
            for (std::size_t i = 0; i < state.size(); ++i) {
                double r = reference.trajectory.sampleAt(
                    static_cast<int>(i), t);
                worstBatch = std::max(worstBatch,
                                      std::fabs(state[i] - r));
                worstScalar = std::max(
                    worstScalar,
                    std::fabs(serial.trajectory.sampleAt(
                                  static_cast<int>(i), t) -
                              r));
            }
        }
        double scale = lane.sim.absTol + lane.sim.relTol * 1.0;
        EXPECT_LE(worstBatch, std::max(25.0 * scale, 2.0 * worstScalar))
            << "chip " << c << " batch drift " << worstBatch
            << " scalar drift " << worstScalar;
    }
}

TEST(Dopri5BatchTest, TapeFmaKeepsLaneScalarParity)
{
    // sim.tapeFma routes every driver (scalar, lane RK4, voting
    // Dopri5) through the FMA-contracted tape. Both executors call
    // std::fma per lane, so lane-vs-scalar bit identity must hold
    // under the flag exactly as it does for the plain tape.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = 5;
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(0.45 * v);
    const lang::Language &obc = registry.language("obc");
    OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    ASSERT_GT(system.fusedTapeFma().fmaContractions(), 0u);

    std::vector<std::vector<double>> initials;
    support::Rng rng(11);
    for (int inst = 0; inst < 4; ++inst) {
        std::vector<double> x0;
        for (std::size_t i = 0; i < system.size(); ++i)
            x0.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));
        initials.push_back(std::move(x0));
    }

    EnsembleOptions options;
    options.numThreads = 2;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-10;
    options.sim.tapeFma = true;
    EnsembleOptions scalar = options;
    scalar.laneBatching = false;
    std::vector<SimResult> lane =
        sim::simulateEnsemble(system, initials, 0.0, 1e-8, options);
    std::vector<SimResult> ablation =
        sim::simulateEnsemble(system, initials, 0.0, 1e-8, scalar);
    for (std::size_t i = 0; i < initials.size(); ++i) {
        expectIdenticalResults(lane[i], ablation[i]);
        SimResult serial = sim::simulate(system, initials[i], 0.0,
                                         1e-8, options.sim);
        expectIdenticalResults(lane[i], serial);
    }
}

TEST(Dopri5BatchTest, NonfiniteInitialLaneRetiresAtStepZero)
{
    // A NaN initial state must retire its lane before any stepping,
    // mirroring the scalar driver's step-0 structured failure, while
    // the remaining lanes integrate normally.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0);
    std::vector<std::vector<double>> initials{
        {1.0, 0.0},
        {std::numeric_limits<double>::quiet_NaN(), 0.0},
        {0.5, 0.2},
    };
    EnsembleOptions options;
    options.numThreads = 1;
    std::vector<SimResult> batch =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, options);
    ASSERT_FALSE(batch[1].ok());
    EXPECT_EQ(batch[1].failure->reason, sim::AbortReason::Diverged);
    EXPECT_EQ(batch[1].failure->step, 0u);
    EXPECT_EQ(batch[1].trajectory.size(), 0u);
    EXPECT_TRUE(batch[0].ok());
    EXPECT_TRUE(batch[2].ok());
}

} // namespace
