/**
 * @file
 * Tests for deterministic fault injection (support/faultinject.h) and
 * the engine::Session retry-with-degradation supervisor built on it:
 * every recovery path — lane fault -> scalar retry, sparse
 * SingularMatrix -> dense fallback, worker-task fault capture,
 * forced cache miss/eviction rebuild, budget and deadline retirement,
 * dt/tolerance degradation — fires on demand and lands bit-identical
 * (or tolerance-equivalent where the contract says so) to the
 * equivalent clean run, with RunReport accounting exactly.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <memory>
#include <vector>

#include "compiler/compiler.h"
#include "engine/cache.h"
#include "engine/session.h"
#include "lang/registry.h"
#include "sim/sim.h"
#include "spice/mna.h"
#include "spice/netlist.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "support/telemetry.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using engine::RunPolicy;
using engine::RunReport;
using engine::Session;
using lang::GraphBuilder;
using sim::EnsembleOptions;
using sim::SimResult;
using support::FaultInjector;
using support::FaultSite;
using support::SimError;

/** Every test starts and ends disarmed; sites are process-global. */
class FaultInjectTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::disarmAll(); }
    void TearDown() override { FaultInjector::disarmAll(); }
};

/** x'' = -w^2 x built through the full Ark pipeline. */
OdeSystem
oscillatorSystem(lang::LanguageRegistry &registry, double w)
{
    if (!registry.findLanguage("oscfi")) {
        registry.addProgram(R"(
            lang oscfi {
                ntyp(2,sum) X {attr w2=real[0,100000],
                               init(0) real[-10,10],
                               init(1) real[-10,10]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.w2*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("oscfi"), 0);
    builder.node("x", "X");
    builder.attr("x", "w2", w * w);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    builder.init("x", 1, 0.0);
    return compiler::compile(builder.take(), registry.language("oscfi"));
}

std::vector<engine::SystemPtr>
oscillatorBatch(lang::LanguageRegistry &registry, std::size_t count)
{
    std::vector<engine::SystemPtr> systems;
    for (std::size_t i = 0; i < count; ++i)
        systems.push_back(std::make_shared<const OdeSystem>(
            oscillatorSystem(registry, 2.0 + 0.1 * double(i))));
    return systems;
}

/** Driven RC cell: well-conditioned, one structure for every r. */
spice::Netlist
rcCell(double r)
{
    spice::Netlist netlist;
    int v = netlist.addNode("v");
    netlist.resistor("R", v, spice::kGround, r);
    netlist.capacitor("C", v, spice::kGround, 1e-9);
    netlist.currentSource("I", spice::kGround, v, 1e-3);
    return netlist;
}

void
expectIdenticalResults(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.ok(), b.ok());
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_EQ(a.steps, b.steps);
    for (std::size_t s = 0; s < a.trajectory.size(); ++s) {
        EXPECT_EQ(a.trajectory.time(s), b.trajectory.time(s));
        auto stateA = a.trajectory.state(s);
        auto stateB = b.trajectory.state(s);
        ASSERT_EQ(stateA.size(), stateB.size());
        for (std::size_t i = 0; i < stateA.size(); ++i)
            EXPECT_EQ(stateA[i], stateB[i]) << "sample " << s;
    }
}

void
expectIdenticalTransients(const spice::TransientResult &a,
                          const spice::TransientResult &b)
{
    ASSERT_EQ(a.ok(), b.ok());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a.time(s), b.time(s));
        auto stateA = a.state(s);
        auto stateB = b.state(s);
        for (std::size_t i = 0; i < stateA.size(); ++i)
            EXPECT_EQ(stateA[i], stateB[i]) << "sample " << s;
    }
}

TEST_F(FaultInjectTest, SiteCountsOccurrencesAndFiresWindow)
{
    // arm(site, skip, fires) fires occurrences [skip, skip + fires)
    // exactly; counters survive disarmAll until the next arm.
    FaultInjector::arm(FaultSite::WorkerTask, 2, 2);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(
            FaultInjector::shouldFire(FaultSite::WorkerTask));
    EXPECT_EQ(fired,
              (std::vector<bool>{false, false, true, true, false,
                                 false}));
    EXPECT_EQ(FaultInjector::seen(FaultSite::WorkerTask), 6u);
    EXPECT_EQ(FaultInjector::fired(FaultSite::WorkerTask), 2u);

    FaultInjector::disarmAll();
    // Disarmed calls neither fire nor count.
    EXPECT_FALSE(FaultInjector::shouldFire(FaultSite::WorkerTask));
    EXPECT_EQ(FaultInjector::seen(FaultSite::WorkerTask), 6u);
    // Re-arming resets the counters.
    FaultInjector::arm(FaultSite::WorkerTask, 0, 1);
    EXPECT_EQ(FaultInjector::seen(FaultSite::WorkerTask), 0u);
    EXPECT_TRUE(FaultInjector::shouldFire(FaultSite::WorkerTask));
    EXPECT_FALSE(FaultInjector::shouldFire(FaultSite::WorkerTask));
}

TEST_F(FaultInjectTest, LaneTapeFaultRecoversScalarBitIdentical)
{
    // One injected NaN in the first lane-tape evaluation retires lane
    // 0 as Diverged; the supervisor's scalar retry re-runs exactly
    // that instance and must land bit-identical to the clean run
    // (Rk4 lane and scalar paths are bit-identical by contract).
    lang::LanguageRegistry registry;
    std::vector<engine::SystemPtr> systems =
        oscillatorBatch(registry, 4);
    Session session;
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-3;
    options.sim.recordDt = 1e-2;
    options.numThreads = 1;
    std::vector<SimResult> clean =
        session.runEnsemble(systems, 0.0, 1.0, options);

    FaultInjector::arm(FaultSite::TapeNan, 0, 1);
    RunPolicy policy;
    policy.maxAttempts = 2;
    RunReport report;
    std::vector<SimResult> recovered = session.runEnsemble(
        systems, 0.0, 1.0, options, policy, &report);
    EXPECT_EQ(FaultInjector::fired(FaultSite::TapeNan), 1u);

    ASSERT_EQ(recovered.size(), clean.size());
    for (std::size_t i = 0; i < recovered.size(); ++i)
        expectIdenticalResults(recovered[i], clean[i]);

    EXPECT_EQ(report.instances, 4u);
    EXPECT_EQ(report.firstAttemptFailures, 1u);
    EXPECT_EQ(report.scalarRetries, 1u);
    EXPECT_EQ(report.relaxedRetries, 0u);
    EXPECT_EQ(report.recovered, 1u);
    EXPECT_EQ(report.unrecovered, 0u);
    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_EQ(report.records[0].index, 0u);
    EXPECT_EQ(report.records[0].attempts, 2);
    EXPECT_TRUE(report.records[0].recovered);
    ASSERT_EQ(report.records[0].actions.size(), 1u);
    EXPECT_EQ(report.records[0].actions[0],
              RunReport::Action::ScalarRetry);
}

TEST_F(FaultInjectTest, WorkerFaultIsStructuredAndRetryable)
{
    lang::LanguageRegistry registry;
    std::vector<engine::SystemPtr> systems =
        oscillatorBatch(registry, 4);
    Session session;
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-3;
    options.sim.recordDt = 1e-2;
    options.numThreads = 1;
    std::vector<SimResult> clean =
        session.runEnsemble(systems, 0.0, 1.0, options);

    // Historical contract: without structuredFaults the injected task
    // fault is rethrown after the batch drains.
    FaultInjector::arm(FaultSite::WorkerTask, 0, 1);
    EXPECT_THROW(session.runEnsemble(systems, 0.0, 1.0, options),
                 SimError);

    // With structuredFaults the same fault is per-instance data.
    FaultInjector::arm(FaultSite::WorkerTask, 0, 1);
    EnsembleOptions structured = options;
    structured.structuredFaults = true;
    std::vector<SimResult> faulted =
        session.runEnsemble(systems, 0.0, 1.0, structured);
    for (const SimResult &result : faulted) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.failure->reason, sim::AbortReason::Fault);
        EXPECT_NE(result.failure->message.find("worker task fault"),
                  std::string::npos);
    }

    // And the supervisor turns it into a full recovery: all four
    // block members retry scalar and land bit-identical to clean.
    FaultInjector::arm(FaultSite::WorkerTask, 0, 1);
    RunPolicy policy;
    policy.maxAttempts = 2;
    RunReport report;
    std::vector<SimResult> recovered = session.runEnsemble(
        systems, 0.0, 1.0, options, policy, &report);
    for (std::size_t i = 0; i < recovered.size(); ++i)
        expectIdenticalResults(recovered[i], clean[i]);
    EXPECT_EQ(report.firstAttemptFailures, 4u);
    EXPECT_EQ(report.scalarRetries, 4u);
    EXPECT_EQ(report.recovered, 4u);
    EXPECT_EQ(report.unrecovered, 0u);
}

TEST_F(FaultInjectTest, BudgetLadderDegradesDtThenRecovers)
{
    // Rk4 at dt = 2e-3 over [0, 1] needs 500 steps; a 400-step budget
    // exhausts it. Attempt 2 (pure scalar retry) hits the same
    // budget; attempt 3 doubles dt per the policy and completes. The
    // recovered result must be bit-identical to a clean run at the
    // degraded dt — the report says exactly which degradation
    // produced it.
    lang::LanguageRegistry registry;
    std::vector<engine::SystemPtr> systems =
        oscillatorBatch(registry, 1);
    Session session;
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 2e-3;
    options.sim.recordDt = 1e-2;
    options.sim.maxSteps = 400;
    options.numThreads = 1;

    RunPolicy policy;
    policy.maxAttempts = 3;
    policy.relaxOnRetry = true;
    policy.dtFactor = 2.0; // fixed-step degradation = coarser grid
    policy.tolFactor = 1.0;
    RunReport report;
    std::vector<SimResult> results = session.runEnsemble(
        systems, 0.0, 1.0, options, policy, &report);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok());

    sim::SimOptions degraded = options.sim;
    degraded.dt = 4e-3;
    SimResult reference = sim::simulate(
        *systems[0], systems[0]->initialState(), 0.0, 1.0, degraded);
    expectIdenticalResults(results[0], reference);

    EXPECT_EQ(report.firstAttemptFailures, 1u);
    EXPECT_EQ(report.scalarRetries, 1u);
    EXPECT_EQ(report.relaxedRetries, 1u);
    EXPECT_EQ(report.recovered, 1u);
    EXPECT_EQ(report.budgetHits, 0u); // final outcome is healthy
    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_EQ(report.records[0].attempts, 3);
    ASSERT_EQ(report.records[0].actions.size(), 2u);
    EXPECT_EQ(report.records[0].actions[0],
              RunReport::Action::ScalarRetry);
    EXPECT_EQ(report.records[0].actions[1],
              RunReport::Action::RelaxedRetry);
}

TEST_F(FaultInjectTest, UnrecoveredBudgetAccountsExactly)
{
    // With degradation disabled the retry hits the same budget: the
    // report must say two attempts, one scalar retry, zero recovered,
    // and one terminal BudgetExhausted.
    lang::LanguageRegistry registry;
    std::vector<engine::SystemPtr> systems =
        oscillatorBatch(registry, 1);
    Session session;
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 2e-3;
    options.sim.maxSteps = 400;
    options.numThreads = 1;

    RunPolicy policy;
    policy.maxAttempts = 2;
    RunReport report;
    std::vector<SimResult> results = session.runEnsemble(
        systems, 0.0, 1.0, options, policy, &report);
    ASSERT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].failure->reason,
              sim::AbortReason::BudgetExhausted);
    EXPECT_EQ(report.firstAttemptFailures, 1u);
    EXPECT_EQ(report.scalarRetries, 1u);
    EXPECT_EQ(report.recovered, 0u);
    EXPECT_EQ(report.unrecovered, 1u);
    EXPECT_EQ(report.budgetHits, 1u);
    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_EQ(report.records[0].attempts, 2);
    EXPECT_FALSE(report.records[0].recovered);
    EXPECT_FALSE(report.records[0].finalError.empty());
}

TEST_F(FaultInjectTest, DeadlineRetirementIsNeverRetried)
{
    lang::LanguageRegistry registry;
    std::vector<engine::SystemPtr> systems =
        oscillatorBatch(registry, 3);
    Session session;
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-3;
    options.numThreads = 1;
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::seconds(1);

    RunPolicy policy;
    policy.maxAttempts = 3;
    RunReport report;
    std::vector<SimResult> results = session.runEnsemble(
        systems, 0.0, 1.0, options, policy, &report);
    for (const SimResult &result : results) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.failure->reason,
                  sim::AbortReason::DeadlineExceeded);
    }
    EXPECT_EQ(report.firstAttemptFailures, 3u);
    EXPECT_EQ(report.deadlineHits, 3u);
    EXPECT_EQ(report.scalarRetries, 0u);
    EXPECT_EQ(report.relaxedRetries, 0u);
    EXPECT_EQ(report.unrecovered, 3u);
}

TEST_F(FaultInjectTest, SparsePivotFaultFallsBackDense)
{
    // Every sparse factorization is forced to fail, so each instance
    // reports SingularMatrix; the supervisor's dense fallback (which
    // never touches SparseLu) recovers all of them, matching the
    // clean sparse run at the documented sparse-vs-dense tolerance.
    std::vector<spice::Netlist> cells;
    for (double r : {0.5e3, 1.0e3, 2.0e3})
        cells.push_back(rcCell(r));
    std::vector<const spice::Netlist *> netlists;
    for (const spice::Netlist &cell : cells)
        netlists.push_back(&cell);

    engine::ArtifactCache cache;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    Session session(sessionOptions);
    const double t1 = 5e-6, dt = 1e-8;
    std::vector<spice::TransientResult> clean =
        session.runSweep(netlists, 0.0, t1, dt);
    ASSERT_TRUE(clean[0].ok());

    // Drop the steppers the clean sweep cached — a warm factor would
    // let the armed run skip factorization and never hit the site.
    cache.clear();
    FaultInjector::arm(FaultSite::SparseLuPivot, 0, 1u << 20);
    spice::TransientBatchOptions options;
    RunPolicy policy;
    policy.maxAttempts = 2;
    RunReport report;
    std::vector<spice::TransientResult> recovered = session.runSweep(
        netlists, 0.0, t1, dt, options, policy, &report);
    EXPECT_GT(FaultInjector::fired(FaultSite::SparseLuPivot), 0u);
    FaultInjector::disarmAll();

    ASSERT_EQ(recovered.size(), clean.size());
    for (std::size_t i = 0; i < recovered.size(); ++i) {
        ASSERT_TRUE(recovered[i].ok()) << "instance " << i;
        ASSERT_EQ(recovered[i].size(), clean[i].size());
        for (std::size_t s = 0; s < clean[i].size(); ++s) {
            auto a = recovered[i].state(s);
            auto b = clean[i].state(s);
            for (std::size_t k = 0; k < a.size(); ++k)
                EXPECT_NEAR(a[k], b[k],
                            1e-9 * (1.0 + std::abs(b[k])));
        }
    }
    EXPECT_EQ(report.firstAttemptFailures, 3u);
    EXPECT_EQ(report.denseFallbacks, 3u);
    EXPECT_EQ(report.recovered, 3u);
    EXPECT_EQ(report.unrecovered, 0u);
    for (const RunReport::InstanceRecord &record : report.records) {
        EXPECT_EQ(record.attempts, 2);
        ASSERT_EQ(record.actions.size(), 1u);
        EXPECT_EQ(record.actions[0], RunReport::Action::DenseFallback);
    }
}

TEST_F(FaultInjectTest, NonfiniteSweepRelaxedRetryAccountsExactly)
{
    // Negative-conductance cell: the underlying ODE is genuinely
    // unstable, so every relaxed-dt rung re-fails with
    // NonfiniteState. The ladder must consume exactly its budgeted
    // attempts, record each RelaxedRetry, and report the instance
    // unrecovered with its terminal failure — while a healthy
    // co-swept instance is untouched.
    spice::Netlist unstable;
    int n = unstable.addNode("n");
    unstable.capacitor("C", n, spice::kGround, 1.0);
    unstable.vccs("G", spice::kGround, n, n, spice::kGround, 1999.0);
    unstable.currentSource("I", spice::kGround, n, 1.0);
    spice::Netlist healthy = rcCell(1.0e3);
    std::vector<const spice::Netlist *> netlists{&unstable, &healthy};

    engine::ArtifactCache cache;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    Session session(sessionOptions);
    RunPolicy policy;
    policy.maxAttempts = 3;
    policy.relaxOnRetry = true; // dt halves per retry rung
    RunReport report;
    // Horizon sized so every rung overflows: the per-step trapezoidal
    // amplification (2/h+1999)/(2/h-1999) is ~3999 at dt=1e-3, ~3.0
    // at 5e-4, ~1.67 at 2.5e-4 — all cross 1e308 well before t=0.5.
    std::vector<spice::TransientResult> results = session.runSweep(
        netlists, 0.0, 0.5, 1e-3, spice::TransientBatchOptions{},
        policy, &report);
    ASSERT_EQ(results.size(), 2u);
    ASSERT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].failure->reason,
              spice::TransientAbort::NonfiniteState);
    EXPECT_TRUE(results[1].ok());

    EXPECT_EQ(report.instances, 2u);
    EXPECT_EQ(report.firstAttemptFailures, 1u);
    EXPECT_EQ(report.relaxedRetries, 2u);
    EXPECT_EQ(report.denseFallbacks, 0u);
    EXPECT_EQ(report.recovered, 0u);
    EXPECT_EQ(report.unrecovered, 1u);
    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_EQ(report.records[0].index, 0u);
    EXPECT_EQ(report.records[0].attempts, 3);
    ASSERT_EQ(report.records[0].actions.size(), 2u);
    EXPECT_EQ(report.records[0].actions[0],
              RunReport::Action::RelaxedRetry);
    EXPECT_EQ(report.records[0].actions[1],
              RunReport::Action::RelaxedRetry);
    EXPECT_FALSE(report.records[0].finalError.empty());
}

TEST_F(FaultInjectTest, ForcedCacheMissRebuildsBitIdentical)
{
    std::vector<spice::Netlist> cells;
    for (double r : {0.5e3, 1.0e3, 2.0e3, 4.0e3})
        cells.push_back(rcCell(r));
    std::vector<const spice::Netlist *> netlists;
    for (const spice::Netlist &cell : cells)
        netlists.push_back(&cell);

    engine::ArtifactCache cache;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    Session session(sessionOptions);
    const double t1 = 5e-6, dt = 1e-8;

    engine::SweepStats coldStats;
    std::vector<spice::TransientResult> cold =
        session.runSweep(netlists, 0.0, t1, dt,
                         spice::TransientBatchOptions{}, &coldStats);
    engine::SweepStats warmStats;
    std::vector<spice::TransientResult> warm =
        session.runSweep(netlists, 0.0, t1, dt,
                         spice::TransientBatchOptions{}, &warmStats);
    EXPECT_GT(warmStats.factorHits, 0u);

    // Force every lookup to miss: the sweep must rebuild all factors
    // and still report results bit-identical to the warm run.
    FaultInjector::arm(FaultSite::CacheMiss, 0, 1u << 20);
    engine::SweepStats forcedStats;
    std::vector<spice::TransientResult> forced =
        session.runSweep(netlists, 0.0, t1, dt,
                         spice::TransientBatchOptions{}, &forcedStats);
    EXPECT_GT(FaultInjector::fired(FaultSite::CacheMiss), 0u);
    FaultInjector::disarmAll();
    EXPECT_EQ(forcedStats.factorHits, 0u);
    EXPECT_EQ(forcedStats.factorMisses,
              coldStats.factorHits + coldStats.factorMisses);
    ASSERT_EQ(forced.size(), warm.size());
    for (std::size_t i = 0; i < forced.size(); ++i)
        expectIdenticalTransients(forced[i], warm[i]);
}

TEST_F(FaultInjectTest, ForcedEvictionKeepsResultsAndCounts)
{
    std::vector<spice::Netlist> cells;
    for (double r : {0.5e3, 1.0e3})
        cells.push_back(rcCell(r));
    std::vector<const spice::Netlist *> netlists;
    for (const spice::Netlist &cell : cells)
        netlists.push_back(&cell);

    engine::ArtifactCache cache;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    Session session(sessionOptions);
    const double t1 = 5e-6, dt = 1e-8;
    std::vector<spice::TransientResult> clean =
        session.runSweep(netlists, 0.0, t1, dt);
    cache.clear();

    // Every inserted stepper is evicted immediately: callers still
    // get their built artifact (results unchanged) but nothing stays
    // cached.
    FaultInjector::arm(FaultSite::CacheEvict, 0, 1u << 20);
    std::vector<spice::TransientResult> evicted =
        session.runSweep(netlists, 0.0, t1, dt);
    FaultInjector::disarmAll();
    ASSERT_EQ(evicted.size(), clean.size());
    for (std::size_t i = 0; i < evicted.size(); ++i)
        expectIdenticalTransients(evicted[i], clean[i]);
    engine::CacheStats stats = cache.stats();
    EXPECT_GT(stats.stepperEvictions, 0u);
    EXPECT_EQ(stats.steppersCached, 0u);
}

TEST_F(FaultInjectTest, ForcedMissCountsIdenticallyInEveryLedger)
{
    // Three ledgers account for cache misses: CacheStats member
    // tallies, the ark.cache.* registry counters, and SweepStats
    // factorMisses. A FaultInjector-forced miss is a miss in all
    // three — the increments sit at the same program points, so the
    // deltas must agree exactly.
    std::vector<spice::Netlist> cells;
    for (double r : {0.5e3, 1.0e3, 2.0e3})
        cells.push_back(rcCell(r));
    std::vector<const spice::Netlist *> netlists;
    for (const spice::Netlist &cell : cells)
        netlists.push_back(&cell);

    engine::ArtifactCache cache;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    Session session(sessionOptions);
    const double t1 = 5e-6, dt = 1e-8;

    // Warm the cache so every armed-run lookup would hit without the
    // fault — all misses below are forced ones.
    std::vector<spice::TransientResult> warm =
        session.runSweep(netlists, 0.0, t1, dt);

    const bool metricsWere = telemetry::metricsEnabled();
    telemetry::setMetricsEnabled(true);
    const telemetry::MetricsSnapshot before =
        telemetry::Registry::shared().snapshot();
    const engine::CacheStats statsBefore = cache.stats();

    FaultInjector::arm(FaultSite::CacheMiss, 0, 1u << 20);
    engine::SweepStats sweepStats;
    std::vector<spice::TransientResult> forced =
        session.runSweep(netlists, 0.0, t1, dt,
                         spice::TransientBatchOptions{}, &sweepStats);
    FaultInjector::disarmAll();

    const telemetry::MetricsSnapshot after =
        telemetry::Registry::shared().snapshot();
    const engine::CacheStats statsAfter = cache.stats();
    telemetry::setMetricsEnabled(metricsWere);

    const std::uint64_t statsDelta =
        statsAfter.stepperMisses - statsBefore.stepperMisses;
    const double registryDelta =
        after.value("ark.cache.stepper_misses") -
        before.value("ark.cache.stepper_misses");
    EXPECT_GT(statsDelta, 0u);
    EXPECT_EQ(registryDelta, static_cast<double>(statsDelta));
    EXPECT_EQ(sweepStats.factorMisses, statsDelta);
    EXPECT_EQ(sweepStats.factorHits, 0u);
    EXPECT_EQ(statsAfter.stepperHits, statsBefore.stepperHits);

    ASSERT_EQ(forced.size(), warm.size());
    for (std::size_t i = 0; i < forced.size(); ++i)
        expectIdenticalTransients(forced[i], warm[i]);
}

TEST_F(FaultInjectTest, DefaultPolicyIsBitIdenticalToPlainRun)
{
    // RunPolicy at defaults (maxAttempts 1) must not perturb
    // anything: same results as the unsupervised overload, zero
    // retry counters.
    lang::LanguageRegistry registry;
    std::vector<engine::SystemPtr> systems =
        oscillatorBatch(registry, 4);
    Session session;
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-3;
    options.sim.recordDt = 1e-2;
    std::vector<SimResult> plain =
        session.runEnsemble(systems, 0.0, 1.0, options);
    RunReport report;
    std::vector<SimResult> supervised = session.runEnsemble(
        systems, 0.0, 1.0, options, RunPolicy{}, &report);
    ASSERT_EQ(supervised.size(), plain.size());
    for (std::size_t i = 0; i < supervised.size(); ++i)
        expectIdenticalResults(supervised[i], plain[i]);
    EXPECT_EQ(report.firstAttemptFailures, 0u);
    EXPECT_EQ(report.scalarRetries + report.relaxedRetries +
                  report.denseFallbacks,
              0u);
}

} // namespace
