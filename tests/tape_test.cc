/**
 * @file
 * Tests for the tape compiler: opcode coverage, error handling, and
 * a randomized equivalence property against the interpreter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/fold.h"
#include "expr/tape.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ark;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::Tape;
using expr::UnOp;

double
tapeEval(const ExprPtr &e, const std::vector<double> &state, double t)
{
    Tape tape = Tape::compile(e);
    return tape.evalAlloc(state, t);
}

TEST(TapeTest, ConstantsAndState)
{
    EXPECT_DOUBLE_EQ(tapeEval(Expr::real(2.5), {}, 0), 2.5);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::stateVar(1), {7, 9}, 0), 9.0);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::time(), {}, 3.25), 3.25);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::boolean(true), {}, 0), 1.0);
}

TEST(TapeTest, ArithmeticOps)
{
    ExprPtr a = Expr::stateVar(0);
    ExprPtr b = Expr::stateVar(1);
    std::vector<double> s{6.0, 3.0};
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Add, a, b), s, 0), 9);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Sub, a, b), s, 0), 3);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Mul, a, b), s, 0), 18);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Div, a, b), s, 0), 2);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Pow, a, b), s, 0),
                     216);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::unary(UnOp::Neg, a), s, 0), -6);
}

TEST(TapeTest, ComparisonsProduceIndicators)
{
    ExprPtr a = Expr::stateVar(0);
    ExprPtr b = Expr::stateVar(1);
    std::vector<double> s{1.0, 2.0};
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Lt, a, b), s, 0), 1.0);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Ge, a, b), s, 0), 0.0);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Eq, a, a), s, 0), 1.0);
    EXPECT_DOUBLE_EQ(tapeEval(Expr::binary(BinOp::Ne, a, b), s, 0), 1.0);
}

TEST(TapeTest, LogicAndSelect)
{
    ExprPtr cond = Expr::binary(BinOp::Lt, Expr::stateVar(0),
                                Expr::stateVar(1));
    ExprPtr sel = Expr::ifThenElse(cond, Expr::real(10), Expr::real(20));
    EXPECT_DOUBLE_EQ(tapeEval(sel, {1, 2}, 0), 10.0);
    EXPECT_DOUBLE_EQ(tapeEval(sel, {2, 1}, 0), 20.0);
    ExprPtr land = Expr::binary(BinOp::And, cond,
                                Expr::boolean(true));
    EXPECT_DOUBLE_EQ(tapeEval(land, {1, 2}, 0), 1.0);
    ExprPtr lnot = Expr::unary(UnOp::Not, cond);
    EXPECT_DOUBLE_EQ(tapeEval(lnot, {1, 2}, 0), 0.0);
}

TEST(TapeTest, Builtins)
{
    ExprPtr x = Expr::stateVar(0);
    std::vector<double> s{0.5};
    EXPECT_DOUBLE_EQ(tapeEval(Expr::call("sin", {x}), s, 0),
                     std::sin(0.5));
    EXPECT_DOUBLE_EQ(tapeEval(Expr::call("sat", {x}), s, 0), 0.5);
    EXPECT_DOUBLE_EQ(
        tapeEval(Expr::call("pulse",
                            {Expr::time(), Expr::real(0),
                             Expr::real(1)}), s, 0.5),
        1.0);
    EXPECT_DOUBLE_EQ(
        tapeEval(Expr::call("max", {x, Expr::real(0.9)}), s, 0), 0.9);
}

TEST(TapeTest, MaxStateIndexTracksLoads)
{
    Tape t = Tape::compile(
        Expr::binary(BinOp::Add, Expr::stateVar(3), Expr::stateVar(7)));
    EXPECT_EQ(t.maxStateIndex(), 7);
    Tape stateless = Tape::compile(Expr::real(1));
    EXPECT_EQ(stateless.maxStateIndex(), -1);
}

TEST(TapeTest, RejectsUnresolvedNames)
{
    EXPECT_THROW(Tape::compile(Expr::var("x")), support::CompileError);
    EXPECT_THROW(Tape::compile(Expr::attr("s", "c")),
                 support::CompileError);
    EXPECT_THROW(Tape::compile(Expr::nodeVar("n")),
                 support::CompileError);
    EXPECT_THROW(Tape::compile(Expr::call("whoami", {})),
                 support::CompileError);
}

TEST(TapeTest, ScratchBufferReuse)
{
    Tape t = Tape::compile(Expr::binary(BinOp::Mul, Expr::stateVar(0),
                                        Expr::stateVar(0)));
    std::vector<double> regs;
    double s = 3.0;
    EXPECT_DOUBLE_EQ(t.eval(&s, 0, regs), 9.0);
    s = 4.0;
    EXPECT_DOUBLE_EQ(t.eval(&s, 0, regs), 16.0); // same buffer
    EXPECT_GE(static_cast<int>(regs.size()), t.numRegs());
}

/**
 * Property: a randomly generated closed numeric expression evaluates
 * identically through the interpreter and the tape.
 */
class RandomExprProperty : public ::testing::TestWithParam<int>
{
  protected:
    ExprPtr
    randomExpr(support::Rng &rng, int depth)
    {
        if (depth <= 0 || rng.bernoulli(0.3)) {
            switch (rng.uniformInt(0, 2)) {
              case 0:
                return Expr::real(rng.uniform(-3, 3));
              case 1:
                return Expr::stateVar(
                    static_cast<int>(rng.uniformInt(0, 3)));
              default:
                return Expr::time();
            }
        }
        switch (rng.uniformInt(0, 6)) {
          case 0:
            return Expr::binary(BinOp::Add, randomExpr(rng, depth - 1),
                                randomExpr(rng, depth - 1));
          case 1:
            return Expr::binary(BinOp::Sub, randomExpr(rng, depth - 1),
                                randomExpr(rng, depth - 1));
          case 2:
            return Expr::binary(BinOp::Mul, randomExpr(rng, depth - 1),
                                randomExpr(rng, depth - 1));
          case 3:
            return Expr::call("sin", {randomExpr(rng, depth - 1)});
          case 4:
            return Expr::call("sat", {randomExpr(rng, depth - 1)});
          case 5:
            return Expr::ifThenElse(
                Expr::binary(BinOp::Lt, randomExpr(rng, depth - 1),
                             randomExpr(rng, depth - 1)),
                randomExpr(rng, depth - 1),
                randomExpr(rng, depth - 1));
          default:
            return Expr::unary(UnOp::Neg, randomExpr(rng, depth - 1));
        }
    }
};

TEST_P(RandomExprProperty, TapeMatchesInterpreter)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 25; ++trial) {
        ExprPtr e = randomExpr(rng, 5);
        std::vector<double> state{rng.uniform(-2, 2), rng.uniform(-2, 2),
                                  rng.uniform(-2, 2),
                                  rng.uniform(-2, 2)};
        double t = rng.uniform(0, 1);

        expr::EvalContext ctx;
        ctx.time = t;
        ctx.lookupState = [&](int i) {
            return state[static_cast<std::size_t>(i)];
        };
        double interpreted = expr::evalReal(e, ctx);
        double taped = Tape::compile(e).evalAlloc(state, t);
        EXPECT_DOUBLE_EQ(interpreted, taped) << e->str();

        // Folding must preserve semantics too.
        double folded = Tape::compile(expr::fold(e)).evalAlloc(state, t);
        EXPECT_NEAR(folded, interpreted,
                    1e-12 * std::max(1.0, std::fabs(interpreted)))
            << e->str();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprProperty,
                         ::testing::Range(1, 9));

} // namespace
