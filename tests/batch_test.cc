/**
 * @file
 * Tests for the lane-parallel batch execution engine: lane-vs-scalar
 * bit identity on homogeneous and heterogeneous-parameter (PUF chip)
 * batteries, adaptive fallback, the persistent worker pool, progress
 * reporting, and cooperative cancellation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stop_token>
#include <thread>
#include <utility>
#include <vector>

#include "apps/puf.h"
#include "compiler/compiler.h"
#include "lang/registry.h"
#include "paradigms/standard.h"
#include "sim/batch.h"
#include "sim/sim.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using lang::GraphBuilder;
using sim::BatchRunner;
using sim::EnsembleOptions;
using sim::SimResult;

/** x'' = -w^2 x built through the full Ark pipeline. */
OdeSystem
oscillatorSystem(lang::LanguageRegistry &registry, double w)
{
    if (!registry.findLanguage("osc2")) {
        registry.addProgram(R"(
            lang osc2 {
                ntyp(2,sum) X {attr w2=real[0,1000],
                               init(0) real[-10,10],
                               init(1) real[-10,10]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.w2*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("osc2"), 0);
    builder.node("x", "X");
    builder.attr("x", "w2", w * w);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    builder.init("x", 1, 0.0);
    return compiler::compile(builder.take(), registry.language("osc2"));
}

void
expectIdenticalResults(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.ok(), b.ok());
    for (std::size_t s = 0; s < a.trajectory.size(); ++s) {
        EXPECT_EQ(a.trajectory.time(s), b.trajectory.time(s));
        auto stateA = a.trajectory.state(s);
        auto stateB = b.trajectory.state(s);
        ASSERT_EQ(stateA.size(), stateB.size());
        for (std::size_t i = 0; i < stateA.size(); ++i)
            EXPECT_EQ(stateA[i], stateB[i]) << "sample " << s;
    }
}

/** Rk4 ensemble options on a grid fine enough to be interesting. */
EnsembleOptions
rk4Options()
{
    EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-3;
    options.sim.recordDt = 1e-2;
    return options;
}

TEST(BatchTest, LaneBlocksMatchScalarPathBitForBit)
{
    // 11 instances: one full 8-lane block plus a padded tail block —
    // both partitions must reproduce the scalar path exactly, at
    // every thread count.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 11; ++i)
        initials.push_back({0.1 * (i + 1), -0.05 * i});

    EnsembleOptions lane = rk4Options();
    EnsembleOptions scalar = rk4Options();
    scalar.laneBatching = false;
    for (unsigned threads : {1u, 2u, 4u}) {
        lane.numThreads = threads;
        scalar.numThreads = threads;
        std::vector<SimResult> laneBatch = sim::simulateEnsemble(
            system, initials, 0.0, 2.0, lane);
        std::vector<SimResult> scalarBatch = sim::simulateEnsemble(
            system, initials, 0.0, 2.0, scalar);
        ASSERT_EQ(laneBatch.size(), initials.size());
        for (std::size_t i = 0; i < initials.size(); ++i) {
            expectIdenticalResults(laneBatch[i], scalarBatch[i]);
            SimResult serial = sim::simulate(system, initials[i], 0.0,
                                             2.0, lane.sim);
            expectIdenticalResults(laneBatch[i], serial);
        }
    }
}

TEST(BatchTest, HeterogeneousPufChipsLaneBatch)
{
    // A real heterogeneous-parameter battery: five fabricated chips
    // of one PUF design (shared structure, per-chip mismatch). The
    // lane path must agree with the forced-scalar path bit for bit.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmcTln = registry.language("gmc-tln");
    apps::PufDesign design;
    design.mainSections = 6;
    design.numBranches = 2;
    design.stubSections = 2;
    apps::TlnPuf puf(gmcTln, design);

    std::vector<OdeSystem> chips;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        dg::Graph graph = puf.buildGraph(2, seed);
        validator::validateOrThrow(graph, gmcTln);
        chips.push_back(compiler::compile(graph, gmcTln));
    }
    std::vector<const OdeSystem *> pointers;
    for (const OdeSystem &chip : chips)
        pointers.push_back(&chip);

    EnsembleOptions lane;
    lane.sim.method = sim::Method::Rk4;
    lane.sim.dt = design.windowEnd / 1000.0;
    lane.sim.recordDt = design.windowEnd / 500.0;
    EnsembleOptions scalar = lane;
    scalar.laneBatching = false;
    std::vector<SimResult> laneBatch = sim::simulateEnsemble(
        pointers, 0.0, design.windowEnd, lane);
    std::vector<SimResult> scalarBatch = sim::simulateEnsemble(
        pointers, 0.0, design.windowEnd, scalar);
    ASSERT_EQ(laneBatch.size(), chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i)
        expectIdenticalResults(laneBatch[i], scalarBatch[i]);
}

TEST(BatchTest, AdaptiveBatchesLaneBatchAtToleranceLevel)
{
    // Dopri5 batches now run the lane-synchronized step-voting driver:
    // the shared grid makes results tolerance-level equivalent to the
    // serial adaptive runs (every accepted step passed every lane's
    // error test), while the laneBatching=false ablation still
    // reproduces serial simulate() bit for bit. Deeper adaptive-batch
    // coverage (thread-count bit identity, retirement, voting) lives
    // in dopri5_batch_test.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 1.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 5; ++i)
        initials.push_back({1.0 + 0.1 * i, 0.0});
    EnsembleOptions lane; // Dopri5 default, laneBatching on
    lane.numThreads = 2;
    EnsembleOptions scalar = lane;
    scalar.laneBatching = false;
    std::vector<SimResult> batch =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, lane);
    std::vector<SimResult> ablation =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, scalar);
    for (std::size_t i = 0; i < initials.size(); ++i) {
        SimResult serial =
            sim::simulate(system, initials[i], 0.0, 1.0, lane.sim);
        expectIdenticalResults(ablation[i], serial);
        ASSERT_TRUE(batch[i].ok());
        // Shared-grid solution vs per-instance adaptive solution: the
        // amplitude is O(1), so a few units of relTol bounds the gap.
        for (double t : {0.25, 0.5, 1.0}) {
            EXPECT_NEAR(batch[i].trajectory.sampleAt(0, t),
                        serial.trajectory.sampleAt(0, t),
                        1e-4)
                << "instance " << i << " at t=" << t;
        }
    }
}

TEST(BatchTest, ProgressReportsEveryInstanceOnce)
{
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 3.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 9; ++i)
        initials.push_back({0.5, 0.1 * i});

    for (bool lanes : {true, false}) {
        EnsembleOptions options = rk4Options();
        options.laneBatching = lanes;
        options.numThreads = 2;
        std::vector<std::pair<std::size_t, std::size_t>> calls;
        std::mutex m;
        options.progress = [&](std::size_t done, std::size_t total) {
            std::lock_guard lock(m);
            calls.emplace_back(done, total);
        };
        sim::simulateEnsemble(system, initials, 0.0, 0.5, options);
        ASSERT_FALSE(calls.empty());
        std::size_t prev = 0;
        for (auto [done, total] : calls) {
            EXPECT_EQ(total, initials.size());
            EXPECT_GT(done, prev); // strictly increasing
            prev = done;
        }
        EXPECT_EQ(prev, initials.size());
    }
}

TEST(BatchTest, PreTriggeredStopCancelsEveryInstance)
{
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 3.0);
    std::vector<std::vector<double>> initials(6, {1.0, 0.0});
    std::stop_source source;
    source.request_stop();
    for (bool lanes : {true, false}) {
        EnsembleOptions options = rk4Options();
        options.laneBatching = lanes;
        options.stop = source.get_token();
        std::vector<SimResult> batch = sim::simulateEnsemble(
            system, initials, 0.0, 1.0, options);
        ASSERT_EQ(batch.size(), initials.size());
        for (const SimResult &result : batch) {
            ASSERT_FALSE(result.ok());
            EXPECT_EQ(result.failure->reason,
                      sim::AbortReason::Cancelled);
            EXPECT_EQ(result.trajectory.size(), 0u);
        }
    }
}

TEST(BatchTest, StopRequestedMidBatchCancelsTheRest)
{
    // Serial execution (1 thread) makes the cut deterministic: the
    // progress callback fires after the first job and stops the rest.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 3.0);
    std::vector<std::vector<double>> initials(4, {1.0, 0.0});
    EnsembleOptions options = rk4Options();
    options.laneBatching = false; // one job per instance
    options.numThreads = 1;
    std::stop_source source;
    options.stop = source.get_token();
    options.progress = [&](std::size_t done, std::size_t) {
        if (done >= 1)
            source.request_stop();
    };
    std::vector<SimResult> batch =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, options);
    EXPECT_TRUE(batch[0].ok());
    for (std::size_t i = 1; i < batch.size(); ++i) {
        ASSERT_FALSE(batch[i].ok()) << "instance " << i;
        EXPECT_EQ(batch[i].failure->reason,
                  sim::AbortReason::Cancelled);
    }
}

TEST(BatchTest, ExpiredDeadlineRetiresEveryInstanceStructurally)
{
    // A deadline already in the past must skip every instance with a
    // DeadlineExceeded failure — no throw, no samples — on the lane
    // and scalar paths alike.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 3.0);
    std::vector<std::vector<double>> initials(6, {1.0, 0.0});
    for (bool lanes : {true, false}) {
        EnsembleOptions options = rk4Options();
        options.laneBatching = lanes;
        options.deadline = std::chrono::steady_clock::now() -
                           std::chrono::seconds(1);
        std::vector<SimResult> batch = sim::simulateEnsemble(
            system, initials, 0.0, 1.0, options);
        ASSERT_EQ(batch.size(), initials.size());
        for (const SimResult &result : batch) {
            ASSERT_FALSE(result.ok());
            EXPECT_EQ(result.failure->reason,
                      sim::AbortReason::DeadlineExceeded);
            EXPECT_EQ(result.trajectory.size(), 0u);
        }
    }
}

TEST(BatchTest, FarFutureDeadlineLeavesResultsBitIdentical)
{
    // A deadline nothing reaches must not perturb the computation:
    // results stay bit-identical to the unbounded run, and progress
    // stays monotone to the total.
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 3.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 6; ++i)
        initials.push_back({1.0 + 0.1 * i, 0.0});

    EnsembleOptions plain = rk4Options();
    std::vector<SimResult> unbounded =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, plain);

    EnsembleOptions bounded = rk4Options();
    bounded.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(10);
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    std::mutex m;
    bounded.progress = [&](std::size_t done, std::size_t total) {
        std::lock_guard lock(m);
        calls.emplace_back(done, total);
    };
    std::vector<SimResult> deadlined =
        sim::simulateEnsemble(system, initials, 0.0, 1.0, bounded);

    ASSERT_EQ(deadlined.size(), unbounded.size());
    for (std::size_t i = 0; i < deadlined.size(); ++i)
        expectIdenticalResults(deadlined[i], unbounded[i]);
    std::size_t prev = 0;
    for (auto [done, total] : calls) {
        EXPECT_EQ(total, initials.size());
        EXPECT_GT(done, prev);
        prev = done;
    }
    EXPECT_EQ(prev, initials.size());
}

TEST(BatchTest, PersistentPoolIsReusedAcrossRuns)
{
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0);
    std::vector<std::vector<double>> initials(4, {1.0, 0.0});
    BatchRunner runner;
    EnsembleOptions options = rk4Options();
    // Scalar jobs (one per instance) so the batch actually needs the
    // requested concurrency — a single lane block would run serially.
    options.laneBatching = false;
    options.numThreads = 3;
    EXPECT_EQ(runner.poolThreads(), 0u);
    std::vector<SimResult> first =
        runner.run(system, initials, 0.0, 0.5, options);
    // numThreads=3 -> caller + 2 pool workers, parked between runs.
    EXPECT_EQ(runner.poolThreads(), 2u);
    std::vector<SimResult> second =
        runner.run(system, initials, 0.0, 0.5, options);
    EXPECT_EQ(runner.poolThreads(), 2u);
    for (std::size_t i = 0; i < initials.size(); ++i)
        expectIdenticalResults(first[i], second[i]);
}

TEST(BatchTest, ConcurrentCallersShareOneRunnerSafely)
{
    // Two threads drive the same runner at once; run() serializes
    // whole batches internally, so both must get exactly the serial
    // results (no cross-batch index bleed, no lost jobs).
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0);
    std::vector<std::vector<double>> initialsA(5, {1.0, 0.0});
    std::vector<std::vector<double>> initialsB(5, {0.5, 0.25});
    BatchRunner runner;
    EnsembleOptions options = rk4Options();
    options.laneBatching = false; // many small jobs: max interleaving
    options.numThreads = 2;

    std::vector<SimResult> a, b;
    std::thread threadA([&] {
        a = runner.run(system, initialsA, 0.0, 1.0, options);
    });
    std::thread threadB([&] {
        b = runner.run(system, initialsB, 0.0, 1.0, options);
    });
    threadA.join();
    threadB.join();
    ASSERT_EQ(a.size(), initialsA.size());
    ASSERT_EQ(b.size(), initialsB.size());
    SimResult serialA =
        sim::simulate(system, initialsA[0], 0.0, 1.0, options.sim);
    SimResult serialB =
        sim::simulate(system, initialsB[0], 0.0, 1.0, options.sim);
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdenticalResults(a[i], serialA);
    for (std::size_t i = 0; i < b.size(); ++i)
        expectIdenticalResults(b[i], serialB);
}

TEST(BatchTest, MixedStructureBatterySplitsIntoBlocks)
{
    // Two different system structures interleaved: the group-by-
    // structure partition must lane-batch each class (oscillators in
    // one block, decays in another) despite the interleaving, and
    // everything must still match its serial result positionally.
    lang::LanguageRegistry registry;
    OdeSystem osc = oscillatorSystem(registry, 2.0);
    registry.addProgram(R"(
        lang decay3 {
            ntyp(1,sum) X {attr k=real[0,100]};
            etyp E {};
            prod(e:E,s:X->s:X) s <= -s.k*var(s);
        }
    )");
    GraphBuilder builder(registry.language("decay3"), 0);
    builder.node("x", "X");
    builder.attr("x", "k", 2.0);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    OdeSystem decay = compiler::compile(builder.take(),
                                        registry.language("decay3"));

    std::vector<const OdeSystem *> pointers{&osc, &decay, &osc, &decay,
                                            &osc};
    EnsembleOptions options = rk4Options();
    std::vector<SimResult> batch =
        sim::simulateEnsemble(pointers, 0.0, 1.0, options);
    ASSERT_EQ(batch.size(), pointers.size());
    for (std::size_t i = 0; i < pointers.size(); ++i) {
        SimResult serial = sim::simulate(
            *pointers[i], pointers[i]->initialState(), 0.0, 1.0,
            options.sim);
        expectIdenticalResults(batch[i], serial);
    }
}

TEST(BatchTest, ParallelForRunsEveryIndexExactlyOnce)
{
    BatchRunner runner;
    for (unsigned threads : {1u, 3u}) {
        for (std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{64}}) {
            std::vector<std::atomic<int>> hits(count);
            runner.parallelFor(count, threads, [&](std::size_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::size_t i = 0; i < count; ++i)
                EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        }
    }
    // threads > count degenerates gracefully; pool stays capped.
    std::atomic<int> total{0};
    runner.parallelFor(2, 16, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 2);
    EXPECT_LE(runner.poolThreads(), 15u);
}

} // namespace
