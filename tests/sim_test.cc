/**
 * @file
 * Tests for the ODE simulation engine against closed-form solutions:
 * exponential decay, harmonic oscillation (order-2 nodes), driven
 * systems, method agreement, steady-state detection, trajectory
 * sampling, and failure modes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "compiler/compiler.h"
#include "lang/func.h"
#include "lang/registry.h"
#include "sim/sim.h"
#include "support/error.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using lang::GraphBuilder;
using sim::Method;
using sim::SimOptions;
using sim::SimResult;
using support::SimError;

/** dx/dt = -k x built through the full Ark pipeline. */
OdeSystem
decaySystem(lang::LanguageRegistry &registry, double k, double x0)
{
    if (!registry.findLanguage("decay")) {
        registry.addProgram(R"(
            lang decay {
                ntyp(1,sum) X {attr k=real[0,100]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.k*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("decay"), 0);
    builder.node("x", "X");
    builder.attr("x", "k", k);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, x0);
    return compiler::compile(builder.take(),
                             registry.language("decay"));
}

/** x'' = -w^2 x (order-2 node) — exact solution cos(w t). */
OdeSystem
oscillatorSystem(lang::LanguageRegistry &registry, double w)
{
    if (!registry.findLanguage("osc2")) {
        registry.addProgram(R"(
            lang osc2 {
                ntyp(2,sum) X {attr w2=real[0,1000],
                               init(0) real[-10,10],
                               init(1) real[-10,10]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.w2*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("osc2"), 0);
    builder.node("x", "X");
    builder.attr("x", "w2", w * w);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    builder.init("x", 1, 0.0);
    return compiler::compile(builder.take(), registry.language("osc2"));
}

class SimMethodTest : public ::testing::TestWithParam<Method>
{
};

TEST_P(SimMethodTest, ExponentialDecayMatchesAnalytic)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 2.0, 5.0);
    SimOptions options;
    options.method = GetParam();
    options.dt = 1e-3;
    SimResult result = sim::simulate(system, 0.0, 3.0, options);
    for (double t : {0.5, 1.0, 2.0, 3.0}) {
        EXPECT_NEAR(result.trajectory.sampleAt(0, t),
                    5.0 * std::exp(-2.0 * t), 1e-4)
            << "t=" << t;
    }
}

TEST_P(SimMethodTest, HarmonicOscillatorPreservesAmplitude)
{
    lang::LanguageRegistry registry;
    OdeSystem system = oscillatorSystem(registry, 2.0 * std::numbers::pi);
    SimOptions options;
    options.method = GetParam();
    options.dt = 1e-4;
    options.relTol = 1e-9;
    options.absTol = 1e-12;
    SimResult result = sim::simulate(system, 0.0, 3.0, options);
    // x(t) = cos(2 pi t): period 1, amplitude 1.
    EXPECT_NEAR(result.trajectory.sampleAt(0, 1.0), 1.0, 1e-3);
    EXPECT_NEAR(result.trajectory.sampleAt(0, 1.5), -1.0, 1e-3);
    EXPECT_NEAR(result.trajectory.sampleAt(0, 2.25), 0.0, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Methods, SimMethodTest,
                         ::testing::Values(Method::Rk4, Method::Dopri5),
                         [](const auto &info) {
                             return info.param == Method::Rk4
                                        ? "Rk4"
                                        : "Dopri5";
                         });

TEST(SimTest, MethodsAgreeOnSmoothSystem)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    SimOptions rk4;
    rk4.method = Method::Rk4;
    rk4.dt = 1e-3;
    SimOptions dp;
    dp.method = Method::Dopri5;
    dp.relTol = 1e-9;
    dp.absTol = 1e-12;
    SimResult a = sim::simulate(system, 0.0, 2.0, rk4);
    SimResult b = sim::simulate(system, 0.0, 2.0, dp);
    for (double t : {0.25, 0.5, 1.0, 1.75}) {
        EXPECT_NEAR(a.trajectory.sampleAt(0, t),
                    b.trajectory.sampleAt(0, t), 1e-6);
    }
    // The adaptive method should use far fewer steps.
    EXPECT_LT(b.steps, a.steps / 5);
}

TEST(SimTest, AdaptiveStepsConcentrateAtTransients)
{
    // A stiff-ish pulse-driven node: steps shrink during the pulse.
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang drv {
            ntyp(1,sum) X {};
            ntyp(0,sum) S {attr fn=lambd(a0)};
            etyp E {};
            prod(e:E,s:S->t:X) t <= s.fn(time) - var(t);
        }
    )");
    GraphBuilder builder(registry.language("drv"), 0);
    builder.node("s", "S");
    builder.node("x", "X");
    expr::Lambda pulse{{"a0"},
                       expr::Expr::call("pulse",
                                        {expr::Expr::var("a0"),
                                         expr::Expr::real(1.0),
                                         expr::Expr::real(0.1)})};
    builder.attr("s", "fn", expr::Value::function(pulse));
    builder.edge("e", "E", "s", "x");
    OdeSystem system =
        compiler::compile(builder.take(), registry.language("drv"));
    // maxDt must bound steps below the pulse width, otherwise the
    // stepper can clear the pulse without sampling it (see SimOptions).
    SimOptions options;
    options.maxDt = 0.05;
    SimResult result = sim::simulate(system, 0.0, 3.0, options);
    // The response must show the pulse: x rises after t=1 then decays.
    EXPECT_LT(result.trajectory.sampleAt(0, 0.9), 0.01);
    EXPECT_GT(result.trajectory.sampleAt(0, 1.1), 0.05);
    EXPECT_LT(result.trajectory.sampleAt(0, 3.0),
              result.trajectory.sampleAt(0, 1.11));
    // Step density: more accepted steps land inside [1.0, 1.2] than in
    // the equally-long quiet window [0.5, 0.7].
    int busy = 0, quiet = 0;
    for (double t : result.trajectory.times()) {
        busy += t >= 1.0 && t < 1.2;
        quiet += t >= 0.5 && t < 0.7;
    }
    EXPECT_GT(busy, quiet);
}

TEST(SimTest, RecordStrideLimitsSamples)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    SimOptions options;
    options.method = Method::Rk4;
    options.dt = 1e-3;
    options.recordDt = 0.1;
    SimResult result = sim::simulate(system, 0.0, 1.0, options);
    EXPECT_LE(result.trajectory.size(), 13u);
    EXPECT_GE(result.trajectory.size(), 10u);
}

TEST(SimTest, TrajectoryInterpolation)
{
    sim::Trajectory traj;
    traj.addSample(0.0, {0.0});
    traj.addSample(1.0, {10.0});
    traj.addSample(2.0, {30.0});
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 1.5), 20.0);
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, -1.0), 0.0);  // clamped
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 99.0), 30.0); // clamped
    auto grid = traj.resample(0, 0.0, 2.0, 5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_DOUBLE_EQ(grid[2], 10.0);
    auto series = traj.series(0);
    EXPECT_EQ(series.size(), 3u);
}

TEST(SimTest, TrajectoryDerivInvariantSurvivesMixedSamples)
{
    // y = t^2 has slope 2t; with recorded derivatives sampleAt is
    // cubic-Hermite-exact for a quadratic.
    sim::Trajectory traj;
    std::vector<double> d0{0.0}, d1{2.0}, d2{4.0};
    traj.addSample(0.0, {0.0}, &d0);
    traj.addSample(1.0, {1.0}, &d1);
    EXPECT_TRUE(traj.hasDerivs());
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 0.5), 0.25);

    // A deriv-less sample must drop Hermite data for the whole
    // trajectory: stale slopes on the earlier span would otherwise
    // keep masquerading as valid.
    traj.addSample(2.0, {4.0});
    EXPECT_FALSE(traj.hasDerivs());
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 0.5), 0.5); // linear now

    // Later derivatives cannot resurrect a misaligned slope buffer.
    traj.addSample(3.0, {9.0}, &d2);
    EXPECT_FALSE(traj.hasDerivs());
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 2.5), 6.5); // still linear
}

TEST(SimTest, TrajectoryLeadingDerivlessSampleStaysLinear)
{
    sim::Trajectory traj;
    std::vector<double> d1{2.0};
    traj.addSample(0.0, {0.0});
    traj.addSample(1.0, {1.0}, &d1);
    EXPECT_FALSE(traj.hasDerivs());
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 0.5), 0.5);
}

TEST(SimTest, TrajectoryReserveBeforeAndAfterSamples)
{
    // reserve() may land before the first sample (dimension supplied
    // by the caller) or between samples; neither disturbs contents.
    sim::Trajectory traj;
    traj.reserve(64, 2);
    std::vector<double> d{1.0, -1.0};
    traj.addSample(0.0, {1.0, 2.0}, &d);
    traj.reserve(128, 2);
    traj.addSample(1.0, {3.0, 4.0}, &d);
    ASSERT_EQ(traj.size(), 2u);
    EXPECT_TRUE(traj.hasDerivs());
    EXPECT_DOUBLE_EQ(traj.state(1)[1], 4.0);
}

TEST(SimTest, TrajectoryReserveAfterDerivDropStaysDropped)
{
    // Once the slope buffer is dropped, a later reserve() must not
    // resurrect it (a fresh partially-aligned buffer would be worse
    // than none).
    sim::Trajectory traj;
    std::vector<double> d{2.0};
    traj.addSample(0.0, {0.0}, &d);
    traj.addSample(1.0, {2.0});
    ASSERT_FALSE(traj.hasDerivs());
    traj.reserve(32, 1);
    traj.addSample(2.0, {4.0}, &d);
    EXPECT_FALSE(traj.hasDerivs());
    EXPECT_DOUBLE_EQ(traj.sampleAt(0, 0.5), 1.0); // linear
}

TEST(SimTest, TrajectoryEmptySampleAtThrows)
{
    sim::Trajectory traj;
    EXPECT_THROW(traj.sampleAt(0, 0.0), SimError);
    EXPECT_FALSE(traj.hasDerivs());
    EXPECT_EQ(traj.stateDim(), 0u);
}

TEST(SimTest, TrajectoryFlatStorageAccessors)
{
    sim::Trajectory traj;
    traj.reserve(3, 2);
    traj.addSample(0.0, {1.0, 10.0});
    traj.addSample(1.0, {2.0, 20.0});
    traj.addSample(2.0, {3.0, 30.0});
    EXPECT_EQ(traj.stateDim(), 2u);
    ASSERT_EQ(traj.size(), 3u);
    auto middle = traj.state(1);
    ASSERT_EQ(middle.size(), 2u);
    EXPECT_DOUBLE_EQ(middle[0], 2.0);
    EXPECT_DOUBLE_EQ(middle[1], 20.0);
    auto series = traj.series(1);
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[2], 30.0);
}

TEST(SimTest, SteadyStateDetection)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 5.0, 1.0);
    SimResult result =
        sim::simulateToSteadyState(system, 0.0, 10.0, 1e-6);
    EXPECT_TRUE(result.reachedSteadyState);
    // An undamped oscillator never settles.
    OdeSystem osc = oscillatorSystem(registry, 2.0);
    SimResult never = sim::simulateToSteadyState(osc, 0.0, 5.0, 1e-6);
    EXPECT_FALSE(never.reachedSteadyState);
}

/** dx/dt = +x^3: finite-time blowup at t = 1/(2 x0^2). */
OdeSystem
boomSystem(lang::LanguageRegistry &registry, double x0)
{
    if (!registry.findLanguage("boom")) {
        registry.addProgram(R"(
            lang boom {
                ntyp(1,sum) X {};
                etyp E {};
                prod(e:E,s:X->s:X) s <= var(s)*var(s)*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("boom"), 0);
    builder.node("x", "X");
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, x0);
    return compiler::compile(builder.take(),
                             registry.language("boom"));
}

TEST(SimTest, DivergenceReportsStructuredFailure)
{
    // From x0=2 the explosion lands at t = 0.125; the run must stop
    // right there with a structured report instead of throwing or
    // integrating NaNs onward.
    lang::LanguageRegistry registry;
    OdeSystem system = boomSystem(registry, 2.0);
    SimOptions options;
    options.method = Method::Rk4;
    options.dt = 1e-3;
    SimResult result = sim::simulate(system, 0.0, 1.0, options);
    EXPECT_FALSE(result.ok());
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_EQ(result.failure->reason, sim::AbortReason::Diverged);
    EXPECT_EQ(result.failure->stateIndex, 0);
    EXPECT_EQ(result.failure->step, result.steps);
    EXPECT_GT(result.steps, 0u);
    // Aborted near the blowup, far short of t1.
    EXPECT_LT(result.failure->time, 0.5);
    EXPECT_NE(result.failure->message.find("diverged"),
              std::string::npos);
    // The trajectory keeps the pre-failure samples, all finite.
    ASSERT_GT(result.trajectory.size(), 0u);
    for (std::size_t s = 0; s < result.trajectory.size(); ++s)
        EXPECT_TRUE(std::isfinite(result.trajectory.state(s)[0]));
}

TEST(SimTest, DivergenceAbortsAdaptiveRunEarly)
{
    // x' = -sqrt(x) from x0=1 reaches 0 at t=2 and then dips negative,
    // so the RHS (and with it Dopri5's error estimate) goes NaN while
    // the state is still finite. That must abort structurally instead
    // of rejecting NaN steps toward the budget or step collapse.
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang drain {
            ntyp(1,sum) X {};
            etyp E {};
            prod(e:E,s:X->s:X) s <= 0-sqrt(var(s));
        }
    )");
    GraphBuilder builder(registry.language("drain"), 0);
    builder.node("x", "X");
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    OdeSystem system =
        compiler::compile(builder.take(), registry.language("drain"));
    SimOptions options;
    options.maxSteps = 100'000;
    SimResult result = sim::simulate(system, 0.0, 3.0, options);
    EXPECT_FALSE(result.ok());
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_EQ(result.failure->reason, sim::AbortReason::Diverged);
    // Aborted around the t=2 zero crossing, well before t1.
    EXPECT_GT(result.failure->time, 1.0);
    EXPECT_LT(result.failure->time, 3.0);
    // Detection is prompt: nowhere near the step budget.
    EXPECT_LT(result.steps + result.rejectedSteps, 10'000u);
}

TEST(SimTest, NonfiniteInitialStateFailsAtStepZero)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    std::vector<double> initial{
        std::numeric_limits<double>::quiet_NaN()};
    SimResult result =
        sim::simulate(system, initial, 0.0, 1.0, SimOptions{});
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_EQ(result.failure->reason, sim::AbortReason::Diverged);
    EXPECT_EQ(result.failure->step, 0u);
    EXPECT_EQ(result.failure->stateIndex, 0);
    EXPECT_EQ(result.trajectory.size(), 0u);
}

TEST(SimTest, BadTimeRangeRejected)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    EXPECT_THROW(sim::simulate(system, 1.0, 1.0, SimOptions{}),
                 SimError);
    EXPECT_THROW(sim::simulate(system, 2.0, 1.0, SimOptions{}),
                 SimError);
}

TEST(SimTest, StepBudgetGuards)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    SimOptions options;
    options.method = Method::Rk4;
    options.dt = 1e-9; // would need 1e9 steps
    options.maxSteps = 1000;
    // Budget exhaustion is an instance-level outcome, not an error:
    // the run stops with a structured BudgetExhausted failure and
    // keeps everything integrated up to the stop.
    SimResult result = sim::simulate(system, 0.0, 1.0, options);
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_EQ(result.failure->reason, sim::AbortReason::BudgetExhausted);
    EXPECT_EQ(result.steps, 1000u);
    EXPECT_LT(result.failure->time, 1.0);
    EXPECT_FALSE(result.trajectory.times().empty());
}

TEST(SimTest, FinalTimeRecorded)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    SimOptions options;
    options.recordDt = 0.3;
    SimResult result = sim::simulate(system, 0.0, 1.0, options);
    EXPECT_NEAR(result.trajectory.times().back(), 1.0, 1e-9);
}

} // namespace
