/**
 * @file
 * Unit tests for the support library: errors, RNG determinism and
 * statistics, string helpers, tables, and dense linear algebra.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/error.h"
#include "support/linalg.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

using namespace ark::support;

// --- errors -----------------------------------------------------------

TEST(ErrorTest, WhatIncludesKindAndMessage)
{
    ParseError err("unexpected token", SourceLoc{3, 14});
    std::string what = err.what();
    EXPECT_NE(what.find("parse error"), std::string::npos);
    EXPECT_NE(what.find("3:14"), std::string::npos);
    EXPECT_NE(what.find("unexpected token"), std::string::npos);
    EXPECT_EQ(err.kind(), ErrorKind::Parse);
    EXPECT_EQ(err.message(), "unexpected token");
}

TEST(ErrorTest, LocationlessErrorOmitsPosition)
{
    TypeError err("bad type");
    std::string what = err.what();
    EXPECT_EQ(what.find(" at "), std::string::npos);
    EXPECT_FALSE(err.loc().valid());
}

TEST(ErrorTest, EveryKindHasName)
{
    for (auto kind : {ErrorKind::Lex, ErrorKind::Parse, ErrorKind::Sema,
                      ErrorKind::Type, ErrorKind::Validation,
                      ErrorKind::Compile, ErrorKind::Sim, ErrorKind::Io}) {
        EXPECT_NE(std::string(errorKindName(kind)), "");
    }
}

TEST(ErrorTest, SubclassesCatchAsArkError)
{
    try {
        throw ValidationError("nope");
    } catch (const ArkError &err) {
        EXPECT_EQ(err.kind(), ErrorKind::Validation);
        return;
    }
    FAIL() << "not caught";
}

// --- rng ---------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(RngTest, UniformIntCoversRangeUniformly)
{
    Rng rng(11);
    std::vector<int> counts(6, 0);
    const int draws = 60000;
    for (int i = 0; i < draws; ++i)
        ++counts[static_cast<std::size_t>(rng.uniformInt(0, 5))];
    for (int count : counts) {
        EXPECT_GT(count, draws / 6 - 600);
        EXPECT_LT(count, draws / 6 + 600);
    }
}

TEST(RngTest, GaussianMomentsMatch)
{
    Rng rng(99);
    const int n = 100000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(3.0, 2.0);
        sum += v;
        sumSq += v * v;
    }
    double mean = sum / n;
    double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(5);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(RngTest, DeriveSeedAdvancesState)
{
    Rng rng(1);
    EXPECT_NE(rng.deriveSeed(), rng.deriveSeed());
}

// --- strings -----------------------------------------------------------

TEST(StringsTest, SplitAndJoin)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "-"), "a-b--c");
}

TEST(StringsTest, SplitNoDelimiter)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, Trim)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("ark-lang", "ark"));
    EXPECT_FALSE(startsWith("ark", "ark-lang"));
    EXPECT_TRUE(endsWith("file.cc", ".cc"));
    EXPECT_FALSE(endsWith(".cc", "file.cc"));
}

TEST(StringsTest, FormatDoubleRoundTrips)
{
    for (double v : {1.5, -0.25, 1e-9, 3.14159265358979, 0.0}) {
        EXPECT_EQ(std::stod(formatDouble(v)), v);
    }
}

TEST(StringsTest, EditDistance)
{
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
    EXPECT_EQ(editDistance("same", "same"), 0u);
}

TEST(StringsTest, ClosestMatchSuggests)
{
    std::vector<std::string> candidates{"InpI", "InpV", "V", "I"};
    EXPECT_EQ(closestMatch("InpU", candidates), "InpI");
    EXPECT_EQ(closestMatch("zzzzzz", candidates), "");
}

// --- table -------------------------------------------------------------

TEST(TableTest, AlignsColumns)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "2"});
    std::ostringstream oss;
    table.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvEscaping)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow(std::vector<std::string>{"a,b", "quote\"inside",
                                          "plain"});
    EXPECT_EQ(oss.str(), "\"a,b\",\"quote\"\"inside\",plain\n");
}

TEST(TableTest, NumericRows)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow(std::vector<double>{1.0, 2.5});
    EXPECT_EQ(oss.str(), "1,2.5\n");
}

// --- linalg ------------------------------------------------------------

TEST(LinalgTest, LuSolvesKnownSystem)
{
    Matrix a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    LuSolver solver(a);
    auto x = solver.solve({5, 10});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinalgTest, LuHandlesPivoting)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    LuSolver solver(a);
    auto x = solver.solve({2, 3});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinalgTest, SingularMatrixThrows)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_THROW(LuSolver{a}, ArkError);
}

TEST(LinalgTest, RandomSystemsRoundTrip)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 8;
        Matrix a(n, n);
        std::vector<double> xTrue(n);
        for (std::size_t i = 0; i < n; ++i) {
            xTrue[i] = rng.uniform(-5, 5);
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) = rng.uniform(-1, 1);
            a(i, i) += 4.0; // diagonally dominant => nonsingular
        }
        std::vector<double> b = a.apply(xTrue);
        LuSolver solver(a);
        auto x = solver.solve(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], xTrue[i], 1e-9);
    }
}

TEST(LinalgTest, MatrixOps)
{
    Matrix id = Matrix::identity(3);
    EXPECT_EQ(id(1, 1), 1.0);
    EXPECT_EQ(id(0, 1), 0.0);
    Matrix scaled = id.scaled(2.0);
    EXPECT_EQ(scaled(2, 2), 2.0);
    Matrix sum = id.plus(scaled);
    EXPECT_EQ(sum(0, 0), 3.0);
}

TEST(LinalgTest, RmseAndRelativeRmse)
{
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{1, 2, 4};
    EXPECT_NEAR(rmse(a, b), std::sqrt(1.0 / 3.0), 1e-12);
    EXPECT_NEAR(relativeRmse(a, a), 0.0, 1e-15);
    EXPECT_THROW(rmse(a, {1.0}), ArkError);
}

TEST(LinalgTest, Norm2)
{
    EXPECT_NEAR(norm2({3, 4}), 5.0, 1e-12);
    EXPECT_EQ(norm2({}), 0.0);
}

} // namespace
