/**
 * @file
 * TLN paradigm tests: language structure, Telegrapher dynamics,
 * wave-propagation physics (delay, termination, reflection), the
 * gmc-tln compatibility guarantee (§4.5: TLN computations deliver the
 * same dynamics in the extension), and builder validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "support/linalg.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace ptln = paradigms::tln;

class TlnTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static const lang::Language &tln()
    {
        return registry_->language("tln");
    }
    static const lang::Language &gmc()
    {
        return registry_->language("gmc-tln");
    }

    static std::vector<double>
    outSeries(const dg::Graph &graph, const lang::Language &language,
              double tEnd, std::size_t points)
    {
        validator::validateOrThrow(graph, language);
        compiler::OdeSystem system = compiler::compile(graph, language);
        sim::SimOptions options;
        options.recordDt = tEnd / 1000.0;
        sim::SimResult result =
            sim::simulate(system, 0.0, tEnd, options);
        return result.trajectory.resample(
            system.stateIndex(ptln::outputNode(), 0), 0.0, tEnd,
            points);
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *TlnTest::registry_ = nullptr;

TEST_F(TlnTest, LanguageStructure)
{
    EXPECT_TRUE(tln().types().hasNodeType("V"));
    EXPECT_TRUE(tln().types().hasNodeType("I"));
    EXPECT_TRUE(tln().types().hasNodeType("InpV"));
    EXPECT_TRUE(tln().types().hasNodeType("InpI"));
    EXPECT_TRUE(tln().types().hasEdgeType("E"));
    EXPECT_EQ(tln().types().nodeType("V").order, 1);
    EXPECT_EQ(tln().types().nodeType("InpI").order, 0);
    EXPECT_EQ(tln().prodRules().size(), 10u);
    EXPECT_EQ(tln().cstrs().size(), 2u);
}

TEST_F(TlnTest, GmcInheritsAndExtends)
{
    EXPECT_EQ(gmc().parent(), &tln());
    EXPECT_TRUE(gmc().types().isNodeAncestor("V", "Vm"));
    EXPECT_TRUE(gmc().types().isNodeAncestor("I", "Im"));
    EXPECT_TRUE(gmc().types().isEdgeAncestor("E", "Em"));
    const dg::NodeTypeDef &vm = gmc().types().nodeType("Vm");
    EXPECT_TRUE(vm.findAttr("c")->type.hasMismatch());
    EXPECT_FALSE(gmc().types().nodeType("V").findAttr("c")
                     ->type.hasMismatch());
    // The Em edge defines the modified-Telegrapher weights.
    const dg::EdgeTypeDef &em = gmc().types().edgeType("Em");
    EXPECT_NE(em.findAttr("ws"), nullptr);
    EXPECT_NE(em.findAttr("wt"), nullptr);
}

class LineLengthTest : public TlnTest,
                       public ::testing::WithParamInterface<int>
{
};

TEST_P(LineLengthTest, PulseDelayScalesWithLength)
{
    // Wave speed: 1 section per sqrt(l*c) = 1ns. The pulse front
    // (10% of peak) must arrive at OUT_V after ~sections ns.
    int sections = GetParam();
    ptln::LineSpec spec;
    spec.sections = sections;
    dg::Graph graph = ptln::buildLine(tln(), spec);
    double tEnd = (sections + 30) * 1e-9;
    auto series = outSeries(graph, tln(), tEnd, 600);
    double peak = 0;
    for (double v : series)
        peak = std::max(peak, v);
    EXPECT_GT(peak, 0.3);
    std::size_t front = 0;
    while (front < series.size() && series[front] < 0.1 * peak)
        ++front;
    double arrival = tEnd * static_cast<double>(front) /
                     static_cast<double>(series.size() - 1);
    double expected = sections * 1e-9;
    EXPECT_NEAR(arrival, expected, 0.5 * expected + 2e-9)
        << "sections=" << sections;
}

INSTANTIATE_TEST_SUITE_P(Lengths, LineLengthTest,
                         ::testing::Values(4, 8, 16, 32));

TEST_F(TlnTest, MatchedTerminationAbsorbs)
{
    // With matched termination (g = sqrt(c/l) = 1) the pulse passes
    // once; with an open end (g = 0) it reflects and OUT_V doubles.
    ptln::LineSpec matched;
    matched.sections = 8;
    ptln::LineSpec open = matched;
    open.termConductance = 1e-12; // g attribute range excludes 0-neg
    dg::Graph mGraph = ptln::buildLine(tln(), matched);
    dg::Graph oGraph = ptln::buildLine(tln(), open);
    auto mSeries = outSeries(mGraph, tln(), 6e-8, 600);
    auto oSeries = outSeries(oGraph, tln(), 6e-8, 600);
    double mPeak = 0, oPeak = 0;
    for (double v : mSeries)
        mPeak = std::max(mPeak, v);
    for (double v : oSeries)
        oPeak = std::max(oPeak, v);
    EXPECT_NEAR(oPeak, 2.0 * mPeak, 0.5 * mPeak);
}

TEST_F(TlnTest, SeriesResistanceAttenuates)
{
    ptln::LineSpec lossless;
    lossless.sections = 8;
    dg::Graph lossy = [&] {
        lang::GraphBuilder builder(tln(), 0);
        // Build a line manually with r > 0 on I nodes.
        builder.node("IN_V", "V");
        builder.edge("self_IN_V", "E", "IN_V", "IN_V");
        builder.attr("IN_V", "c", 1e-9);
        builder.attr("IN_V", "g", 0.0);
        std::string prev = "IN_V";
        for (int k = 0; k < 8; ++k) {
            std::string iName = "I_" + std::to_string(k);
            std::string vName =
                k == 7 ? "OUT_V" : "V_" + std::to_string(k + 1);
            builder.node(iName, "I");
            builder.edge("self_" + iName, "E", iName, iName);
            builder.attr(iName, "l", 1e-9);
            builder.attr(iName, "r", 0.3); // lossy
            builder.node(vName, "V");
            builder.edge("self_" + vName, "E", vName, vName);
            builder.attr(vName, "c", 1e-9);
            builder.attr(vName, "g", k == 7 ? 1.0 : 0.0);
            builder.edge("ev" + std::to_string(k), "E", prev, iName);
            builder.edge("ei" + std::to_string(k), "E", iName, vName);
            prev = vName;
        }
        builder.node("InpI_0", "InpI");
        expr::Lambda pulse{{"t0"},
                           expr::Expr::call("pulse",
                                            {expr::Expr::var("t0"),
                                             expr::Expr::real(0.0),
                                             expr::Expr::real(2e-8)})};
        builder.attr("InpI_0", "fn", expr::Value::function(pulse));
        builder.attr("InpI_0", "g", 1.0);
        builder.edge("E_inp", "E", "InpI_0", "IN_V");
        return builder.take();
    }();
    auto ideal = outSeries(ptln::buildLine(tln(), lossless), tln(),
                           6e-8, 600);
    auto damped = outSeries(lossy, tln(), 6e-8, 600);
    double idealPeak = 0, dampedPeak = 0;
    for (double v : ideal)
        idealPeak = std::max(idealPeak, v);
    for (double v : damped)
        dampedPeak = std::max(dampedPeak, v);
    EXPECT_LT(dampedPeak, 0.7 * idealPeak);
    EXPECT_GT(dampedPeak, 0.01);
}

TEST_F(TlnTest, TlnComputationsRunIdenticallyInGmcTln)
{
    // Paper §4.5: "All TLN computations are implementable in the
    // GmC-TLN language and deliver the same dynamics." The same ideal
    // line compiled under either language must produce identical
    // waveforms.
    ptln::LineSpec spec;
    spec.sections = 8;
    dg::Graph inTln = ptln::buildLine(tln(), spec);
    dg::Graph inGmc = ptln::buildLine(gmc(), spec);
    auto a = outSeries(inTln, tln(), 4e-8, 400);
    auto b = outSeries(inGmc, gmc(), 4e-8, 400);
    EXPECT_LT(support::relativeRmse(a, b), 1e-9);
}

TEST_F(TlnTest, UnityWeightsEmEdgesMatchIdeal)
{
    // Em edges with ws = wt = 1 and no sampling (no mm because the
    // builder samples only via its seed-controlled rng; seed is fixed
    // but mm sampling still perturbs) -- here we check the modified
    // Telegrapher rules reduce to the ideal ones by comparing a
    // mismatched line to itself (determinism) and the ideal-vs-ideal
    // equality above; determinism across rebuilds:
    ptln::LineSpec spec;
    spec.sections = 6;
    spec.mismatchGm = true;
    spec.seed = 9;
    auto a = outSeries(ptln::buildLine(gmc(), spec), gmc(), 4e-8, 300);
    auto b = outSeries(ptln::buildLine(gmc(), spec), gmc(), 4e-8, 300);
    EXPECT_LT(support::relativeRmse(a, b), 1e-12);
}

TEST_F(TlnTest, ValidatorCatchesStructuralMistakes)
{
    dg::Graph malformed = ptln::buildMalformed(tln());
    validator::ValidationResult result =
        validator::validate(malformed, tln());
    ASSERT_FALSE(result.ok);

    // A V node without its loss self edge is also rejected
    // (cstr V requires match(1,1,E,V)).
    lang::GraphBuilder builder(tln(), 0);
    builder.node("v", "V");
    builder.attr("v", "c", 1e-9);
    builder.attr("v", "g", 0.0);
    dg::Graph noSelf = builder.take();
    EXPECT_FALSE(validator::validate(noSelf, tln()).ok);
}

TEST_F(TlnTest, CurrentNodesCannotBranch)
{
    // cstr I limits outgoing V connections to at most one.
    lang::GraphBuilder builder(tln(), 0);
    auto addV = [&](const std::string &name) {
        builder.node(name, "V");
        builder.edge("self_" + name, "E", name, name);
        builder.attr(name, "c", 1e-9);
        builder.attr(name, "g", 0.0);
    };
    builder.node("i", "I");
    builder.edge("self_i", "E", "i", "i");
    builder.attr("i", "l", 1e-9);
    builder.attr("i", "r", 0.0);
    addV("v1");
    addV("v2");
    builder.edge("e1", "E", "i", "v1");
    builder.edge("e2", "E", "i", "v2");
    dg::Graph branchingCurrent = builder.take();
    EXPECT_FALSE(validator::validate(branchingCurrent, tln()).ok);
}

TEST_F(TlnTest, BuilderParameterChecks)
{
    ptln::LineSpec bad;
    bad.sections = 0;
    EXPECT_THROW(ptln::buildLine(tln(), bad), support::SemaError);
    ptln::LineSpec mm;
    mm.mismatchC = true;
    EXPECT_THROW(ptln::buildLine(tln(), mm), support::SemaError);
    ptln::BranchSpec badBranch;
    badBranch.attachAt = 99;
    EXPECT_THROW(ptln::buildBranched(tln(), badBranch),
                 support::SemaError);
}

TEST_F(TlnTest, BranchedValidatesWithStub)
{
    ptln::BranchSpec spec;
    spec.line.sections = 10;
    spec.stubSections = 4;
    spec.attachAt = 5;
    dg::Graph graph = ptln::buildBranched(tln(), spec);
    EXPECT_TRUE(validator::validate(graph, tln()).ok);
}

TEST_F(TlnTest, MismatchedLinesValidateInGmcOnly)
{
    ptln::LineSpec spec;
    spec.sections = 4;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = 1;
    dg::Graph graph = ptln::buildLine(gmc(), spec);
    EXPECT_TRUE(validator::validate(graph, gmc()).ok);
}

} // namespace
