/**
 * @file
 * OBC paradigm tests: Kuramoto synchronization physics, SHIL phase
 * binarization, max-cut decoding, brute-force baseline, the offset
 * nonideality, and intercon-obc interconnect restrictions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "apps/experiments.h"
#include "compiler/compiler.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "sim/sim.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace pobc = paradigms::obc;
namespace exp = apps::experiments;
constexpr double kPi = std::numbers::pi;

class ObcTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static const lang::Language &obc()
    {
        return registry_->language("obc");
    }
    static const lang::Language &ofs()
    {
        return registry_->language("ofs-obc");
    }
    static const lang::Language &intercon()
    {
        return registry_->language("intercon-obc");
    }

    /** Final phases after relaxing the network. */
    static std::vector<double>
    relax(const dg::Graph &graph, const lang::Language &language, int n)
    {
        validator::validateOrThrow(graph, language);
        compiler::OdeSystem system = compiler::compile(graph, language);
        sim::SimResult result = sim::simulate(system, 0.0, 5e-8);
        std::vector<double> phases;
        for (int v = 0; v < n; ++v) {
            phases.push_back(result.trajectory.state(
                result.trajectory.size() -
                1)[static_cast<std::size_t>(
                system.stateIndex(pobc::oscName(v), 0))]);
        }
        return phases;
    }

    /** Phase distance modulo 2pi. */
    static double
    phaseDist(double a, double b)
    {
        double d = std::fmod(std::fabs(a - b), 2.0 * kPi);
        return std::min(d, 2.0 * kPi - d);
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *ObcTest::registry_ = nullptr;

TEST_F(ObcTest, LanguageStructure)
{
    EXPECT_EQ(obc().types().nodeType("Osc").order, 1);
    EXPECT_NE(obc().types().edgeType("Cpl").findAttr("k"), nullptr);
    EXPECT_EQ(obc().prodRules().size(), 3u);
    EXPECT_TRUE(ofs().types().isEdgeAncestor("Cpl", "Cpl_ofs"));
    EXPECT_TRUE(
        ofs().types().edgeType("Cpl_ofs").findAttr("offset")
            ->type.hasMismatch());
}

TEST_F(ObcTest, TwoOscillatorsAntiAlign)
{
    // Anti-ferromagnetic coupling (k < 0) plus SHIL drives a pair to
    // opposite binary phases.
    pobc::MaxcutInstance pair;
    pair.numVertices = 2;
    pair.edges = {{0, 1}};
    pobc::MaxcutSpec spec;
    spec.initPhases = {0.4, 0.9};
    dg::Graph graph = pobc::buildMaxcut(obc(), pair, spec);
    auto phases = relax(graph, obc(), 2);
    EXPECT_NEAR(phaseDist(phases[0], phases[1]), kPi, 0.05);
}

TEST_F(ObcTest, PositiveCouplingAligns)
{
    pobc::MaxcutInstance pair;
    pair.numVertices = 2;
    pair.edges = {{0, 1}};
    pobc::MaxcutSpec spec;
    spec.coupling = 1.0; // ferromagnetic
    spec.initPhases = {0.4, 1.2};
    dg::Graph graph = pobc::buildMaxcut(obc(), pair, spec);
    auto phases = relax(graph, obc(), 2);
    EXPECT_NEAR(phaseDist(phases[0], phases[1]), 0.0, 0.05);
}

TEST_F(ObcTest, ShilBinarizesPhases)
{
    // Even an uncoupled oscillator relaxes to a multiple of pi.
    pobc::MaxcutInstance lone;
    lone.numVertices = 1;
    pobc::MaxcutSpec spec;
    spec.initPhases = {1.2};
    dg::Graph graph = pobc::buildMaxcut(obc(), lone, spec);
    auto phases = relax(graph, obc(), 1);
    double frac = std::fmod(phases[0], kPi);
    double distToGrid = std::min(frac, kPi - frac);
    EXPECT_LT(distToGrid, 0.01);
}

TEST_F(ObcTest, DecodePartition)
{
    auto p = pobc::decodePartition({0.005, kPi - 0.005, 2 * kPi - 0.002,
                                    kPi + 0.008},
                                   0.01 * kPi);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, (std::vector<int>{0, 1, 0, 1}));
    // An oscillator stuck between bands voids the decode.
    EXPECT_FALSE(pobc::decodePartition({kPi / 2}, 0.01 * kPi)
                     .has_value());
    // Looser tolerance absorbs jitter.
    EXPECT_FALSE(pobc::decodePartition({0.2}, 0.01 * kPi).has_value());
    EXPECT_TRUE(pobc::decodePartition({0.2}, 0.1 * kPi).has_value());
}

TEST_F(ObcTest, BruteForceKnownGraphs)
{
    // Triangle: best cut 2; K4: best cut 4; path(4): 3; empty: 0.
    pobc::MaxcutInstance triangle{3, {{0, 1}, {1, 2}, {0, 2}}};
    EXPECT_EQ(pobc::bruteForceMaxCut(triangle), 2);
    pobc::MaxcutInstance k4{
        4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}};
    EXPECT_EQ(pobc::bruteForceMaxCut(k4), 4);
    pobc::MaxcutInstance path{4, {{0, 1}, {1, 2}, {2, 3}}};
    EXPECT_EQ(pobc::bruteForceMaxCut(path), 3);
    pobc::MaxcutInstance empty{3, {}};
    EXPECT_EQ(pobc::bruteForceMaxCut(empty), 0);
    EXPECT_EQ(pobc::cutSize(path, {0, 1, 0, 1}), 3);
    EXPECT_EQ(pobc::cutSize(path, {0, 0, 0, 0}), 0);
}

TEST_F(ObcTest, BipartiteGraphSolvesExactly)
{
    // A 4-cycle is bipartite: the oscillator network must find the
    // full cut of 4 from generic initial conditions.
    pobc::MaxcutInstance cycle{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
    pobc::MaxcutSpec spec;
    spec.initPhases = {0.3, 2.8, 1.0, 4.5};
    dg::Graph graph = pobc::buildMaxcut(obc(), cycle, spec);
    auto phases = relax(graph, obc(), 4);
    auto partition = pobc::decodePartition(phases, 0.05 * kPi);
    ASSERT_TRUE(partition.has_value());
    EXPECT_EQ(pobc::cutSize(cycle, *partition), 4);
}

TEST_F(ObcTest, OffsetCausesResidualPhaseError)
{
    pobc::MaxcutInstance pair;
    pair.numVertices = 2;
    pair.edges = {{0, 1}};
    pobc::MaxcutSpec ideal;
    ideal.initPhases = {0.4, 2.0};
    pobc::MaxcutSpec offset = ideal;
    offset.withOffset = true;
    offset.seed = 11;
    auto idealPhases = relax(pobc::buildMaxcut(obc(), pair, ideal),
                             obc(), 2);
    auto offsetPhases = relax(pobc::buildMaxcut(ofs(), pair, offset),
                              ofs(), 2);
    double idealErr =
        std::fabs(phaseDist(idealPhases[0], idealPhases[1]) - kPi);
    double offsetErr =
        std::fabs(phaseDist(offsetPhases[0], offsetPhases[1]) - kPi);
    EXPECT_LT(idealErr, 1e-3);
    EXPECT_GT(offsetErr, idealErr);
}

TEST_F(ObcTest, Table1ShapeHolds)
{
    // Reduced-trials version of Table 1 (the bench runs 1000): the
    // offset nonideality degrades tight-tolerance accuracy, and the
    // looser tolerance recovers it.
    auto ideal = exp::runMaxcutSims(obc(), false, 60);
    auto offset = exp::runMaxcutSims(ofs(), true, 60);
    exp::ObcRow idealTight = exp::scoreMaxcut(ideal, 0.01 * kPi);
    exp::ObcRow offsetTight = exp::scoreMaxcut(offset, 0.01 * kPi);
    exp::ObcRow offsetLoose = exp::scoreMaxcut(offset, 0.1 * kPi);
    EXPECT_GT(idealTight.solvedProb, 80.0);
    EXPECT_LT(offsetTight.solvedProb, idealTight.solvedProb - 10.0);
    EXPECT_GT(offsetLoose.solvedProb, offsetTight.solvedProb + 10.0);
}

TEST_F(ObcTest, MaxcutSpecValidation)
{
    pobc::MaxcutInstance bad{2, {{0, 5}}};
    EXPECT_THROW(pobc::buildMaxcut(obc(), bad, pobc::MaxcutSpec{}),
                 support::SemaError);
    pobc::MaxcutInstance pair{2, {{0, 1}}};
    pobc::MaxcutSpec withOffset;
    withOffset.withOffset = true;
    EXPECT_THROW(pobc::buildMaxcut(obc(), pair, withOffset),
                 support::SemaError); // obc lacks Cpl_ofs
    pobc::MaxcutSpec badInit;
    badInit.initPhases = {0.1};
    EXPECT_THROW(pobc::buildMaxcut(obc(), pair, badInit),
                 support::SemaError);
}

// --- intercon-obc -------------------------------------------------------------

TEST_F(ObcTest, GroupedTopologyValidates)
{
    pobc::MaxcutInstance ring{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
    pobc::GroupedSpec spec;
    spec.groups = {0, 0, 1, 1};
    dg::Graph graph = pobc::buildGrouped(intercon(), ring, spec);
    EXPECT_TRUE(validator::validate(graph, intercon()).ok);
    // Cost: 2 local (1) + 2 global (10) = 22.
    EXPECT_EQ(pobc::interconnectCost(graph), 22);
}

TEST_F(ObcTest, CrossGroupLocalEdgeRejected)
{
    dg::Graph illegal = pobc::buildGroupedIllegal(intercon());
    validator::ValidationResult result =
        validator::validate(illegal, intercon());
    EXPECT_FALSE(result.ok);
}

TEST_F(ObcTest, GroupedNetworkStillComputes)
{
    // The interconnect constraints restrict topology, not dynamics:
    // a legal grouped 4-cycle solves max-cut like the flat network.
    pobc::MaxcutInstance ring{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
    pobc::GroupedSpec spec;
    spec.groups = {0, 0, 1, 1};
    spec.initPhases = {0.3, 2.8, 1.0, 4.5};
    dg::Graph graph = pobc::buildGrouped(intercon(), ring, spec);
    auto phases = relax(graph, intercon(), 4);
    auto partition = pobc::decodePartition(phases, 0.05 * kPi);
    ASSERT_TRUE(partition.has_value());
    EXPECT_EQ(pobc::cutSize(ring, *partition), 4);
}

TEST_F(ObcTest, GroupedSpecValidation)
{
    pobc::MaxcutInstance pair{2, {{0, 1}}};
    pobc::GroupedSpec shortGroups;
    shortGroups.groups = {0};
    EXPECT_THROW(pobc::buildGrouped(intercon(), pair, shortGroups),
                 support::SemaError);
    pobc::GroupedSpec badGroup;
    badGroup.groups = {0, 7};
    EXPECT_THROW(pobc::buildGrouped(intercon(), pair, badGroup),
                 support::SemaError);
    EXPECT_THROW(pobc::buildGrouped(obc(), pair, badGroup),
                 support::SemaError); // wrong language
}

} // namespace
