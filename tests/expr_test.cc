/**
 * @file
 * Unit tests for the expression library: AST construction, printing,
 * rewriting, evaluation, static typing, and constant folding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "expr/builtins.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/fold.h"
#include "support/error.h"

namespace {

using namespace ark;
using expr::BinOp;
using expr::EvalContext;
using expr::Expr;
using expr::ExprKind;
using expr::ExprPtr;
using expr::StaticType;
using expr::UnOp;
using expr::Value;
using support::TypeError;

// --- values ------------------------------------------------------------

TEST(ValueTest, KindsAndAccessors)
{
    EXPECT_DOUBLE_EQ(Value::real(2.5).asReal(), 2.5);
    EXPECT_EQ(Value::integer(7).asInt(), 7);
    EXPECT_DOUBLE_EQ(Value::integer(7).asReal(), 7.0); // widening
    EXPECT_TRUE(Value::boolean(true).asBool());
    EXPECT_THROW(Value::real(1).asInt(), TypeError);
    EXPECT_THROW(Value::real(1).asBool(), TypeError);
    EXPECT_THROW(Value::boolean(true).asReal(), TypeError);
}

TEST(ValueTest, LambdaValue)
{
    expr::Lambda fn{{"t"}, Expr::var("t")};
    Value v = Value::function(fn);
    EXPECT_TRUE(v.isFunction());
    EXPECT_EQ(v.asFunction().params.size(), 1u);
    EXPECT_NE(v.str().find("lambd(t)"), std::string::npos);
}

TEST(ValueTest, Equality)
{
    EXPECT_EQ(Value::real(1.0), Value::real(1.0));
    EXPECT_FALSE(Value::real(1.0) == Value::integer(1));
    EXPECT_EQ(Value::boolean(false), Value::boolean(false));
}

// --- AST ---------------------------------------------------------------

TEST(ExprTest, FactoryAndAccessors)
{
    ExprPtr e = Expr::binary(BinOp::Add, Expr::real(1), Expr::var("x"));
    EXPECT_EQ(e->kind(), ExprKind::Binary);
    EXPECT_EQ(e->binOp(), BinOp::Add);
    EXPECT_EQ(e->lhs()->literalValue().asReal(), 1.0);
    EXPECT_EQ(e->rhs()->varName(), "x");
}

TEST(ExprTest, Printing)
{
    ExprPtr e = Expr::binary(
        BinOp::Mul, Expr::unary(UnOp::Neg, Expr::attr("e", "k")),
        Expr::call("sin", {Expr::binary(BinOp::Sub, Expr::nodeVar("s"),
                                        Expr::nodeVar("t"))}));
    EXPECT_EQ(e->str(), "((-e.k) * sin((var(s) - var(t))))");
}

TEST(ExprTest, StructuralEquality)
{
    ExprPtr a = Expr::binary(BinOp::Add, Expr::real(1), Expr::time());
    ExprPtr b = Expr::binary(BinOp::Add, Expr::real(1), Expr::time());
    ExprPtr c = Expr::binary(BinOp::Sub, Expr::real(1), Expr::time());
    EXPECT_TRUE(a->equals(*b));
    EXPECT_FALSE(a->equals(*c));
}

TEST(ExprTest, FreeVarsAndNodeVars)
{
    ExprPtr e = Expr::binary(
        BinOp::Add,
        Expr::binary(BinOp::Mul, Expr::var("a"), Expr::nodeVar("s")),
        Expr::binary(BinOp::Mul, Expr::var("b"), Expr::var("a")));
    auto vars = e->freeVars();
    EXPECT_EQ(vars.size(), 2u);
    auto nodes = e->nodeVars();
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0], "s");
}

TEST(ExprTest, SubstituteVars)
{
    ExprPtr e = Expr::binary(BinOp::Add, Expr::var("x"), Expr::var("y"));
    ExprPtr out = expr::substituteVars(e, [](const std::string &name) {
        return name == "x" ? Expr::real(3) : nullptr;
    });
    EXPECT_EQ(out->str(), "(3 + y)");
}

TEST(ExprTest, SubstituteNodeVarsAndAttrs)
{
    ExprPtr e = Expr::binary(BinOp::Div, Expr::nodeVar("s"),
                             Expr::attr("s", "c"));
    ExprPtr out = expr::substituteNodeVars(
        e, [](const std::string &) { return Expr::stateVar(4); });
    out = expr::substituteAttrs(
        out, [](const std::string &, const std::string &) {
            return Expr::real(1e-9);
        });
    EXPECT_EQ(out->str(), "(q[4] / 1e-09)");
}

TEST(ExprTest, RenameBindings)
{
    ExprPtr e = Expr::binary(BinOp::Mul, Expr::attr("s", "g"),
                             Expr::nodeVar("s"));
    ExprPtr out = expr::renameBindings(e, [](const std::string &name) {
        return name == "s" ? "V_3" : name;
    });
    EXPECT_EQ(out->str(), "(V_3.g * var(V_3))");
}

TEST(ExprTest, ApplyLambda)
{
    expr::Lambda fn{{"a", "b"},
                    Expr::binary(BinOp::Sub, Expr::var("a"),
                                 Expr::var("b"))};
    ExprPtr out = expr::applyLambda(fn, {Expr::real(5), Expr::real(2)});
    EvalContext ctx;
    EXPECT_DOUBLE_EQ(expr::evalReal(out, ctx), 3.0);
    EXPECT_THROW(expr::applyLambda(fn, {Expr::real(1)}), TypeError);
}

TEST(ExprTest, SharedSubtreesPreservedWhenUnchanged)
{
    ExprPtr inner = Expr::binary(BinOp::Add, Expr::real(1),
                                 Expr::real(2));
    ExprPtr e = Expr::binary(BinOp::Mul, inner, Expr::var("x"));
    ExprPtr out = expr::substituteVars(
        e, [](const std::string &) -> ExprPtr { return nullptr; });
    EXPECT_EQ(out.get(), e.get()); // no change -> same tree
}

// --- builtins ----------------------------------------------------------

TEST(BuiltinTest, Lookup)
{
    ASSERT_NE(expr::findBuiltin("sin"), nullptr);
    EXPECT_EQ(expr::findBuiltin("sin")->arity, 1);
    EXPECT_EQ(expr::findBuiltin("pulse")->arity, 3);
    EXPECT_EQ(expr::findBuiltin("nope"), nullptr);
    EXPECT_GE(expr::allBuiltins().size(), 14u);
}

TEST(BuiltinTest, SatIsPiecewiseLinear)
{
    EXPECT_DOUBLE_EQ(expr::satFn(0.5), 0.5);
    EXPECT_DOUBLE_EQ(expr::satFn(2.0), 1.0);
    EXPECT_DOUBLE_EQ(expr::satFn(-2.0), -1.0);
    EXPECT_DOUBLE_EQ(expr::satFn(1.0), 1.0);
    EXPECT_DOUBLE_EQ(expr::satFn(0.0), 0.0);
}

TEST(BuiltinTest, SatNiIsSmoothAndSteeper)
{
    EXPECT_NEAR(expr::satNiFn(1.0), 1.0, 1e-12);
    EXPECT_NEAR(expr::satNiFn(-1.0), -1.0, 1e-12);
    EXPECT_EQ(expr::satNiFn(0.0), 0.0);
    // Steeper small-signal slope than sat (the paper's orange curve).
    double slope = (expr::satNiFn(0.01) - expr::satNiFn(-0.01)) / 0.02;
    EXPECT_GT(slope, 1.1);
    // Smooth: no corner at the knee.
    double left = expr::satNiFn(0.999);
    double right = expr::satNiFn(1.001);
    EXPECT_NEAR(left, right, 1e-3);
}

TEST(BuiltinTest, PulseShape)
{
    // Trapezoid over [0, 2e-8], 5% ramps.
    EXPECT_EQ(expr::pulseFn(-1e-9, 0, 2e-8), 0.0);
    EXPECT_EQ(expr::pulseFn(3e-8, 0, 2e-8), 0.0);
    EXPECT_DOUBLE_EQ(expr::pulseFn(1e-8, 0, 2e-8), 1.0);
    EXPECT_NEAR(expr::pulseFn(0.5e-9, 0, 2e-8), 0.5, 1e-9);
    EXPECT_EQ(expr::pulseFn(1.0, 0, 0.0), 0.0); // degenerate width
}

TEST(BuiltinTest, ScalarMath)
{
    double arg2[2] = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(expr::evalBuiltin(expr::Builtin::Min, arg2, 2), 3.0);
    EXPECT_DOUBLE_EQ(expr::evalBuiltin(expr::Builtin::Max, arg2, 2), 4.0);
    EXPECT_DOUBLE_EQ(expr::evalBuiltin(expr::Builtin::Pow, arg2, 2),
                     81.0);
    double neg = -2.5;
    EXPECT_DOUBLE_EQ(expr::evalBuiltin(expr::Builtin::Abs, &neg, 1), 2.5);
    EXPECT_DOUBLE_EQ(expr::evalBuiltin(expr::Builtin::Sgn, &neg, 1),
                     -1.0);
}

// --- evaluation --------------------------------------------------------

TEST(EvalTest, Arithmetic)
{
    EvalContext ctx;
    EXPECT_DOUBLE_EQ(
        expr::evalReal(Expr::binary(BinOp::Add, Expr::real(2),
                                    Expr::real(3)), ctx), 5.0);
    EXPECT_DOUBLE_EQ(
        expr::evalReal(Expr::binary(BinOp::Pow, Expr::real(2),
                                    Expr::real(10)), ctx), 1024.0);
    // Int arithmetic stays integral except division.
    Value v = expr::eval(Expr::binary(BinOp::Mul, Expr::integer(3),
                                      Expr::integer(4)), ctx);
    EXPECT_TRUE(v.isInt());
    EXPECT_EQ(v.asInt(), 12);
    Value d = expr::eval(Expr::binary(BinOp::Div, Expr::integer(3),
                                      Expr::integer(2)), ctx);
    EXPECT_TRUE(d.isReal());
    EXPECT_DOUBLE_EQ(d.asReal(), 1.5);
}

TEST(EvalTest, ComparisonAndLogic)
{
    EvalContext ctx;
    EXPECT_TRUE(expr::evalBool(Expr::binary(BinOp::Lt, Expr::real(1),
                                            Expr::real(2)), ctx));
    EXPECT_FALSE(expr::evalBool(
        Expr::binary(BinOp::And, Expr::boolean(true),
                     Expr::boolean(false)), ctx));
    EXPECT_TRUE(expr::evalBool(
        Expr::unary(UnOp::Not, Expr::boolean(false)), ctx));
    EXPECT_TRUE(expr::evalBool(
        Expr::binary(BinOp::Or, Expr::boolean(false),
                     Expr::boolean(true)), ctx));
}

TEST(EvalTest, TimeAndVariables)
{
    EvalContext ctx;
    ctx.time = 2.5;
    ctx.lookupVar = [](const std::string &name)
        -> std::optional<Value> {
        if (name == "x")
            return Value::real(4.0);
        return std::nullopt;
    };
    ExprPtr e = Expr::binary(BinOp::Mul, Expr::time(), Expr::var("x"));
    EXPECT_DOUBLE_EQ(expr::evalReal(e, ctx), 10.0);
    EXPECT_THROW(expr::evalReal(Expr::var("missing"), ctx), TypeError);
}

TEST(EvalTest, AttrAndNodeVar)
{
    EvalContext ctx;
    ctx.lookupAttr = [](const std::string &base, const std::string &attr)
        -> std::optional<Value> {
        if (base == "s" && attr == "c")
            return Value::real(2.0);
        return std::nullopt;
    };
    ctx.lookupNodeVar = [](const std::string &node)
        -> std::optional<double> {
        return node == "s" ? std::optional<double>(6.0) : std::nullopt;
    };
    ExprPtr e = Expr::binary(BinOp::Div, Expr::nodeVar("s"),
                             Expr::attr("s", "c"));
    EXPECT_DOUBLE_EQ(expr::evalReal(e, ctx), 3.0);
}

TEST(EvalTest, IfThenElse)
{
    EvalContext ctx;
    ExprPtr e = Expr::ifThenElse(
        Expr::binary(BinOp::Gt, Expr::time(), Expr::real(1.0)),
        Expr::real(10), Expr::real(20));
    ctx.time = 0.5;
    EXPECT_DOUBLE_EQ(expr::evalReal(e, ctx), 20.0);
    ctx.time = 1.5;
    EXPECT_DOUBLE_EQ(expr::evalReal(e, ctx), 10.0);
}

TEST(EvalTest, LambdaCallThroughVariable)
{
    EvalContext ctx;
    expr::Lambda fn{{"t"},
                    Expr::binary(BinOp::Mul, Expr::var("t"),
                                 Expr::real(2))};
    ctx.lookupVar = [&fn](const std::string &name)
        -> std::optional<Value> {
        if (name == "f")
            return Value::function(fn);
        return std::nullopt;
    };
    ExprPtr call = Expr::call("f", {Expr::real(21)});
    EXPECT_DOUBLE_EQ(expr::evalReal(call, ctx), 42.0);
}

TEST(EvalTest, LambdaCallThroughAttr)
{
    EvalContext ctx;
    expr::Lambda fn{{"a0"}, Expr::call("sin", {Expr::var("a0")})};
    ctx.lookupAttr = [&fn](const std::string &, const std::string &)
        -> std::optional<Value> { return Value::function(fn); };
    ctx.time = 0.0;
    ExprPtr call = Expr::callExpr(Expr::attr("s", "fn"), {Expr::time()});
    EXPECT_DOUBLE_EQ(expr::evalReal(call, ctx), 0.0);
}

TEST(EvalTest, BuiltinArityChecked)
{
    EvalContext ctx;
    EXPECT_THROW(
        expr::evalReal(Expr::call("sin", {Expr::real(1), Expr::real(2)}),
                       ctx),
        TypeError);
    EXPECT_THROW(expr::evalReal(Expr::call("unknown_fn", {}), ctx),
                 TypeError);
}

// --- static typing -----------------------------------------------------

expr::TypeScope
emptyScope()
{
    return expr::TypeScope{};
}

TEST(TypeCheckTest, LiteralTypes)
{
    auto scope = emptyScope();
    EXPECT_EQ(expr::checkType(Expr::real(1), scope), StaticType::Real);
    EXPECT_EQ(expr::checkType(Expr::integer(1), scope), StaticType::Int);
    EXPECT_EQ(expr::checkType(Expr::boolean(true), scope),
              StaticType::Bool);
    EXPECT_EQ(expr::checkType(Expr::time(), scope), StaticType::Real);
}

TEST(TypeCheckTest, ArithmeticPromotion)
{
    auto scope = emptyScope();
    EXPECT_EQ(expr::checkType(Expr::binary(BinOp::Add, Expr::integer(1),
                                           Expr::integer(2)), scope),
              StaticType::Int);
    EXPECT_EQ(expr::checkType(Expr::binary(BinOp::Add, Expr::integer(1),
                                           Expr::real(2)), scope),
              StaticType::Real);
    EXPECT_EQ(expr::checkType(Expr::binary(BinOp::Div, Expr::integer(1),
                                           Expr::integer(2)), scope),
              StaticType::Real);
}

TEST(TypeCheckTest, RejectsBadOperands)
{
    auto scope = emptyScope();
    EXPECT_THROW(expr::checkType(
                     Expr::binary(BinOp::Add, Expr::boolean(true),
                                  Expr::real(1)), scope),
                 TypeError);
    EXPECT_THROW(expr::checkType(
                     Expr::binary(BinOp::And, Expr::real(1),
                                  Expr::boolean(true)), scope),
                 TypeError);
    EXPECT_THROW(expr::checkType(
                     Expr::unary(UnOp::Not, Expr::real(1)), scope),
                 TypeError);
    EXPECT_THROW(expr::checkType(
                     Expr::ifThenElse(Expr::real(1), Expr::real(1),
                                      Expr::real(2)), scope),
                 TypeError);
}

TEST(TypeCheckTest, IfBranchUnification)
{
    auto scope = emptyScope();
    EXPECT_EQ(expr::checkType(
                  Expr::ifThenElse(Expr::boolean(true), Expr::integer(1),
                                   Expr::real(2.0)), scope),
              StaticType::Real);
    EXPECT_THROW(expr::checkType(
                     Expr::ifThenElse(Expr::boolean(true),
                                      Expr::boolean(true),
                                      Expr::real(2.0)), scope),
                 TypeError);
}

TEST(TypeCheckTest, ScopedVariablesAndAttrs)
{
    expr::TypeScope scope;
    scope.varType = [](const std::string &name)
        -> std::optional<StaticType> {
        if (name == "br")
            return StaticType::Int;
        return std::nullopt;
    };
    scope.attrType = [](const std::string &base, const std::string &attr)
        -> std::optional<StaticType> {
        if (base == "s" && attr == "c")
            return StaticType::Real;
        return std::nullopt;
    };
    EXPECT_EQ(expr::checkType(Expr::var("br"), scope), StaticType::Int);
    EXPECT_EQ(expr::checkType(Expr::attr("s", "c"), scope),
              StaticType::Real);
    EXPECT_THROW(expr::checkType(Expr::var("zz"), scope), TypeError);
    EXPECT_THROW(expr::checkType(Expr::attr("s", "zz"), scope),
                 TypeError);
}

TEST(TypeCheckTest, NodeVarScope)
{
    expr::TypeScope scope;
    scope.nodeVarOk = [](const std::string &name) { return name == "s"; };
    EXPECT_EQ(expr::checkType(Expr::nodeVar("s"), scope),
              StaticType::Real);
    EXPECT_THROW(expr::checkType(Expr::nodeVar("t"), scope), TypeError);
}

TEST(TypeCheckTest, LambdaArity)
{
    expr::TypeScope scope;
    scope.lambdaArity = [](const std::string &base, const std::string &)
        -> std::optional<int> {
        return base == "s" ? std::optional<int>(1) : std::nullopt;
    };
    ExprPtr good = Expr::callExpr(Expr::attr("s", "fn"), {Expr::time()});
    EXPECT_EQ(expr::checkType(good, scope), StaticType::Real);
    ExprPtr bad = Expr::callExpr(Expr::attr("s", "fn"),
                                 {Expr::time(), Expr::real(1)});
    EXPECT_THROW(expr::checkType(bad, scope), TypeError);
}

// --- folding -----------------------------------------------------------

TEST(FoldTest, ConstantFolding)
{
    ExprPtr e = Expr::binary(
        BinOp::Add, Expr::binary(BinOp::Mul, Expr::real(2),
                                 Expr::real(3)),
        Expr::call("sin", {Expr::real(0)}));
    EXPECT_EQ(expr::fold(e)->str(), "6");
}

TEST(FoldTest, AlgebraicIdentities)
{
    ExprPtr x = Expr::var("x");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Add, x, Expr::real(0)))
                  ->str(), "x");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Mul, Expr::real(1), x))
                  ->str(), "x");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Mul, Expr::real(0), x))
                  ->str(), "0");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Sub, x, Expr::real(0)))
                  ->str(), "x");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Div, x, Expr::real(1)))
                  ->str(), "x");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Pow, x, Expr::real(1)))
                  ->str(), "x");
    EXPECT_EQ(expr::fold(Expr::unary(UnOp::Neg,
                                     Expr::unary(UnOp::Neg, x)))
                  ->str(), "x");
}

TEST(FoldTest, NegOneMultiplication)
{
    ExprPtr x = Expr::var("x");
    EXPECT_EQ(expr::fold(Expr::binary(BinOp::Mul, Expr::real(-1), x))
                  ->str(), "(-x)");
}

TEST(FoldTest, ShortCircuitLogic)
{
    ExprPtr b = Expr::var("b"); // untyped but unused
    ExprPtr e = Expr::binary(BinOp::And, Expr::boolean(false), b);
    EXPECT_EQ(expr::fold(e)->str(), "false");
    e = Expr::binary(BinOp::Or, Expr::boolean(true), b);
    EXPECT_EQ(expr::fold(e)->str(), "true");
    e = Expr::binary(BinOp::And, Expr::boolean(true), b);
    EXPECT_EQ(expr::fold(e)->str(), "b");
}

TEST(FoldTest, IfWithConstantCondition)
{
    ExprPtr e = Expr::ifThenElse(Expr::boolean(true), Expr::var("a"),
                                 Expr::var("b"));
    EXPECT_EQ(expr::fold(e)->str(), "a");
}

TEST(FoldTest, Idempotent)
{
    ExprPtr e = Expr::binary(
        BinOp::Mul, Expr::binary(BinOp::Add, Expr::var("x"),
                                 Expr::real(0)),
        Expr::real(1));
    ExprPtr once = expr::fold(e);
    ExprPtr twice = expr::fold(once);
    EXPECT_TRUE(once->equals(*twice));
}

TEST(FoldTest, DoesNotFoldUnknownCalls)
{
    // Unknown function names must keep failing at eval time, not be
    // folded away.
    ExprPtr e = Expr::call("mystery", {Expr::real(1)});
    EXPECT_EQ(expr::fold(e)->kind(), ExprKind::Call);
}

// --- hash-consing ------------------------------------------------------

namespace {

ExprPtr
sampleTree(double k)
{
    return Expr::binary(
        BinOp::Add,
        Expr::binary(BinOp::Mul, Expr::real(k), Expr::stateVar(3)),
        Expr::call("sin", {Expr::binary(BinOp::Div, Expr::time(),
                                        Expr::attr("e", "tau"))}));
}

} // namespace

TEST(InternTest, StructurallyEqualTreesAreOnePointer)
{
    ExprPtr a = sampleTree(2.5);
    ExprPtr b = sampleTree(2.5);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->id(), b->id());
    EXPECT_NE(a->id(), 0u);
    // Shared subtrees are the same node too.
    EXPECT_EQ(a->lhs().get(), b->lhs().get());
}

TEST(InternTest, DistinctTreesAreDistinctNodes)
{
    ExprPtr a = sampleTree(2.5);
    ExprPtr b = sampleTree(2.5000001);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a->id(), b->id());
    EXPECT_TRUE(a->digestHi() != b->digestHi() ||
                a->digestLo() != b->digestLo());
}

TEST(InternTest, DigestIsStableAcrossReconstruction)
{
    ExprPtr a = sampleTree(7.0);
    std::uint64_t hi = a->digestHi();
    std::uint64_t lo = a->digestLo();
    std::uint64_t id = a->id();
    a.reset();
    // The node may have been purged meanwhile; rebuilding must yield
    // the same digest either way (it is structural, not identity).
    ExprPtr b = sampleTree(7.0);
    EXPECT_EQ(b->digestHi(), hi);
    EXPECT_EQ(b->digestLo(), lo);
    // Ids are never reused: same node -> same id; a re-interned node
    // gets a fresh one.
    EXPECT_GE(b->id(), id);
}

TEST(InternTest, LiteralsAreBitExact)
{
    // -0.0 and 0.0 compare equal as doubles but are different
    // programs (1/x diverges to opposite infinities), so they must be
    // different nodes.
    ExprPtr pos = Expr::real(0.0);
    ExprPtr neg = Expr::real(-0.0);
    EXPECT_NE(pos.get(), neg.get());
    EXPECT_FALSE(pos->equals(*neg));

    // Equal-payload NaNs are one node (and equal), even though
    // NaN != NaN as doubles.
    double nan = std::numeric_limits<double>::quiet_NaN();
    ExprPtr a = Expr::real(nan);
    ExprPtr b = Expr::real(nan);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_TRUE(a->equals(*b));
}

TEST(InternTest, StatsCountHitsAndNodes)
{
    expr::InternStats before = expr::internStats();
    ExprPtr a = Expr::binary(BinOp::Pow, Expr::var("intern_stats_x"),
                             Expr::real(41.0));
    ExprPtr b = Expr::binary(BinOp::Pow, Expr::var("intern_stats_x"),
                             Expr::real(41.0));
    expr::InternStats after = expr::internStats();
    EXPECT_EQ(a.get(), b.get());
    // First build interned fresh nodes; the duplicate was served from
    // the table.
    EXPECT_GT(after.internedTotal, before.internedTotal);
    EXPECT_GT(after.hits, before.hits);
    EXPECT_GE(after.liveNodes, 1u);
}

TEST(InternTest, PurgeDropsOnlyUnreferencedNodes)
{
    ExprPtr keep = Expr::binary(BinOp::Add, Expr::var("intern_keep"),
                                Expr::real(17.25));
    {
        ExprPtr drop = Expr::binary(
            BinOp::Sub, Expr::var("intern_drop"), Expr::real(18.75));
        (void)drop;
    }
    expr::internPurge();
    // The kept node survives a purge and is still the canonical one.
    ExprPtr again = Expr::binary(BinOp::Add, Expr::var("intern_keep"),
                                 Expr::real(17.25));
    EXPECT_EQ(keep.get(), again.get());
}

} // namespace
