/**
 * @file
 * Tests for Ark function checking and execution: static checks, graph
 * construction semantics, switches, mismatch seeding, dotted args,
 * and the GraphBuilder C++ path.
 */

#include <gtest/gtest.h>

#include "lang/func.h"
#include "lang/parser.h"
#include "lang/registry.h"
#include "support/error.h"

namespace {

using namespace ark;
using namespace ark::lang;
using expr::Value;
using support::SemaError;
using support::TypeError;

constexpr const char *kLang = R"(
    lang l {
        ntyp(1,sum) V {attr c=real[0,10], attr fixed=real[0,1] const};
        ntyp(0,sum) Inp {attr fn=lambd(a0)};
        etyp E {attr k=real[-8,8] mm(0,0.1)};
        etyp F fixed {};
        prod(e:E,s:V->t:V) t <= e.k*var(s);
    }
)";

class FuncTest : public ::testing::Test
{
  protected:
    FuncTest() { registry_.addProgram(kLang); }

    const Language &language() { return registry_.language("l"); }

    LanguageRegistry registry_;
};

TEST_F(FuncTest, BasicExecution)
{
    registry_.addProgram(R"(
        func f (cap:real[0,10]) uses l {
            node a : V; node b : V;
            edge <a,b> e0 : E;
            set-attr a.c = cap; set-attr b.c = 2.0;
            set-attr a.fixed = 0.5; set-attr b.fixed = 0.5;
            set-attr e0.k = 1.0;
        }
    )");
    dg::Graph graph = registry_.invoke("f", {Value::real(3.0)});
    EXPECT_EQ(graph.numNodes(), 2u);
    EXPECT_EQ(graph.numEdges(), 1u);
    EXPECT_DOUBLE_EQ(
        graph.nodeAttr(*graph.findNode("a"), "c").asReal(), 3.0);
}

TEST_F(FuncTest, ArgumentTypeAndArityChecked)
{
    registry_.addProgram(R"(
        func g (cap:real[0,10]) uses l {
            node a : V; set-attr a.c = cap; set-attr a.fixed = 0.1;
        }
    )");
    EXPECT_THROW(registry_.invoke("g", {}), TypeError);
    EXPECT_THROW(registry_.invoke("g", {Value::real(99.0)}), TypeError);
    EXPECT_THROW(registry_.invoke("g", {Value::boolean(true)}),
                 TypeError);
    EXPECT_NO_THROW(registry_.invoke("g", {Value::integer(4)}));
}

TEST_F(FuncTest, SwitchEvaluation)
{
    registry_.addProgram(R"(
        func s (br:int[0,1]) uses l {
            node a : V; node b : V;
            edge <a,b> e0 : E;
            set-attr a.c = 1.0; set-attr b.c = 1.0;
            set-attr a.fixed = 0.0; set-attr b.fixed = 0.0;
            set-attr e0.k = 1.0;
            set-switch e0 when br;
        }
    )");
    dg::Graph on = registry_.invoke("s", {Value::integer(1)});
    dg::Graph off = registry_.invoke("s", {Value::integer(0)});
    EXPECT_TRUE(on.edge(*on.findEdge("e0")).enabled);
    EXPECT_FALSE(off.edge(*off.findEdge("e0")).enabled);
}

TEST_F(FuncTest, SwitchConditionCanBeBooleanExpr)
{
    registry_.addProgram(R"(
        func sb (n:int[0,5]) uses l {
            node a : V; node b : V;
            edge <a,b> e0 : E;
            set-attr a.c = 1.0; set-attr b.c = 1.0;
            set-attr a.fixed = 0.0; set-attr b.fixed = 0.0;
            set-attr e0.k = 1.0;
            set-switch e0 when n > 2 and n < 5;
        }
    )");
    EXPECT_TRUE(registry_.invoke("sb", {Value::integer(3)})
                    .edge(dg::EdgeId{0}).enabled);
    EXPECT_FALSE(registry_.invoke("sb", {Value::integer(5)})
                     .edge(dg::EdgeId{0}).enabled);
}

TEST_F(FuncTest, StaticChecksRejectBadBodies)
{
    // Unknown node type.
    EXPECT_THROW(registry_.addProgram(
                     "func b1 () uses l { node a : Zz; }"),
                 SemaError);
    // Edge endpoint never declared.
    EXPECT_THROW(registry_.addProgram(
                     "func b2 () uses l { node a : V; "
                     "edge <a,zz> e0 : E; }"),
                 SemaError);
    // set-attr on an undefined element.
    EXPECT_THROW(registry_.addProgram(
                     "func b3 () uses l { set-attr a.c = 1.0; }"),
                 SemaError);
    // Unknown attribute.
    EXPECT_THROW(registry_.addProgram(
                     "func b4 () uses l { node a : V; "
                     "set-attr a.zz = 1.0; }"),
                 SemaError);
    // Duplicate element names.
    EXPECT_THROW(registry_.addProgram(
                     "func b5 () uses l { node a : V; node a : V; }"),
                 SemaError);
    // Value expression referencing an unknown argument.
    EXPECT_THROW(registry_.addProgram(
                     "func b6 () uses l { node a : V; "
                     "set-attr a.c = ghost; }"),
                 SemaError);
    // Lambda assigned to a real attribute.
    EXPECT_THROW(registry_.addProgram(
                     "func b7 () uses l { node a : V; "
                     "set-attr a.c = lambd(t): t; }"),
                 SemaError);
}

TEST_F(FuncTest, ConstAttrCannotComeFromArgs)
{
    // Paper §4.3: const attributes must not be programmed by function
    // arguments.
    EXPECT_THROW(registry_.addProgram(R"(
        func c1 (x:real[0,1]) uses l {
            node a : V; set-attr a.fixed = x;
        }
    )"),
                 SemaError);
    // Constant expressions are fine.
    EXPECT_NO_THROW(registry_.addProgram(R"(
        func c2 () uses l {
            node a : V; set-attr a.c = 1.0; set-attr a.fixed = 0.25;
        }
    )"));
}

TEST_F(FuncTest, FixedEdgesCannotBeSwitched)
{
    EXPECT_THROW(registry_.addProgram(R"(
        func d1 (br:int[0,1]) uses l {
            node a : V; node b : V;
            edge <a,b> e0 : F;
            set-switch e0 when br;
        }
    )"),
                 SemaError);
}

TEST_F(FuncTest, IncompleteGraphRejectedAtInvoke)
{
    registry_.addProgram(R"(
        func inc () uses l { node a : V; }
    )");
    EXPECT_THROW(registry_.invoke("inc", {}), SemaError);
}

TEST_F(FuncTest, MismatchSeedingIsDeterministic)
{
    registry_.addProgram(R"(
        func m () uses l {
            node a : V; node b : V;
            edge <a,b> e0 : E;
            set-attr a.c = 1.0; set-attr b.c = 1.0;
            set-attr a.fixed = 0.0; set-attr b.fixed = 0.0;
            set-attr e0.k = 1.0;
        }
    )");
    auto kOf = [&](std::uint64_t seed) {
        dg::Graph graph = registry_.invoke("m", {}, seed);
        return graph.edgeAttr(*graph.findEdge("e0"), "k").asReal();
    };
    EXPECT_EQ(kOf(5), kOf(5));      // same seed, same device
    EXPECT_NE(kOf(5), kOf(6));      // different fabricated instance
    EXPECT_NE(kOf(5), 1.0);         // mismatch applied
}

TEST_F(FuncTest, DottedArgumentProgramsAttr)
{
    registry_.addProgram(R"(
        func dot (a.c:real[0,10]) uses l {
            node a : V; set-attr a.fixed = 0.0;
        }
    )");
    dg::Graph graph = registry_.invoke("dot", {Value::real(7.5)});
    EXPECT_DOUBLE_EQ(
        graph.nodeAttr(*graph.findNode("a"), "c").asReal(), 7.5);
}

TEST_F(FuncTest, DottedArgumentChecks)
{
    // Node never declared.
    EXPECT_THROW(registry_.addProgram(
                     "func e1 (zz.c:real[0,1]) uses l { node a : V; }"),
                 SemaError);
    // Const attribute cannot be argument-programmed.
    EXPECT_THROW(registry_.addProgram(
                     "func e2 (a.fixed:real[0,1]) uses l "
                     "{ node a : V; }"),
                 SemaError);
}

TEST_F(FuncTest, LambdaArgumentsFlowThrough)
{
    registry_.addProgram(R"(
        func lam (wave:lambd(t)) uses l {
            node i0 : Inp; set-attr i0.fn = wave;
        }
    )");
    expr::Lambda fn{{"t"}, expr::Expr::var("t")};
    dg::Graph graph = registry_.invoke("lam", {Value::function(fn)});
    EXPECT_TRUE(graph.nodeAttr(*graph.findNode("i0"), "fn")
                    .isFunction());
    // Wrong arity rejected by the datatype check.
    expr::Lambda fn2{{"a", "b"}, expr::Expr::var("a")};
    EXPECT_THROW(registry_.invoke("lam", {Value::function(fn2)}),
                 TypeError);
}

// --- GraphBuilder ------------------------------------------------------------

TEST_F(FuncTest, GraphBuilderMirrorsExecutor)
{
    GraphBuilder builder(language(), 5);
    builder.node("a", "V");
    builder.node("b", "V");
    builder.edge("e0", "E", "a", "b");
    builder.attr("a", "c", 1.0);
    builder.attr("b", "c", 1.0);
    builder.attr("a", "fixed", 0.0);
    builder.attr("b", "fixed", 0.0);
    builder.attr("e0", "k", 1.0);
    dg::Graph graph = builder.take();
    EXPECT_EQ(graph.numNodes(), 2u);
    // Mismatch sampled through the same path as the executor.
    EXPECT_NE(graph.edgeAttr(*graph.findEdge("e0"), "k").asReal(), 1.0);
}

TEST_F(FuncTest, GraphBuilderErrors)
{
    GraphBuilder builder(language(), 0);
    builder.node("a", "V");
    EXPECT_THROW(builder.edge("e0", "E", "a", "nope"), SemaError);
    EXPECT_THROW(builder.attr("ghost", "c", 1.0), SemaError);
    EXPECT_THROW(builder.enable("ghost", false), SemaError);
    EXPECT_THROW(builder.take(), SemaError); // incomplete attrs
}

} // namespace
