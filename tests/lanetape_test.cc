/**
 * @file
 * Tests for lane-parallel tape execution: broadcast and merged
 * construction, per-lane constant tables, structural-compatibility
 * gating, and the lane-vs-scalar equivalence property across random
 * TLN/OBC/CNN systems at every supported width.
 *
 * Tolerance note: a LaneTape lane executes the source FusedTape's
 * instruction stream with the same IEEE operations in the same order,
 * so lane outputs are asserted bit-identical to the scalar fused
 * path (tolerance zero), not merely close. (An FMA-contracting build
 * of the *integrator* loops can relax trajectory-level identity — see
 * ARK_ENABLE_NATIVE — but the RHS programs compared here contain one
 * rounding per instruction on every path.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numbers>

#include "apps/puf.h"
#include "compiler/compiler.h"
#include "expr/fusedtape.h"
#include "expr/lanetape.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::FusedTape;
using expr::LaneTape;

/** Evaluates one lane block and checks every lane against scalar. */
void
expectLanesMatchScalar(const LaneTape &lane,
                       const std::vector<const FusedTape *> &tapes,
                       const std::vector<std::vector<double>> &states,
                       double t)
{
    const std::size_t n = lane.numOutputs();
    const std::size_t width = lane.width();
    std::vector<double> soaState(n * width, 0.0);
    for (std::size_t l = 0; l < lane.lanes(); ++l)
        for (std::size_t i = 0; i < n; ++i)
            soaState[i * width + l] = states[l][i];
    // Padding lanes replicate lane 0, as the batch integrator does.
    for (std::size_t l = lane.lanes(); l < width; ++l)
        for (std::size_t i = 0; i < n; ++i)
            soaState[i * width + l] = states[0][i];

    std::vector<double> soaOut(n * width);
    std::vector<double> regs(lane.scratchSize());
    lane.evalInto(soaState.data(), t, soaOut.data(), regs.data());

    for (std::size_t l = 0; l < lane.lanes(); ++l) {
        std::vector<double> scalar = tapes[l]->evalAlloc(states[l], t);
        ASSERT_EQ(scalar.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(soaOut[i * width + l], scalar[i])
                << "lane " << l << " output " << i;
        }
    }
}

TEST(LaneTapeTest, BroadcastMatchesScalarAtEveryWidth)
{
    // dq0 = sin(q0 - q1) * q1, dq1 = q0 / (q1 + 3) + t.
    std::vector<ExprPtr> outputs{
        Expr::binary(BinOp::Mul,
                     Expr::call("sin",
                                {Expr::binary(BinOp::Sub,
                                              Expr::stateVar(0),
                                              Expr::stateVar(1))}),
                     Expr::stateVar(1)),
        Expr::binary(BinOp::Add,
                     Expr::binary(BinOp::Div, Expr::stateVar(0),
                                  Expr::binary(BinOp::Add,
                                               Expr::stateVar(1),
                                               Expr::real(3.0))),
                     Expr::time()),
    };
    FusedTape fused = FusedTape::compile(outputs);
    support::Rng rng(42);
    for (std::size_t lanes : {1u, 2u, 3u, 4u, 6u, 8u}) {
        LaneTape lane = LaneTape::broadcast(fused, lanes);
        EXPECT_EQ(lane.lanes(), lanes);
        EXPECT_GE(lane.width(), lanes);
        std::vector<const FusedTape *> tapes(lanes, &fused);
        std::vector<std::vector<double>> states;
        for (std::size_t l = 0; l < lanes; ++l)
            states.push_back(
                {rng.uniform(-2.0, 2.0), rng.uniform(-1.0, 1.0)});
        expectLanesMatchScalar(lane, tapes, states, 0.75);
    }
}

TEST(LaneTapeTest, WidthIsSmallestCoveringPowerOfTwo)
{
    FusedTape fused = FusedTape::compile({Expr::stateVar(0)});
    EXPECT_EQ(LaneTape::broadcast(fused, 1).width(), 1u);
    EXPECT_EQ(LaneTape::broadcast(fused, 2).width(), 2u);
    EXPECT_EQ(LaneTape::broadcast(fused, 3).width(), 4u);
    EXPECT_EQ(LaneTape::broadcast(fused, 5).width(), 8u);
    EXPECT_EQ(LaneTape::broadcast(fused, 8).width(), 8u);
}

TEST(LaneTapeTest, MergeCarriesPerLaneConstants)
{
    // Same structure, different parameters: dq = -k*q + c with
    // (k, c) varying per lane — the PUF-mismatch shape in miniature.
    auto makeTape = [](double k, double c) {
        return FusedTape::compile({Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::real(-k), Expr::stateVar(0)),
            Expr::real(c))});
    };
    FusedTape a = makeTape(2.0, 0.5);
    FusedTape b = makeTape(3.5, -1.25);
    FusedTape c = makeTape(0.125, 7.0);
    ASSERT_TRUE(LaneTape::compatible(a, b));
    std::vector<const FusedTape *> tapes{&a, &b, &c};
    std::optional<LaneTape> lane = LaneTape::merge(tapes);
    ASSERT_TRUE(lane.has_value());
    EXPECT_EQ(lane->lanes(), 3u);
    EXPECT_EQ(lane->width(), 4u);
    std::vector<std::vector<double>> states{{1.5}, {-0.75}, {4.0}};
    expectLanesMatchScalar(*lane, tapes, states, 0.0);
}

TEST(LaneTapeTest, MergeRejectsStructuralDivergence)
{
    // Different operator: same instruction count, different stream.
    FusedTape add = FusedTape::compile({Expr::binary(
        BinOp::Add, Expr::stateVar(0), Expr::real(2.0))});
    FusedTape mul = FusedTape::compile({Expr::binary(
        BinOp::Mul, Expr::stateVar(0), Expr::real(2.0))});
    EXPECT_FALSE(LaneTape::compatible(add, mul));
    EXPECT_FALSE(LaneTape::merge({&add, &mul}).has_value());

    // Constant-folding divergence: x*1 folds away, x*1.5 does not, so
    // the "same" expression with different constants can still split
    // structurally — merge must detect it, not mis-batch.
    FusedTape identity = FusedTape::compile({Expr::binary(
        BinOp::Mul, Expr::stateVar(0), Expr::real(1.0))});
    FusedTape scaled = FusedTape::compile({Expr::binary(
        BinOp::Mul, Expr::stateVar(0), Expr::real(1.5))});
    EXPECT_FALSE(LaneTape::compatible(identity, scaled));
    EXPECT_FALSE(LaneTape::merge({&identity, &scaled}).has_value());
}

TEST(LaneTapeTest, PufChipsShareOneProgram)
{
    // Two fabricated chips of one PUF design differ only in their
    // sampled mismatch constants: their fused programs must merge.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmcTln = registry.language("gmc-tln");
    apps::PufDesign design;
    design.mainSections = 8;
    design.numBranches = 2;
    design.stubSections = 2;
    apps::TlnPuf puf(gmcTln, design);

    std::vector<compiler::OdeSystem> chips;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        dg::Graph graph = puf.buildGraph(1, seed);
        validator::validateOrThrow(graph, gmcTln);
        chips.push_back(compiler::compile(graph, gmcTln));
    }
    ASSERT_TRUE(LaneTape::compatible(chips[0].fusedTape(),
                                     chips[1].fusedTape()));
    std::vector<const FusedTape *> tapes{&chips[0].fusedTape(),
                                         &chips[1].fusedTape(),
                                         &chips[2].fusedTape()};
    std::optional<LaneTape> lane = LaneTape::merge(tapes);
    ASSERT_TRUE(lane.has_value());

    support::Rng rng(7);
    std::vector<std::vector<double>> states;
    for (int l = 0; l < 3; ++l) {
        std::vector<double> state;
        for (std::size_t i = 0; i < chips[0].size(); ++i)
            state.push_back(rng.uniform(-1.0, 1.0));
        states.push_back(std::move(state));
    }
    expectLanesMatchScalar(*lane, tapes, states, 1e-8);
}

/**
 * Property: on real compiled systems, every lane of a broadcast
 * LaneTape at widths 1/2/4/8 reproduces the scalar fused path
 * bit-for-bit on random states.
 */
class LaneEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *LaneEquivalence::registry_ = nullptr;

void
expectLaneAgreement(const compiler::OdeSystem &system, support::Rng &rng)
{
    const FusedTape &fused = system.fusedTape();
    for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
        LaneTape lane = LaneTape::broadcast(fused, lanes);
        std::vector<const FusedTape *> tapes(lanes, &fused);
        std::vector<std::vector<double>> states;
        for (std::size_t l = 0; l < lanes; ++l) {
            std::vector<double> state;
            for (std::size_t i = 0; i < system.size(); ++i)
                state.push_back(rng.uniform(-2.0, 2.0));
            states.push_back(std::move(state));
        }
        expectLanesMatchScalar(lane, tapes, states,
                               rng.uniform(0.0, 1e-7));
    }
}

TEST_P(LaneEquivalence, RandomTlnSystem)
{
    support::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(3, 24));
    spec.inductance = rng.uniform(0.5e-9, 2e-9);
    spec.capacitance = rng.uniform(0.5e-9, 2e-9);
    const lang::Language &tln = registry_->language("tln");
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    expectLaneAgreement(system, rng);
}

TEST_P(LaneEquivalence, RandomObcSystem)
{
    support::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = static_cast<int>(rng.uniformInt(3, 6));
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            if (rng.bernoulli(0.6))
                instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(
            rng.uniform(0.0, 2.0 * std::numbers::pi));
    const lang::Language &obc = registry_->language("obc");
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    expectLaneAgreement(system, rng);
}

TEST_P(LaneEquivalence, RandomCnnSystem)
{
    support::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::cnn::CnnSpec spec;
    spec.width = static_cast<int>(rng.uniformInt(3, 6));
    spec.height = static_cast<int>(rng.uniformInt(3, 6));
    std::vector<double> input;
    for (int i = 0; i < spec.width * spec.height; ++i)
        input.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
    const lang::Language &cnn = registry_->language("cnn");
    compiler::OdeSystem system = compiler::compile(
        paradigms::cnn::buildCnn(cnn, spec, input), cnn);
    expectLaneAgreement(system, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaneEquivalence, ::testing::Range(0, 4));

TEST(LaneTapeTest, FusedMulAddExecutesLanewiseBitIdentical)
{
    // An FMA-contracted Kuramoto program across lanes: both executors
    // call std::fma per lane, so every lane must reproduce the scalar
    // FMA tape bit for bit, exactly like the plain opcodes.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    support::Rng rng(4242);
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = 5;
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(0.2 * v);
    const lang::Language &obc = registry.language("obc");
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    const FusedTape &fma = system.fusedTapeFma();
    ASSERT_GT(fma.fmaContractions(), 0u);

    for (std::size_t lanes : {2u, 4u, 8u}) {
        LaneTape lane = LaneTape::broadcast(fma, lanes);
        std::vector<const FusedTape *> tapes(lanes, &fma);
        std::vector<std::vector<double>> states;
        for (std::size_t l = 0; l < lanes; ++l) {
            std::vector<double> state;
            for (std::size_t i = 0; i < system.size(); ++i)
                state.push_back(rng.uniform(-2.0, 2.0));
            states.push_back(std::move(state));
        }
        expectLanesMatchScalar(lane, tapes, states, 1e-8);
    }
}

} // namespace
