/**
 * @file
 * Tests for the Ark lexer: token categories, numeric literal forms,
 * comments, source locations, and error reporting.
 */

#include <gtest/gtest.h>

#include "lang/token.h"
#include "support/error.h"

namespace {

using namespace ark::lang;
using ark::support::LexError;

std::vector<Token>
lex(const std::string &src)
{
    return tokenize(src);
}

TEST(LexerTest, EmptyInputYieldsEof)
{
    auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_TRUE(tokens[0].is(TokenKind::EndOfFile));
}

TEST(LexerTest, Identifiers)
{
    auto tokens = lex("lang V IN_V _x a1");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].text, "lang");
    EXPECT_EQ(tokens[2].text, "IN_V");
    EXPECT_EQ(tokens[3].text, "_x");
    EXPECT_EQ(tokens[4].text, "a1");
}

TEST(LexerTest, IntegerLiterals)
{
    auto tokens = lex("0 42 1000000");
    EXPECT_TRUE(tokens[0].is(TokenKind::IntLit));
    EXPECT_EQ(tokens[1].intValue, 42);
    EXPECT_EQ(tokens[2].intValue, 1000000);
}

TEST(LexerTest, RealLiterals)
{
    auto tokens = lex("1.5 1e-09 2e-8 1E6 0.5 1e+3");
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(tokens[static_cast<std::size_t>(i)].is(
            TokenKind::RealLit)) << i;
    EXPECT_DOUBLE_EQ(tokens[0].realValue, 1.5);
    EXPECT_DOUBLE_EQ(tokens[1].realValue, 1e-9);
    EXPECT_DOUBLE_EQ(tokens[2].realValue, 2e-8);
    EXPECT_DOUBLE_EQ(tokens[3].realValue, 1e6);
    EXPECT_DOUBLE_EQ(tokens[5].realValue, 1e3);
}

TEST(LexerTest, ExponentRequiresDigits)
{
    // "2e" then identifier continuation is not a float exponent; the
    // 'e' belongs to a following identifier-ish token stream.
    auto tokens = lex("2e");
    EXPECT_TRUE(tokens[0].is(TokenKind::IntLit));
    EXPECT_EQ(tokens[0].intValue, 2);
    EXPECT_EQ(tokens[1].text, "e");
}

TEST(LexerTest, MinusBindsSeparately)
{
    // 'a-b' lexes as three tokens; name joining happens in the parser.
    auto tokens = lex("a-b");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_TRUE(tokens[1].is(TokenKind::Minus));
}

TEST(LexerTest, OperatorsAndPunctuation)
{
    auto tokens = lex("{ } ( ) [ ] , : ; . = -> <= < > >= == != + - * / ^");
    std::vector<TokenKind> expected{
        TokenKind::LBrace, TokenKind::RBrace, TokenKind::LParen,
        TokenKind::RParen, TokenKind::LBracket, TokenKind::RBracket,
        TokenKind::Comma, TokenKind::Colon, TokenKind::Semi,
        TokenKind::Dot, TokenKind::Assign, TokenKind::Arrow,
        TokenKind::ProdApply, TokenKind::Lt, TokenKind::Gt,
        TokenKind::Ge, TokenKind::EqEq, TokenKind::NotEq,
        TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
        TokenKind::Slash, TokenKind::Caret, TokenKind::EndOfFile};
    ASSERT_EQ(tokens.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(tokens[i].kind, expected[i]) << i;
}

TEST(LexerTest, ProdApplyVsComparison)
{
    auto tokens = lex("s<=e t<e");
    EXPECT_TRUE(tokens[1].is(TokenKind::ProdApply));
    EXPECT_TRUE(tokens[4].is(TokenKind::Lt));
}

TEST(LexerTest, ArrowVsMinus)
{
    auto tokens = lex("a->b a-b a- b");
    EXPECT_TRUE(tokens[1].is(TokenKind::Arrow));
    EXPECT_TRUE(tokens[4].is(TokenKind::Minus));
    EXPECT_TRUE(tokens[7].is(TokenKind::Minus));
}

TEST(LexerTest, Comments)
{
    auto tokens = lex("a // comment -> ignored\nb # hash comment\nc");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, SourceLocations)
{
    auto tokens = lex("ab\n  cd");
    EXPECT_EQ(tokens[0].loc.line, 1);
    EXPECT_EQ(tokens[0].loc.column, 1);
    EXPECT_EQ(tokens[1].loc.line, 2);
    EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(LexerTest, RejectsStrayCharacters)
{
    EXPECT_THROW(lex("a @ b"), LexError);
    EXPECT_THROW(lex("!x"), LexError); // '!' only valid in '!='
}

TEST(LexerTest, PaperSnippetLexes)
{
    // A line straight from Figure 9.
    auto tokens = lex("prod(e:Em,s:V->t:I) s<=-e.ws *var(t)/s.c;");
    EXPECT_GT(tokens.size(), 20u);
    EXPECT_EQ(tokens[0].text, "prod");
    EXPECT_TRUE(tokens.back().is(TokenKind::EndOfFile));
}

TEST(LexerTest, DecimalWithoutFractionIsMemberAccess)
{
    // "s.c" must not lex as a malformed number.
    auto tokens = lex("s.c");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].text, "s");
    EXPECT_TRUE(tokens[1].is(TokenKind::Dot));
    EXPECT_EQ(tokens[2].text, "c");
}

} // namespace
