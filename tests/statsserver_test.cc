/**
 * @file
 * Tests for the live stats endpoint (telemetry::StatsServer): start/
 * stop lifecycle, Prometheus and JSON payload shape, concurrent
 * scrapes during an active ensemble, malformed and partial HTTP
 * requests, and the structured port-in-use start failure.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "lang/registry.h"
#include "sim/sim.h"
#include "support/statsserver.h"
#include "support/telemetry.h"

#include "json_checker.h"

namespace {

using namespace ark;
using telemetry::Registry;
using telemetry::StatsServer;

/** Restores the metrics switch on exit. */
struct MetricsGuard
{
    MetricsGuard() : was_(telemetry::metricsEnabled()) {}
    ~MetricsGuard() { telemetry::setMetricsEnabled(was_); }
    bool was_;
};

/** Blocking loopback client: sends `request` bytes, reads to EOF. */
std::string
rawRequest(std::uint16_t port, const std::string &request,
           bool halfRequest = false)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    if (halfRequest) {
        // Abandon the connection mid-request; the server must carry
        // on serving others (verified by the caller's next scrape).
        ::close(fd);
        return "";
    }
    std::string response;
    char buffer[4096];
    while (true) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

std::string
httpGet(std::uint16_t port, const std::string &path)
{
    return rawRequest(port, "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n");
}

/** Response body (after the blank line). */
std::string
bodyOf(const std::string &response)
{
    const std::size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? "" : response.substr(split + 4);
}

/** dx/dt = -k x (the telemetry test's pipeline system). */
compiler::OdeSystem
decaySystem(lang::LanguageRegistry &registry, double k, double x0)
{
    if (!registry.findLanguage("decay")) {
        registry.addProgram(R"(
            lang decay {
                ntyp(1,sum) X {attr k=real[0,100],
                               init(0) real[-100,100]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.k*var(s);
            }
        )");
    }
    lang::GraphBuilder builder(registry.language("decay"), 0);
    builder.node("x", "X");
    builder.attr("x", "k", k);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, x0);
    return compiler::compile(builder.take(),
                             registry.language("decay"));
}

TEST(StatsServerTest, StartServeStopLifecycle)
{
    MetricsGuard guard;
    telemetry::setMetricsEnabled(true);
    Registry::shared().counter("ark.test.ss_counter").add(7);
    Registry::shared().histogram("ark.test.ss_hist").record(100);

    StatsServer server;
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0);
    std::string error;
    ASSERT_TRUE(server.start(0, &error)) << error;
    EXPECT_TRUE(server.running());
    ASSERT_GT(server.port(), 0);

    const std::string metrics = httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain"), std::string::npos);
    const std::string body = bodyOf(metrics);
    // Dots become underscores; counters and histograms both export.
    EXPECT_NE(body.find("# TYPE ark_test_ss_counter counter"),
              std::string::npos);
    EXPECT_NE(body.find("ark_test_ss_counter 7"), std::string::npos);
    EXPECT_NE(body.find("# TYPE ark_test_ss_hist histogram"),
              std::string::npos);
    EXPECT_NE(body.find("ark_test_ss_hist_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(body.find("ark_test_ss_hist_count"), std::string::npos);
    // The health family registers with the server itself.
    EXPECT_NE(body.find("ark_health_stalled_runs"), std::string::npos);

    // JSON endpoint: parses, carries uptime/rates/metrics; a second
    // scrape has a previous snapshot to compute rates against.
    for (int scrape = 0; scrape < 2; ++scrape) {
        const std::string stats =
            httpGet(server.port(), "/stats.json");
        EXPECT_NE(stats.find("HTTP/1.1 200"), std::string::npos);
        std::string statsBody = bodyOf(stats);
        testutil::JsonChecker checker(statsBody);
        EXPECT_TRUE(checker.valid()) << statsBody;
        EXPECT_NE(statsBody.find("\"uptime_ns\""), std::string::npos);
        EXPECT_NE(statsBody.find("\"rates\""), std::string::npos);
        EXPECT_NE(statsBody.find("\"metrics\""), std::string::npos);
    }

    const std::string health = httpGet(server.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_GE(server.scrapes(), 4u);

    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0);
    // Restartable after stop.
    ASSERT_TRUE(server.start(0, &error)) << error;
    EXPECT_NE(httpGet(server.port(), "/healthz").find("200"),
              std::string::npos);
    server.stop();
}

TEST(StatsServerTest, MalformedAndPartialRequestsAreHarmless)
{
    MetricsGuard guard;
    telemetry::setMetricsEnabled(true);
    StatsServer server;
    ASSERT_TRUE(server.start(0));

    EXPECT_NE(rawRequest(server.port(), "NOT-HTTP AT ALL\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    EXPECT_NE(rawRequest(server.port(),
                         "POST /metrics HTTP/1.1\r\n\r\n")
                  .find("HTTP/1.1 405"),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/no/such/endpoint")
                  .find("HTTP/1.1 404"),
              std::string::npos);
    // A connection abandoned mid-request must not wedge the server.
    rawRequest(server.port(), "GET /metr", /*halfRequest=*/true);
    EXPECT_NE(httpGet(server.port(), "/healthz")
                  .find("HTTP/1.1 200"),
              std::string::npos);
    server.stop();
}

TEST(StatsServerTest, PortInUseIsStructuredError)
{
    StatsServer first;
    ASSERT_TRUE(first.start(0));
    StatsServer second;
    std::string error;
    EXPECT_FALSE(second.start(first.port(), &error));
    EXPECT_FALSE(second.running());
    EXPECT_NE(error.find("bind failed"), std::string::npos) << error;

    // Double-start of a running server is also a structured error.
    error.clear();
    EXPECT_FALSE(first.start(0, &error));
    EXPECT_FALSE(error.empty());
    first.stop();
}

TEST(StatsServerTest, ConcurrentScrapeDuringActiveEnsemble)
{
    MetricsGuard guard;
    telemetry::setMetricsEnabled(true);
    StatsServer server;
    ASSERT_TRUE(server.start(0));

    lang::LanguageRegistry registry;
    std::vector<compiler::OdeSystem> systems;
    for (int i = 0; i < 6; ++i)
        systems.push_back(decaySystem(registry, 1.0 + i, 2.0 + i));
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);
    sim::EnsembleOptions options;
    options.sim.dt = 1e-4;

    // Scrape continuously while ensembles run: every response must be
    // well-formed, and the sim family must be present once the
    // ensembles have executed with metrics on.
    std::thread worker([&] {
        for (int pass = 0; pass < 5; ++pass)
            sim::simulateEnsemble(pointers, 0.0, 1.0, options);
    });
    std::vector<std::string> bodies;
    for (int scrape = 0; scrape < 8; ++scrape) {
        const std::string response =
            httpGet(server.port(), "/metrics");
        EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
        bodies.push_back(bodyOf(response));
    }
    worker.join();
    const std::string final = bodyOf(httpGet(server.port(), "/metrics"));
    EXPECT_NE(final.find("ark_sim_"), std::string::npos);
    for (const std::string &body : bodies)
        EXPECT_NE(body.find("# TYPE"), std::string::npos);
    server.stop();
}

} // namespace
