/**
 * @file
 * Tests for graph casting (paper §4.1.1): graphs of derived types
 * cast to ancestor languages, dropping hardware nonidealities while
 * preserving topology, nominal parameters, and switch state.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "lang/cast.h"
#include "lang/func.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "support/linalg.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace ptln = paradigms::tln;

class CastTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *CastTest::registry_ = nullptr;

TEST_F(CastTest, MismatchedLineCastsToIdealTln)
{
    const lang::Language &tln = registry_->language("tln");
    const lang::Language &gmc = registry_->language("gmc-tln");

    ptln::LineSpec spec;
    spec.sections = 6;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = 21;
    dg::Graph mismatched = ptln::buildLine(gmc, spec);

    dg::Graph cast = lang::castGraph(mismatched, tln);
    EXPECT_EQ(cast.langName(), "tln");
    EXPECT_EQ(cast.numNodes(), mismatched.numNodes());
    EXPECT_EQ(cast.numEdges(), mismatched.numEdges());
    // Derived types collapse onto their ancestors.
    EXPECT_EQ(cast.node(*cast.findNode("V_1")).type, "V");
    EXPECT_EQ(cast.edge(*cast.findEdge("EV_0")).type, "E");
    // The cast graph is a valid TLN program.
    EXPECT_TRUE(validator::validate(cast, tln).ok);
}

TEST_F(CastTest, CastDropsMismatchKeepsNominal)
{
    const lang::Language &tln = registry_->language("tln");
    const lang::Language &gmc = registry_->language("gmc-tln");
    ptln::LineSpec spec;
    spec.sections = 4;
    spec.mismatchC = true;
    spec.seed = 5;
    dg::Graph mismatched = ptln::buildLine(gmc, spec);
    // Sampled value differs from nominal...
    dg::NodeId vm = *mismatched.findNode("V_1");
    ASSERT_NE(mismatched.nodeAttr(vm, "c").asReal(), 1e-9);
    // ...but the cast restores the written (nominal) 1e-9.
    dg::Graph cast = lang::castGraph(mismatched, tln);
    EXPECT_DOUBLE_EQ(
        cast.nodeAttr(*cast.findNode("V_1"), "c").asReal(), 1e-9);
}

TEST_F(CastTest, CastDynamicsMatchIdealBuild)
{
    // Casting a mismatched line and simulating equals building the
    // ideal line directly — the §4.1.1 compatibility guarantee,
    // observed through the compiler.
    const lang::Language &tln = registry_->language("tln");
    const lang::Language &gmc = registry_->language("gmc-tln");
    ptln::LineSpec spec;
    spec.sections = 6;
    ptln::LineSpec mmSpec = spec;
    mmSpec.mismatchC = true;
    mmSpec.mismatchGm = true;
    mmSpec.seed = 77;

    dg::Graph ideal = ptln::buildLine(tln, spec);
    dg::Graph cast =
        lang::castGraph(ptln::buildLine(gmc, mmSpec), tln);

    auto simulate = [&](const dg::Graph &graph) {
        compiler::OdeSystem system = compiler::compile(graph, tln);
        sim::SimOptions options;
        options.recordDt = 1e-10;
        sim::SimResult result =
            sim::simulate(system, 0.0, 2e-8, options);
        return result.trajectory.resample(
            system.stateIndex(ptln::outputNode(), 0), 0.0, 2e-8, 200);
    };
    EXPECT_LT(support::relativeRmse(simulate(ideal), simulate(cast)),
              1e-9);
}

TEST_F(CastTest, SwitchStatePreserved)
{
    const lang::Language &tln = registry_->language("tln");
    dg::Graph branched =
        registry_->invoke("br-func", {expr::Value::integer(0)});
    dg::Graph cast = lang::castGraph(branched, tln);
    EXPECT_FALSE(cast.edge(*cast.findEdge("E_6")).enabled);
    dg::Graph branchedOn =
        registry_->invoke("br-func", {expr::Value::integer(1)});
    dg::Graph castOn = lang::castGraph(branchedOn, tln);
    EXPECT_TRUE(castOn.edge(*castOn.findEdge("E_6")).enabled);
}

TEST_F(CastTest, ForeignTypesRejected)
{
    const lang::Language &obc = registry_->language("obc");
    ptln::LineSpec spec;
    spec.sections = 3;
    dg::Graph line =
        ptln::buildLine(registry_->language("tln"), spec);
    EXPECT_THROW(lang::castGraph(line, obc), support::SemaError);
}

TEST_F(CastTest, IdentityCast)
{
    // Casting a graph to its own language is a nominal-value round
    // trip.
    const lang::Language &tln = registry_->language("tln");
    ptln::LineSpec spec;
    spec.sections = 3;
    dg::Graph line = ptln::buildLine(tln, spec);
    dg::Graph same = lang::castGraph(line, tln);
    EXPECT_EQ(same.numNodes(), line.numNodes());
    EXPECT_TRUE(validator::validate(same, tln).ok);
}

} // namespace
