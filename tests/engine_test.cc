/**
 * @file
 * Tests for the content-addressed compiled-artifact engine:
 * fingerprint lane semantics, the hash-equality => program-equality
 * property on random TLN/OBC/CNN graphs, ArtifactCache hit/miss/
 * eviction accounting, bit-identity of cached-vs-cold ensembles at
 * several thread counts, and the cache-backed SPICE sweep against
 * spice::TransientBatch (bitwise parity + warm-factor reuse).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "apps/puf.h"
#include "compiler/compiler.h"
#include "engine/cache.h"
#include "engine/fingerprint.h"
#include "engine/session.h"
#include "lang/func.h"
#include "lang/registry.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "spice/batch.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "support/error.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace ptln = paradigms::tln;

class EngineTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }

    static const lang::Language &lang(const char *name)
    {
        return registry_->language(name);
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *EngineTest::registry_ = nullptr;

/** Bit-exact double comparison (NaN-safe, -0.0 != 0.0). */
bool
sameBits(double x, double y)
{
    return std::bit_cast<std::uint64_t>(x) ==
           std::bit_cast<std::uint64_t>(y);
}

/** Full program equality: vars, initial state, and both tape variants. */
::testing::AssertionResult
samePrograms(const compiler::OdeSystem &a, const compiler::OdeSystem &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "state dim differs";
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.vars()[i].node != b.vars()[i].node ||
            a.vars()[i].derivative != b.vars()[i].derivative)
            return ::testing::AssertionFailure()
                   << "state var " << i << " differs";
        if (!sameBits(a.initialState()[i], b.initialState()[i]))
            return ::testing::AssertionFailure()
                   << "initial state " << i << " differs";
    }
    for (bool fma : {false, true}) {
        const auto &ta = a.rhsTape(fma).ops();
        const auto &tb = b.rhsTape(fma).ops();
        if (ta.size() != tb.size())
            return ::testing::AssertionFailure()
                   << "tape length differs (fma=" << fma << ")";
        for (std::size_t i = 0; i < ta.size(); ++i) {
            if (ta[i].op != tb[i].op || ta[i].builtin != tb[i].builtin ||
                ta[i].dst != tb[i].dst || ta[i].a != tb[i].a ||
                ta[i].b != tb[i].b || ta[i].c != tb[i].c ||
                !sameBits(ta[i].imm, tb[i].imm))
                return ::testing::AssertionFailure()
                       << "op " << i << " differs (fma=" << fma << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

TEST_F(EngineTest, FingerprintIsDeterministicAcrossRebuilds)
{
    ptln::LineSpec spec;
    spec.sections = 5;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = 42;
    const lang::Language &gmc = lang("gmc-tln");
    dg::Graph a = ptln::buildLine(gmc, spec);
    dg::Graph b = ptln::buildLine(gmc, spec);
    engine::GraphFingerprint fa = engine::fingerprintGraph(a, gmc);
    engine::GraphFingerprint fb = engine::fingerprintGraph(b, gmc);
    EXPECT_EQ(fa.structure, fb.structure);
    EXPECT_EQ(fa.values, fb.values);
    EXPECT_EQ(fa.combined, fb.combined);
    EXPECT_EQ(fa.combined.str(), fb.combined.str());
    EXPECT_EQ(fa.combined.str().size(), 32u);
}

TEST_F(EngineTest, ConstantLaneSplitsOutMismatchValues)
{
    // Two fabricated chips of one PUF challenge differ only in
    // sampled mismatch constants: equal structure lane (they
    // lane-batch), different values lane. A different challenge flips
    // switch states: different structure lane.
    apps::PufDesign design;
    design.mainSections = 6;
    design.numBranches = 2;
    design.stubSections = 2;
    const lang::Language &gmc = lang("gmc-tln");
    apps::TlnPuf puf(gmc, design);
    engine::GraphFingerprint chip1 =
        engine::fingerprintGraph(puf.buildGraph(1, 7), gmc);
    engine::GraphFingerprint chip2 =
        engine::fingerprintGraph(puf.buildGraph(1, 8), gmc);
    engine::GraphFingerprint other =
        engine::fingerprintGraph(puf.buildGraph(2, 7), gmc);

    EXPECT_EQ(chip1.structure, chip2.structure);
    EXPECT_NE(chip1.values, chip2.values);
    EXPECT_NE(chip1.combined, chip2.combined);
    EXPECT_NE(chip1.structure, other.structure);
}

TEST_F(EngineTest, ValuePerturbationChangesOnlyValueLane)
{
    ptln::LineSpec spec;
    spec.sections = 4;
    const lang::Language &tln = lang("tln");
    engine::GraphFingerprint base =
        engine::fingerprintGraph(ptln::buildLine(tln, spec), tln);
    spec.capacitance = 1.0000000000000002e-9; // one ulp-ish nudge
    engine::GraphFingerprint nudged =
        engine::fingerprintGraph(ptln::buildLine(tln, spec), tln);
    EXPECT_EQ(base.structure, nudged.structure);
    EXPECT_NE(base.values, nudged.values);
    EXPECT_NE(base.combined, nudged.combined);
}

TEST_F(EngineTest, LanguageContentIsPartOfTheAddress)
{
    // Two registries each define a language named "probe" extending
    // tln — once with a production-rule coefficient of 2, once with
    // 3. The same graph content written in either must address
    // different artifacts (the process-wide cache would otherwise
    // serve one language's compiled dynamics for the other), while
    // content-equal languages from different registries hash alike.
    auto probeFingerprint = [](const std::string &coeff) {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        registry.addProgram(
            "lang probe inherits tln {\n    etyp Eprobe {};\n"
            "    prod(e:Eprobe,s:V->t:I) t <= " +
            coeff + "*var(s)/t.l;\n}\n");
        const lang::Language &probe = registry.language("probe");
        lang::GraphBuilder builder(probe, 0);
        builder.node("a", "V");
        builder.attr("a", "c", 1e-9);
        builder.attr("a", "g", 0.0);
        builder.edge("self_a", "E", "a", "a");
        dg::Graph graph = builder.take();
        return engine::fingerprintGraph(graph, probe);
    };
    engine::GraphFingerprint twoA = probeFingerprint("2");
    engine::GraphFingerprint twoB = probeFingerprint("2");
    engine::GraphFingerprint three = probeFingerprint("3");
    EXPECT_EQ(twoA.combined, twoB.combined);
    EXPECT_NE(twoA.structure, three.structure);
    EXPECT_NE(twoA.combined, three.combined);
}

/**
 * The cache-key contract: equal combined fingerprints => bit-identical
 * compiled programs. Random graphs drawn from deliberately small
 * discrete parameter spaces so the draw repeats content (real
 * collisions, not just self-comparison).
 */
TEST_F(EngineTest, HashEqualityImpliesProgramEquality)
{
    struct Sample
    {
        engine::Fingerprint fp;
        compiler::OdeSystem system;
    };
    std::vector<Sample> samples;
    support::Rng rng(123);

    const lang::Language &tln = lang("tln");
    const lang::Language &obc = lang("obc");
    const lang::Language &cnn = lang("cnn");
    for (int draw = 0; draw < 25; ++draw) {
        ptln::LineSpec spec;
        spec.sections = static_cast<int>(rng.uniformInt(3, 4));
        spec.inductance = rng.bernoulli(0.5) ? 1e-9 : 2e-9;
        spec.capacitance = rng.bernoulli(0.5) ? 1e-9 : 1.5e-9;
        dg::Graph graph = ptln::buildLine(tln, spec);
        samples.push_back(
            {engine::fingerprintGraph(graph, tln).combined,
             compiler::compile(graph, tln)});
    }
    for (int draw = 0; draw < 25; ++draw) {
        paradigms::obc::MaxcutInstance instance;
        instance.numVertices = 3;
        for (int a = 0; a < 3; ++a)
            for (int b = a + 1; b < 3; ++b)
                if (rng.bernoulli(0.5))
                    instance.edges.emplace_back(a, b);
        paradigms::obc::MaxcutSpec spec;
        for (int v = 0; v < 3; ++v)
            spec.initPhases.push_back(
                rng.bernoulli(0.5) ? 0.0 : std::numbers::pi / 2);
        dg::Graph graph =
            paradigms::obc::buildMaxcut(obc, instance, spec);
        samples.push_back(
            {engine::fingerprintGraph(graph, obc).combined,
             compiler::compile(graph, obc)});
    }
    for (int draw = 0; draw < 10; ++draw) {
        paradigms::cnn::CnnSpec spec;
        spec.width = 3;
        spec.height = 3;
        std::vector<double> input(9, 1.0);
        input[static_cast<std::size_t>(rng.uniformInt(0, 2))] = -1.0;
        dg::Graph graph = paradigms::cnn::buildCnn(cnn, spec, input);
        samples.push_back(
            {engine::fingerprintGraph(graph, cnn).combined,
             compiler::compile(graph, cnn)});
    }

    int collisions = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        for (std::size_t j = i + 1; j < samples.size(); ++j) {
            if (!(samples[i].fp == samples[j].fp))
                continue;
            ++collisions;
            EXPECT_TRUE(
                samePrograms(samples[i].system, samples[j].system))
                << "samples " << i << " and " << j;
        }
    }
    // The discrete parameter spaces are small enough that repeats are
    // certain; without them the property above would be vacuous.
    EXPECT_GT(collisions, 0);
}

TEST_F(EngineTest, CacheAccountsHitsMissesEvictions)
{
    engine::CacheConfig config;
    config.maxSystems = 2;
    engine::ArtifactCache cache(config);
    const lang::Language &tln = lang("tln");

    auto graphOf = [&](int sections) {
        ptln::LineSpec spec;
        spec.sections = sections;
        return ptln::buildLine(tln, spec);
    };

    engine::SystemPtr a1 = cache.system(graphOf(3), tln); // miss
    engine::SystemPtr a2 = cache.system(graphOf(3), tln); // hit
    EXPECT_EQ(a1.get(), a2.get()); // same shared artifact, not a copy
    cache.system(graphOf(4), tln);                        // miss
    cache.system(graphOf(5), tln); // miss, evicts sections=3 (LRU)
    cache.system(graphOf(3), tln); // miss again after eviction

    engine::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.systemHits, 1u);
    EXPECT_EQ(stats.systemMisses, 4u);
    EXPECT_EQ(stats.systemEvictions, 2u);
    EXPECT_EQ(stats.systemsCached, 2u);

    cache.clear();
    stats = cache.stats();
    EXPECT_EQ(stats.systemsCached, 0u);
    EXPECT_EQ(stats.systemMisses, 4u); // counters keep accumulating
}

TEST_F(EngineTest, StepperCacheServesWarmFactorsByContent)
{
    engine::CacheConfig config;
    config.maxSteppers = 2;
    engine::ArtifactCache cache(config);

    ptln::LineSpec spec;
    spec.sections = 3;
    const lang::Language &tln = lang("tln");
    dg::Graph graph = ptln::buildLine(tln, spec);
    validator::validateOrThrow(graph, tln);
    spice::MappedTln mapped = spice::mapTlnToSpice(graph, tln);
    spice::SparseMnaSystem system(mapped.netlist);
    engine::MnaFingerprint fp = engine::fingerprintMna(system);

    int builds = 0;
    auto build = [&]() {
        ++builds;
        return std::make_shared<spice::TransientStepper>(system, 1e-11);
    };
    engine::Fingerprint key =
        engine::stepperKey(fp, fp.values, fp.values, 1e-11, 0.0);
    bool hit = true;
    engine::StepperPtr first = cache.stepper(key, build, &hit);
    EXPECT_FALSE(hit);
    engine::StepperPtr again = cache.stepper(key, build, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), again.get());
    EXPECT_EQ(builds, 1);

    // A different step size is a different artifact.
    engine::Fingerprint otherKey =
        engine::stepperKey(fp, fp.values, fp.values, 2e-11, 0.0);
    cache.stepper(otherKey, [&]() {
        ++builds;
        return std::make_shared<spice::TransientStepper>(system, 2e-11);
    });
    EXPECT_EQ(builds, 2);
    engine::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.stepperHits, 1u);
    EXPECT_EQ(stats.stepperMisses, 2u);
    EXPECT_EQ(stats.steppersCached, 2u);
}

/** PUF battery: cached, cached-again, and cold compiles must produce
 *  bit-identical ensembles at every thread count. */
TEST_F(EngineTest, CachedVsColdEnsemblesBitIdentical)
{
    apps::PufDesign design;
    design.mainSections = 6;
    design.numBranches = 2;
    design.stubSections = 2;
    const lang::Language &gmc = lang("gmc-tln");
    apps::TlnPuf puf(gmc, design);

    engine::ArtifactCache cache;
    engine::Session cached(
        engine::SessionOptions{.caching = true, .cache = &cache});
    engine::Session cold(engine::SessionOptions{.caching = false});

    auto compileBattery = [&](const engine::Session &session) {
        std::vector<engine::SystemPtr> systems;
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            systems.push_back(
                session.compile(puf.buildGraph(1, seed), gmc));
        return systems;
    };
    std::vector<engine::SystemPtr> warmMiss = compileBattery(cached);
    std::vector<engine::SystemPtr> warmHit = compileBattery(cached);
    std::vector<engine::SystemPtr> coldBuilt = compileBattery(cold);
    EXPECT_EQ(cache.stats().systemHits, 5u);
    EXPECT_EQ(cache.stats().systemMisses, 5u);
    for (std::size_t i = 0; i < warmMiss.size(); ++i) {
        EXPECT_EQ(warmMiss[i].get(), warmHit[i].get());
        EXPECT_TRUE(samePrograms(*warmMiss[i], *coldBuilt[i]));
    }

    std::vector<std::vector<sim::SimResult>> runs;
    for (unsigned threads : {1u, 2u, 4u}) {
        for (const auto &systems : {warmHit, coldBuilt}) {
            sim::EnsembleOptions options;
            options.sim.method = sim::Method::Rk4;
            options.sim.dt = design.windowEnd / 400.0;
            options.sim.recordDt = design.windowEnd / 400.0;
            options.numThreads = threads;
            runs.push_back(cached.runEnsemble(
                systems, 0.0, design.windowEnd, options));
        }
    }
    const std::vector<sim::SimResult> &reference = runs.front();
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            const sim::Trajectory &ta = reference[i].trajectory;
            const sim::Trajectory &tb = runs[r][i].trajectory;
            ASSERT_EQ(ta.size(), tb.size()) << "run " << r;
            for (std::size_t s = 0; s < ta.size(); ++s) {
                ASSERT_TRUE(sameBits(ta.time(s), tb.time(s)));
                auto sa = ta.state(s);
                auto sb = tb.state(s);
                for (std::size_t k = 0; k < sa.size(); ++k)
                    ASSERT_TRUE(sameBits(sa[k], sb[k]))
                        << "run " << r << " instance " << i;
            }
        }
    }
}

/** Random mismatched GmC line mapped to a netlist (spice_batch idiom). */
spice::MappedTln
randomLine(const lang::Language &gmc, std::uint64_t seed)
{
    support::Rng rng(seed * 7919 + 13);
    ptln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(2, 5));
    spec.inductance = rng.uniform(0.5e-9, 2e-9);
    spec.capacitance = rng.uniform(0.5e-9, 2e-9);
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = rng.deriveSeed();
    dg::Graph graph = ptln::buildLine(gmc, spec);
    validator::validateOrThrow(graph, gmc);
    return spice::mapTlnToSpice(graph, gmc);
}

/** Same topology for every seed: only the mismatch values vary. */
spice::MappedTln
sharedStructureLine(const lang::Language &gmc, std::uint64_t seed)
{
    ptln::LineSpec spec;
    spec.sections = 4;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = seed;
    dg::Graph graph = ptln::buildLine(gmc, spec);
    validator::validateOrThrow(graph, gmc);
    return spice::mapTlnToSpice(graph, gmc);
}

::testing::AssertionResult
sameTransients(const std::vector<spice::TransientResult> &a,
               const std::vector<spice::TransientResult> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "result count differs";
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].ok() != b[i].ok())
            return ::testing::AssertionFailure()
                   << "instance " << i << " ok() differs";
        if (!a[i].ok() &&
            (a[i].failure->reason != b[i].failure->reason ||
             a[i].failure->message != b[i].failure->message))
            return ::testing::AssertionFailure()
                   << "instance " << i << " failure differs";
        if (a[i].size() != b[i].size() || a[i].dim() != b[i].dim())
            return ::testing::AssertionFailure()
                   << "instance " << i << " shape differs";
        for (std::size_t s = 0; s < a[i].size(); ++s) {
            if (!sameBits(a[i].time(s), b[i].time(s)))
                return ::testing::AssertionFailure()
                       << "instance " << i << " time " << s;
            auto sa = a[i].state(s);
            auto sb = b[i].state(s);
            for (std::size_t k = 0; k < sa.size(); ++k)
                if (!sameBits(sa[k], sb[k]))
                    return ::testing::AssertionFailure()
                           << "instance " << i << " sample " << s
                           << " unknown " << k;
        }
    }
    return ::testing::AssertionSuccess();
}

TEST_F(EngineTest, CachedSweepMatchesTransientBatchAndReusesFactors)
{
    const lang::Language &gmc = lang("gmc-tln");
    // 4 shared-structure instances (one leader + refactored members,
    // incl. a bit-identical duplicate sharing factors outright) plus
    // 4 random-topology singletons; a non-divisible range exercises
    // the prepared final-step operator, and a floating resistor pair
    // (singular conductance matrix) pins the structured-failure
    // mapping to TransientBatch's.
    std::vector<spice::MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        mapped.push_back(sharedStructureLine(gmc, seed));
    mapped.push_back(sharedStructureLine(gmc, 1)); // value-identical
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        mapped.push_back(randomLine(gmc, seed));
    spice::Netlist singular;
    int na = singular.addNode("a");
    int nb = singular.addNode("b");
    singular.resistor("R", na, nb, 1.0);
    std::vector<const spice::Netlist *> netlists;
    for (const spice::MappedTln &m : mapped)
        netlists.push_back(&m.netlist);
    netlists.push_back(&singular);

    const double t0 = 0.0, t1 = 1.05e-9, dt = 1e-11;

    spice::TransientBatchOptions batchOptions;
    spice::TransientBatchStats batchStats;
    std::vector<spice::TransientResult> reference =
        spice::TransientBatch(batchOptions).run(netlists, t0, t1, dt,
                                                &batchStats);

    engine::ArtifactCache cache;
    engine::Session session(
        engine::SessionOptions{.caching = true, .cache = &cache});
    engine::SweepStats coldStats;
    std::vector<spice::TransientResult> coldSweep = session.runSweep(
        netlists, t0, t1, dt, batchOptions, &coldStats);
    EXPECT_TRUE(sameTransients(coldSweep, reference));
    EXPECT_EQ(coldStats.structureGroups, batchStats.structureGroups);
    EXPECT_EQ(coldStats.factorHits, 0u);
    // One build per distinct (pivot source, values): 5 structure
    // groups + 2 rebound members; the value-identical duplicate
    // shares the leader's factors without a cache transaction.
    EXPECT_EQ(coldStats.factorMisses, 7u);

    engine::SweepStats warmStats;
    std::vector<spice::TransientResult> warmSweep = session.runSweep(
        netlists, t0, t1, dt, batchOptions, &warmStats);
    EXPECT_TRUE(sameTransients(warmSweep, reference));
    EXPECT_EQ(warmStats.factorMisses, 0u);
    EXPECT_EQ(warmStats.factorHits, 7u);

    // Thread-count invariance on the warm path.
    spice::TransientBatchOptions fourThreads;
    fourThreads.numThreads = 4;
    std::vector<spice::TransientResult> threaded =
        session.runSweep(netlists, t0, t1, dt, fourThreads, nullptr);
    EXPECT_TRUE(sameTransients(threaded, reference));

    // caching=false delegates to TransientBatch outright.
    engine::Session uncached(
        engine::SessionOptions{.caching = false});
    engine::SweepStats uncachedStats;
    std::vector<spice::TransientResult> ablation = uncached.runSweep(
        netlists, t0, t1, dt, batchOptions, &uncachedStats);
    EXPECT_TRUE(sameTransients(ablation, reference));
    EXPECT_EQ(uncachedStats.factorHits, 0u);
    EXPECT_EQ(uncachedStats.factorMisses, 0u);
}

TEST_F(EngineTest, SweepValidatesBatchConfiguration)
{
    const lang::Language &gmc = lang("gmc-tln");
    spice::MappedTln mapped = sharedStructureLine(gmc, 1);
    std::vector<const spice::Netlist *> netlists{&mapped.netlist};
    engine::Session session;
    EXPECT_THROW(session.runSweep(netlists, 0.0, 1e-9, 0.0),
                 support::SimError);
    EXPECT_THROW(session.runSweep(netlists, 1e-9, 0.0, 1e-11),
                 support::SimError);
    EXPECT_TRUE(session.runSweep({}, 0.0, 1e-9, 1e-11).empty());
}

TEST_F(EngineTest, ResponseMatrixMatchesPerChallengeBatches)
{
    apps::PufDesign design;
    design.mainSections = 6;
    design.numBranches = 2;
    design.stubSections = 2;
    design.responseBits = 16;
    const lang::Language &gmc = lang("gmc-tln");
    apps::TlnPuf puf(gmc, design);

    const std::vector<std::uint32_t> challenges{1, 3, 1, 2, 3};
    const std::vector<std::uint64_t> chips{1, 2, 3};

    auto matrix = puf.responseMatrix(challenges, chips);
    ASSERT_EQ(matrix.size(), challenges.size());
    for (std::size_t c = 0; c < challenges.size(); ++c) {
        auto loop = puf.responseBatch(challenges[c], chips);
        EXPECT_EQ(matrix[c], loop) << "challenge index " << c;
    }

    // Noisy battery: flattened challenge-major seeds must match the
    // per-challenge slices, and repeated challenges get independent
    // noise per occurrence.
    std::vector<std::uint64_t> noiseSeeds;
    for (std::size_t i = 0; i < challenges.size() * chips.size(); ++i)
        noiseSeeds.push_back(1000 + i);
    auto noisy =
        puf.responseMatrix(challenges, chips, 0.01, noiseSeeds);
    for (std::size_t c = 0; c < challenges.size(); ++c) {
        std::vector<std::uint64_t> slice(
            noiseSeeds.begin() +
                static_cast<std::ptrdiff_t>(c * chips.size()),
            noiseSeeds.begin() +
                static_cast<std::ptrdiff_t>((c + 1) * chips.size()));
        auto loop = puf.responseBatch(challenges[c], chips, 0.01, slice);
        EXPECT_EQ(noisy[c], loop) << "noisy challenge index " << c;
    }
    // Same challenge, same chips, different noise seeds: occurrences
    // 0 and 2 both measure challenge 1.
    EXPECT_NE(noisy[0], noisy[2]);
}

} // namespace
