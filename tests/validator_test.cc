/**
 * @file
 * Tests for the validator: Matched semantics (direction, inheritance),
 * pattern assignment (Algorithm 2), accept/reject logic, global
 * extern-func rules, and ILP/flow engine agreement.
 */

#include <gtest/gtest.h>

#include "lang/func.h"
#include "lang/registry.h"
#include "support/error.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using namespace ark::validator;
using lang::GraphBuilder;
using support::ValidationError;

constexpr const char *kLang = R"(
    lang v {
        ntyp(1,sum) A {};
        ntyp(1,sum) B {};
        ntyp(1,sum) B2 inherit B {};
        etyp E {};
        etyp E2 inherit E {};
        prod(e:E,s:A->t:B) t <= var(s);
        cstr A {acc[match(1,2,E,A->[B]), match(0,1,E,A)]}
        cstr B {acc[match(1,inf,E,[A]->B)]}
    }
)";

class ValidatorTest : public ::testing::Test
{
  protected:
    ValidatorTest() { registry_.addProgram(kLang); }

    const lang::Language &language() { return registry_.language("v"); }

    lang::LanguageRegistry registry_;
};

TEST_F(ValidatorTest, AcceptsWellFormedGraph)
{
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    builder.node("b", "B");
    builder.edge("ab", "E", "a", "b");
    dg::Graph graph = builder.take();
    EXPECT_TRUE(validate(graph, language()).ok);
}

TEST_F(ValidatorTest, RejectsCardinalityViolations)
{
    // Three outgoing edges exceed the match(1,2,...) upper bound.
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    for (int i = 0; i < 3; ++i) {
        builder.node(std::string("b") + std::to_string(i), "B");
        builder.edge(std::string("e") + std::to_string(i), "E", "a",
                     std::string("b") + std::to_string(i));
    }
    dg::Graph graph = builder.take();
    ValidationResult result = validate(graph, language());
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.problems.empty());
}

TEST_F(ValidatorTest, RejectsMissingLowerBound)
{
    // A 'B' node with no incoming edge violates match(1,inf,...).
    GraphBuilder builder(language(), 0);
    builder.node("b", "B");
    dg::Graph graph = builder.take();
    EXPECT_FALSE(validate(graph, language()).ok);
}

TEST_F(ValidatorTest, SelfEdgesMatchOnlySelfClauses)
{
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    builder.node("b", "B");
    builder.edge("ab", "E", "a", "b");
    builder.edge("aa", "E", "a", "a");
    dg::Graph graph = builder.take();
    EXPECT_TRUE(validate(graph, language()).ok);

    // A second self edge exceeds match(0,1,E,A).
    GraphBuilder builder2(language(), 0);
    builder2.node("a", "A");
    builder2.node("b", "B");
    builder2.edge("ab", "E", "a", "b");
    builder2.edge("aa", "E", "a", "a");
    builder2.edge("aa2", "E", "a", "a");
    dg::Graph graph2 = builder2.take();
    EXPECT_FALSE(validate(graph2, language()).ok);
}

TEST_F(ValidatorTest, DerivedTypesMatchParentClauses)
{
    // B2 inherits B: edges to B2 satisfy A's outgoing [B] clause, and
    // E2 satisfies clauses written for E.
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    builder.node("b", "B2");
    builder.edge("ab", "E2", "a", "b");
    dg::Graph graph = builder.take();
    EXPECT_TRUE(validate(graph, language()).ok);
}

TEST_F(ValidatorTest, DisabledEdgesInvisible)
{
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    builder.node("b", "B");
    builder.edge("ab", "E", "a", "b");
    builder.node("b2", "B");
    builder.edge("ab2", "E", "a", "b2");
    builder.node("b3", "B");
    builder.edge("ab3", "E", "a", "b3");
    // Three enabled edges would violate A's (1,2) bound...
    dg::Graph tooMany = builder.take();
    EXPECT_FALSE(validate(tooMany, language()).ok);
    // ...but switching one off, b3 keeps its own (1,inf) violation,
    // so disable it along with its incoming edge's effect by checking
    // only node a's cstr via a fresh graph.
    GraphBuilder builder2(language(), 0);
    builder2.node("a", "A");
    builder2.node("b", "B");
    builder2.edge("ab", "E", "a", "b");
    builder2.node("b2", "B");
    builder2.edge("ab2", "E", "a", "b2");
    builder2.edge("ab2b", "E", "a", "b2");
    builder2.enable("ab2b", false);
    dg::Graph okGraph = builder2.take();
    EXPECT_TRUE(validate(okGraph, language()).ok);
}

TEST_F(ValidatorTest, IsDescribedDirectly)
{
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    builder.node("b", "B");
    builder.edge("ab", "E", "a", "b");
    dg::Graph graph = builder.take();

    lang::Pattern outPattern;
    lang::MatchClause clause;
    clause.dir = lang::MatchDir::Out;
    clause.lo = 1;
    clause.hi = 1;
    clause.edgeType = "E";
    clause.nodeTypes = {"B"};
    outPattern.clauses.push_back(clause);
    EXPECT_TRUE(isDescribed(graph, *graph.findNode("a"), outPattern,
                            language()));
    // The same pattern fails for b (the edge is incoming there).
    EXPECT_FALSE(isDescribed(graph, *graph.findNode("b"), outPattern,
                             language()));
}

TEST_F(ValidatorTest, EnginesAgreeOnParadigmGraphs)
{
    GraphBuilder builder(language(), 0);
    builder.node("a", "A");
    builder.node("b", "B2");
    builder.node("b2", "B");
    builder.edge("e1", "E", "a", "b");
    builder.edge("e2", "E2", "a", "b2");
    builder.edge("self", "E", "a", "a");
    dg::Graph graph = builder.take();
    ValidationResult ilp = validate(graph, language(), Engine::Ilp);
    ValidationResult flow = validate(graph, language(), Engine::Flow);
    EXPECT_EQ(ilp.ok, flow.ok);
}

TEST_F(ValidatorTest, RejectPatternsVeto)
{
    registry_.addProgram(R"(
        lang vr inherits v {
            ntyp(1,sum) A2 inherit A {};
            cstr A2 {acc[match(0,inf,E,A2->[B]), match(0,inf,E,A2)]
                     rej[match(2,inf,E,A2->[B])]}
        }
    )");
    const lang::Language &vr = registry_.language("vr");
    // One outgoing edge: accepted, not rejected.
    GraphBuilder builder(vr, 0);
    builder.node("a", "A2");
    builder.node("b", "B");
    builder.edge("ab", "E", "a", "b");
    dg::Graph one = builder.take();
    EXPECT_TRUE(validate(one, vr).ok);
    // Two outgoing edges: the reject pattern fires.
    GraphBuilder builder2(vr, 0);
    builder2.node("a", "A2");
    builder2.node("b", "B");
    builder2.node("b2", "B");
    builder2.edge("ab", "E", "a", "b");
    builder2.edge("ab2", "E", "a", "b2");
    dg::Graph two = builder2.take();
    ValidationResult result = validate(two, vr);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.summary().find("rejected"), std::string::npos);
}

TEST_F(ValidatorTest, GlobalRules)
{
    registry_.addProgram(R"(
        lang vg inherits v {
            ntyp(1,sum) A3 inherit A {};
            extern-func needs-three-nodes;
        }
    )");
    const lang::Language &vg = registry_.language("vg");

    GraphBuilder builder(vg, 0);
    builder.node("a", "A");
    builder.node("b", "B");
    builder.edge("ab", "E", "a", "b");
    dg::Graph graph = builder.take();

    // Unregistered global rule: validation fails loudly.
    ValidationResult result = validate(graph, vg);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.summary().find("not registered"),
              std::string::npos);

    // Register and re-validate.
    GlobalRuleRegistry::instance().add(
        "needs-three-nodes",
        [](const dg::Graph &g) { return g.numNodes() >= 3; });
    EXPECT_FALSE(validate(graph, vg).ok); // 2 nodes
    GraphBuilder builder2(vg, 0);
    builder2.node("a", "A");
    builder2.node("b", "B");
    builder2.node("c", "B");
    builder2.edge("ab", "E", "a", "b");
    builder2.edge("ac", "E", "a", "c");
    dg::Graph big = builder2.take();
    EXPECT_TRUE(validate(big, vg).ok);
}

TEST_F(ValidatorTest, ValidateOrThrowRaises)
{
    GraphBuilder builder(language(), 0);
    builder.node("b", "B"); // missing required incoming edge
    dg::Graph graph = builder.take();
    EXPECT_THROW(validateOrThrow(graph, language()), ValidationError);
}

TEST_F(ValidatorTest, CstrlessTypesAlwaysPass)
{
    registry_.addProgram(R"(
        lang free { ntyp(1,sum) N {}; etyp E {}; }
    )");
    const lang::Language &freeLang = registry_.language("free");
    GraphBuilder builder(freeLang, 0);
    builder.node("n", "N");
    builder.node("m", "N");
    builder.edge("e", "E", "n", "m");
    builder.edge("self", "E", "n", "n");
    dg::Graph graph = builder.take();
    EXPECT_TRUE(validate(graph, freeLang).ok);
}

} // namespace
