/**
 * @file
 * Tests for the fused whole-system tape: multi-output correctness,
 * cross-equation CSE, constant folding, register reuse, error
 * handling, and a randomized equivalence property against the
 * tree-walking interpreter and the per-variable tapes across real
 * TLN/OBC/CNN systems.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "compiler/compiler.h"
#include "expr/fusedtape.h"
#include "expr/tape.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "support/error.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::FusedTape;
using expr::Tape;

TEST(FusedTapeTest, MultiOutputMatchesPerExpressionTapes)
{
    // dq0 = sin(q0 - q1), dq1 = sin(q0 - q1) * q1, dq2 = t + 2.
    ExprPtr shared = Expr::call(
        "sin", {Expr::binary(BinOp::Sub, Expr::stateVar(0),
                             Expr::stateVar(1))});
    std::vector<ExprPtr> outputs{
        shared,
        Expr::binary(BinOp::Mul, shared, Expr::stateVar(1)),
        Expr::binary(BinOp::Add, Expr::time(), Expr::real(2.0)),
    };
    FusedTape fused = FusedTape::compile(outputs);
    ASSERT_EQ(fused.numOutputs(), 3u);
    EXPECT_EQ(fused.maxStateIndex(), 1);

    std::vector<double> state{0.7, -0.3};
    std::vector<double> got = fused.evalAlloc(state, 1.5);
    ASSERT_EQ(got.size(), 3u);
    for (std::size_t k = 0; k < outputs.size(); ++k) {
        EXPECT_DOUBLE_EQ(got[k],
                         Tape::compile(outputs[k]).evalAlloc(state, 1.5))
            << "output " << k;
    }
}

TEST(FusedTapeTest, SharedSubexpressionsCompiledOnce)
{
    // Both outputs use the same expensive coupling term; the fused
    // program must be smaller than the per-expression programs.
    ExprPtr coupling = Expr::binary(
        BinOp::Mul, Expr::real(-1.6e9),
        Expr::call("sin", {Expr::binary(BinOp::Sub, Expr::stateVar(0),
                                        Expr::stateVar(1))}));
    std::vector<ExprPtr> outputs{
        Expr::binary(BinOp::Add, coupling, Expr::stateVar(0)),
        Expr::binary(BinOp::Add, coupling, Expr::stateVar(1)),
    };
    FusedTape fused = FusedTape::compile(outputs);
    std::size_t perTape = Tape::compile(outputs[0]).size() +
                          Tape::compile(outputs[1]).size();
    EXPECT_LT(fused.size(), perTape);
    EXPECT_GT(fused.fusionSavings(), 0u);
}

TEST(FusedTapeTest, ConstantExpressionsFold)
{
    // (2 + 3) * 4 collapses to a single Const plus a WriteOutput.
    std::vector<ExprPtr> outputs{Expr::binary(
        BinOp::Mul,
        Expr::binary(BinOp::Add, Expr::real(2.0), Expr::real(3.0)),
        Expr::real(4.0))};
    FusedTape fused = FusedTape::compile(outputs);
    EXPECT_EQ(fused.size(), 2u);
    EXPECT_DOUBLE_EQ(fused.evalAlloc({}, 0.0)[0], 20.0);
}

TEST(FusedTapeTest, IdentityRewritesAreExact)
{
    // x*1, x+0, x/1 fold to x itself.
    ExprPtr x = Expr::stateVar(0);
    std::vector<ExprPtr> outputs{
        Expr::binary(BinOp::Mul, x, Expr::real(1.0)),
        Expr::binary(BinOp::Add, x, Expr::real(0.0)),
        Expr::binary(BinOp::Div, x, Expr::real(1.0)),
    };
    FusedTape fused = FusedTape::compile(outputs);
    // One LoadState + three WriteOutput.
    EXPECT_EQ(fused.size(), 4u);
    std::vector<double> state{3.25};
    std::vector<double> got = fused.evalAlloc(state, 0.0);
    for (double v : got)
        EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(FusedTapeTest, RegisterReuseKeepsFileSmall)
{
    // A deep chain of independent additions: liveness-based reuse
    // must keep the register file well below the instruction count.
    std::vector<ExprPtr> outputs;
    for (int k = 0; k < 8; ++k) {
        ExprPtr sum = Expr::stateVar(k);
        for (int i = 0; i < 8; ++i) {
            sum = Expr::binary(
                BinOp::Add, sum,
                Expr::binary(BinOp::Mul, Expr::stateVar(i),
                             Expr::real(1.0 + k + i)));
        }
        outputs.push_back(sum);
    }
    FusedTape fused = FusedTape::compile(outputs);
    EXPECT_LT(static_cast<std::size_t>(fused.numRegs()), fused.size());

    std::vector<double> state{0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, 1.8};
    std::vector<double> got = fused.evalAlloc(state, 0.0);
    for (std::size_t k = 0; k < outputs.size(); ++k) {
        EXPECT_NEAR(got[k],
                    Tape::compile(outputs[k]).evalAlloc(state, 0.0),
                    1e-12)
            << "output " << k;
    }
}

TEST(FusedTapeTest, EmptySystemIsValid)
{
    FusedTape fused = FusedTape::compile({});
    EXPECT_EQ(fused.numOutputs(), 0u);
    EXPECT_EQ(fused.size(), 0u);
    EXPECT_TRUE(fused.evalAlloc({}, 0.0).empty());
}

TEST(FusedTapeTest, UnresolvedNodesRejected)
{
    EXPECT_THROW(FusedTape::compile({Expr::var("free")}),
                 support::CompileError);
    EXPECT_THROW(FusedTape::compile({Expr::nodeVar("n")}),
                 support::CompileError);
    EXPECT_THROW(FusedTape::compile({Expr::attr("a", "b")}),
                 support::CompileError);
    EXPECT_THROW(FusedTape::compile({Expr::call("whoami", {})}),
                 support::CompileError);
}

/**
 * Property: on real compiled systems (TLN lines, OBC max-cut
 * networks, CNN grids) with randomized parameters and random states,
 * the fused tape, the per-variable tapes, and the tree-walking
 * interpreter agree within floating-point tolerance.
 */
class FusedEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *FusedEquivalence::registry_ = nullptr;

void
expectRhsAgreement(const compiler::OdeSystem &system, support::Rng &rng)
{
    const std::size_t n = system.size();
    std::vector<double> state(n), fused(n), perTape(n), interpreted(n);
    std::vector<double> scratch = system.makeScratch();
    for (int trial = 0; trial < 8; ++trial) {
        for (std::size_t i = 0; i < n; ++i)
            state[i] = rng.uniform(-2.0, 2.0);
        double t = rng.uniform(0.0, 1e-7);
        system.evalRhs(state.data(), t, fused.data(), scratch);
        system.evalRhsPerTape(state.data(), t, perTape.data(), scratch);
        system.evalRhsInterpreted(state.data(), t, interpreted.data());
        for (std::size_t i = 0; i < n; ++i) {
            double scale = 1.0 + std::fabs(interpreted[i]);
            EXPECT_NEAR(fused[i], interpreted[i], 1e-9 * scale)
                << "fused vs interpreted, eq " << i;
            EXPECT_NEAR(fused[i], perTape[i], 1e-9 * scale)
                << "fused vs per-tape, eq " << i;
        }
    }
}

TEST_P(FusedEquivalence, RandomTlnSystem)
{
    support::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(3, 24));
    spec.inductance = rng.uniform(0.5e-9, 2e-9);
    spec.capacitance = rng.uniform(0.5e-9, 2e-9);
    const lang::Language &tln = registry_->language("tln");
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    expectRhsAgreement(system, rng);
}

TEST_P(FusedEquivalence, RandomObcSystem)
{
    support::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = static_cast<int>(rng.uniformInt(3, 6));
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            if (rng.bernoulli(0.6))
                instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(
            rng.uniform(0.0, 2.0 * std::numbers::pi));
    const lang::Language &obc = registry_->language("obc");
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    expectRhsAgreement(system, rng);
}

TEST_P(FusedEquivalence, RandomCnnSystem)
{
    support::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::cnn::CnnSpec spec;
    spec.width = static_cast<int>(rng.uniformInt(3, 6));
    spec.height = static_cast<int>(rng.uniformInt(3, 6));
    std::vector<double> input;
    for (int i = 0; i < spec.width * spec.height; ++i)
        input.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
    const lang::Language &cnn = registry_->language("cnn");
    compiler::OdeSystem system = compiler::compile(
        paradigms::cnn::buildCnn(cnn, spec, input), cnn);
    expectRhsAgreement(system, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedEquivalence,
                         ::testing::Range(0, 6));

TEST(FusedTapeFmaTest, SingleUseMulAddContractsToOneFma)
{
    // q0*q1 + q2: the product feeds exactly one Add and nothing else,
    // so the FMA variant must contract the pair into one FusedMulAdd
    // whose result is bit-exactly std::fma(a, b, c) — one rounding,
    // where the plain program rounds the product first.
    ExprPtr e = Expr::binary(
        BinOp::Add,
        Expr::binary(BinOp::Mul, Expr::stateVar(0), Expr::stateVar(1)),
        Expr::stateVar(2));
    FusedTape plain = FusedTape::compile({e});
    EXPECT_EQ(plain.fmaContractions(), 0u); // default compile never fuses
    FusedTape fma = FusedTape::compile({e}, /*fuseMulAdd=*/true);
    EXPECT_EQ(fma.fmaContractions(), 1u);
    EXPECT_EQ(fma.size(), plain.size() - 1);
    // The variant may allocate slightly differently (three operands
    // live into one instruction); OdeSystem sizes one scratch block
    // for the max of all paths.
    EXPECT_LE(fma.numRegs(), plain.numRegs() + 1);

    // Operands where the two rounding regimes provably differ:
    // (1+2^-27)^2 = 1 + 2^-26 + 2^-54 rounds to 1 + 2^-26, so the
    // plain path cancels to exactly 0 while the fused path keeps the
    // 2^-54 tail.
    double a = 1.0 + std::ldexp(1.0, -27);
    double c = -(1.0 + std::ldexp(1.0, -26));
    std::vector<double> state{a, a, c};
    double plainVal = plain.evalAlloc(state, 0.0)[0];
    double fmaVal = fma.evalAlloc(state, 0.0)[0];
    EXPECT_EQ(plainVal, a * a + c);
    EXPECT_EQ(plainVal, 0.0);
    EXPECT_EQ(fmaVal, std::fma(a, a, c));
    EXPECT_EQ(fmaVal, std::ldexp(1.0, -54));
    EXPECT_NE(fmaVal, plainVal); // the one-rounding contract is visible
}

TEST(FusedTapeFmaTest, SharedProductsAreNotContracted)
{
    // The product q0*q1 feeds two Adds (and CSE computes it once):
    // contracting it would re-evaluate the multiply per use, so the
    // peephole must leave it alone.
    ExprPtr product =
        Expr::binary(BinOp::Mul, Expr::stateVar(0), Expr::stateVar(1));
    std::vector<ExprPtr> outputs{
        Expr::binary(BinOp::Add, product, Expr::stateVar(2)),
        Expr::binary(BinOp::Add, product, Expr::time()),
    };
    FusedTape plain = FusedTape::compile(outputs);
    FusedTape fma = FusedTape::compile(outputs, /*fuseMulAdd=*/true);
    EXPECT_EQ(fma.fmaContractions(), 0u);
    EXPECT_EQ(fma.size(), plain.size());
}

TEST(FusedTapeFmaTest, OutputProductsAreNotContracted)
{
    // The product is itself an output (WriteOutput reads it) besides
    // feeding the Add: two readers, no contraction.
    ExprPtr product =
        Expr::binary(BinOp::Mul, Expr::stateVar(0), Expr::stateVar(1));
    std::vector<ExprPtr> outputs{
        product,
        Expr::binary(BinOp::Add, product, Expr::stateVar(2)),
    };
    FusedTape fma = FusedTape::compile(outputs, /*fuseMulAdd=*/true);
    EXPECT_EQ(fma.fmaContractions(), 0u);
}

TEST(FusedTapeFmaTest, FmaVariantMatchesPlainToRounding)
{
    // Kuramoto RHS programs are sum-of-products (K*sin(...) chains):
    // the variant must contract a healthy fraction of the stream and
    // agree with the plain program to rounding everywhere. (TLN GmC
    // lines put a Div between every product and its sum, so they
    // contract nothing — which is correct, not a missed case.)
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    support::Rng rng(77);
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = 6;
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(0.37 * v);
    const lang::Language &obc = registry.language("obc");
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    const FusedTape &plain = system.fusedTape();
    const FusedTape &fma = system.fusedTapeFma();
    EXPECT_EQ(plain.fmaContractions(), 0u);
    EXPECT_GT(fma.fmaContractions(), 0u);
    EXPECT_EQ(fma.size(), plain.size() - fma.fmaContractions());

    const std::size_t n = system.size();
    std::vector<double> state(n);
    for (int trial = 0; trial < 16; ++trial) {
        for (std::size_t i = 0; i < n; ++i)
            state[i] = rng.uniform(-2.0, 2.0);
        double t = rng.uniform(0.0, 1e-7);
        std::vector<double> a = plain.evalAlloc(state, t);
        std::vector<double> b = fma.evalAlloc(state, t);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
            double scale = 1.0 + std::fabs(a[i]);
            EXPECT_NEAR(a[i], b[i], 1e-12 * scale)
                << "output " << i << " trial " << trial;
        }
    }
}

} // namespace
