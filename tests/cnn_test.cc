/**
 * @file
 * CNN paradigm tests: language structure, grid construction and
 * validation cardinalities, steady-state edge detection across input
 * patterns (parameterized), hw-cnn nonideality behavior, and other
 * CNN templates (the paradigm is reconfigurable, not edge-only).
 */

#include <gtest/gtest.h>

#include "apps/experiments.h"
#include "apps/image.h"
#include "compiler/compiler.h"
#include "paradigms/cnn.h"
#include "paradigms/standard.h"
#include "sim/sim.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace pcnn = paradigms::cnn;
namespace exp = apps::experiments;
using apps::Image;

class CnnTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static const lang::Language &cnn()
    {
        return registry_->language("cnn");
    }
    static const lang::Language &hwCnn()
    {
        return registry_->language("hw-cnn");
    }
    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *CnnTest::registry_ = nullptr;

TEST_F(CnnTest, LanguageStructure)
{
    EXPECT_EQ(cnn().types().nodeType("V").order, 1);
    EXPECT_EQ(cnn().types().nodeType("Out").order, 0);
    EXPECT_EQ(cnn().types().nodeType("Inp").order, 0);
    EXPECT_NE(cnn().types().edgeType("fE").findAttr("g"), nullptr);
    EXPECT_EQ(cnn().cstrs().size(), 3u);
    // hw extension types inherit correctly.
    EXPECT_TRUE(hwCnn().types().isNodeAncestor("Out", "OutNL"));
    EXPECT_TRUE(hwCnn().types().isNodeAncestor("V", "Vm"));
    EXPECT_TRUE(hwCnn().types().isEdgeAncestor("fE", "fEm"));
}

TEST_F(CnnTest, GridValidates)
{
    pcnn::CnnSpec spec;
    spec.width = 5;
    spec.height = 4;
    Image input(5, 4, -1.0);
    dg::Graph graph = pcnn::buildCnn(cnn(), spec, input.pixels());
    // 20 cells x (V + Out + Inp) = 60 nodes.
    EXPECT_EQ(graph.numNodes(), 60u);
    EXPECT_TRUE(validator::validate(graph, cnn()).ok);
}

TEST_F(CnnTest, CornerCellsHaveFourNeighbourEdges)
{
    pcnn::CnnSpec spec;
    spec.width = 4;
    spec.height = 4;
    Image input(4, 4, -1.0);
    dg::Graph graph = pcnn::buildCnn(cnn(), spec, input.pixels());
    dg::NodeId corner = *graph.findNode(pcnn::cellName(0, 0));
    // Corner: 4 A-edges in (2x2 neighbourhood), 4 B-edges in,
    // one iE out, one iE self.
    EXPECT_EQ(graph.incomingEdges(corner).size(), 8u);
    EXPECT_EQ(graph.selfEdges(corner).size(), 1u);
    dg::NodeId center = *graph.findNode(pcnn::cellName(1, 1));
    EXPECT_EQ(graph.incomingEdges(center).size(), 18u); // 9 + 9
}

TEST_F(CnnTest, ValidatorRejectsUndersizedNeighbourhoods)
{
    // A lone cell has 1 incoming A edge and 1 B edge: below the
    // match(4,9,...) lower bound.
    lang::GraphBuilder builder(cnn(), 0);
    builder.node("x", "V");
    builder.attr("x", "z", -1.0);
    builder.node("out", "Out");
    builder.node("in", "Inp");
    builder.attr("in", "u", 1.0);
    builder.edge("self", "iE", "x", "x");
    builder.edge("io", "iE", "x", "out");
    builder.edge("a", "fE", "out", "x");
    builder.attr("a", "g", 1.0);
    builder.edge("b", "fE", "in", "x");
    builder.attr("b", "g", 1.0);
    dg::Graph graph = builder.take();
    EXPECT_FALSE(validator::validate(graph, cnn()).ok);
}

TEST_F(CnnTest, BuildRejectsBadSpecs)
{
    pcnn::CnnSpec spec;
    spec.width = 2; // too small
    spec.height = 4;
    EXPECT_THROW(pcnn::buildCnn(cnn(), spec, std::vector<double>(8)),
                 support::SemaError);
    pcnn::CnnSpec sizeMismatch;
    sizeMismatch.width = 4;
    sizeMismatch.height = 4;
    EXPECT_THROW(
        pcnn::buildCnn(cnn(), sizeMismatch, std::vector<double>(3)),
        support::SemaError);
    pcnn::CnnSpec hwOnly;
    hwOnly.width = 4;
    hwOnly.height = 4;
    hwOnly.nonIdealSat = true;
    EXPECT_THROW(
        pcnn::buildCnn(cnn(), hwOnly, std::vector<double>(16, -1.0)),
        support::SemaError);
}

/** Edge detection across input patterns (paper Figure 11 workload). */
class EdgeDetectPattern
    : public CnnTest,
      public ::testing::WithParamInterface<int>
{
  protected:
    static Image
    pattern(int which)
    {
        switch (which) {
          case 0: return Image::filledSquare(12, 3);
          case 1: return Image::hollowSquare(14, 3, 2);
          case 2: return Image::cross(13, 3);
          default: return Image::letterT(12);
        }
    }
};

TEST_P(EdgeDetectPattern, SteadyStateMatchesGroundTruth)
{
    Image input = pattern(GetParam());
    pcnn::CnnSpec spec;
    spec.width = input.width();
    spec.height = input.height();
    exp::CnnRun run = exp::runCnnEdgeDetect(cnn(), spec, input,
                                            {0.0, 1.0, 2.0, 4.0});
    EXPECT_EQ(run.outputErrors, 0)
        << "input:\n" << input.ascii() << "got:\n"
        << run.finalOutput.ascii() << "expected:\n"
        << input.edgeMap().ascii();
    EXPECT_TRUE(run.converged);
}

INSTANTIATE_TEST_SUITE_P(Patterns, EdgeDetectPattern,
                         ::testing::Range(0, 4));

TEST_F(CnnTest, IntegratorMismatchSlowsButStaysCorrect)
{
    Image input = Image::hollowSquare(12, 3, 2);
    pcnn::CnnSpec ideal;
    ideal.width = 12;
    ideal.height = 12;
    pcnn::CnnSpec mm = ideal;
    mm.mismatchZ = true;
    mm.seed = 3;
    std::vector<double> frames{0.0, 0.25, 0.5, 0.75, 1.0, 2.0, 4.0};
    exp::CnnRun idealRun =
        exp::runCnnEdgeDetect(cnn(), ideal, input, frames);
    exp::CnnRun mmRun = exp::runCnnEdgeDetect(hwCnn(), mm, input,
                                              frames);
    EXPECT_EQ(mmRun.outputErrors, 0);
    ASSERT_TRUE(idealRun.converged);
    ASSERT_TRUE(mmRun.converged);
    EXPECT_GE(mmRun.convergeTime, idealRun.convergeTime);
}

TEST_F(CnnTest, TemplateMismatchCorruptsOutput)
{
    // Paper Figure 11 column C: 10% g mismatch yields an incorrect
    // image (for at least one seed; mismatch is random).
    Image input = Image::hollowSquare(16, 3, 3);
    pcnn::CnnSpec spec;
    spec.width = 16;
    spec.height = 16;
    spec.mismatchG = true;
    int corrupted = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        spec.seed = seed;
        exp::CnnRun run = exp::runCnnEdgeDetect(hwCnn(), spec, input,
                                                {0.0, 2.0, 4.0});
        corrupted += run.outputErrors > 0;
    }
    EXPECT_GT(corrupted, 0);
}

TEST_F(CnnTest, NonIdealSaturationStaysCorrect)
{
    Image input = Image::filledSquare(12, 3);
    pcnn::CnnSpec spec;
    spec.width = 12;
    spec.height = 12;
    spec.nonIdealSat = true;
    exp::CnnRun run = exp::runCnnEdgeDetect(hwCnn(), spec, input,
                                            {0.0, 1.0, 2.0, 4.0});
    EXPECT_EQ(run.outputErrors, 0);
}

TEST_F(CnnTest, AveragingTemplateDiffuses)
{
    // A different CNN program on the same fabric: a diffusion
    // template (A = neighbour average, B = 0 except center, z = 0)
    // smears a point; the center pixel's neighbours rise.
    pcnn::CnnSpec spec;
    spec.width = 7;
    spec.height = 7;
    spec.a = {0.05, 0.1, 0.05, 0.1, 1.0, 0.1, 0.05, 0.1, 0.05};
    spec.b = {0, 0, 0, 0, 1.0, 0, 0, 0, 0};
    spec.z = 0.0;
    Image input(7, 7, -1.0);
    input.at(3, 3) = 1.0;
    dg::Graph graph = pcnn::buildCnn(cnn(), spec, input.pixels());
    validator::validateOrThrow(graph, cnn());
    compiler::OdeSystem system = compiler::compile(graph, cnn());
    sim::SimResult result = sim::simulate(system, 0.0, 1.0);
    // Compare same-degree interior cells mid-transient: activity
    // spreads outward from the bright center pixel, so the adjacent
    // cell must sit above an equally-interior but distant cell.
    double center = result.trajectory.sampleAt(
        system.stateIndex(pcnn::cellName(3, 3), 0), 1.0);
    double neighbour = result.trajectory.sampleAt(
        system.stateIndex(pcnn::cellName(3, 4), 0), 1.0);
    double distant = result.trajectory.sampleAt(
        system.stateIndex(pcnn::cellName(1, 1), 0), 1.0);
    EXPECT_GT(center, neighbour);
    EXPECT_GT(neighbour, distant);
}

TEST_F(CnnTest, InitFromInputSupported)
{
    Image input = Image::filledSquare(8, 2);
    pcnn::CnnSpec spec;
    spec.width = 8;
    spec.height = 8;
    spec.initFromInput = true;
    dg::Graph graph = pcnn::buildCnn(cnn(), spec, input.pixels());
    dg::NodeId inside = *graph.findNode(pcnn::cellName(4, 4));
    EXPECT_DOUBLE_EQ(graph.initValue(inside, 0).asReal(), 1.0);
    dg::NodeId border = *graph.findNode(pcnn::cellName(0, 0));
    EXPECT_DOUBLE_EQ(graph.initValue(border, 0).asReal(), -1.0);
}

} // namespace
