/**
 * @file
 * Tests for language lowering and the §4.1.1 inheritance rules:
 * attribute narrowing, order/reduction preservation, rule override
 * rejection, new-type requirements, and most-specific rule lookup.
 */

#include <gtest/gtest.h>

#include "lang/language.h"
#include "lang/parser.h"
#include "lang/registry.h"
#include "support/error.h"

namespace {

using namespace ark;
using namespace ark::lang;
using support::SemaError;

const Language &
makeLang(LanguageRegistry &registry, const std::string &source)
{
    registry.addProgram(source);
    Program prog = parseProgram(source);
    return registry.language(prog.langs.back().name);
}

constexpr const char *kBase = R"(
    lang base {
        ntyp(1,sum) V {attr c=real[0,10]};
        ntyp(0,sum) Inp {attr u=real[-1,1]};
        etyp E {attr k=real[-8,8]};
        prod(e:E,s:V->t:V) t <= e.k*var(s);
        prod(e:E,s:V->s:V) s <= -var(s);
        cstr V {acc[match(0,inf,E,[V,Inp]->V),
                    match(0,inf,E,V->[V]), match(0,1,E,V)]}
    }
)";

TEST(LanguageTest, BasicLoweringExposesRulesAndTypes)
{
    LanguageRegistry registry;
    const Language &base = makeLang(registry, kBase);
    EXPECT_EQ(base.name(), "base");
    EXPECT_EQ(base.parent(), nullptr);
    EXPECT_TRUE(base.types().hasNodeType("V"));
    EXPECT_TRUE(base.types().hasEdgeType("E"));
    EXPECT_EQ(base.prodRules().size(), 2u);
    EXPECT_EQ(base.cstrs().size(), 1u);
}

TEST(LanguageTest, ImplicitInitsSynthesized)
{
    LanguageRegistry registry;
    const Language &base = makeLang(registry, kBase);
    const dg::NodeTypeDef &v = base.types().nodeType("V");
    ASSERT_NE(v.findInit(0), nullptr);
    EXPECT_TRUE(v.findInit(0)->fixedValue.has_value());
}

TEST(LanguageTest, DerivedInheritsEverything)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    const Language &derived = makeLang(registry, R"(
        lang derived inherits base {
            ntyp(1,sum) Vm inherit V {attr c=real[1,5] mm(0,0.1)};
        }
    )");
    EXPECT_EQ(derived.parent()->name(), "base");
    EXPECT_TRUE(derived.types().hasNodeType("V"));
    EXPECT_TRUE(derived.types().hasNodeType("Vm"));
    EXPECT_EQ(derived.prodRules().size(), 2u); // inherited
    EXPECT_EQ(derived.cstrs().size(), 1u);
    // Overridden attribute narrows and gains mismatch.
    const dg::NodeTypeDef &vm = derived.types().nodeType("Vm");
    const dg::AttrDef *c = vm.findAttr("c");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->type.realLo(), 1.0);
    EXPECT_TRUE(c->type.hasMismatch());
    EXPECT_TRUE(derived.isDescendantOf("base"));
    EXPECT_FALSE(derived.isDescendantOf("other"));
}

TEST(LanguageTest, AttrOverrideMustNarrow)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad inherits base {
            ntyp(1,sum) Vm inherit V {attr c=real[0,20]};
        }
    )"),
                 SemaError);
}

TEST(LanguageTest, AttrOverrideMustKeepKind)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad inherits base {
            ntyp(1,sum) Vm inherit V {attr c=int[0,5]};
        }
    )"),
                 SemaError);
}

TEST(LanguageTest, OrderAndReductionMustMatchParent)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad inherits base { ntyp(2,sum) Vm inherit V {}; }
    )"),
                 SemaError);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad2 inherits base { ntyp(1,mul) Vm inherit V {}; }
    )"),
                 SemaError);
}

TEST(LanguageTest, ParentRulesCannotBeOverridden)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad inherits base {
            prod(e:E,s:V->t:V) t <= 2*e.k*var(s);
        }
    )"),
                 SemaError);
}

TEST(LanguageTest, NewRulesNeedNewTypes)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    // A different-target rule over only parent types is rejected.
    EXPECT_THROW(makeLang(registry, R"(
        lang bad inherits base {
            ntyp(1,sum) Vm inherit V {};
            prod(e:E,s:V->t:V) s <= var(t);
        }
    )"),
                 SemaError);
    // Mentioning the derived type makes it legal.
    EXPECT_NO_THROW(makeLang(registry, R"(
        lang ok inherits base {
            ntyp(1,sum) Vm inherit V {};
            prod(e:E,s:V->t:Vm) s <= var(t);
        }
    )"));
}

TEST(LanguageTest, NewCstrsNeedNewTypes)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad inherits base {
            ntyp(1,sum) Vm inherit V {};
            cstr V {acc[match(0,1,E,V)]}
        }
    )"),
                 SemaError);
    EXPECT_NO_THROW(makeLang(registry, R"(
        lang ok inherits base {
            ntyp(1,sum) Vm inherit V {};
            cstr Vm {acc[match(0,1,E,Vm)]}
        }
    )"));
}

TEST(LanguageTest, RuleExpressionScopeChecked)
{
    LanguageRegistry registry;
    // Unknown attribute on a bound type.
    EXPECT_THROW(makeLang(registry, R"(
        lang bad {
            ntyp(1,sum) V {}; etyp E {};
            prod(e:E,s:V->t:V) t <= e.zz*var(s);
        }
    )"),
                 SemaError);
    // var(.) of a name outside the clause.
    EXPECT_THROW(makeLang(registry, R"(
        lang bad2 {
            ntyp(1,sum) V {}; etyp E {};
            prod(e:E,s:V->t:V) t <= var(q);
        }
    )"),
                 SemaError);
    // Free variables are not allowed in rule expressions.
    EXPECT_THROW(makeLang(registry, R"(
        lang bad3 {
            ntyp(1,sum) V {}; etyp E {};
            prod(e:E,s:V->t:V) t <= alpha*var(s);
        }
    )"),
                 SemaError);
    // Target must be one of the bound element names.
    EXPECT_THROW(makeLang(registry, R"(
        lang bad4 {
            ntyp(1,sum) V {}; etyp E {};
            prod(e:E,s:V->t:V) q <= var(s);
        }
    )"),
                 SemaError);
}

TEST(LanguageTest, BooleanRuleExpressionRejected)
{
    LanguageRegistry registry;
    EXPECT_THROW(makeLang(registry, R"(
        lang bad {
            ntyp(1,sum) V {}; etyp E {};
            prod(e:E,s:V->t:V) t <= var(s) > 0;
        }
    )"),
                 SemaError);
}

TEST(LanguageTest, CstrTargetNameChecked)
{
    LanguageRegistry registry;
    EXPECT_THROW(makeLang(registry, R"(
        lang bad {
            ntyp(1,sum) V {}; ntyp(1,sum) W {}; etyp E {};
            cstr V {acc[match(0,1,E,W->[V])]}
        }
    )"),
                 SemaError);
}

TEST(LanguageTest, UnknownTypesInRulesRejected)
{
    LanguageRegistry registry;
    EXPECT_THROW(makeLang(registry, R"(
        lang bad { ntyp(1,sum) V {}; etyp E {};
                   prod(e:E,s:V->t:Zz) t <= var(s); }
    )"),
                 SemaError);
    EXPECT_THROW(makeLang(registry, R"(
        lang bad2 { ntyp(1,sum) V {}; etyp E {};
                    cstr V {acc[match(0,1,Zz,V)]} }
    )"),
                 SemaError);
}

// --- rule lookup -----------------------------------------------------------

TEST(RuleLookupTest, ExactAndFallback)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    const Language &derived = makeLang(registry, R"(
        lang derived inherits base {
            ntyp(1,sum) Vm inherit V {attr c=real[0,10]};
            etyp Em inherit E {attr k=real[-8,8]};
            prod(e:Em,s:V->t:Vm) t <= 2*e.k*var(s);
        }
    )");
    // Exact: Em edge into Vm uses the derived rule.
    const ProdRule *rule = derived.lookupRule(
        "Em", "Vm", "Vm", false, ProdRule::Target::Dst, false);
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->definedIn, "derived");
    // Fallback: plain E edge into Vm falls back to the base rule.
    rule = derived.lookupRule("E", "Vm", "Vm", false,
                              ProdRule::Target::Dst, false);
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->definedIn, "base");
    // No rule at all: source-side term for non-self edges.
    EXPECT_EQ(derived.lookupRule("E", "V", "V", false,
                                 ProdRule::Target::Src, false),
              nullptr);
    // Self rules only match self queries.
    EXPECT_NE(derived.lookupRule("E", "V", "V", true,
                                 ProdRule::Target::Src, false),
              nullptr);
    EXPECT_EQ(derived.lookupRule("E", "V", "V", true,
                                 ProdRule::Target::Dst, false),
              nullptr);
}

TEST(RuleLookupTest, AmbiguityDetected)
{
    LanguageRegistry registry;
    // Two independent subtype chains create an ambiguous middle case:
    // rules (Em, V->V) and (E, Vm->V) both at distance 1 from a query
    // (Em, Vm->V).
    registry.addProgram(R"(
        lang amb {
            ntyp(1,sum) V {};
            ntyp(1,sum) Vm inherit V {};
            etyp E {};
            etyp Em inherit E {};
            prod(e:Em,s:V->t:V) t <= var(s);
            prod(e:E,s:Vm->t:V) t <= 2*var(s);
        }
    )");
    const Language &amb = registry.language("amb");
    EXPECT_THROW(amb.lookupRule("Em", "Vm", "V", false,
                                ProdRule::Target::Dst, false),
                 support::CompileError);
    // Unambiguous queries still resolve.
    EXPECT_NE(amb.lookupRule("Em", "V", "V", false,
                             ProdRule::Target::Dst, false),
              nullptr);
}

TEST(RuleLookupTest, OffRulesSeparate)
{
    LanguageRegistry registry;
    registry.addProgram(R"(
        lang sw {
            ntyp(1,sum) V {}; etyp E {attr leak=real[0,1]};
            prod(e:E,s:V->t:V) t <= var(s);
            prod(e:E,s:V->t:V) t <= e.leak*var(s) off;
        }
    )");
    const Language &sw = registry.language("sw");
    const ProdRule *on = sw.lookupRule("E", "V", "V", false,
                                       ProdRule::Target::Dst, false);
    const ProdRule *off = sw.lookupRule("E", "V", "V", false,
                                        ProdRule::Target::Dst, true);
    ASSERT_NE(on, nullptr);
    ASSERT_NE(off, nullptr);
    EXPECT_FALSE(on->off);
    EXPECT_TRUE(off->off);
}

TEST(RuleLookupTest, CstrsForCollectsAncestors)
{
    LanguageRegistry registry;
    makeLang(registry, kBase);
    const Language &derived = makeLang(registry, R"(
        lang derived inherits base {
            ntyp(1,sum) Vm inherit V {};
            cstr Vm {acc[match(0,1,E,Vm)]}
        }
    )");
    EXPECT_EQ(derived.cstrsFor("V").size(), 1u);
    EXPECT_EQ(derived.cstrsFor("Vm").size(), 2u); // V's and Vm's
    EXPECT_TRUE(derived.cstrsFor("Inp").empty());
}

// --- registry -----------------------------------------------------------------

TEST(RegistryTest, DuplicateDefinitionsRejected)
{
    LanguageRegistry registry;
    registry.addProgram("lang a { ntyp(1,sum) V {}; }");
    EXPECT_THROW(registry.addProgram("lang a { ntyp(1,sum) W {}; }"),
                 SemaError);
    registry.addProgram("func f () uses a { node n : V; }");
    EXPECT_THROW(
        registry.addProgram("func f () uses a { node m : V; }"),
        SemaError);
}

TEST(RegistryTest, UnknownParentLanguage)
{
    LanguageRegistry registry;
    EXPECT_THROW(
        registry.addProgram("lang d inherits missing { ntyp(1,sum) V {}; }"),
        SemaError);
}

TEST(RegistryTest, FunctionNeedsKnownLanguage)
{
    LanguageRegistry registry;
    EXPECT_THROW(registry.addProgram("func f () uses nope {}"),
                 SemaError);
}

TEST(RegistryTest, NameListings)
{
    LanguageRegistry registry;
    registry.addProgram(R"(
        lang a { ntyp(1,sum) V {}; }
        lang b inherits a { ntyp(1,sum) W inherit V {}; }
        func f () uses a { node n : V; }
    )");
    EXPECT_EQ(registry.languageNames().size(), 2u);
    EXPECT_EQ(registry.functionNames().size(), 1u);
    EXPECT_THROW(registry.language("zzz"), SemaError);
    EXPECT_THROW(registry.function("zzz"), SemaError);
}

} // namespace
