/**
 * @file
 * Tests for the batched ensemble simulation engine: determinism
 * against the serial path at every thread count, heterogeneous-system
 * batteries, failure propagation, and the batched PUF/max-cut app
 * entry points that ride on it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/experiments.h"
#include "apps/puf.h"
#include "compiler/compiler.h"
#include "lang/registry.h"
#include "paradigms/standard.h"
#include "sim/sim.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using lang::GraphBuilder;
using sim::EnsembleOptions;
using sim::SimResult;
using support::SimError;

/** dx/dt = -k x built through the full Ark pipeline. */
OdeSystem
decaySystem(lang::LanguageRegistry &registry, double k, double x0)
{
    if (!registry.findLanguage("decay")) {
        registry.addProgram(R"(
            lang decay {
                ntyp(1,sum) X {attr k=real[0,100],
                               init(0) real[-100,100]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.k*var(s);
            }
        )");
    }
    GraphBuilder builder(registry.language("decay"), 0);
    builder.node("x", "X");
    builder.attr("x", "k", k);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, x0);
    return compiler::compile(builder.take(),
                             registry.language("decay"));
}

void
expectIdenticalResults(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.rejectedSteps, b.rejectedSteps);
    for (std::size_t s = 0; s < a.trajectory.size(); ++s) {
        EXPECT_EQ(a.trajectory.time(s), b.trajectory.time(s));
        auto stateA = a.trajectory.state(s);
        auto stateB = b.trajectory.state(s);
        ASSERT_EQ(stateA.size(), stateB.size());
        for (std::size_t i = 0; i < stateA.size(); ++i)
            EXPECT_EQ(stateA[i], stateB[i]) << "sample " << s;
    }
}

TEST(EnsembleTest, MatchesSerialSimulateBitForBit)
{
    // The bit-for-bit ensemble contract covers the fixed-step lane
    // path and the scalar adaptive path (laneBatching off). The
    // lane-batched Dopri5 driver integrates on a shared voted grid
    // and is only tolerance-level equivalent to serial — covered in
    // dopri5_batch_test, not here.
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 2.0, 1.0);
    std::vector<std::vector<double>> initials;
    for (int i = 0; i < 8; ++i)
        initials.push_back({0.25 * (i + 1)});

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        for (bool rk4 : {true, false}) {
            EnsembleOptions options;
            options.numThreads = threads;
            if (rk4) {
                options.sim.method = sim::Method::Rk4;
                options.sim.dt = 1e-3;
            } else {
                options.laneBatching = false; // scalar Dopri5
            }
            std::vector<SimResult> batch = sim::simulateEnsemble(
                system, initials, 0.0, 2.0, options);
            ASSERT_EQ(batch.size(), initials.size());
            for (std::size_t i = 0; i < initials.size(); ++i) {
                SimResult serial =
                    sim::simulate(system, initials[i], 0.0, 2.0,
                                  options.sim);
                expectIdenticalResults(batch[i], serial);
            }
        }
    }
}

TEST(EnsembleTest, InitialStateOverloadIntegratesFromThere)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    SimResult result =
        sim::simulate(system, {10.0}, 0.0, 1.0, sim::SimOptions{});
    EXPECT_NEAR(result.trajectory.sampleAt(0, 1.0),
                10.0 * std::exp(-1.0), 1e-4);
}

TEST(EnsembleTest, HeterogeneousSystemsRunConcurrently)
{
    lang::LanguageRegistry registry;
    std::vector<OdeSystem> systems;
    for (int i = 0; i < 6; ++i)
        systems.push_back(decaySystem(registry, 1.0 + i, 2.0 + i));
    std::vector<const OdeSystem *> pointers;
    for (const OdeSystem &system : systems)
        pointers.push_back(&system);

    EnsembleOptions options;
    options.numThreads = 3;
    std::vector<SimResult> batch =
        sim::simulateEnsemble(pointers, 0.0, 1.0, options);
    ASSERT_EQ(batch.size(), systems.size());
    for (std::size_t i = 0; i < systems.size(); ++i) {
        double k = 1.0 + static_cast<double>(i);
        double x0 = 2.0 + static_cast<double>(i);
        EXPECT_NEAR(batch[i].trajectory.sampleAt(0, 1.0),
                    x0 * std::exp(-k), 1e-3)
            << "instance " << i;
    }
}

TEST(EnsembleTest, EmptyBatchesAreFine)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    EXPECT_TRUE(sim::simulateEnsemble(system, {}, 0.0, 1.0).empty());
    EXPECT_TRUE(sim::simulateEnsemble(
                    std::vector<const OdeSystem *>{}, 0.0, 1.0)
                    .empty());
}

TEST(EnsembleTest, WrongDimensionRejected)
{
    lang::LanguageRegistry registry;
    OdeSystem system = decaySystem(registry, 1.0, 1.0);
    EXPECT_THROW(
        sim::simulateEnsemble(system, {{1.0, 2.0}}, 0.0, 1.0),
        SimError);
}

TEST(EnsembleTest, DivergingInstanceReportsStructuredFailure)
{
    // dx/dt = x^3 diverges from |x0| >= 2 but is tame from small x0;
    // the diverging instance gets a structured failure and must not
    // take down the healthy ones — on either execution path.
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang boom {
            ntyp(1,sum) X {init(0) real[-10,10]};
            etyp E {};
            prod(e:E,s:X->s:X) s <= var(s)*var(s)*var(s);
        }
    )");
    GraphBuilder builder(registry.language("boom"), 0);
    builder.node("x", "X");
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 0.1);
    OdeSystem system =
        compiler::compile(builder.take(), registry.language("boom"));
    EnsembleOptions options;
    options.numThreads = 4;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-3;
    std::vector<std::vector<double>> initials{
        {0.1}, {2.5}, {0.2}, {0.0}};
    for (bool lanes : {true, false}) {
        options.laneBatching = lanes;
        std::vector<SimResult> batch = sim::simulateEnsemble(
            system, initials, 0.0, 1.0, options);
        ASSERT_EQ(batch.size(), 4u);
        for (std::size_t i : {0u, 2u, 3u})
            EXPECT_TRUE(batch[i].ok()) << "instance " << i;
        ASSERT_FALSE(batch[1].ok());
        EXPECT_EQ(batch[1].failure->reason,
                  sim::AbortReason::Diverged);
        EXPECT_EQ(batch[1].failure->stateIndex, 0);
        EXPECT_GT(batch[1].failure->step, 0u);
        // From x0=2.5 the blowup lands at 1/(2 x0^2) = 0.08.
        EXPECT_LT(batch[1].failure->time, 0.5);
        // The masked lane matches the scalar run exactly, failure
        // point included.
        SimResult serial =
            sim::simulate(system, initials[1], 0.0, 1.0, options.sim);
        ASSERT_FALSE(serial.ok());
        EXPECT_EQ(batch[1].failure->step, serial.failure->step);
        EXPECT_EQ(batch[1].failure->time, serial.failure->time);
        expectIdenticalResults(batch[1], serial);
    }
}

TEST(EnsembleTest, PufBatchedResponsesMatchSerial)
{
    lang::LanguageRegistry registry =
        paradigms::makeStandardRegistry();
    apps::PufDesign design;
    design.mainSections = 8;
    design.numBranches = 2;
    design.stubSections = 2;
    design.responseBits = 24;
    apps::TlnPuf puf(registry.language("gmc-tln"), design);

    std::vector<std::uint64_t> chips{1, 2, 3};
    auto batch = puf.responseBatch(1, chips, 0.0, {}, 3);
    ASSERT_EQ(batch.size(), chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i)
        EXPECT_EQ(batch[i], puf.response(1, chips[i])) << "chip " << i;
}

TEST(EnsembleTest, MaxcutBatchMatchesKnownShape)
{
    lang::LanguageRegistry registry =
        paradigms::makeStandardRegistry();
    auto outcomes = apps::experiments::runMaxcutSims(
        registry.language("obc"), false, 4);
    ASSERT_EQ(outcomes.size(), 4u);
    for (const auto &outcome : outcomes) {
        EXPECT_EQ(outcome.phases.size(), 4u);
        for (double phase : outcome.phases)
            EXPECT_TRUE(std::isfinite(phase));
    }
}

} // namespace
