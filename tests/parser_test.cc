/**
 * @file
 * Tests for the Ark parser: every Figure-6 construct, the paper's own
 * listings, sugar forms, and error diagnostics.
 */

#include <gtest/gtest.h>

#include <limits>

#include "expr/eval.h"
#include "lang/parser.h"
#include "support/error.h"

namespace {

using namespace ark;
using namespace ark::lang;
using support::ParseError;

// --- expressions ---------------------------------------------------------

TEST(ParseExprTest, Precedence)
{
    EXPECT_EQ(parseExpression("1+2*3")->str(), "(1 + (2 * 3))");
    EXPECT_EQ(parseExpression("(1+2)*3")->str(), "((1 + 2) * 3)");
    EXPECT_EQ(parseExpression("-a*b")->str(), "((-a) * b)");
    EXPECT_EQ(parseExpression("a-b-c")->str(), "((a - b) - c)");
    EXPECT_EQ(parseExpression("2^3^2")->str(), "(2 ^ (3 ^ 2))");
    EXPECT_EQ(parseExpression("a/b/c")->str(), "((a / b) / c)");
}

TEST(ParseExprTest, ComparisonAndLogic)
{
    EXPECT_EQ(parseExpression("a < b and c >= d or not e")->str(),
              "(((a < b) and (c >= d)) or (not e))");
    EXPECT_EQ(parseExpression("a <= b")->str(), "(a <= b)");
    EXPECT_EQ(parseExpression("a == b")->str(), "(a == b)");
    EXPECT_EQ(parseExpression("a != b")->str(), "(a != b)");
    // Comparisons are non-associative; chaining needs parentheses.
    EXPECT_THROW(parseExpression("a == b != c"), ParseError);
    EXPECT_EQ(parseExpression("(a == b) != (c < d)")->str(),
              "((a == b) != (c < d))");
}

TEST(ParseExprTest, IfThenElse)
{
    EXPECT_EQ(parseExpression("if a > 0 then 1 else 2")->str(),
              "(if (a > 0) then 1 else 2)");
    // Nested in an arithmetic context.
    EXPECT_EQ(parseExpression("1 + (if b then 2 else 3)")->str(),
              "(1 + (if b then 2 else 3))");
}

TEST(ParseExprTest, VarOfNode)
{
    EXPECT_EQ(parseExpression("var(s)")->kind(), expr::ExprKind::NodeVar);
    EXPECT_EQ(parseExpression("-var(t)/s.c")->str(),
              "((-var(t)) / s.c)");
}

TEST(ParseExprTest, AttrRefsAndCalls)
{
    EXPECT_EQ(parseExpression("e.k")->str(), "e.k");
    EXPECT_EQ(parseExpression("s.fn(times)")->str(), "(s.fn)(time)");
    EXPECT_EQ(parseExpression("sin(x)")->str(), "sin(x)");
    EXPECT_EQ(parseExpression("pulse(t,0,2e-8)")->str(),
              "pulse(t,0,2e-08)");
}

TEST(ParseExprTest, TimeKeywords)
{
    EXPECT_EQ(parseExpression("time")->kind(), expr::ExprKind::Time);
    EXPECT_EQ(parseExpression("times")->kind(), expr::ExprKind::Time);
}

TEST(ParseExprTest, Literals)
{
    EXPECT_DOUBLE_EQ(parseExpression("1e-09")->literalValue().asReal(),
                     1e-9);
    EXPECT_EQ(parseExpression("true")->literalValue().asBool(), true);
    EXPECT_EQ(parseExpression("inf")->literalValue().asReal(),
              std::numeric_limits<double>::infinity());
}

TEST(ParseExprTest, LambdaLiteral)
{
    expr::ExprPtr e = parseExpression("lambd(t0): pulse(t0, 0.0, 2e-8)");
    ASSERT_EQ(e->kind(), expr::ExprKind::Literal);
    ASSERT_TRUE(e->literalValue().isFunction());
    const expr::Lambda &fn = e->literalValue().asFunction();
    ASSERT_EQ(fn.params.size(), 1u);
    EXPECT_EQ(fn.params[0], "t0");
}

TEST(ParseExprTest, FnAbbreviationForLambda)
{
    expr::ExprPtr e = parseExpression("fn(a, b): a + b");
    ASSERT_TRUE(e->literalValue().isFunction());
    EXPECT_EQ(e->literalValue().asFunction().params.size(), 2u);
}

TEST(ParseExprTest, PaperProductionExpressions)
{
    // Expressions lifted from Figures 7, 9, 10, 12 verbatim.
    for (const char *src : {
             "-var(t)/s.c",
             "e.wt*var(s)/t.l",
             "e.g*t.mm*var(s)",
             "s.z-var(s)",
             "sat(var(s))",
             "sat_ni(var(s))",
             "-1.6e9*e.k*sin(var(s)-var(t))",
             "-1e9*sin(2*var(s))",
             "-1.6e9*e.k*(e.offset+sin(-var(s)+var(t)))",
             "e.wt*(-s.g*var(t)+s.fn(times))/t.c",
         }) {
        EXPECT_NO_THROW(parseExpression(src)) << src;
    }
}

TEST(ParseExprTest, Errors)
{
    EXPECT_THROW(parseExpression(""), ParseError);
    EXPECT_THROW(parseExpression("1 +"), ParseError);
    EXPECT_THROW(parseExpression("(1"), ParseError);
    EXPECT_THROW(parseExpression("1 2"), ParseError); // trailing junk
    EXPECT_THROW(parseExpression("if a then b"), ParseError); // no else
}

// --- datatypes -----------------------------------------------------------

TEST(ParseTypeTest, RealBounds)
{
    dg::DataType t = parseDataType("real[1e-10,1e-08]");
    EXPECT_TRUE(t.isReal());
    EXPECT_DOUBLE_EQ(t.realLo(), 1e-10);
    EXPECT_DOUBLE_EQ(t.realHi(), 1e-8);
    EXPECT_FALSE(t.hasMismatch());
}

TEST(ParseTypeTest, InfinityAndNegatives)
{
    dg::DataType t = parseDataType("real[-inf,inf]");
    EXPECT_EQ(t.realLo(), -std::numeric_limits<double>::infinity());
    EXPECT_EQ(t.realHi(), std::numeric_limits<double>::infinity());
    dg::DataType n = parseDataType("real[-10,10]");
    EXPECT_DOUBLE_EQ(n.realLo(), -10.0);
}

TEST(ParseTypeTest, Mismatch)
{
    dg::DataType t = parseDataType("real[0.5,2] mm(0,0.1)");
    ASSERT_TRUE(t.hasMismatch());
    EXPECT_DOUBLE_EQ(t.mismatch()->s0, 0.0);
    EXPECT_DOUBLE_EQ(t.mismatch()->s1, 0.1);
    dg::DataType u = parseDataType("real[0,0] mm(0.02,0)");
    EXPECT_DOUBLE_EQ(u.mismatch()->s0, 0.02);
}

TEST(ParseTypeTest, IntAndLambda)
{
    dg::DataType t = parseDataType("int[0,1]");
    EXPECT_TRUE(t.isInt());
    EXPECT_EQ(t.intLo(), 0);
    EXPECT_EQ(t.intHi(), 1);
    dg::DataType f = parseDataType("lambd(a0)");
    EXPECT_TRUE(f.isFunction());
    EXPECT_EQ(f.arity(), 1);
    dg::DataType g = parseDataType("fn(a0)"); // paper's abbreviation
    EXPECT_EQ(g.arity(), 1);
}

TEST(ParseTypeTest, ConstMarker)
{
    EXPECT_TRUE(parseDataType("real[0,1] const").isConst());
    EXPECT_TRUE(parseDataType("int[1,1] const").isConst());
    EXPECT_FALSE(parseDataType("real[0,1]").isConst());
}

TEST(ParseTypeTest, Errors)
{
    EXPECT_THROW(parseDataType("real[2,1]"), ParseError); // empty range
    EXPECT_THROW(parseDataType("real[1]"), ParseError);
    EXPECT_THROW(parseDataType("float[0,1]"), ParseError);
    EXPECT_THROW(parseDataType("real[0,1] mm(-1,0)"), ParseError);
}

// --- language declarations ------------------------------------------------

TEST(ParseLangTest, MinimalLanguage)
{
    Program prog = parseProgram("lang tiny { ntyp(1,sum) N {}; }");
    ASSERT_EQ(prog.langs.size(), 1u);
    EXPECT_EQ(prog.langs[0].name, "tiny");
    ASSERT_EQ(prog.langs[0].nodeTypes.size(), 1u);
    EXPECT_EQ(prog.langs[0].nodeTypes[0].order, 1);
    EXPECT_EQ(prog.langs[0].nodeTypes[0].reduction, dg::Reduction::Sum);
}

TEST(ParseLangTest, NodeTypeLongForm)
{
    Program prog =
        parseProgram("lang x { node-type(2,mul) N {}; }");
    ASSERT_EQ(prog.langs[0].nodeTypes.size(), 1u);
    EXPECT_EQ(prog.langs[0].nodeTypes[0].order, 2);
    EXPECT_EQ(prog.langs[0].nodeTypes[0].reduction, dg::Reduction::Mul);
}

TEST(ParseLangTest, AttributesAndInits)
{
    Program prog = parseProgram(R"(
        lang x {
            ntyp(1,sum) V {attr c=real[1e-10,1e-08], attr g=real[0,inf],
                           init(0) real[-1,1]};
        }
    )");
    const NodeTypeDecl &decl = prog.langs[0].nodeTypes[0];
    ASSERT_EQ(decl.attrs.size(), 2u);
    EXPECT_EQ(decl.attrs[0].name, "c");
    EXPECT_EQ(decl.attrs[1].name, "g");
    ASSERT_EQ(decl.inits.size(), 1u);
    EXPECT_EQ(decl.inits[0].derivative, 0);
}

TEST(ParseLangTest, EdgeTypesAndFixed)
{
    Program prog = parseProgram(R"(
        lang x {
            etyp E {};
            edge-type fixed F {attr w=real[0,1]};
        }
    )");
    ASSERT_EQ(prog.langs[0].edgeTypes.size(), 2u);
    EXPECT_FALSE(prog.langs[0].edgeTypes[0].fixed);
    EXPECT_TRUE(prog.langs[0].edgeTypes[1].fixed);
    EXPECT_EQ(prog.langs[0].edgeTypes[1].attrs.size(), 1u);
}

TEST(ParseLangTest, EdgeTypesRejectInits)
{
    EXPECT_THROW(
        parseProgram("lang x { etyp E {init(0) real[0,1]}; }"),
        ParseError);
}

TEST(ParseLangTest, ProductionRules)
{
    Program prog = parseProgram(R"(
        lang x {
            ntyp(1,sum) V {}; ntyp(1,sum) I {}; etyp E {};
            prod(e:E,s:V->t:I) s <= -var(t);
            prod(e:E,s:V->s:V) s <= var(s) off;
        }
    )");
    ASSERT_EQ(prog.langs[0].prodRules.size(), 2u);
    const ProdRuleDecl &r0 = prog.langs[0].prodRules[0];
    EXPECT_EQ(r0.edgeType, "E");
    EXPECT_EQ(r0.srcType, "V");
    EXPECT_EQ(r0.dstType, "I");
    EXPECT_EQ(r0.targetVar, "s");
    EXPECT_FALSE(r0.off);
    const ProdRuleDecl &r1 = prog.langs[0].prodRules[1];
    EXPECT_EQ(r1.srcVar, r1.dstVar); // self rule
    EXPECT_TRUE(r1.off);
}

TEST(ParseLangTest, CstrPatterns)
{
    Program prog = parseProgram(R"(
        lang x {
            ntyp(1,sum) V {}; ntyp(1,sum) I {}; etyp E {};
            cstr V {acc[match(0,inf,E,V->[I]), match(1,1,E,V)]
                    rej[match(2,inf,E,[I]->V)]}
        }
    )");
    const CstrDecl &cstr = prog.langs[0].cstrs[0];
    EXPECT_EQ(cstr.nodeType, "V");
    ASSERT_EQ(cstr.patterns.size(), 2u);
    EXPECT_TRUE(cstr.patterns[0].accept);
    ASSERT_EQ(cstr.patterns[0].clauses.size(), 2u);
    EXPECT_EQ(cstr.patterns[0].clauses[0].dir, MatchDir::Out);
    EXPECT_EQ(cstr.patterns[0].clauses[0].hi, -1); // inf
    EXPECT_EQ(cstr.patterns[0].clauses[1].dir, MatchDir::Self);
    EXPECT_FALSE(cstr.patterns[1].accept);
    EXPECT_EQ(cstr.patterns[1].clauses[0].dir, MatchDir::In);
    EXPECT_EQ(cstr.patterns[1].clauses[0].lo, 2);
}

TEST(ParseLangTest, ThreeArgSelfMatch)
{
    Program prog = parseProgram(R"(
        lang x { ntyp(1,sum) V {}; etyp E {};
                 cstr V {acc[match(1,1,E)]} }
    )");
    EXPECT_EQ(prog.langs[0].cstrs[0].patterns[0].clauses[0].dir,
              MatchDir::Self);
}

TEST(ParseLangTest, ExternFunc)
{
    Program prog = parseProgram(R"(
        lang x { ntyp(1,sum) V {}; extern-func grid-check; }
    )");
    ASSERT_EQ(prog.langs[0].externFuncs.size(), 1u);
    EXPECT_EQ(prog.langs[0].externFuncs[0].name, "grid-check");
}

TEST(ParseLangTest, InheritanceClause)
{
    Program prog = parseProgram(R"(
        lang base { ntyp(1,sum) V {}; }
        lang derived inherits base {
            ntyp(1,sum) Vm inherit V {};
        }
    )");
    ASSERT_EQ(prog.langs.size(), 2u);
    EXPECT_EQ(*prog.langs[1].inherits, "base");
    EXPECT_EQ(*prog.langs[1].nodeTypes[0].inherits, "V");
}

TEST(ParseLangTest, HyphenatedNames)
{
    Program prog = parseProgram(R"(
        lang gmc-tln { ntyp(1,sum) V {}; }
        func br-func (br:int[0,1]) uses gmc-tln { node a : V; }
    )");
    EXPECT_EQ(prog.langs[0].name, "gmc-tln");
    EXPECT_EQ(prog.funcs[0].name, "br-func");
    EXPECT_EQ(prog.funcs[0].usesLang, "gmc-tln");
}

// --- function declarations -------------------------------------------------

TEST(ParseFuncTest, FullFunction)
{
    Program prog = parseProgram(R"(
        func f (br:int[0,1], g0:real[0,2]) uses tln {
            node IN_V : V;
            node I_0 : I;
            edge <IN_V, I_0> E_0 : E;
            set-attr IN_V.c = 1e-09;
            set-attr IN_V.g = g0;
            set-init IN_V(0) = 0.5;
            set-switch E_0 when br;
        }
    )");
    const FuncDecl &func = prog.funcs[0];
    EXPECT_EQ(func.name, "f");
    ASSERT_EQ(func.args.size(), 2u);
    EXPECT_EQ(func.args[0].name, "br");
    EXPECT_TRUE(func.args[0].type.isInt());
    ASSERT_EQ(func.body.size(), 7u);
    EXPECT_EQ(func.body[0].kind, FuncStmtKind::Node);
    EXPECT_EQ(func.body[2].kind, FuncStmtKind::Edge);
    EXPECT_EQ(func.body[2].src, "IN_V");
    EXPECT_EQ(func.body[2].dst, "I_0");
    EXPECT_EQ(func.body[3].kind, FuncStmtKind::SetAttr);
    EXPECT_EQ(func.body[5].kind, FuncStmtKind::SetInit);
    EXPECT_EQ(func.body[5].derivative, 0);
    EXPECT_EQ(func.body[6].kind, FuncStmtKind::SetSwitch);
}

TEST(ParseFuncTest, SetEdgeAliasForSetSwitch)
{
    Program prog = parseProgram(R"(
        func f () uses x { node a : V; node b : V;
            edge <a,b> e0 : E; set-edge e0 when true; }
    )");
    EXPECT_EQ(prog.funcs[0].body[3].kind, FuncStmtKind::SetSwitch);
}

TEST(ParseFuncTest, DottedArgument)
{
    Program prog = parseProgram(R"(
        func f (n0.c:real[0,1]) uses x { node n0 : V; }
    )");
    const FuncArgDecl &arg = prog.funcs[0].args[0];
    EXPECT_TRUE(arg.isDotted());
    EXPECT_EQ(arg.name, "n0");
    EXPECT_EQ(arg.attrName, "c");
}

TEST(ParseFuncTest, Errors)
{
    EXPECT_THROW(parseProgram("func f () uses x { banana a : V; }"),
                 ParseError);
    EXPECT_THROW(parseProgram("func f () { node a : V; }"), ParseError);
    EXPECT_THROW(parseProgram("func f () uses x { set-frob a.b = 1; }"),
                 ParseError);
    EXPECT_THROW(parseProgram("lang x { prod(e:E) s <= 1; }"),
                 ParseError);
    EXPECT_THROW(parseProgram("nonsense"), ParseError);
}

TEST(ParseFuncTest, ErrorCarriesLocation)
{
    try {
        parseProgram("lang x {\n  wibble\n}");
        FAIL() << "expected ParseError";
    } catch (const ParseError &err) {
        EXPECT_EQ(err.loc().line, 2);
    }
}

// --- whole-paper listings ---------------------------------------------------

TEST(ParsePaperTest, Figure7TlnSkeleton)
{
    EXPECT_NO_THROW(parseProgram(R"(
        lang tln {
            ntyp(1,sum) V {attr c=real[1e-10,1e-08],
                           attr g=real[0,inf]};
            ntyp(1,sum) I {attr l=real[1e-10,1e-08],
                           attr r=real[0,inf]};
            ntyp(0,sum) InpV {attr fn=fn(a0),attr r=real[0,inf]};
            ntyp(0,sum) InpI {attr fn=fn(a0),attr g=real[0,inf]};
            etyp E {};
            prod(e:E,s:V->t:I) s<=-var(t)/s.c;
            prod(e:E,s:V->t:I) t<=var(s)/t.l;
            cstr V {acc[
                match(0,inf,E,V->[I]),match(0,inf,E,[I]->V),
                match(0,inf,E,[InpV]->V),
                match(0,inf,E,[InpI]->V),
                match(1,1,E,V)]}
            cstr I {acc[match(0,1,E,I->[V]),
                match(0,1,E,[V,InpV,InpI]->I),
                match(1,1,E,I)]}
        }
    )"));
}

TEST(ParsePaperTest, Figure12Obc)
{
    Program prog = parseProgram(R"(
        lang obc {
            ntyp(1,sum) Osc {};
            etyp Cpl {attr k=real[-8,8]};
            prod(e:Cpl,s:Osc->t:Osc) s<=-1.6e9*e.k*sin(var(s)-var(t));
            prod(e:Cpl,s:Osc->t:Osc) t<=-1.6e9*e.k*sin(-var(s)+var(t));
            prod(e:Cpl,s:Osc->s:Osc) s<=-1e9*sin(2*var(s));
        }
    )");
    EXPECT_EQ(prog.langs[0].prodRules.size(), 3u);
}

} // namespace
