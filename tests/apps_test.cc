/**
 * @file
 * Tests for the application layer: images (patterns, PGM round trip,
 * edge maps) and the TLN PUF (responses, uniqueness, reliability).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "apps/image.h"
#include "apps/puf.h"
#include "paradigms/standard.h"
#include "support/error.h"

namespace {

using namespace ark;
using apps::Image;

// --- images -----------------------------------------------------------------

TEST(ImageTest, ConstructionAndAccess)
{
    Image img(4, 3, -1.0);
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_DOUBLE_EQ(img.at(2, 3), -1.0);
    img.at(1, 2) = 1.0;
    EXPECT_DOUBLE_EQ(img.at(1, 2), 1.0);
    EXPECT_EQ(img.pixels().size(), 12u);
}

TEST(ImageTest, Patterns)
{
    Image square = Image::filledSquare(8, 2);
    EXPECT_DOUBLE_EQ(square.at(4, 4), 1.0);
    EXPECT_DOUBLE_EQ(square.at(0, 0), -1.0);
    Image hollow = Image::hollowSquare(10, 2, 2);
    EXPECT_DOUBLE_EQ(hollow.at(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(hollow.at(5, 5), -1.0);
    Image cross = Image::cross(9, 3);
    EXPECT_DOUBLE_EQ(cross.at(4, 0), 1.0);
    EXPECT_DOUBLE_EQ(cross.at(0, 0), -1.0);
    Image tee = Image::letterT(10);
    EXPECT_DOUBLE_EQ(tee.at(1, 5), 1.0);
    EXPECT_DOUBLE_EQ(tee.at(9, 0), -1.0);
}

TEST(ImageTest, EdgeMapSemantics)
{
    // A solid 3x3 block inside a 5x5 frame: every black pixel touches
    // white, so the edge map equals the block itself.
    Image blocky(5, 5, -1.0);
    for (int r = 1; r <= 3; ++r)
        for (int c = 1; c <= 3; ++c)
            blocky.at(r, c) = 1.0;
    Image edges = blocky.edgeMap();
    EXPECT_EQ(edges.countSignMismatch(blocky), 1); // center hollowed
    EXPECT_DOUBLE_EQ(edges.at(2, 2), -1.0);
    EXPECT_DOUBLE_EQ(edges.at(1, 1), 1.0);
    // Image borders count as white: a full-black image keeps only its
    // rim.
    Image full(5, 5, 1.0);
    Image rim = full.edgeMap();
    EXPECT_DOUBLE_EQ(rim.at(2, 2), -1.0);
    EXPECT_DOUBLE_EQ(rim.at(0, 2), 1.0);
}

TEST(ImageTest, BinarizeAndMismatch)
{
    Image soft(2, 2, 0.2);
    soft.at(0, 0) = -0.3;
    Image hard = soft.binarized();
    EXPECT_DOUBLE_EQ(hard.at(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(hard.at(1, 1), 1.0);
    EXPECT_EQ(hard.countSignMismatch(soft), 0); // signs preserved
}

TEST(ImageTest, PgmRoundTrip)
{
    Image original = Image::cross(11, 3);
    std::string pgm = original.toPgm();
    Image loaded = Image::fromPgm(pgm);
    ASSERT_EQ(loaded.width(), 11);
    ASSERT_EQ(loaded.height(), 11);
    EXPECT_EQ(loaded.binarized().countSignMismatch(original), 0);
}

TEST(ImageTest, PgmErrors)
{
    EXPECT_THROW(Image::fromPgm("P2\n2 2\n255\n"), support::IoError);
    EXPECT_THROW(Image::fromPgm("P5\n2 2\n255\nX"), support::IoError);
    EXPECT_THROW(Image::fromPgm("P5\n-1 2\n255\n"), support::IoError);
}

TEST(ImageTest, AsciiRendering)
{
    Image img(3, 1, -1.0);
    img.at(0, 1) = 1.0;
    img.at(0, 2) = 0.0;
    EXPECT_EQ(img.ascii(), ".#+\n");
}

// --- PUF ---------------------------------------------------------------------

class PufTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
        apps::PufDesign design;
        design.mainSections = 12;
        design.numBranches = 3;
        design.stubSections = 3;
        design.responseBits = 48;
        puf_ = new apps::TlnPuf(registry_->language("gmc-tln"), design);
    }
    static void TearDownTestSuite()
    {
        delete puf_;
        delete registry_;
        puf_ = nullptr;
        registry_ = nullptr;
    }
    static lang::LanguageRegistry *registry_;
    static apps::TlnPuf *puf_;
};

lang::LanguageRegistry *PufTest::registry_ = nullptr;
apps::TlnPuf *PufTest::puf_ = nullptr;

TEST_F(PufTest, ResponsesAreDeterministicPerChip)
{
    auto a = puf_->response(5, 1);
    auto b = puf_->response(5, 1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 48u);
}

TEST_F(PufTest, DifferentChipsDiffer)
{
    auto chip1 = puf_->response(3, 1);
    auto chip2 = puf_->response(3, 2);
    EXPECT_GT(apps::hammingFraction(chip1, chip2), 0.15);
}

TEST_F(PufTest, DifferentChallengesDiffer)
{
    auto c0 = puf_->response(0, 1);
    auto c7 = puf_->response(7, 1);
    EXPECT_GT(apps::hammingFraction(c0, c7), 0.05);
}

TEST_F(PufTest, ChallengeRangeEnforced)
{
    EXPECT_THROW(puf_->response(8, 1), support::SemaError); // 3 bits
}

TEST_F(PufTest, NoiseOnlyFlipsSomeBits)
{
    auto clean = puf_->response(2, 1);
    auto noisy = puf_->response(2, 1, 0.005, 77);
    double hd = apps::hammingFraction(clean, noisy);
    EXPECT_LT(hd, 0.4); // mostly stable
}

TEST_F(PufTest, MetricsAreWellBehaved)
{
    apps::PufMetrics metrics = apps::evaluatePuf(*puf_, 4, 3, 0.002, 9);
    EXPECT_GT(metrics.uniqueness, 0.25);
    EXPECT_LT(metrics.uniqueness, 0.75);
    EXPECT_LT(metrics.reliability, metrics.uniqueness);
    EXPECT_GT(metrics.challengeSensitivity, 0.0);
}

TEST_F(PufTest, ConcurrentResponsesAreSafeAndDeterministic)
{
    // Regression: the nominal-waveform cache used to be populated
    // with unsynchronized writes, so concurrent response() calls on a
    // fresh TlnPuf raced on it. A fresh instance (empty nominal
    // cache) is hammered from many threads across challenges that
    // collide on the nominal entry; every response must equal the
    // serial reference.
    apps::PufDesign design;
    design.mainSections = 6;
    design.numBranches = 2;
    design.stubSections = 2;
    design.responseBits = 16;
    apps::TlnPuf fresh(registry_->language("gmc-tln"), design);

    const std::vector<std::uint32_t> challenges{1, 2, 1, 3, 2, 1, 3, 2};
    std::vector<std::vector<std::uint8_t>> expected;
    for (std::size_t i = 0; i < challenges.size(); ++i)
        expected.push_back(fresh.response(
            challenges[i], 1 + (i % 3)));

    apps::TlnPuf hammered(registry_->language("gmc-tln"), design);
    std::vector<std::vector<std::uint8_t>> got(challenges.size());
    {
        std::vector<std::jthread> threads;
        for (std::size_t i = 0; i < challenges.size(); ++i) {
            threads.emplace_back([&, i] {
                got[i] = hammered.response(challenges[i], 1 + (i % 3));
            });
        }
    }
    for (std::size_t i = 0; i < challenges.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "call " << i;
}

TEST_F(PufTest, ResponseMatrixSharesSimulationsAcrossRepeats)
{
    // The CRP matrix battery must agree with per-challenge batches
    // while compiling each distinct (challenge, chip) only once.
    const std::vector<std::uint32_t> challenges{5, 2, 5};
    const std::vector<std::uint64_t> chips{1, 2};
    auto matrix = puf_->responseMatrix(challenges, chips);
    ASSERT_EQ(matrix.size(), 3u);
    EXPECT_EQ(matrix[0], matrix[2]); // same challenge, no noise
    for (std::size_t c = 0; c < challenges.size(); ++c)
        EXPECT_EQ(matrix[c], puf_->responseBatch(challenges[c], chips));
}

TEST_F(PufTest, DesignValidation)
{
    apps::PufDesign bad;
    bad.numBranches = 0;
    EXPECT_THROW(apps::TlnPuf(registry_->language("gmc-tln"), bad),
                 support::SemaError);
    apps::PufDesign tooShort;
    tooShort.mainSections = 2;
    tooShort.numBranches = 4;
    EXPECT_THROW(apps::TlnPuf(registry_->language("gmc-tln"), tooShort),
                 support::SemaError);
    EXPECT_THROW(apps::TlnPuf(registry_->language("tln"),
                              apps::PufDesign{}),
                 support::SemaError);
}

TEST(HammingTest, Basics)
{
    std::vector<std::uint8_t> a{1, 0, 1, 0};
    std::vector<std::uint8_t> b{1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(apps::hammingFraction(a, b), 0.5);
    EXPECT_DOUBLE_EQ(apps::hammingFraction(a, a), 0.0);
}

} // namespace
