/**
 * @file
 * Robustness properties: no layer may crash on hostile input — every
 * failure surfaces as a typed ArkError or a structured per-instance
 * failure. Fuzzes the lexer/parser with random byte strings and
 * random token salads, the SPICE substrate with random-topology /
 * random-value netlists, the engine front door with random ensemble
 * parameter draws, and verifies the shipped .ark files stay in sync
 * with the embedded sources.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "compiler/compiler.h"
#include "engine/session.h"
#include "lang/parser.h"
#include "lang/registry.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/tln.h"
#include "spice/batch.h"
#include "spice/mna.h"
#include "spice/netlist.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ark;
using support::ArkError;

class FuzzParser : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzParser, RandomBytesNeverCrash)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761);
    for (int trial = 0; trial < 200; ++trial) {
        std::string source;
        auto length = static_cast<std::size_t>(rng.uniformInt(0, 120));
        for (std::size_t i = 0; i < length; ++i) {
            // Printable ASCII plus whitespace.
            source += static_cast<char>(rng.uniformInt(32, 126));
            if (rng.bernoulli(0.1))
                source += '\n';
        }
        try {
            lang::parseProgram(source);
        } catch (const ArkError &) {
            // expected for garbage
        }
    }
}

TEST_P(FuzzParser, TokenSaladNeverCrashes)
{
    // Valid tokens in random order: exercises the parser's error
    // paths far deeper than byte noise.
    static const char *vocabulary[] = {
        "lang", "func", "ntyp", "etyp", "prod", "cstr", "acc", "rej",
        "match", "inherit", "inherits", "uses", "node", "edge",
        "set-attr", "set-init", "set-switch", "when", "attr", "init",
        "real", "int", "lambd", "mm", "const", "fixed", "sum", "mul",
        "var", "time", "inf", "off", "extern-func", "if", "then",
        "else", "and", "or", "not", "true", "false", "V", "E", "x",
        "(", ")", "{", "}", "[", "]", ",", ":", ";", ".", "=", "->",
        "<=", "<", ">", "+", "-", "*", "/", "^", "0", "1", "2.5",
        "1e-9",
    };
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503);
    const int vocabSize = static_cast<int>(std::size(vocabulary));
    for (int trial = 0; trial < 300; ++trial) {
        std::string source;
        auto length = static_cast<std::size_t>(rng.uniformInt(0, 60));
        for (std::size_t i = 0; i < length; ++i) {
            source += vocabulary[rng.uniformInt(0, vocabSize - 1)];
            source += ' ';
        }
        try {
            lang::parseProgram(source);
        } catch (const ArkError &) {
            // fine
        }
    }
}

TEST_P(FuzzParser, MutatedRealSourcesFailCleanly)
{
    // Deletions and substitutions inside the real TLN source: the
    // frontend must reject or accept, never crash, and the registry
    // must not be corrupted by a failed addProgram.
    std::string base = paradigms::tln::tlnSource();
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 9176);
    for (int trial = 0; trial < 60; ++trial) {
        std::string mutated = base;
        auto edits = static_cast<int>(rng.uniformInt(1, 5));
        for (int e = 0; e < edits; ++e) {
            auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(mutated.size()) - 1));
            if (rng.bernoulli(0.5)) {
                mutated.erase(pos, 1);
            } else {
                mutated[pos] =
                    static_cast<char>(rng.uniformInt(32, 126));
            }
        }
        lang::LanguageRegistry registry;
        try {
            registry.addProgram(mutated);
        } catch (const ArkError &) {
            continue;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParser, ::testing::Range(1, 5));

class FuzzEngine : public ::testing::TestWithParam<int>
{
};

/** Wide log-uniform magnitude with degenerate draws (0, negatives). */
double
fuzzValue(support::Rng &rng)
{
    if (rng.bernoulli(0.05))
        return 0.0;
    double magnitude = std::pow(10.0, rng.uniformInt(-12, 12));
    return rng.bernoulli(0.2) ? -magnitude : magnitude;
}

/**
 * Random node pick spanning ground, every valid id, and a deliberate
 * out-of-range id on each side — element constructors must reject the
 * invalid ones with a typed error, never crash.
 */
int
fuzzNode(support::Rng &rng, int numNodes)
{
    return static_cast<int>(rng.uniformInt(-2, numNodes));
}

TEST_P(FuzzEngine, RandomNetlistsNeverCrash)
{
    // Random-topology, random-value netlists through netlist
    // construction, SparseMnaSystem assembly, and a batched
    // transient: the only acceptable outcomes are a typed ArkError
    // (construction/assembly) or a structured per-instance
    // TransientFailure (simulation). Degenerate values — zeros,
    // negatives, wild magnitudes, dangling nodes — are all on the
    // menu.
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    std::vector<spice::Netlist> built;
    for (int trial = 0; trial < 120; ++trial) {
        spice::Netlist netlist;
        int numNodes = static_cast<int>(rng.uniformInt(1, 6));
        for (int n = 0; n < numNodes; ++n)
            netlist.addNode("n" + std::to_string(n));
        auto elements = static_cast<int>(rng.uniformInt(0, 10));
        bool valid = true;
        for (int e = 0; e < elements && valid; ++e) {
            std::string name = "e" + std::to_string(e);
            int pos = fuzzNode(rng, numNodes);
            int neg = fuzzNode(rng, numNodes);
            double value = fuzzValue(rng);
            try {
                switch (rng.uniformInt(0, 5)) {
                case 0:
                    netlist.resistor(name, pos, neg, value);
                    break;
                case 1:
                    netlist.capacitor(name, pos, neg, value);
                    break;
                case 2:
                    netlist.inductor(name, pos, neg, value);
                    break;
                case 3:
                    netlist.vccs(name, pos, neg,
                                 fuzzNode(rng, numNodes),
                                 fuzzNode(rng, numNodes), value);
                    break;
                case 4:
                    netlist.currentSource(name, pos, neg, value);
                    break;
                default:
                    netlist.voltageSource(name, pos, neg, value);
                    break;
                }
            } catch (const ArkError &) {
                valid = false; // rejected with a typed error: fine
            }
        }
        if (!valid)
            continue;
        try {
            spice::SparseMnaSystem system(netlist);
        } catch (const ArkError &) {
            // unassemblable (e.g. no elements): typed, fine — but
            // TransientBatch below must still absorb it structurally.
        }
        built.push_back(std::move(netlist));
    }
    ASSERT_FALSE(built.empty());
    for (bool sparse : {true, false}) {
        spice::TransientBatchOptions options;
        options.sparse = sparse;
        options.numThreads = 2;
        auto results =
            spice::TransientBatch(options).run(built, 0.0, 1e-8, 1e-9);
        ASSERT_EQ(results.size(), built.size());
        for (const auto &result : results) {
            // ok() or structured failure — nothing else can escape.
            if (!result.ok())
                EXPECT_FALSE(result.failure->message.empty());
        }
    }
}

TEST_P(FuzzEngine, RandomEnsembleDrawsNeverCrash)
{
    // Random parameter/init draws through the full front door
    // (language -> graph -> compile -> Session::runEnsemble). Builder
    // rejections for out-of-range attributes are typed; everything
    // that compiles must come back ok or with a structured
    // per-instance failure under structuredFaults.
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang fuzzosc {
            ntyp(2,sum) X {attr w2=real[0,100000],
                           init(0) real[-10,10],
                           init(1) real[-10,10]};
            etyp E {};
            prod(e:E,s:X->s:X) s <= -s.w2*var(s);
        }
    )");
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    engine::Session session;
    for (int round = 0; round < 6; ++round) {
        std::vector<engine::SystemPtr> systems;
        auto count = static_cast<int>(rng.uniformInt(1, 6));
        for (int i = 0; i < count; ++i) {
            // Draws straddle the declared attribute/init ranges so
            // both acceptance and typed rejection get exercised.
            double w2 = rng.uniformInt(0, 3) == 0
                            ? fuzzValue(rng)
                            : double(rng.uniformInt(0, 100000));
            double x0 = double(rng.uniformInt(-15, 15));
            double v0 = double(rng.uniformInt(-15, 15));
            try {
                lang::GraphBuilder builder(registry.language("fuzzosc"),
                                           0);
                builder.node("x", "X");
                builder.attr("x", "w2", w2);
                builder.edge("self", "E", "x", "x");
                builder.init("x", 0, x0);
                builder.init("x", 1, v0);
                systems.push_back(
                    std::make_shared<const compiler::OdeSystem>(
                        compiler::compile(
                            builder.take(),
                            registry.language("fuzzosc"))));
            } catch (const ArkError &) {
                continue; // typed rejection of an out-of-range draw
            }
        }
        if (systems.empty())
            continue;
        sim::EnsembleOptions options;
        options.sim.method = sim::Method::Rk4;
        options.sim.dt = rng.bernoulli(0.1) ? 0.0 : 1e-3;
        options.sim.maxSteps = 2000;
        options.sim.recordDt = 1e-2;
        options.structuredFaults = true;
        options.numThreads = 2;
        try {
            auto results =
                session.runEnsemble(systems, 0.0, 1.0, options);
            ASSERT_EQ(results.size(), systems.size());
            for (const auto &result : results) {
                if (!result.ok())
                    EXPECT_FALSE(result.failure->message.empty());
            }
        } catch (const ArkError &) {
            // batch-level misconfiguration (e.g. dt == 0): typed.
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEngine, ::testing::Range(1, 4));

TEST(ShippedSources, ParadigmsFileMatchesEmbedded)
{
    // languages/paradigms.ark is generated by `arkc dump`; it must
    // stay byte-identical to the embedded sources.
    std::ifstream file("../../languages/paradigms.ark");
    if (!file.is_open())
        file.open("../languages/paradigms.ark");
    if (!file.is_open())
        file.open("languages/paradigms.ark");
    if (!file.is_open())
        GTEST_SKIP() << "shipped sources not found from this cwd";
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string expected = paradigms::tln::tlnSource() +
                           paradigms::tln::gmcTlnSource() +
                           paradigms::tln::brFuncSource() +
                           paradigms::cnn::cnnSource() +
                           paradigms::cnn::hwCnnSource() +
                           paradigms::obc::obcSource() +
                           paradigms::obc::ofsObcSource() +
                           paradigms::obc::interconObcSource();
    EXPECT_EQ(buffer.str(), expected);
}

TEST(ShippedSources, LossyDemoParses)
{
    std::ifstream file("../../languages/lossy_tln_demo.ark");
    if (!file.is_open())
        file.open("../languages/lossy_tln_demo.ark");
    if (!file.is_open())
        file.open("languages/lossy_tln_demo.ark");
    if (!file.is_open())
        GTEST_SKIP() << "shipped sources not found from this cwd";
    std::ostringstream buffer;
    buffer << file.rdbuf();
    lang::LanguageRegistry registry;
    registry.addProgram(paradigms::tln::tlnSource());
    EXPECT_NO_THROW(registry.addProgram(buffer.str()));
    EXPECT_NE(registry.findLanguage("lossy-tln"), nullptr);
    EXPECT_NE(registry.findFunction("demo-line"), nullptr);
}

} // namespace
