/**
 * @file
 * Tests for tier-5 native kernel execution (expr/cjit.h +
 * engine/jit.h): the C emitter, the kernel-vs-interpreter bit-identity
 * property across random TLN/OBC/CNN programs at every lane width
 * (with and without FMA contraction), per-lane constant delivery
 * through merged tapes, ensemble-level bit-identity with the JIT on
 * and off under both integrators, ledger tier provenance, the
 * structure-only cache key, the bounded on-disk object cache
 * (persistence, warm loads, corruption healing), and the graceful
 * interpreted-tier fallback when compilation is forced to fail
 * through FaultSite::JitCompile.
 *
 * Tolerance note: a kernel executes the LaneTape instruction stream
 * as straight-line C compiled with -fno-fast-math -ffp-contract=off,
 * one IEEE operation per instruction in stream order, so outputs are
 * asserted bit-identical (tolerance zero) — the same contract
 * lanetape_test.cc holds the interpreter to.
 *
 * Every test that needs a kernel skips when the host has no working C
 * toolchain; the suite still proves the emitter and the fallback path
 * on such hosts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "engine/cache.h"
#include "engine/fingerprint.h"
#include "engine/jit.h"
#include "expr/cjit.h"
#include "expr/fusedtape.h"
#include "expr/lanetape.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "support/dl.h"
#include "support/faultinject.h"
#include "support/ledger.h"
#include "support/rng.h"
#include "support/telemetry.h"

namespace {

using namespace ark;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::FusedTape;
using expr::LaneTape;

/** dq0 = sin(q0 - q1) * q1, dq1 = q0 / (q1 + 3) + t. */
FusedTape
sampleTape()
{
    std::vector<ExprPtr> outputs{
        Expr::binary(BinOp::Mul,
                     Expr::call("sin",
                                {Expr::binary(BinOp::Sub,
                                              Expr::stateVar(0),
                                              Expr::stateVar(1))}),
                     Expr::stateVar(1)),
        Expr::binary(BinOp::Add,
                     Expr::binary(BinOp::Div, Expr::stateVar(0),
                                  Expr::binary(BinOp::Add,
                                               Expr::stateVar(1),
                                               Expr::real(3.0))),
                     Expr::time()),
    };
    return FusedTape::compile(outputs);
}

/**
 * Compiles `tape`'s kernel (bypassing every cache) and checks it
 * against the interpreter bit-for-bit on a random state block.
 */
void
expectKernelMatchesTape(const LaneTape &tape, support::Rng &rng, double t)
{
    expr::JitKernelPtr kernel = expr::compileKernel(tape, "");
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->width(), tape.width());
    EXPECT_EQ(kernel->numOutputs(), tape.numOutputs());

    const std::size_t n = tape.numOutputs();
    const std::size_t w = tape.width();
    std::vector<double> state(n * w);
    for (double &v : state)
        v = rng.uniform(-2.0, 2.0);
    std::vector<double> expected(n * w), actual(n * w);
    std::vector<double> regs(tape.scratchSize());
    tape.evalInto(state.data(), t, expected.data(), regs.data());
    kernel->call(state.data(), t, actual.data(),
                 tape.constants().data());
    for (std::size_t i = 0; i < n * w; ++i)
        EXPECT_EQ(actual[i], expected[i]) << "slot " << i;
}

/** Base fixture: skip without a toolchain, keep the disk cache out of
 *  the picture unless a test opts back in, disarm any faults. */
class JitTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!expr::jitToolchainAvailable())
            GTEST_SKIP() << "no host C toolchain";
        // Hermetic by default: an empty value disables the on-disk
        // object cache (re-read per compile, so tests can retarget).
        setenv("ARK_JIT_CACHE_DIR", "", 1);
    }

    void TearDown() override
    {
        unsetenv("ARK_JIT_CACHE_DIR");
        support::FaultInjector::disarmAll();
    }
};

TEST(JitEmitterTest, EmitsDeterministicKernelSource)
{
    // The emitter needs no toolchain: it is a pure function of the
    // tape, so two calls must produce byte-identical C.
    FusedTape fused = sampleTape();
    LaneTape tape = LaneTape::broadcast(fused, 3);
    const std::string src = expr::emitKernelC(tape);
    EXPECT_NE(src.find("#include <math.h>"), std::string::npos);
    EXPECT_NE(src.find("void ark_kernel"), std::string::npos);
    EXPECT_NE(src.find("sin("), std::string::npos);
    EXPECT_EQ(src, expr::emitKernelC(tape));
}

TEST(JitKeyTest, KeyIsStructureOnly)
{
    // Same structure, different Const immediates: one kernel serves
    // both (constants arrive at call time), so the keys must match.
    auto makeTape = [](double k, double c) {
        return FusedTape::compile({Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::real(-k), Expr::stateVar(0)),
            Expr::real(c))});
    };
    FusedTape a = makeTape(2.0, 0.5);
    FusedTape b = makeTape(3.5, -1.25);
    EXPECT_EQ(engine::kernelKey(LaneTape::broadcast(a, 4)),
              engine::kernelKey(LaneTape::broadcast(b, 4)));
    // Width is part of the key: a W=4 kernel cannot serve W=8 blocks.
    EXPECT_NE(engine::kernelKey(LaneTape::broadcast(a, 4)),
              engine::kernelKey(LaneTape::broadcast(a, 8)));
    // A structurally different program keys differently.
    FusedTape other = sampleTape();
    EXPECT_NE(engine::kernelKey(LaneTape::broadcast(a, 4)),
              engine::kernelKey(LaneTape::broadcast(other, 4)));
}

TEST_F(JitTest, KernelMatchesInterpreterOnSampleProgram)
{
    FusedTape fused = sampleTape();
    support::Rng rng(11);
    for (std::size_t lanes : {1u, 2u, 3u, 4u, 6u, 8u})
        expectKernelMatchesTape(LaneTape::broadcast(fused, lanes), rng,
                                0.75);
}

TEST_F(JitTest, MergedConstantsTravelThroughConstsArgument)
{
    // The PUF-mismatch shape in miniature: one structure, per-lane
    // parameters — the kernel must read them from the consts table.
    auto makeTape = [](double k, double c) {
        return FusedTape::compile({Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::real(-k), Expr::stateVar(0)),
            Expr::real(c))});
    };
    FusedTape a = makeTape(2.0, 0.5);
    FusedTape b = makeTape(3.5, -1.25);
    FusedTape c = makeTape(0.125, 7.0);
    std::optional<LaneTape> lane = LaneTape::merge({&a, &b, &c});
    ASSERT_TRUE(lane.has_value());
    support::Rng rng(23);
    expectKernelMatchesTape(*lane, rng, 0.0);
}

/**
 * Property: on real compiled systems, the kernel reproduces the
 * interpreter bit-for-bit at widths 1/2/4/8, on both the plain and
 * the FMA-contracted program.
 */
class JitEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }

    void SetUp() override
    {
        if (!expr::jitToolchainAvailable())
            GTEST_SKIP() << "no host C toolchain";
        setenv("ARK_JIT_CACHE_DIR", "", 1);
    }
    void TearDown() override { unsetenv("ARK_JIT_CACHE_DIR"); }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *JitEquivalence::registry_ = nullptr;

void
expectJitAgreement(const compiler::OdeSystem &system, support::Rng &rng)
{
    for (bool fma : {false, true}) {
        const FusedTape &fused =
            fma ? system.fusedTapeFma() : system.fusedTape();
        for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
            expectKernelMatchesTape(LaneTape::broadcast(fused, lanes),
                                    rng, rng.uniform(0.0, 1e-7));
        }
    }
}

TEST_P(JitEquivalence, RandomTlnSystem)
{
    support::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(3, 24));
    spec.inductance = rng.uniform(0.5e-9, 2e-9);
    spec.capacitance = rng.uniform(0.5e-9, 2e-9);
    const lang::Language &tln = registry_->language("tln");
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    expectJitAgreement(system, rng);
}

TEST_P(JitEquivalence, RandomObcSystem)
{
    support::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = static_cast<int>(rng.uniformInt(3, 6));
    for (int a = 0; a < instance.numVertices; ++a)
        for (int b = a + 1; b < instance.numVertices; ++b)
            if (rng.bernoulli(0.6))
                instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < instance.numVertices; ++v)
        spec.initPhases.push_back(
            rng.uniform(0.0, 2.0 * std::numbers::pi));
    const lang::Language &obc = registry_->language("obc");
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    expectJitAgreement(system, rng);
}

TEST_P(JitEquivalence, RandomCnnSystem)
{
    support::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
    paradigms::cnn::CnnSpec spec;
    spec.width = static_cast<int>(rng.uniformInt(3, 6));
    spec.height = static_cast<int>(rng.uniformInt(3, 6));
    std::vector<double> input;
    for (int i = 0; i < spec.width * spec.height; ++i)
        input.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
    const lang::Language &cnn = registry_->language("cnn");
    compiler::OdeSystem system = compiler::compile(
        paradigms::cnn::buildCnn(cnn, spec, input), cnn);
    expectJitAgreement(system, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitEquivalence, ::testing::Range(0, 4));

/** Mismatched-but-compatible TLN lines for ensemble-level tests. */
std::vector<compiler::OdeSystem>
mismatchedLines(const lang::LanguageRegistry &registry, int sections,
                std::size_t count)
{
    const lang::Language &gmc = registry.language("gmc-tln");
    std::vector<compiler::OdeSystem> systems;
    for (std::uint64_t seed = 1; seed <= count; ++seed) {
        paradigms::tln::LineSpec spec;
        spec.sections = sections;
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = seed;
        systems.push_back(
            compiler::compile(paradigms::tln::buildLine(gmc, spec), gmc));
    }
    return systems;
}

void
expectResultsBitIdentical(const std::vector<sim::SimResult> &a,
                          const std::vector<sim::SimResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].ok(), b[r].ok()) << "instance " << r;
        EXPECT_EQ(a[r].steps, b[r].steps) << "instance " << r;
        ASSERT_EQ(a[r].trajectory.size(), b[r].trajectory.size())
            << "instance " << r;
        for (std::size_t s = 0; s < a[r].trajectory.size(); ++s) {
            EXPECT_EQ(a[r].trajectory.time(s), b[r].trajectory.time(s));
            const auto &sa = a[r].trajectory.state(s);
            const auto &sb = b[r].trajectory.state(s);
            ASSERT_EQ(sa.size(), sb.size());
            for (std::size_t i = 0; i < sa.size(); ++i)
                EXPECT_EQ(sa[i], sb[i])
                    << "instance " << r << " sample " << s << " var "
                    << i;
        }
    }
}

TEST_F(JitTest, EnsembleBitIdenticalWithJitOnAndOff)
{
    // Lane blocks (6 instances -> W=8), both integrators: the jitted
    // battery must reproduce the interpreted one bit for bit, spills
    // and step votes included.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<compiler::OdeSystem> systems =
        mismatchedLines(registry, 8, 6);
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    for (sim::Method method : {sim::Method::Rk4, sim::Method::Dopri5}) {
        sim::EnsembleOptions off;
        off.sim.method = method;
        off.sim.recordDt = 1e-10;
        off.sim.jit = false;
        sim::EnsembleOptions on = off;
        on.sim.jit = true;
        std::vector<sim::SimResult> interpreted =
            sim::simulateEnsemble(pointers, 0.0, 1e-9, off);
        std::vector<sim::SimResult> jitted =
            sim::simulateEnsemble(pointers, 0.0, 1e-9, on);
        expectResultsBitIdentical(interpreted, jitted);
    }
}

TEST_F(JitTest, ScalarPathBitIdenticalWithJitOnAndOff)
{
    // laneBatching off forces the serial driver — the JitScalarRhs
    // hook in sim.cc — for both integrators.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<compiler::OdeSystem> systems =
        mismatchedLines(registry, 6, 2);
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    for (sim::Method method : {sim::Method::Rk4, sim::Method::Dopri5}) {
        sim::EnsembleOptions off;
        off.sim.method = method;
        off.sim.recordDt = 1e-10;
        off.laneBatching = false;
        sim::EnsembleOptions on = off;
        on.sim.jit = true;
        std::vector<sim::SimResult> interpreted =
            sim::simulateEnsemble(pointers, 0.0, 1e-9, off);
        std::vector<sim::SimResult> jitted =
            sim::simulateEnsemble(pointers, 0.0, 1e-9, on);
        expectResultsBitIdentical(interpreted, jitted);
    }
}

TEST_F(JitTest, LedgerRecordsJitTierProvenance)
{
    if (!expr::jitEnabled(true))
        GTEST_SKIP() << "JIT force-disabled in this environment";
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<compiler::OdeSystem> systems =
        mismatchedLines(registry, 8, 6);
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    telemetry::RunLedger ledger;
    sim::EnsembleOptions options;
    options.sim.recordDt = 1e-10;
    options.sim.jit = true;
    options.ledger = &ledger;
    sim::simulateEnsemble(pointers, 0.0, 1e-9, options);

    std::vector<telemetry::RunLedger::Record> records = ledger.records();
    ASSERT_EQ(records.size(), pointers.size());
    for (const telemetry::RunLedger::Record &record : records)
        EXPECT_EQ(record.tier, telemetry::RunLedger::Tier::Jit);
}

TEST_F(JitTest, CompileFailureFallsBackAndHeals)
{
    // A private cache so the armed fault actually reaches the build
    // (the process-wide cache may already hold this structure).
    engine::ArtifactCache cache;
    LaneTape tape = LaneTape::broadcast(sampleTape(), 4);

    support::FaultInjector::arm(support::FaultSite::JitCompile);
    expr::JitKernelPtr kernel = engine::jitKernel(tape, &cache);
    EXPECT_EQ(kernel, nullptr);
    EXPECT_EQ(
        support::FaultInjector::fired(support::FaultSite::JitCompile),
        1u);
    support::FaultInjector::disarmAll();

    // Failure is not cached: once the fault clears, the same cache
    // serves a real kernel.
    kernel = engine::jitKernel(tape, &cache);
    ASSERT_NE(kernel, nullptr);
}

TEST_F(JitTest, EnsembleFallsBackBitIdenticalUnderForcedFailure)
{
    // Every compile attempt fails for the whole batch: results must
    // be bit-identical to an interpreted run, and the fault must have
    // actually fired (a fallback test that never reached its fault
    // proves nothing). Distinct section count keeps this structure
    // out of the process-wide kernel cache.
    if (!expr::jitEnabled(true))
        GTEST_SKIP() << "JIT force-disabled in this environment";
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<compiler::OdeSystem> systems =
        mismatchedLines(registry, 5, 6);
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    // The armed run goes first: this structure is not in the shared
    // kernel cache yet, so the batch must attempt a compile and hit
    // the fault (a later run — or ARK_JIT_FORCE=1 turning the
    // baseline jitted — would warm the cache and starve it).
    sim::EnsembleOptions on;
    on.sim.recordDt = 1e-10;
    on.sim.jit = true;
    support::FaultInjector::arm(support::FaultSite::JitCompile, 0, 64);
    std::vector<sim::SimResult> fallback =
        sim::simulateEnsemble(pointers, 0.0, 1e-9, on);
    const std::uint64_t fired =
        support::FaultInjector::fired(support::FaultSite::JitCompile);
    support::FaultInjector::disarmAll();
    EXPECT_GE(fired, 1u);

    sim::EnsembleOptions off = on;
    off.sim.jit = false;
    std::vector<sim::SimResult> interpreted =
        sim::simulateEnsemble(pointers, 0.0, 1e-9, off);
    expectResultsBitIdentical(interpreted, fallback);
}

TEST_F(JitTest, DiskCachePersistsWarmLoadsAndHealsCorruption)
{
    support::TempDir dir = support::TempDir::create("ark-jit-test-");
    ASSERT_TRUE(dir.ok());
    setenv("ARK_JIT_CACHE_DIR", dir.path().c_str(), 1);
    telemetry::setMetricsEnabled(true);
    telemetry::Counter &diskHits =
        telemetry::Registry::shared().counter("ark.compile.jit_disk_hits");
    telemetry::Counter &compiles =
        telemetry::Registry::shared().counter("ark.compile.jit_compiles");

    LaneTape tape = LaneTape::broadcast(sampleTape(), 2);
    const std::string key = engine::kernelKey(tape).str();
    const std::string so = dir.path() + "/" + key + ".so";

    // Cold: compiles and publishes the object.
    const std::uint64_t compiles0 = compiles.value();
    expr::JitKernelPtr first = expr::compileKernel(tape, key);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(compiles.value(), compiles0 + 1);
    EXPECT_TRUE(std::filesystem::exists(so));

    // Warm: served from disk, no second compile.
    const std::uint64_t hits0 = diskHits.value();
    expr::JitKernelPtr second = expr::compileKernel(tape, key);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(diskHits.value(), hits0 + 1);
    EXPECT_EQ(compiles.value(), compiles0 + 1);

    // Corrupt entry (torn write, foreign file): ignored, replaced by
    // a fresh compile, and the healed kernel still computes right.
    // Drop the live handles first — truncating an ELF another dlopen
    // still maps invalidates its pages (SIGBUS on the later dlclose).
    first.reset();
    second.reset();
    {
        std::ofstream out(so, std::ios::trunc);
        out << "not an object file";
    }
    expr::JitKernelPtr third = expr::compileKernel(tape, key);
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(compiles.value(), compiles0 + 2);

    support::Rng rng(99);
    const std::size_t m = tape.numOutputs() * tape.width();
    std::vector<double> state(m);
    for (double &v : state)
        v = rng.uniform(-2.0, 2.0);
    std::vector<double> expected(m), actual(m);
    std::vector<double> regs(tape.scratchSize());
    tape.evalInto(state.data(), 0.5, expected.data(), regs.data());
    third->call(state.data(), 0.5, actual.data(),
                tape.constants().data());
    for (std::size_t i = 0; i < m; ++i)
        EXPECT_EQ(actual[i], expected[i]) << "slot " << i;
}

} // namespace
