/**
 * @file
 * Tests for the dynamical-system compiler: production-rule rewriting,
 * reduction aggregation, LowOrdEqs chains for higher-order nodes,
 * order-0 inlining, off-rules, inheritance fallback, and attribute
 * substitution with sampled values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "lang/func.h"
#include "lang/registry.h"
#include "support/error.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using lang::GraphBuilder;
using support::CompileError;

/** RHS at a given state/time via the tape path. */
std::vector<double>
rhsAt(const OdeSystem &system, const std::vector<double> &state, double t)
{
    std::vector<double> out(system.size());
    std::vector<double> scratch;
    system.evalRhs(state.data(), t, out.data(), scratch);
    return out;
}

TEST(CompilerTest, SimpleCoupling)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang c {
            ntyp(1,sum) N {attr k=real[-10,10]};
            etyp E {};
            prod(e:E,s:N->t:N) t <= s.k*var(s);
            prod(e:E,s:N->s:N) s <= -var(s);
        }
    )");
    const lang::Language &c = registry.language("c");
    GraphBuilder builder(c, 0);
    builder.node("a", "N");
    builder.node("b", "N");
    builder.attr("a", "k", 3.0);
    builder.attr("b", "k", 0.0);
    builder.edge("ab", "E", "a", "b");
    builder.edge("aa", "E", "a", "a");
    builder.init("a", 0, 2.0);
    builder.init("b", 0, 5.0);
    dg::Graph graph = builder.take();

    OdeSystem system = compiler::compile(graph, c);
    ASSERT_EQ(system.size(), 2u);
    EXPECT_DOUBLE_EQ(system.initialState()[0], 2.0);
    EXPECT_DOUBLE_EQ(system.initialState()[1], 5.0);

    // da/dt = -a (self); db/dt = k_a * a = 3a.
    auto rhs = rhsAt(system, {2.0, 5.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[static_cast<std::size_t>(
                         system.stateIndex("a", 0))], -2.0);
    EXPECT_DOUBLE_EQ(rhs[static_cast<std::size_t>(
                         system.stateIndex("b", 0))], 6.0);
}

TEST(CompilerTest, SourceAndDestinationRulesBothApply)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang c2 {
            ntyp(1,sum) N {};
            etyp E {attr k=real[-10,10]};
            prod(e:E,s:N->t:N) s <= -e.k*var(t);
            prod(e:E,s:N->t:N) t <= e.k*var(s);
        }
    )");
    const lang::Language &c2 = registry.language("c2");
    GraphBuilder builder(c2, 0);
    builder.node("a", "N");
    builder.node("b", "N");
    builder.edge("ab", "E", "a", "b");
    builder.attr("ab", "k", 2.0);
    dg::Graph graph = builder.take();
    OdeSystem system = compiler::compile(graph, c2);
    auto rhs = rhsAt(system, {3.0, 4.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[0], -8.0); // -k*b
    EXPECT_DOUBLE_EQ(rhs[1], 6.0);  // +k*a
}

TEST(CompilerTest, MulReductionAggregates)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang m {
            ntyp(1,mul) P {};
            ntyp(1,sum) Q {};
            etyp E {};
            prod(e:E,s:Q->t:P) t <= var(s);
        }
    )");
    const lang::Language &m = registry.language("m");
    GraphBuilder builder(m, 0);
    builder.node("p", "P");
    builder.node("q1", "Q");
    builder.node("q2", "Q");
    builder.edge("e1", "E", "q1", "p");
    builder.edge("e2", "E", "q2", "p");
    dg::Graph graph = builder.take();
    OdeSystem system = compiler::compile(graph, m);
    // dp/dt = q1 * q2 under the mul reduction.
    auto rhs = rhsAt(system, {0.0, 3.0, 5.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[static_cast<std::size_t>(
                         system.stateIndex("p", 0))], 15.0);
    // Empty mul aggregation defaults to 1.
    auto rhsQ = rhs[static_cast<std::size_t>(system.stateIndex("q1", 0))];
    EXPECT_DOUBLE_EQ(rhsQ, 0.0); // sum reduction, no terms
}

TEST(CompilerTest, HigherOrderNodeChainsDerivatives)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang ho {
            ntyp(2,sum) X {attr w2=real[0,100], init(0) real[-10,10],
                           init(1) real[-10,10]};
            etyp E {};
            prod(e:E,s:X->s:X) s <= -s.w2*var(s);
        }
    )");
    const lang::Language &ho = registry.language("ho");
    GraphBuilder builder(ho, 0);
    builder.node("x", "X");
    builder.attr("x", "w2", 9.0);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, 1.0);
    builder.init("x", 1, 0.0);
    dg::Graph graph = builder.take();
    OdeSystem system = compiler::compile(graph, ho);
    // Two state variables: x and x'.
    ASSERT_EQ(system.size(), 2u);
    int x0 = system.stateIndex("x", 0);
    int x1 = system.stateIndex("x", 1);
    EXPECT_DOUBLE_EQ(system.initialState()[static_cast<std::size_t>(x0)],
                     1.0);
    // LowOrdEqs: dx/dt = x'; dx'/dt = -9x (harmonic oscillator).
    auto rhs = rhsAt(system, {0.5, 2.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[static_cast<std::size_t>(x0)], 2.0);
    EXPECT_DOUBLE_EQ(rhs[static_cast<std::size_t>(x1)], -4.5);
}

TEST(CompilerTest, OrderZeroNodesInline)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang oz {
            ntyp(1,sum) V {};
            ntyp(0,sum) F {};
            etyp E {attr g=real[-10,10]};
            prod(e:E,s:V->t:F) t <= sat(var(s));
            prod(e:E,s:F->t:V) t <= e.g*var(s);
        }
    )");
    const lang::Language &oz = registry.language("oz");
    GraphBuilder builder(oz, 0);
    builder.node("v1", "V");
    builder.node("f", "F");
    builder.node("v2", "V");
    builder.edge("in", "E", "v1", "f");
    builder.attr("in", "g", 0.0);
    builder.edge("out", "E", "f", "v2");
    builder.attr("out", "g", 2.0);
    dg::Graph graph = builder.take();
    OdeSystem system = compiler::compile(graph, oz);
    // Only v1 and v2 own state; dv2/dt = 2*sat(v1).
    ASSERT_EQ(system.size(), 2u);
    auto rhs = rhsAt(system, {0.25, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[static_cast<std::size_t>(
                         system.stateIndex("v2", 0))], 0.5);
    auto rhsSat = rhsAt(system, {5.0, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhsSat[static_cast<std::size_t>(
                         system.stateIndex("v2", 0))], 2.0);
    // var() of an order-0 node is exposed via nodeValueExpr.
    expr::ExprPtr value = compiler::nodeValueExpr(graph, oz, "f");
    EXPECT_NE(value->str().find("sat"), std::string::npos);
}

TEST(CompilerTest, OrderZeroCycleDetected)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang cyc {
            ntyp(0,sum) F {};
            etyp E {};
            prod(e:E,s:F->t:F) t <= var(s);
        }
    )");
    const lang::Language &cyc = registry.language("cyc");
    GraphBuilder builder(cyc, 0);
    builder.node("f1", "F");
    builder.node("f2", "F");
    builder.edge("a", "E", "f1", "f2");
    builder.edge("b", "E", "f2", "f1");
    dg::Graph graph = builder.take();
    EXPECT_THROW(compiler::nodeValueExpr(graph, cyc, "f1"),
                 CompileError);
}

TEST(CompilerTest, OffRulesModelSwitchLeakage)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang sw {
            ntyp(1,sum) N {};
            etyp E {attr k=real[0,10]};
            prod(e:E,s:N->t:N) t <= e.k*var(s);
            prod(e:E,s:N->t:N) t <= 0.01*e.k*var(s) off;
        }
    )");
    const lang::Language &sw = registry.language("sw");
    auto build = [&](bool enabled) {
        GraphBuilder builder(sw, 0);
        builder.node("a", "N");
        builder.node("b", "N");
        builder.edge("ab", "E", "a", "b");
        builder.attr("ab", "k", 2.0);
        builder.enable("ab", enabled);
        return builder.take();
    };
    OdeSystem on = compiler::compile(build(true), sw);
    OdeSystem off = compiler::compile(build(false), sw);
    auto rhsOn = rhsAt(on, {1.0, 0.0}, 0.0);
    auto rhsOff = rhsAt(off, {1.0, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhsOn[1], 2.0);
    EXPECT_DOUBLE_EQ(rhsOff[1], 0.02); // leakage term
}

TEST(CompilerTest, OffEdgeWithoutOffRuleContributesNothing)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang sw2 {
            ntyp(1,sum) N {};
            etyp E {};
            prod(e:E,s:N->t:N) t <= var(s);
        }
    )");
    const lang::Language &sw2 = registry.language("sw2");
    GraphBuilder builder(sw2, 0);
    builder.node("a", "N");
    builder.node("b", "N");
    builder.edge("ab", "E", "a", "b");
    builder.enable("ab", false);
    OdeSystem system = compiler::compile(builder.take(), sw2);
    auto rhs = rhsAt(system, {1.0, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[1], 0.0);
}

TEST(CompilerTest, InheritanceFallbackUsesSampledAttrs)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang base2 {
            ntyp(1,sum) N {};
            etyp E {attr k=real[0,10]};
            prod(e:E,s:N->t:N) t <= e.k*var(s);
        }
        lang derived2 inherits base2 {
            etyp Em inherit E {attr k=real[0,10] mm(0,0.5)};
        }
    )");
    const lang::Language &derived = registry.language("derived2");
    GraphBuilder builder(derived, 11);
    builder.node("a", "N");
    builder.node("b", "N");
    builder.edge("ab", "Em", "a", "b");
    builder.attr("ab", "k", 2.0);
    dg::Graph graph = builder.take();
    double sampled = graph.edgeAttr(*graph.findEdge("ab"), "k").asReal();
    ASSERT_NE(sampled, 2.0);
    // The base rule applies to the derived edge with the SAMPLED k.
    OdeSystem system = compiler::compile(graph, derived);
    auto rhs = rhsAt(system, {1.0, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(rhs[1], sampled);
}

TEST(CompilerTest, TimeVaryingInputsViaLambdaAttrs)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang tv {
            ntyp(1,sum) N {};
            ntyp(0,sum) Src {attr fn=lambd(a0)};
            etyp E {};
            prod(e:E,s:Src->t:N) t <= s.fn(time);
        }
    )");
    const lang::Language &tv = registry.language("tv");
    GraphBuilder builder(tv, 0);
    builder.node("src", "Src");
    builder.node("n", "N");
    expr::Lambda ramp{{"a0"},
                      expr::Expr::binary(expr::BinOp::Mul,
                                         expr::Expr::var("a0"),
                                         expr::Expr::real(3.0))};
    builder.attr("src", "fn", expr::Value::function(ramp));
    builder.edge("e", "E", "src", "n");
    OdeSystem system = compiler::compile(builder.take(), tv);
    auto rhs = rhsAt(system, {0.0}, 2.0);
    EXPECT_DOUBLE_EQ(rhs[0], 6.0); // fn(t) = 3t at t=2
}

TEST(CompilerTest, EquationsPrinting)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang pr { ntyp(1,sum) N {}; etyp E {};
                  prod(e:E,s:N->s:N) s <= -var(s); }
    )");
    const lang::Language &pr = registry.language("pr");
    GraphBuilder builder(pr, 0);
    builder.node("a", "N");
    builder.edge("self", "E", "a", "a");
    OdeSystem system = compiler::compile(builder.take(), pr);
    std::string eqs = system.equationsStr();
    EXPECT_NE(eqs.find("d a/dt"), std::string::npos);
    EXPECT_THROW(system.stateIndex("nope", 0), CompileError);
}

TEST(CompilerTest, InterpretedAndTapedRhsAgree)
{
    lang::LanguageRegistry registry;
    registry.addProgram(R"(
        lang agree {
            ntyp(1,sum) O {};
            etyp C {attr k=real[-8,8]};
            prod(e:C,s:O->t:O) s <= -1.6e9*e.k*sin(var(s)-var(t));
            prod(e:C,s:O->t:O) t <= -1.6e9*e.k*sin(-var(s)+var(t));
            prod(e:C,s:O->s:O) s <= -1e9*sin(2*var(s));
        }
    )");
    const lang::Language &agree = registry.language("agree");
    GraphBuilder builder(agree, 0);
    for (int i = 0; i < 3; ++i) {
        builder.node("o" + std::to_string(i), "O");
        builder.edge("s" + std::to_string(i), "C",
                     "o" + std::to_string(i), "o" + std::to_string(i));
        builder.attr("s" + std::to_string(i), "k", 1.0);
    }
    builder.edge("c01", "C", "o0", "o1");
    builder.attr("c01", "k", -1.0);
    builder.edge("c12", "C", "o1", "o2");
    builder.attr("c12", "k", -1.0);
    OdeSystem system = compiler::compile(builder.take(), agree);

    std::vector<double> state{0.3, 1.1, 2.9};
    std::vector<double> viaTape(3), viaTree(3);
    std::vector<double> scratch;
    system.evalRhs(state.data(), 0.0, viaTape.data(), scratch);
    system.evalRhsInterpreted(state.data(), 0.0, viaTree.data());
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(viaTape[i], viaTree[i],
                    1e-6 * std::fabs(viaTree[i]) + 1e-9);
}

} // namespace
