/**
 * @file
 * Tests for the opt-in reassociation pass (expr/rewrite.h): rule-level
 * unit checks, tolerance-level equivalence on real paradigm systems,
 * the GmC-TLN FMA-contraction win the pass exists for, bit-identity of
 * the default path, lane-vs-scalar parity under the flag, and the
 * digest/fingerprint property hash-consing guarantees.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "compiler/compiler.h"
#include "engine/fingerprint.h"
#include "expr/expr.h"
#include "expr/fusedtape.h"
#include "expr/rewrite.h"
#include "lang/registry.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/batch.h"
#include "sim/sim.h"
#include "support/rng.h"

namespace {

using namespace ark;
using compiler::OdeSystem;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::UnOp;
using sim::EnsembleOptions;
using sim::SimResult;

// --- rule-level unit checks --------------------------------------------

TEST(RewriteTest, DivByLiteralBecomesReciprocalMul)
{
    ExprPtr x = Expr::var("x");
    expr::RewriteStats stats;
    ExprPtr out = expr::reassociate(
        Expr::binary(BinOp::Div, x, Expr::real(4.0)), &stats);
    EXPECT_EQ(out->str(), "(0.25 * x)");
    EXPECT_EQ(stats.divReciprocals, 1u);
}

TEST(RewriteTest, MulChainGathersCoefficients)
{
    ExprPtr x = Expr::var("x");
    ExprPtr e = Expr::binary(
        BinOp::Mul, Expr::binary(BinOp::Mul, Expr::real(2.0), x),
        Expr::real(3.0));
    EXPECT_EQ(expr::reassociate(e)->str(), "(6 * x)");
}

TEST(RewriteTest, NegAndSubFoldIntoCoefficients)
{
    ExprPtr x = Expr::var("x");
    ExprPtr a = Expr::var("a");
    ExprPtr neg = Expr::unary(
        UnOp::Neg, Expr::binary(BinOp::Mul, Expr::real(2.0), x));
    EXPECT_EQ(expr::reassociate(neg)->str(), "(-2 * x)");

    ExprPtr sub = Expr::binary(
        BinOp::Sub, a, Expr::binary(BinOp::Mul, Expr::real(2.0), x));
    EXPECT_EQ(expr::reassociate(sub)->str(), "(a + (-2 * x))");
}

TEST(RewriteTest, LeavesUnsafePositionsAlone)
{
    ExprPtr x = Expr::var("x");
    ExprPtr y = Expr::var("y");
    // Non-literal divisor: no reciprocal (1/y rounds differently).
    ExprPtr div = Expr::binary(BinOp::Div, x, y);
    EXPECT_EQ(expr::reassociate(div).get(), div.get());
    // Comparison operands decide branches - untouched.
    ExprPtr cmp = Expr::binary(
        BinOp::Lt, Expr::binary(BinOp::Div, x, Expr::real(4.0)), y);
    EXPECT_EQ(expr::reassociate(cmp).get(), cmp.get());
    // If conditions untouched; branches are value positions.
    ExprPtr branchy = Expr::ifThenElse(
        cmp, Expr::binary(BinOp::Div, x, Expr::real(4.0)), y);
    ExprPtr out = expr::reassociate(branchy);
    EXPECT_EQ(out->cond().get(), cmp.get());
    EXPECT_EQ(out->thenBranch()->str(), "(0.25 * x)");
    // Sums keep their operand order.
    ExprPtr sum = Expr::binary(BinOp::Add, x, y);
    EXPECT_EQ(expr::reassociate(sum).get(), sum.get());
}

// --- paradigm systems --------------------------------------------------

OdeSystem
gmcTlnSystem(lang::LanguageRegistry &registry, std::uint64_t seed)
{
    const lang::Language &gmcTln = registry.language("gmc-tln");
    support::Rng rng(seed);
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(3, 12));
    spec.inductance = rng.uniform(0.5e-9, 2e-9);
    spec.capacitance = rng.uniform(0.5e-9, 2e-9);
    spec.sourceConductance = rng.uniform(0.5, 2.0);
    spec.termConductance = rng.uniform(0.5, 2.0);
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = rng.deriveSeed();
    return compiler::compile(paradigms::tln::buildLine(gmcTln, spec),
                             gmcTln);
}

OdeSystem
obcSystem(lang::LanguageRegistry &registry, int vertices)
{
    const lang::Language &obc = registry.language("obc");
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = vertices;
    for (int a = 0; a < vertices; ++a)
        for (int b = a + 1; b < vertices; ++b)
            instance.edges.emplace_back(a, b);
    paradigms::obc::MaxcutSpec spec;
    for (int v = 0; v < vertices; ++v)
        spec.initPhases.push_back(0.31 * v);
    return compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
}

OdeSystem
cnnSystem(lang::LanguageRegistry &registry, std::uint64_t seed)
{
    const lang::Language &cnn = registry.language("cnn");
    support::Rng rng(seed);
    paradigms::cnn::CnnSpec spec;
    spec.width = 4;
    spec.height = 4;
    std::vector<double> input;
    for (int i = 0; i < spec.width * spec.height; ++i)
        input.push_back(rng.uniform(-1.0, 1.0));
    return compiler::compile(
        paradigms::cnn::buildCnn(cnn, spec, input), cnn);
}

TEST(RewriteTest, GmcTlnContractsUnderReassocOnly)
{
    // The motivating case: every GmC-TLN production rule divides its
    // product by a capacitance/inductance, so the plain FMA matcher
    // finds almost nothing, while the reassociated tape contracts the
    // whole sum-of-products (observed: 1 vs 22 on this seed).
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    OdeSystem system = gmcTlnSystem(registry, 7);
    std::uint64_t plainFma = system.fusedTapeFma().fmaContractions();
    std::uint64_t reassoc = system.fusedTapeReassoc().fmaContractions();
    EXPECT_GE(reassoc, 5 * (plainFma + 1));
    const expr::RewriteStats &stats = system.reassocStats();
    EXPECT_GT(stats.divReciprocals, 0u);
    EXPECT_LT(stats.nodesAfter, stats.nodesBefore);
}

TEST(RewriteTest, ToleranceEquivalenceOnParadigmSystems)
{
    // Property: on random states, the reassociated tape agrees with
    // the default tape to rounding (a few ulps per term), across
    // paradigms with different expression shapes.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<OdeSystem> systems;
    systems.push_back(gmcTlnSystem(registry, 11));
    systems.push_back(gmcTlnSystem(registry, 12));
    systems.push_back(obcSystem(registry, 5));
    systems.push_back(cnnSystem(registry, 13));
    support::Rng rng(99);
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const OdeSystem &system = systems[s];
        const expr::FusedTape &plain = system.fusedTape();
        const expr::FusedTape &reassoc = system.fusedTapeReassoc();
        for (int trial = 0; trial < 8; ++trial) {
            std::vector<double> state;
            for (std::size_t i = 0; i < system.size(); ++i)
                state.push_back(rng.uniform(-1.0, 1.0));
            double t = rng.uniform(0.0, 1e-8);
            std::vector<double> a = plain.evalAlloc(state, t);
            std::vector<double> b = reassoc.evalAlloc(state, t);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                double scale = 1.0 + std::fabs(a[i]);
                EXPECT_NEAR(a[i], b[i], 1e-9 * scale)
                    << "system " << s << " output " << i << " trial "
                    << trial;
            }
        }
    }
}

TEST(RewriteTest, DefaultPathUnaffected)
{
    // With the flag off, tape selection returns the exact same
    // programs as before the pass existed - the reassociated variant
    // is never even compiled.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    OdeSystem system = gmcTlnSystem(registry, 21);
    EXPECT_EQ(&system.rhsTape(false, false), &system.fusedTape());
    EXPECT_EQ(&system.rhsTape(true, false), &system.fusedTapeFma());
    EXPECT_EQ(&system.rhsTape(false, true), &system.fusedTapeReassoc());
    EXPECT_EQ(&system.rhsTape(true, true), &system.fusedTapeReassoc());
}

TEST(RewriteTest, LaneScalarParityUnderReassoc)
{
    // All tiers execute the same reassociated program under the flag,
    // so lane-vs-scalar results stay bit-identical, exactly as for
    // tapeFma.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    OdeSystem system = obcSystem(registry, 5);

    std::vector<std::vector<double>> initials;
    support::Rng rng(31);
    for (int inst = 0; inst < 4; ++inst) {
        std::vector<double> x0;
        for (std::size_t i = 0; i < system.size(); ++i)
            x0.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));
        initials.push_back(std::move(x0));
    }

    EnsembleOptions options;
    options.numThreads = 2;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = 1e-10;
    options.sim.tapeReassoc = true;
    EnsembleOptions scalar = options;
    scalar.laneBatching = false;
    std::vector<SimResult> lane =
        sim::simulateEnsemble(system, initials, 0.0, 1e-8, options);
    std::vector<SimResult> ablation =
        sim::simulateEnsemble(system, initials, 0.0, 1e-8, scalar);
    for (std::size_t inst = 0; inst < initials.size(); ++inst) {
        ASSERT_TRUE(lane[inst].ok());
        ASSERT_TRUE(ablation[inst].ok());
        const auto &a = lane[inst].trajectory;
        const auto &b = ablation[inst].trajectory;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t s = 0; s < a.size(); ++s) {
            ASSERT_EQ(a.time(s), b.time(s));
            auto sa = a.state(s);
            auto sb = b.state(s);
            for (std::size_t i = 0; i < sa.size(); ++i)
                ASSERT_EQ(sa[i], sb[i])
                    << "instance " << inst << " sample " << s
                    << " state " << i;
        }
    }
}

// --- hash-consing properties -------------------------------------------

TEST(RewriteTest, PointerEqualityImpliesFingerprintEquality)
{
    // engine::Hasher absorbs the interned digest, so two separately
    // built (hence pointer-equal) trees must fingerprint identically,
    // and structurally distinct trees must not.
    ExprPtr a = Expr::binary(
        BinOp::Div,
        Expr::binary(BinOp::Mul, Expr::real(0.75), Expr::stateVar(2)),
        Expr::real(3e-9));
    ExprPtr b = Expr::binary(
        BinOp::Div,
        Expr::binary(BinOp::Mul, Expr::real(0.75), Expr::stateVar(2)),
        Expr::real(3e-9));
    ASSERT_EQ(a.get(), b.get());
    engine::Hasher ha, hb, hc;
    ha.absorb(*a);
    hb.absorb(*b);
    EXPECT_EQ(ha.finish(), hb.finish());
    ExprPtr c = Expr::binary(
        BinOp::Div,
        Expr::binary(BinOp::Mul, Expr::real(0.75), Expr::stateVar(2)),
        Expr::real(3.0000001e-9));
    hc.absorb(*c);
    EXPECT_FALSE(ha.finish() == hc.finish());
}

TEST(RewriteTest, InternedRhsEvaluatesLikeInterpreter)
{
    // Interning + single-pass instantiate must not change semantics:
    // the tree-walking interpreter over the (shared) RHS agrees
    // bit-for-bit with the fused tape on random states.
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<OdeSystem> systems;
    systems.push_back(gmcTlnSystem(registry, 41));
    systems.push_back(obcSystem(registry, 4));
    systems.push_back(cnnSystem(registry, 42));
    support::Rng rng(7);
    for (const OdeSystem &system : systems) {
        std::vector<double> scratch = system.makeScratch();
        std::vector<double> viaTape(system.size());
        std::vector<double> viaTree(system.size());
        for (int trial = 0; trial < 4; ++trial) {
            std::vector<double> state;
            for (std::size_t i = 0; i < system.size(); ++i)
                state.push_back(rng.uniform(-1.0, 1.0));
            double t = rng.uniform(0.0, 1e-8);
            system.evalRhs(state.data(), t, viaTape.data(), scratch);
            system.evalRhsInterpreted(state.data(), t, viaTree.data());
            for (std::size_t i = 0; i < system.size(); ++i)
                ASSERT_EQ(viaTape[i], viaTree[i]) << "state " << i;
        }
    }
}

} // namespace
