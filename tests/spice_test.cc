/**
 * @file
 * Tests for the SPICE substrate: netlist construction, MNA stamps
 * against closed-form circuit responses (RC, RL, RLC, dividers,
 * VCCS), behavioral sources, and the GmC-TLN mapping equivalence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "paradigms/cnn.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "compiler/compiler.h"
#include "sim/sim.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "spice/netlist.h"
#include "support/error.h"
#include "support/linalg.h"

namespace {

using namespace ark;
using namespace ark::spice;
using support::SemaError;
using support::SimError;

TEST(NetlistTest, NodesAndElements)
{
    Netlist net;
    int a = net.addNode("a");
    int b = net.addNode("b");
    net.resistor("R1", a, b, 100.0);
    net.capacitor("C1", b, kGround, 1e-6);
    EXPECT_EQ(net.numNodes(), 2);
    EXPECT_EQ(net.node("b"), b);
    EXPECT_EQ(net.elements().size(), 2u);
    EXPECT_THROW(net.node("zz"), SemaError);
    EXPECT_THROW(net.addNode("a"), SemaError);
    EXPECT_THROW(net.resistor("R2", a, 99, 1.0), SemaError);
    EXPECT_THROW(net.resistor("R3", a, b, -5.0), SemaError);
}

TEST(NetlistTest, SpiceTextEmission)
{
    Netlist net;
    int a = net.addNode("a");
    net.resistor("load", a, kGround, 50.0);
    net.currentSource("in", kGround, a, 1.0);
    std::string text = net.spiceText();
    EXPECT_NE(text.find("Rload n0 0 50"), std::string::npos);
    EXPECT_NE(text.find("Iin 0 n0 1"), std::string::npos);
}

TEST(MnaTest, ResistiveDividerDc)
{
    // 1A into two series 1-ohm resistors to ground: v = 2V, 1V.
    Netlist net;
    int top = net.addNode("top");
    int mid = net.addNode("mid");
    net.currentSource("in", kGround, top, 1.0);
    net.resistor("R1", top, mid, 1.0);
    net.resistor("R2", mid, kGround, 1.0);
    MnaSystem system(net);
    TransientResult result = transient(system, 0.0, 1e-3, 1e-4);
    std::span<const double> last = result.state(result.size() - 1);
    EXPECT_NEAR(last[0], 2.0, 1e-9);
    EXPECT_NEAR(last[1], 1.0, 1e-9);
}

TEST(MnaTest, RcChargeMatchesAnalytic)
{
    // Series R from a 1V source charging C: v_c = 1 - exp(-t/RC).
    Netlist net;
    int src = net.addNode("src");
    int cap = net.addNode("cap");
    net.voltageSource("E", src, kGround, 1.0);
    net.resistor("R", src, cap, 1000.0);
    net.capacitor("C", cap, kGround, 1e-6);
    MnaSystem system(net);
    double tau = 1e-3;
    TransientResult result = transient(system, 0.0, 5e-3, 1e-6);
    for (std::size_t s = 0; s < result.size(); s += 500) {
        double t = result.time(s);
        EXPECT_NEAR(result.state(s)[1], 1.0 - std::exp(-t / tau),
                    2e-4)
            << "t=" << t;
    }
}

TEST(MnaTest, RlDecayMatchesAnalytic)
{
    // Inductor with initial current decaying into a resistor:
    // i(t) = i0 exp(-R t / L).
    Netlist net;
    int n = net.addNode("n");
    net.inductor("L", n, kGround, 1e-3);
    net.resistor("R", n, kGround, 10.0);
    MnaSystem system(net);
    // One unknown node voltage + one branch current; set i(0) = 1.
    std::vector<double> x0(system.size(), 0.0);
    x0[1] = 1.0;
    TransientResult result = transient(system, 0.0, 5e-4, 1e-7, x0);
    double tau = 1e-4; // L/R
    for (std::size_t s = 0; s < result.size(); s += 1000) {
        double t = result.time(s);
        EXPECT_NEAR(result.state(s)[1], std::exp(-t / tau), 5e-3)
            << "t=" << t;
    }
}

TEST(MnaTest, LcOscillationFrequency)
{
    // Parallel LC with initial cap voltage: v = cos(t/sqrt(LC)).
    Netlist net;
    int n = net.addNode("n");
    net.capacitor("C", n, kGround, 1e-9);
    net.inductor("L", n, kGround, 1e-9);
    MnaSystem system(net);
    std::vector<double> x0(system.size(), 0.0);
    x0[0] = 1.0;
    double omega = 1.0 / std::sqrt(1e-9 * 1e-9); // 1e9 rad/s
    double period = 2.0 * std::numbers::pi / omega;
    TransientResult result =
        transient(system, 0.0, 2.0 * period, period / 2000.0, x0);
    // After one full period the voltage returns to ~1.
    std::size_t idx = result.size() / 2;
    EXPECT_NEAR(result.time(idx), period, period / 100.0);
    EXPECT_NEAR(result.state(idx)[0], 1.0, 0.01);
    // Trapezoidal integration conserves the LC amplitude.
    double maxLate = 0.0;
    for (std::size_t s = idx; s < result.size(); ++s)
        maxLate = std::max(maxLate, std::fabs(result.state(s)[0]));
    EXPECT_NEAR(maxLate, 1.0, 0.02);
}

TEST(MnaTest, VccsGain)
{
    // VCCS driving a load resistor: v_out = -gm * R * v_in.
    Netlist net;
    int in = net.addNode("in");
    int out = net.addNode("out");
    net.voltageSource("E", in, kGround, 0.5);
    net.vccs("G", out, kGround, in, kGround, 0.01); // 10mS
    net.resistor("RL", out, kGround, 1000.0);
    MnaSystem system(net);
    TransientResult result = transient(system, 0.0, 1e-3, 1e-4);
    EXPECT_NEAR(result.state(result.size() - 1)[1], -5.0, 1e-9);
}

TEST(MnaTest, BehavioralSourceWaveform)
{
    // Current source i(t) = t into a 1-ohm resistor: v = t.
    Netlist net;
    int n = net.addNode("n");
    net.currentSource("in", kGround, n, 0.0,
                      [](double t) { return t; });
    net.resistor("R", n, kGround, 1.0);
    MnaSystem system(net);
    TransientResult result = transient(system, 0.0, 1.0, 1e-3);
    EXPECT_NEAR(result.state(result.size() - 1)[0], 1.0, 1e-9);
    EXPECT_NEAR(result.series(0)[500], result.time(500), 1e-9);
}

TEST(MnaTest, BadArgumentsRejected)
{
    Netlist net;
    int n = net.addNode("n");
    net.resistor("R", n, kGround, 1.0);
    MnaSystem system(net);
    EXPECT_THROW(transient(system, 1.0, 0.0, 1e-3), SimError);
    EXPECT_THROW(transient(system, 0.0, 1.0, -1e-3), SimError);
    EXPECT_THROW(transient(system, 0.0, 1.0, 0.0), SimError);
    EXPECT_THROW(transient(system, 0.0, 1.0, 1e-3, {1.0, 2.0}),
                 SimError);
    // A zero-length window is valid and yields the initial sample.
    TransientResult point = transient(system, 0.0, 0.0, 1e-3);
    EXPECT_TRUE(point.ok());
    EXPECT_EQ(point.size(), 1u);
}

TEST(MnaTest, SparseBadArgumentsRejected)
{
    Netlist net;
    int n = net.addNode("n");
    net.resistor("R", n, kGround, 1.0);
    SparseMnaSystem system(net);
    EXPECT_THROW(transient(system, 1.0, 0.0, 1e-3), SimError);
    EXPECT_THROW(transient(system, 0.0, 1.0, -1e-3), SimError);
    EXPECT_THROW(transient(system, 0.0, 1.0, 0.0), SimError);
    EXPECT_THROW(transient(system, 0.0, 1.0, 1e-3, {1.0, 2.0}),
                 SimError);
}

TEST(MnaTest, RlcStepResponseMatchesAnalytic)
{
    // Series step -> R -> L -> C to ground (underdamped). The cap
    // voltage follows 1 - e^{-at}(cos wd t + (a/wd) sin wd t).
    const double r = 1.0, l = 1e-6, c = 1e-6;
    Netlist net;
    int src = net.addNode("src");
    int mid = net.addNode("mid");
    int out = net.addNode("out");
    net.voltageSource("E", src, kGround, 1.0);
    net.resistor("R", src, mid, r);
    net.inductor("L", mid, out, l);
    net.capacitor("C", out, kGround, c);
    MnaSystem system(net);
    double alpha = r / (2.0 * l);
    double omega0 = 1.0 / std::sqrt(l * c);
    double omegaD = std::sqrt(omega0 * omega0 - alpha * alpha);
    double tEnd = 2e-5;
    TransientResult result = transient(system, 0.0, tEnd, 1e-9);
    for (std::size_t s = 0; s < result.size(); s += 2000) {
        double t = result.time(s);
        double expected =
            1.0 - std::exp(-alpha * t) *
                      (std::cos(omegaD * t) +
                       alpha / omegaD * std::sin(omegaD * t));
        EXPECT_NEAR(result.state(s)[2], expected, 2e-3) << "t=" << t;
    }
    // The sparse path reproduces the same response.
    SparseMnaSystem sparse(net);
    TransientResult viaSparse = transient(sparse, 0.0, tEnd, 1e-9);
    ASSERT_EQ(viaSparse.size(), result.size());
    for (std::size_t s = 0; s < result.size(); s += 500) {
        EXPECT_NEAR(viaSparse.state(s)[2], result.state(s)[2], 1e-9);
    }
}

// --- GmC-TLN mapping -----------------------------------------------------------

class MapTlnTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *MapTlnTest::registry_ = nullptr;

TEST_F(MapTlnTest, StructuralMapping)
{
    const lang::Language &tln = registry_->language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 3;
    dg::Graph graph = paradigms::tln::buildLine(tln, spec);
    MappedTln mapped = mapTlnToSpice(graph, tln);
    // 4 V nodes + 3 I nodes = 7 circuit nodes, one cap each.
    EXPECT_EQ(mapped.netlist.numNodes(), 7);
    int caps = 0, vccs = 0, sources = 0, resistors = 0;
    for (const Element &elem : mapped.netlist.elements()) {
        caps += elem.kind == ElemKind::Capacitor;
        vccs += elem.kind == ElemKind::Vccs;
        sources += elem.kind == ElemKind::CurrentSource;
        resistors += elem.kind == ElemKind::Resistor;
    }
    EXPECT_EQ(caps, 7);
    EXPECT_EQ(vccs, 12);     // 6 couplings x 2
    EXPECT_EQ(sources, 1);   // the pulse input
    EXPECT_EQ(resistors, 2); // OUT_V termination + input conductance
}

TEST_F(MapTlnTest, DynamicsMatchOdeCompiler)
{
    const lang::Language &gmc = registry_->language("gmc-tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 4;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = 3;
    dg::Graph graph = paradigms::tln::buildLine(gmc, spec);

    compiler::OdeSystem system = compiler::compile(graph, gmc);
    sim::SimOptions options;
    options.relTol = 1e-9;
    options.absTol = 1e-13;
    options.recordDt = 1e-10;
    sim::SimResult ode = sim::simulate(system, 0.0, 2e-8, options);

    MappedTln mapped = mapTlnToSpice(graph, gmc);
    MnaSystem mna(mapped.netlist);
    TransientResult tran = transient(mna, 0.0, 2e-8, 1e-11);

    int odeIdx = system.stateIndex("OUT_V", 0);
    auto circuitIdx = static_cast<std::size_t>(
        mapped.circuitNodeOf.at("OUT_V"));
    std::vector<double> odeSeries, spiceSeries;
    for (int g = 0; g < 100; ++g) {
        double t = 2e-8 * g / 99.0;
        odeSeries.push_back(ode.trajectory.sampleAt(odeIdx, t));
        std::size_t step = static_cast<std::size_t>(t / 1e-11);
        step = std::min(step, tran.size() - 1);
        spiceSeries.push_back(tran.state(step)[circuitIdx]);
    }
    EXPECT_LT(support::relativeRmse(odeSeries, spiceSeries), 0.01);
}

TEST_F(MapTlnTest, RejectsForeignLanguages)
{
    const lang::Language &cnn = registry_->language("cnn");
    paradigms::cnn::CnnSpec spec;
    spec.width = 4;
    spec.height = 4;
    std::vector<double> pixels(16, -1.0);
    dg::Graph graph = paradigms::cnn::buildCnn(cnn, spec, pixels);
    EXPECT_THROW(mapTlnToSpice(graph, cnn), SemaError);
}

TEST_F(MapTlnTest, DisabledEdgesOmitted)
{
    const lang::Language &gmc = registry_->language("gmc-tln");
    dg::Graph on = registry_->invoke("br-func",
                                     {expr::Value::integer(1)});
    dg::Graph off = registry_->invoke("br-func",
                                      {expr::Value::integer(0)});
    const lang::Language &tln = registry_->language("tln");
    MappedTln mappedOn = mapTlnToSpice(on, tln);
    MappedTln mappedOff = mapTlnToSpice(off, tln);
    EXPECT_GT(mappedOn.netlist.elements().size(),
              mappedOff.netlist.elements().size());
    (void)gmc;
}

} // namespace
