/**
 * @file
 * Tests for the 0/1 ILP solver and the max-flow assignment engine,
 * including the randomized cross-check property between them.
 */

#include <gtest/gtest.h>

#include "ilp/flow.h"
#include "ilp/ilp.h"
#include "support/rng.h"

namespace {

using namespace ark::ilp;

// --- ILP ---------------------------------------------------------------------

TEST(IlpTest, TrivialFeasible)
{
    Model model;
    int x = model.addVar();
    model.addSumEquals({x}, 1.0);
    auto solution = solve(model);
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[static_cast<std::size_t>(x)], 1);
}

TEST(IlpTest, TrivialInfeasible)
{
    Model model;
    int x = model.addVar();
    model.addSumEquals({x}, 2.0); // binary var cannot reach 2
    EXPECT_FALSE(solve(model).has_value());
}

TEST(IlpTest, FixedVariablesRespected)
{
    Model model;
    int x = model.addVar();
    int y = model.addVar();
    model.fixVar(x, 0);
    model.addSumEquals({x, y}, 1.0);
    auto solution = solve(model);
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[0], 0);
    EXPECT_EQ((*solution)[1], 1);
    model.fixVar(y, 0);
    EXPECT_FALSE(solve(model).has_value());
}

TEST(IlpTest, RangeConstraints)
{
    Model model;
    int first = model.addVars(5);
    std::vector<int> all;
    for (int i = 0; i < 5; ++i)
        all.push_back(first + i);
    model.addSumRange(all, 2.0, 3.0);
    auto solution = solve(model);
    ASSERT_TRUE(solution.has_value());
    int sum = 0;
    for (int v : *solution)
        sum += v;
    EXPECT_GE(sum, 2);
    EXPECT_LE(sum, 3);
}

TEST(IlpTest, NegativeCoefficients)
{
    // x - y == 1 forces x=1, y=0.
    Model model;
    int x = model.addVar();
    int y = model.addVar();
    Constraint c;
    c.terms = {{x, 1.0}, {y, -1.0}};
    c.lo = 1.0;
    c.hi = 1.0;
    model.addConstraint(c);
    auto solution = solve(model);
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[0], 1);
    EXPECT_EQ((*solution)[1], 0);
}

TEST(IlpTest, PropagationPrunes)
{
    // A chain of implications solvable without branching: x0 = 1, and
    // x_{i} + x_{i+1} == 1 alternates the rest.
    Model model;
    int first = model.addVars(10);
    model.fixVar(first, 1);
    for (int i = 0; i + 1 < 10; ++i)
        model.addSumEquals({first + i, first + i + 1}, 1.0);
    SolveStats stats;
    auto solution = solve(model, &stats);
    ASSERT_TRUE(solution.has_value());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ((*solution)[static_cast<std::size_t>(i)], i % 2 == 0);
    EXPECT_LE(stats.nodesExplored, 2u); // pure propagation
}

TEST(IlpTest, MinimizeObjective)
{
    // Cover constraint with different costs: pick the cheap one.
    Model model;
    int x = model.addVar();
    int y = model.addVar();
    model.addSumRange({x, y}, 1.0, 2.0);
    double value = 0.0;
    auto solution = minimize(model, {5.0, 1.0}, &value);
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[0], 0);
    EXPECT_EQ((*solution)[1], 1);
    EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(IlpTest, MinimizeInfeasible)
{
    Model model;
    int x = model.addVar();
    model.addSumEquals({x}, 3.0);
    EXPECT_FALSE(minimize(model, {1.0}).has_value());
}

TEST(IlpTest, MinimizeWithNegativeCosts)
{
    Model model;
    model.addVars(3);
    double value = 0.0;
    auto solution = minimize(model, {-1.0, 2.0, -3.0}, &value);
    ASSERT_TRUE(solution.has_value());
    EXPECT_DOUBLE_EQ(value, -4.0); // take both negatives
}

// --- max flow -------------------------------------------------------------------

TEST(FlowTest, SimpleMaxFlow)
{
    //  0 -> 1 -> 3
    //   \-> 2 -/
    MaxFlow flow(4);
    flow.addEdge(0, 1, 3);
    flow.addEdge(0, 2, 2);
    flow.addEdge(1, 3, 2);
    flow.addEdge(2, 3, 3);
    EXPECT_EQ(flow.run(0, 3), 4);
}

TEST(FlowTest, FlowOnReportsPerEdge)
{
    MaxFlow flow(3);
    int a = flow.addEdge(0, 1, 5);
    int b = flow.addEdge(1, 2, 3);
    EXPECT_EQ(flow.run(0, 2), 3);
    EXPECT_EQ(flow.flowOn(a), 3);
    EXPECT_EQ(flow.flowOn(b), 3);
}

TEST(FlowTest, DisconnectedIsZero)
{
    MaxFlow flow(4);
    flow.addEdge(0, 1, 5);
    flow.addEdge(2, 3, 5);
    EXPECT_EQ(flow.run(0, 3), 0);
}

// --- assignment ------------------------------------------------------------------

TEST(AssignTest, ExactCover)
{
    // 2 items, 2 buckets, each bucket needs exactly one item.
    std::vector<std::vector<bool>> allowed{{true, true}, {true, true}};
    auto assignment = solveAssignment(allowed, {1, 1}, {1, 1});
    ASSERT_TRUE(assignment.has_value());
    EXPECT_NE((*assignment)[0], (*assignment)[1]);
}

TEST(AssignTest, InfeasibleLowerBound)
{
    std::vector<std::vector<bool>> allowed{{true, false}};
    // Bucket 1 demands an item nothing can supply.
    EXPECT_FALSE(solveAssignment(allowed, {0, 1}, {1, 1}).has_value());
}

TEST(AssignTest, ItemWithNoBucketFails)
{
    std::vector<std::vector<bool>> allowed{{false, false}};
    EXPECT_FALSE(solveAssignment(allowed, {0, 0}, {5, 5}).has_value());
}

TEST(AssignTest, InfUpperBounds)
{
    std::vector<std::vector<bool>> allowed{
        {true, false}, {true, false}, {true, true}};
    auto assignment = solveAssignment(allowed, {0, 0}, {-1, -1});
    ASSERT_TRUE(assignment.has_value());
}

TEST(AssignTest, EmptyItemsSatisfyZeroLowerBounds)
{
    std::vector<std::vector<bool>> allowed;
    EXPECT_TRUE(solveAssignment(allowed, {0}, {3}).has_value());
    EXPECT_FALSE(solveAssignment(allowed, {1}, {3}).has_value());
}

TEST(AssignTest, ReversedBoundsInfeasible)
{
    std::vector<std::vector<bool>> allowed{{true}};
    EXPECT_FALSE(solveAssignment(allowed, {2}, {1}).has_value());
}

/**
 * Property: the ILP formulation of Algorithm 2 and the max-flow
 * formulation agree on random assignment instances, and returned
 * assignments are well-formed.
 */
class AssignEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(AssignEquivalence, IlpMatchesFlow)
{
    ark::support::Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 60; ++trial) {
        int items = static_cast<int>(rng.uniformInt(0, 8));
        int buckets = static_cast<int>(rng.uniformInt(1, 5));
        std::vector<std::vector<bool>> allowed(
            static_cast<std::size_t>(items),
            std::vector<bool>(static_cast<std::size_t>(buckets)));
        for (auto &row : allowed)
            for (std::size_t b = 0; b < row.size(); ++b)
                row[b] = rng.bernoulli(0.5);
        std::vector<int> lo(static_cast<std::size_t>(buckets));
        std::vector<int> hi(static_cast<std::size_t>(buckets));
        for (int b = 0; b < buckets; ++b) {
            lo[static_cast<std::size_t>(b)] =
                static_cast<int>(rng.uniformInt(0, 2));
            hi[static_cast<std::size_t>(b)] =
                rng.bernoulli(0.3)
                    ? -1
                    : static_cast<int>(rng.uniformInt(
                          lo[static_cast<std::size_t>(b)], 4));
        }

        // Flow answer.
        auto flowAssign = solveAssignment(allowed, lo, hi);

        // Equivalent ILP.
        Model model;
        int first = model.addVars(items * buckets);
        auto varOf = [&](int i, int b) { return first + i * buckets + b; };
        for (int i = 0; i < items; ++i)
            for (int b = 0; b < buckets; ++b)
                if (!allowed[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(b)])
                    model.fixVar(varOf(i, b), 0);
        for (int i = 0; i < items; ++i) {
            std::vector<int> row;
            for (int b = 0; b < buckets; ++b)
                row.push_back(varOf(i, b));
            model.addSumEquals(row, 1.0);
        }
        for (int b = 0; b < buckets; ++b) {
            std::vector<int> col;
            for (int i = 0; i < items; ++i)
                col.push_back(varOf(i, b));
            double upper = hi[static_cast<std::size_t>(b)] < 0
                               ? items
                               : hi[static_cast<std::size_t>(b)];
            model.addSumRange(col, lo[static_cast<std::size_t>(b)],
                              upper);
        }
        auto ilpAssign = solve(model);

        EXPECT_EQ(flowAssign.has_value(), ilpAssign.has_value())
            << "items=" << items << " buckets=" << buckets
            << " trial=" << trial;

        if (flowAssign) {
            // The flow assignment must satisfy all constraints.
            std::vector<int> counts(static_cast<std::size_t>(buckets),
                                    0);
            for (int i = 0; i < items; ++i) {
                int b = (*flowAssign)[static_cast<std::size_t>(i)];
                ASSERT_GE(b, 0);
                ASSERT_LT(b, buckets);
                EXPECT_TRUE(allowed[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(b)]);
                ++counts[static_cast<std::size_t>(b)];
            }
            for (int b = 0; b < buckets; ++b) {
                EXPECT_GE(counts[static_cast<std::size_t>(b)],
                          lo[static_cast<std::size_t>(b)]);
                if (hi[static_cast<std::size_t>(b)] >= 0) {
                    EXPECT_LE(counts[static_cast<std::size_t>(b)],
                              hi[static_cast<std::size_t>(b)]);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignEquivalence,
                         ::testing::Range(1, 11));

} // namespace
