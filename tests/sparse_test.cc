/**
 * @file
 * Tests for the sparse linear algebra substrate: CSR assembly from
 * triplets, matrix-vector products against the dense path, and the
 * Gilbert-Peierls sparse LU — solutions vs the dense LuSolver,
 * pivoting on zero diagonals, singularity detection, and the
 * numeric-only refactorization that the shared-structure SPICE batch
 * engine reuses across same-topology instances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.h"
#include "support/linalg.h"
#include "support/rng.h"
#include "support/sparse.h"

namespace {

using namespace ark;
using support::ArkError;
using support::LuSolver;
using support::Matrix;
using support::Rng;
using support::SparseLu;
using support::SparseMatrix;
using support::Triplet;

/** Random sparse nonsingular matrix: full diagonal + ~density fill. */
SparseMatrix
randomSystem(std::size_t n, double density, std::uint64_t seed,
             bool dominant)
{
    Rng rng(seed);
    std::vector<Triplet> triplets;
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            if (r != c && rng.uniform() < density)
                triplets.push_back(Triplet{r, c, rng.uniform(-1.0, 1.0)});
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        // A dominant diagonal guarantees nonsingularity; a weak one
        // (still nonzero) forces the factorization to actually pivot.
        double d = dominant ? rng.uniform(1.0, 2.0) * (1.0 + density * n)
                            : rng.uniform(0.01, 0.1);
        triplets.push_back(Triplet{r, r, d});
    }
    return SparseMatrix::fromTriplets(n, n, triplets);
}

std::vector<double>
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(-2.0, 2.0);
    return v;
}

TEST(SparseMatrixTest, FromTripletsSumsDuplicatesAndKeepsZeros)
{
    std::vector<Triplet> triplets{
        {0, 1, 2.0}, {1, 0, 3.0}, {0, 1, 0.5}, {2, 2, 0.0}};
    SparseMatrix m = SparseMatrix::fromTriplets(3, 3, triplets);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.nonZeros(), 3u); // (0,1) merged; (2,2) zero kept
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.5);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0); // unstored position

    // The pattern is value-independent: same positions, different
    // values still compare samePattern (but not sameValues).
    std::vector<Triplet> other{
        {0, 1, -7.0}, {1, 0, 0.0}, {2, 2, 9.0}};
    SparseMatrix m2 = SparseMatrix::fromTriplets(3, 3, other);
    EXPECT_TRUE(m.samePattern(m2));
    EXPECT_FALSE(m.sameValues(m2));
    EXPECT_TRUE(m.sameValues(m));
}

TEST(SparseMatrixTest, ApplyMatchesDense)
{
    SparseMatrix m = randomSystem(17, 0.2, 11, true);
    Matrix dense = m.toDense();
    std::vector<double> x = randomVector(17, 5);
    std::vector<double> sparseY = m.apply(x);
    std::vector<double> denseY = dense.apply(x);
    for (std::size_t i = 0; i < sparseY.size(); ++i)
        EXPECT_DOUBLE_EQ(sparseY[i], denseY[i]);
}

TEST(SparseLuTest, SolveMatchesDenseLu)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::size_t n = 24;
        // Half the seeds use weak diagonals so partial pivoting is
        // exercised, not just the no-pivot fast path.
        SparseMatrix a = randomSystem(n, 0.15, seed, seed % 2 == 0);
        std::vector<double> b = randomVector(n, seed + 100);
        SparseLu sparse(a);
        LuSolver dense(a.toDense());
        std::vector<double> xs = sparse.solve(b);
        std::vector<double> xd = dense.solve(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(xs[i], xd[i], 1e-9) << "seed " << seed;
        // Residual check keeps the comparison honest even if both
        // paths drifted together.
        std::vector<double> back = a.apply(xs);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(back[i], b[i], 1e-8);
    }
}

TEST(SparseLuTest, PivotsThroughZeroDiagonal)
{
    // [[0, 1], [1, 0]]: no factorization without row exchange.
    SparseMatrix a = SparseMatrix::fromTriplets(
        2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
    SparseLu lu(a);
    std::vector<double> x = lu.solve({3.0, 4.0});
    EXPECT_DOUBLE_EQ(x[0], 4.0);
    EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(SparseLuTest, SingularMatrixThrows)
{
    // Structurally singular: empty column 1.
    SparseMatrix structural = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {1, 0, 2.0}});
    EXPECT_THROW(SparseLu{structural}, ArkError);

    // Numerically singular: two proportional rows.
    SparseMatrix numerical = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 4.0}});
    EXPECT_THROW(SparseLu{numerical}, ArkError);
}

TEST(SparseLuTest, RefactorMatchesFreshFactorization)
{
    const std::size_t n = 20;
    SparseMatrix a = randomSystem(n, 0.2, 3, true);
    SparseLu lu(a);

    // New values, same pattern: scale every entry differently.
    std::vector<Triplet> perturbed;
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1]; ++i) {
            double scale = 1.0 + 0.01 * static_cast<double>(i % 7);
            perturbed.push_back(
                Triplet{r, a.colIndex()[i], a.values()[i] * scale});
        }
    }
    SparseMatrix a2 = SparseMatrix::fromTriplets(n, n, perturbed);
    ASSERT_TRUE(a.samePattern(a2));

    lu.refactor(a2);
    std::vector<double> b = randomVector(n, 77);
    std::vector<double> viaRefactor = lu.solve(b);
    std::vector<double> viaFresh = SparseLu(a2).solve(b);
    std::vector<double> viaDense = LuSolver(a2.toDense()).solve(b);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(viaRefactor[i], viaDense[i], 1e-9);
        EXPECT_NEAR(viaFresh[i], viaDense[i], 1e-9);
    }
}

TEST(SparseLuTest, RefactorRejectsDifferentPattern)
{
    SparseMatrix a = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
    SparseLu lu(a);
    SparseMatrix wider = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {0, 1, 0.5}, {1, 1, 1.0}});
    EXPECT_THROW(lu.refactor(wider), ArkError);
}

TEST(SparseLuTest, RefactorDetectsCollapsedPivot)
{
    // The dominant diagonal pins the recorded pivot order to the
    // natural one; zeroing entry (0,0) then collapses the reused
    // pivot, which refactor must report rather than divide through.
    SparseMatrix a = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 10.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 5.0}});
    SparseLu lu(a);
    SparseMatrix bad = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 0.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 5.0}});
    EXPECT_THROW(lu.refactor(bad), ArkError);
    // A fresh factorization with its own pivot search still works:
    // [[0,1],[1,5]] x = [1,3]  =>  x1 = 1, x0 = 3 - 5 = -2.
    std::vector<double> x = SparseLu(bad).solve({1.0, 3.0});
    EXPECT_NEAR(x[0], -2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SparseLuTest, RefactorDetectsDegradedPivot)
{
    // A reused pivot that is merely SMALL relative to its column (not
    // zero) must also be rejected: accepting it would amplify
    // rounding by the column ratio and silently corrupt the factors.
    SparseMatrix a = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 10.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 5.0}});
    SparseLu lu(a);
    SparseMatrix degraded = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 1e-9}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 5.0}});
    EXPECT_THROW(lu.refactor(degraded), ArkError);
    // The fallback path (fresh pivoting) solves it fine:
    // [[1e-9,1],[1,5]] x = [1,6]  =>  x0 ~= 1, x1 ~= 1.
    std::vector<double> x = SparseLu(degraded).solve({1.0, 6.0});
    EXPECT_NEAR(x[0], 1.0, 1e-6);
    EXPECT_NEAR(x[1], 1.0, 1e-6);
}

} // namespace
