/**
 * @file
 * Tests for the per-run flight recorder (telemetry::RunLedger) and
 * the stall watchdog: bounded append semantics, JSON export, the
 * provenance records the ODE ensemble and SPICE sweep engines flush
 * (tier, lane width, block, structured failures), the cache outcomes
 * only the session's cache-backed sweep can report, the supervised
 * retry ladder's remapped records, and watchdog stall detection and
 * clearing.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "engine/session.h"
#include "expr/cjit.h"
#include "lang/registry.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "spice/batch.h"
#include "spice/map_tln.h"
#include "support/ledger.h"
#include "support/telemetry.h"
#include "support/watchdog.h"
#include "validator/validator.h"

#include "json_checker.h"

namespace {

using namespace ark;
using telemetry::RunLedger;

namespace ptln = paradigms::tln;

/**
 * The tier an ODE record should carry given its interpreted baseline:
 * under ARK_JIT_FORCE=1 (the CI jit lane) every RHS that compiles is
 * served by a tier-5 kernel, so provenance legitimately reads "jit".
 */
RunLedger::Tier
expectedTier(RunLedger::Tier interpreted)
{
    if (expr::jitEnabled(false) && expr::jitToolchainAvailable())
        return RunLedger::Tier::Jit;
    return interpreted;
}

/** dx/dt = k x: decays for k < 0, diverges to +/-inf for large k. */
compiler::OdeSystem
feedbackSystem(lang::LanguageRegistry &registry, double k, double x0)
{
    if (!registry.findLanguage("feedback")) {
        registry.addProgram(R"(
            lang feedback {
                ntyp(1,sum) X {attr k=real[-1000,1000],
                               init(0) real[-100,100]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= s.k*var(s);
            }
        )");
    }
    lang::GraphBuilder builder(registry.language("feedback"), 0);
    builder.node("x", "X");
    builder.attr("x", "k", k);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, x0);
    return compiler::compile(builder.take(),
                             registry.language("feedback"));
}

/** Same TLN topology per seed: only the mismatch values vary. */
spice::MappedTln
sharedStructureLine(const lang::LanguageRegistry &registry,
                    std::uint64_t seed, int sections = 5)
{
    const lang::Language &gmc = registry.language("gmc-tln");
    ptln::LineSpec spec;
    spec.sections = sections;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = seed;
    dg::Graph graph = ptln::buildLine(gmc, spec);
    validator::validateOrThrow(graph, gmc);
    return spice::mapTlnToSpice(graph, gmc);
}

TEST(LedgerTest, BoundedAppendCountsDrops)
{
    RunLedger ledger(4);
    EXPECT_EQ(ledger.capacity(), 4u);
    const std::uint64_t run = ledger.beginRun(RunLedger::Workload::Ode, 6);
    EXPECT_EQ(run, 1u);
    EXPECT_EQ(ledger.lastRunId(), 1u);
    for (std::size_t i = 0; i < 6; ++i) {
        RunLedger::Record record;
        record.runId = run;
        record.index = i;
        ledger.append(std::move(record));
    }
    EXPECT_EQ(ledger.size(), 4u);
    EXPECT_EQ(ledger.dropped(), 2u);
    ledger.clear();
    EXPECT_EQ(ledger.size(), 0u);
    EXPECT_EQ(ledger.dropped(), 0u);
    EXPECT_EQ(ledger.beginRun(RunLedger::Workload::Spice, 1), 2u);
}

TEST(LedgerTest, EnumSpellingsAreStable)
{
    EXPECT_STREQ(RunLedger::name(RunLedger::Workload::Ode), "ode");
    EXPECT_STREQ(RunLedger::name(RunLedger::Workload::Spice), "spice");
    EXPECT_STREQ(RunLedger::name(RunLedger::Tier::Scalar), "scalar");
    EXPECT_STREQ(RunLedger::name(RunLedger::Tier::Lane), "lane");
    EXPECT_STREQ(RunLedger::name(RunLedger::Tier::Dense), "dense");
    EXPECT_STREQ(RunLedger::name(RunLedger::Tier::Sparse), "sparse");
    EXPECT_STREQ(RunLedger::name(RunLedger::Tier::Jit), "jit");
    EXPECT_STREQ(RunLedger::name(RunLedger::CacheOutcome::None), "none");
    EXPECT_STREQ(RunLedger::name(RunLedger::CacheOutcome::Hit), "hit");
    EXPECT_STREQ(RunLedger::name(RunLedger::CacheOutcome::Miss), "miss");
    EXPECT_STREQ(RunLedger::name(RunLedger::RetryAction::None), "none");
    EXPECT_STREQ(RunLedger::name(RunLedger::RetryAction::ScalarRetry),
                 "scalar_retry");
    EXPECT_STREQ(RunLedger::name(RunLedger::RetryAction::RelaxedRetry),
                 "relaxed_retry");
    EXPECT_STREQ(RunLedger::name(RunLedger::RetryAction::DenseFallback),
                 "dense_fallback");
}

TEST(LedgerTest, JsonRoundTripsAndEscapes)
{
    RunLedger ledger;
    const std::uint64_t run =
        ledger.beginRun(RunLedger::Workload::Spice, 2);
    RunLedger::Record good;
    good.runId = run;
    good.index = 0;
    good.workload = RunLedger::Workload::Spice;
    good.tier = RunLedger::Tier::Sparse;
    good.cache = RunLedger::CacheOutcome::Hit;
    good.stepsAccepted = 100;
    ledger.append(std::move(good));
    RunLedger::Record bad;
    bad.runId = run;
    bad.index = 1;
    bad.workload = RunLedger::Workload::Spice;
    bad.ok = false;
    bad.failureReason = "singular_matrix";
    bad.failureMessage = "pivot \"G7\"\n\tcollapsed \\ here";
    ledger.append(std::move(bad));

    const std::string json = ledger.json();
    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"records\""), std::string::npos);
    EXPECT_NE(json.find("\"cache\": \"hit\""), std::string::npos);
    EXPECT_NE(json.find("singular_matrix"), std::string::npos);
}

TEST(LedgerTest, OdeEnsembleLaneAndScalarProvenance)
{
    lang::LanguageRegistry registry;
    std::vector<compiler::OdeSystem> systems;
    // k stays clear of +/-1 and 0: those fold to shorter tapes
    // (multiply-by-one elision), which would split the lane class.
    for (int i = 0; i < 6; ++i)
        systems.push_back(feedbackSystem(registry, -2.0 - i, 2.0 + i));
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    RunLedger ledger;
    sim::EnsembleOptions options;
    options.sim.dt = 1e-3;
    options.ledger = &ledger;
    sim::simulateEnsemble(pointers, 0.0, 1.0, options);

    std::vector<RunLedger::Record> records = ledger.records();
    ASSERT_EQ(records.size(), pointers.size());
    std::vector<bool> seen(pointers.size(), false);
    for (const RunLedger::Record &record : records) {
        EXPECT_EQ(record.runId, 1u);
        EXPECT_EQ(record.workload, RunLedger::Workload::Ode);
        EXPECT_EQ(record.tier, expectedTier(RunLedger::Tier::Lane));
        EXPECT_EQ(record.lanes, 6u);
        EXPECT_EQ(record.laneWidth, 8u); // 6 lanes pad to width 8
        EXPECT_EQ(record.attempt, 1);
        EXPECT_EQ(record.action, RunLedger::RetryAction::None);
        EXPECT_GT(record.stepsAccepted, 0u);
        EXPECT_TRUE(record.ok);
        ASSERT_LT(record.index, seen.size());
        seen[record.index] = true;
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_TRUE(seen[i]) << "no record for instance " << i;

    // The scalar ablation path reports scalar-tier records.
    options.laneBatching = false;
    sim::simulateEnsemble(pointers, 0.0, 1.0, options);
    records = ledger.records();
    ASSERT_EQ(records.size(), 2 * pointers.size());
    for (std::size_t r = pointers.size(); r < records.size(); ++r) {
        EXPECT_EQ(records[r].runId, 2u);
        EXPECT_EQ(records[r].tier, expectedTier(RunLedger::Tier::Scalar));
        EXPECT_EQ(records[r].laneWidth, 1u);
        EXPECT_EQ(records[r].lanes, 1u);
    }
}

TEST(LedgerTest, OdeFailureRecordsCarryStructuredReason)
{
    lang::LanguageRegistry registry;
    compiler::OdeSystem healthy = feedbackSystem(registry, -1.0, 2.0);
    compiler::OdeSystem diverging = feedbackSystem(registry, 900.0, 2.0);
    std::vector<const compiler::OdeSystem *> pointers{&healthy,
                                                      &diverging};

    RunLedger ledger;
    sim::EnsembleOptions options;
    options.sim.dt = 1e-3;
    options.ledger = &ledger;
    std::vector<sim::SimResult> results =
        sim::simulateEnsemble(pointers, 0.0, 2.0, options);
    ASSERT_TRUE(results[0].ok());
    ASSERT_FALSE(results[1].ok());

    std::vector<RunLedger::Record> records = ledger.records();
    ASSERT_EQ(records.size(), 2u);
    for (const RunLedger::Record &record : records) {
        if (record.index == 0) {
            EXPECT_TRUE(record.ok);
            EXPECT_TRUE(record.failureReason.empty());
        } else {
            EXPECT_FALSE(record.ok);
            EXPECT_EQ(record.failureReason, "diverged");
            EXPECT_FALSE(record.failureMessage.empty());
        }
    }
}

TEST(LedgerTest, SpiceSweepRecordsStructureGroups)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<spice::MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        mapped.push_back(sharedStructureLine(registry, seed));
    std::vector<const spice::Netlist *> netlists;
    for (const spice::MappedTln &m : mapped)
        netlists.push_back(&m.netlist);

    RunLedger ledger;
    spice::TransientBatchOptions options;
    options.ledger = &ledger;
    spice::TransientBatch batch(options);
    std::vector<spice::TransientResult> results =
        batch.run(netlists, 0.0, 1e-9, 1e-11);
    for (const spice::TransientResult &result : results)
        ASSERT_TRUE(result.ok());

    std::vector<RunLedger::Record> records = ledger.records();
    ASSERT_EQ(records.size(), netlists.size());
    const std::size_t block = records.front().blockId;
    for (const RunLedger::Record &record : records) {
        EXPECT_EQ(record.workload, RunLedger::Workload::Spice);
        EXPECT_EQ(record.tier, RunLedger::Tier::Sparse);
        EXPECT_EQ(record.blockId, block); // one structure group
        EXPECT_EQ(record.lanes, netlists.size());
        EXPECT_GT(record.stepsAccepted, 0u);
        EXPECT_EQ(record.cache, RunLedger::CacheOutcome::None);
        EXPECT_TRUE(record.ok);
    }

    // The dense ablation reports dense-tier standalone records.
    options.sparse = false;
    spice::TransientBatch dense(options);
    dense.run(netlists, 0.0, 1e-9, 1e-11);
    records = ledger.records();
    ASSERT_EQ(records.size(), 2 * netlists.size());
    for (std::size_t r = netlists.size(); r < records.size(); ++r) {
        EXPECT_EQ(records[r].tier, RunLedger::Tier::Dense);
        EXPECT_EQ(records[r].lanes, 1u);
    }
}

TEST(LedgerTest, SessionSweepRecordsCacheOutcomes)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    std::vector<spice::MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        mapped.push_back(sharedStructureLine(registry, seed));
    std::vector<const spice::Netlist *> netlists;
    for (const spice::MappedTln &m : mapped)
        netlists.push_back(&m.netlist);

    engine::ArtifactCache cache;
    RunLedger ledger;
    engine::SessionOptions sessionOptions;
    sessionOptions.cache = &cache;
    sessionOptions.ledger = &ledger; // session-level default ledger
    engine::Session session(sessionOptions);

    session.runSweep(netlists, 0.0, 1e-9, 1e-11); // cold factors
    session.runSweep(netlists, 0.0, 1e-9, 1e-11); // warm factors

    std::vector<RunLedger::Record> records = ledger.records();
    ASSERT_EQ(records.size(), 2 * netlists.size());
    for (const RunLedger::Record &record : records) {
        EXPECT_EQ(record.workload, RunLedger::Workload::Spice);
        EXPECT_EQ(record.tier, RunLedger::Tier::Sparse);
        const RunLedger::CacheOutcome expected =
            record.runId == 1 ? RunLedger::CacheOutcome::Miss
                              : RunLedger::CacheOutcome::Hit;
        EXPECT_EQ(record.cache, expected)
            << "run " << record.runId << " instance " << record.index;
    }
}

TEST(LedgerTest, SupervisedEnsembleAttachesReportLedger)
{
    lang::LanguageRegistry registry;
    compiler::OdeSystem healthy = feedbackSystem(registry, -1.0, 2.0);
    compiler::OdeSystem diverging = feedbackSystem(registry, 900.0, 2.0);
    std::vector<engine::SystemPtr> systems;
    systems.push_back(std::make_shared<const compiler::OdeSystem>(healthy));
    systems.push_back(
        std::make_shared<const compiler::OdeSystem>(diverging));

    engine::Session session;
    sim::EnsembleOptions options;
    options.sim.dt = 1e-3;
    engine::RunPolicy policy;
    policy.maxAttempts = 3;
    policy.retryScalar = true;
    engine::RunReport report;
    session.runEnsemble(systems, 0.0, 2.0, options, policy, &report);

    // No ledger was configured anywhere, so the supervisor attached
    // its own to the report.
    ASSERT_NE(report.ledger, nullptr);
    std::vector<RunLedger::Record> records = report.ledger->records();
    // 2 first-attempt records + 2 retry rungs for the diverging
    // instance (retries are deterministic, so both fail too).
    ASSERT_EQ(records.size(), 4u);
    std::size_t retries = 0;
    for (const RunLedger::Record &record : records) {
        if (record.action == RunLedger::RetryAction::None) {
            EXPECT_EQ(record.attempt, 1);
            continue;
        }
        ++retries;
        EXPECT_EQ(record.index, 1u); // remapped to the original slot
        EXPECT_EQ(record.action, RunLedger::RetryAction::ScalarRetry);
        EXPECT_GE(record.attempt, 2);
        EXPECT_LE(record.attempt, 3);
        EXPECT_EQ(record.tier, expectedTier(RunLedger::Tier::Scalar));
        EXPECT_FALSE(record.ok);
        EXPECT_EQ(record.failureReason, "diverged");
    }
    EXPECT_EQ(retries, 2u);

    // An explicitly configured ledger wins and the report gets none.
    RunLedger external;
    options.ledger = &external;
    engine::RunReport second;
    session.runEnsemble(systems, 0.0, 2.0, options, policy, &second);
    EXPECT_EQ(second.ledger, nullptr);
    EXPECT_EQ(external.records().size(), 4u);
}

TEST(LedgerTest, WatchdogFlagsAndClearsStalls)
{
    telemetry::StallWatchdog &watchdog =
        telemetry::StallWatchdog::shared();
    watchdog.setStallInterval(std::chrono::milliseconds(5));
    ASSERT_TRUE(watchdog.enabled());
    {
        telemetry::StallWatchdog::Run run("ledger_test", 4);
        EXPECT_TRUE(run.active());
        EXPECT_EQ(watchdog.activeRuns(), 1u);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        watchdog.pollNow();
        EXPECT_EQ(watchdog.stalledRuns(), 1u);
        run.heartbeat(); // progress resumes
        watchdog.pollNow();
        EXPECT_EQ(watchdog.stalledRuns(), 0u);
    }
    EXPECT_EQ(watchdog.activeRuns(), 0u);
    watchdog.setStallInterval(std::chrono::milliseconds(0));
    EXPECT_FALSE(watchdog.enabled());

    // Disabled watchdog: Run scopes are inert.
    telemetry::StallWatchdog::Run inert("ledger_test", 1);
    EXPECT_FALSE(inert.active());
    EXPECT_EQ(watchdog.activeRuns(), 0u);
}

} // namespace
