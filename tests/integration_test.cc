/**
 * @file
 * End-to-end tests: Ark source -> language -> graph -> validation ->
 * compilation -> simulation, across all three paradigms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "apps/experiments.h"
#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "sim/sim.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace exp = apps::experiments;

class StandardRegistryTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *StandardRegistryTest::registry_ = nullptr;

TEST_F(StandardRegistryTest, AllLanguagesRegistered)
{
    for (const char *name :
         {"tln", "gmc-tln", "cnn", "hw-cnn", "obc", "ofs-obc",
          "intercon-obc"}) {
        EXPECT_NE(registry_->findLanguage(name), nullptr)
            << "missing language " << name;
    }
    EXPECT_NE(registry_->findFunction("br-func"), nullptr);
}

TEST_F(StandardRegistryTest, LinearLineValidatesAndSimulates)
{
    const lang::Language &tln = registry_->language("tln");
    exp::TlnTrace trace = exp::fig4LinearTrace(tln);
    ASSERT_GT(trace.times.size(), 100u);
    // Amplitude: 1A pulse into matched source+line splits to ~0.5 V.
    double peak = trace.peak();
    EXPECT_GT(peak, 0.35);
    EXPECT_LT(peak, 0.65);
    // Before the wave front arrives (10 sections x 1ns), OUT_V is
    // quiet; the rising edge begins near 1e-8.
    EXPECT_LT(trace.peakWithin(0.0, 0.7e-8), 0.02);
}

TEST_F(StandardRegistryTest, BranchedLineShowsEchoAndAttenuation)
{
    const lang::Language &tln = registry_->language("tln");
    exp::TlnTrace linear = exp::fig4LinearTrace(tln);
    exp::TlnTrace branched = exp::fig4BranchedTrace(tln);
    // The branch splits the pulse: weaker initial peak (paper: ~0.3
    // vs ~0.5).
    EXPECT_LT(branched.peak(), 0.85 * linear.peak());
    // Echo: after the linear line's pulse has passed (>4e-8), the
    // branched line still carries the stub reflection.
    double branchedLate = branched.peakWithin(4e-8, 8e-8);
    double linearLate = linear.peakWithin(4e-8, 8e-8);
    EXPECT_GT(branchedLate, 1.5 * linearLate);
    EXPECT_GT(branchedLate, 0.05);
}

TEST_F(StandardRegistryTest, MalformedLineIsRejected)
{
    const lang::Language &tln = registry_->language("tln");
    dg::Graph bad = paradigms::tln::buildMalformed(tln);
    validator::ValidationResult result = validator::validate(bad, tln);
    EXPECT_FALSE(result.ok);
}

TEST_F(StandardRegistryTest, BrFuncSwitchesBranch)
{
    using expr::Value;
    // br=0: linear; br=1: branched. Same function, different configs.
    dg::Graph linear = registry_->invoke("br-func", {Value::integer(0)});
    dg::Graph branched = registry_->invoke("br-func", {Value::integer(1)});
    const lang::Language &tln = registry_->language("tln");
    validator::validateOrThrow(linear, tln);
    validator::validateOrThrow(branched, tln);

    auto simulateOut = [&](const dg::Graph &graph) {
        compiler::OdeSystem system = compiler::compile(graph, tln);
        sim::SimOptions options;
        options.recordDt = 1e-10;
        sim::SimResult result = sim::simulate(system, 0.0, 4e-8, options);
        return result.trajectory.series(system.stateIndex("OUT_V", 0));
    };
    auto linSeries = simulateOut(linear);
    auto brSeries = simulateOut(branched);
    // The branch must change the waveform.
    double maxDiff = 0.0;
    std::size_t n = std::min(linSeries.size(), brSeries.size());
    for (std::size_t i = 0; i < n; ++i)
        maxDiff = std::max(maxDiff,
                           std::fabs(linSeries[i] - brSeries[i]));
    EXPECT_GT(maxDiff, 0.02);
}

TEST_F(StandardRegistryTest, GmMismatchSpreadsMoreThanCintMismatch)
{
    const lang::Language &gmc = registry_->language("gmc-tln");
    auto cint = exp::fig4MismatchTraces(gmc, /*gmMismatch=*/false, 10);
    auto gm = exp::fig4MismatchTraces(gmc, /*gmMismatch=*/true, 10);
    exp::SpreadStats cintSpread =
        exp::spreadWithinWindow(cint, 1e-8, 3e-8);
    exp::SpreadStats gmSpread = exp::spreadWithinWindow(gm, 1e-8, 3e-8);
    // Paper Figure 4c/4d: Gm mismatch dominates.
    EXPECT_GT(gmSpread.meanRange, cintSpread.meanRange);
}

TEST_F(StandardRegistryTest, CnnEdgeDetectorIdeal)
{
    const lang::Language &cnn = registry_->language("cnn");
    apps::Image input = apps::Image::filledSquare(12, 3);
    paradigms::cnn::CnnSpec spec;
    spec.width = 12;
    spec.height = 12;
    exp::CnnRun run = exp::runCnnEdgeDetect(
        cnn, spec, input, {0.0, 0.25, 0.5, 0.75, 1.0, 2.0, 4.0});
    EXPECT_EQ(run.outputErrors, 0)
        << "final output:\n" << run.finalOutput.ascii()
        << "expected:\n" << input.edgeMap().ascii();
}

TEST_F(StandardRegistryTest, ObcMaxcutIdealSolvesMost)
{
    const lang::Language &obc = registry_->language("obc");
    auto outcomes = exp::runMaxcutSims(obc, /*withOffset=*/false, 25);
    exp::ObcRow row =
        exp::scoreMaxcut(outcomes, 0.01 * std::numbers::pi);
    EXPECT_GT(row.syncProb, 70.0);
    EXPECT_GT(row.solvedProb, 70.0);
}

TEST_F(StandardRegistryTest, SpiceValidationSmoke)
{
    const lang::Language &gmc = registry_->language("gmc-tln");
    exp::SpiceValidation report = exp::runSpiceValidation(gmc, 5);
    EXPECT_EQ(report.mapped, report.total);
    EXPECT_LT(report.maxRmse, 0.01)
        << "mean rmse " << report.meanRmse;
}

} // namespace
