/**
 * @file
 * Tests for the batched SPICE transient engine: sparse-vs-dense
 * equivalence on random generated TLN netlists (the tentpole property
 * test), shared-structure factorization reuse, per-instance
 * structured failures (singular matrix, nonfinite state), batch-level
 * input validation, and thread-count invariance.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <stop_token>
#include <utility>
#include <vector>

#include "apps/experiments.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "spice/batch.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "spice/netlist.h"
#include "support/error.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
using namespace ark::spice;
using support::SimError;

namespace ptln = paradigms::tln;

class SpiceBatchTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }

    /** Random mismatched GmC line mapped to a netlist. */
    static MappedTln
    randomLine(std::uint64_t seed, int minSections = 2,
               int maxSections = 6)
    {
        const lang::Language &gmc = registry_->language("gmc-tln");
        support::Rng rng(seed * 7919 + 13);
        ptln::LineSpec spec;
        spec.sections = static_cast<int>(
            rng.uniformInt(minSections, maxSections));
        spec.inductance = rng.uniform(0.5e-9, 2e-9);
        spec.capacitance = rng.uniform(0.5e-9, 2e-9);
        spec.sourceConductance = rng.uniform(0.5, 2.0);
        spec.termConductance = rng.uniform(0.5, 2.0);
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = rng.deriveSeed();
        dg::Graph graph = ptln::buildLine(gmc, spec);
        validator::validateOrThrow(graph, gmc);
        return mapTlnToSpice(graph, gmc);
    }

    /** Same topology for every seed: only the mismatch values vary. */
    static MappedTln
    sharedStructureLine(std::uint64_t seed, int sections = 5)
    {
        const lang::Language &gmc = registry_->language("gmc-tln");
        ptln::LineSpec spec;
        spec.sections = sections;
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = seed;
        dg::Graph graph = ptln::buildLine(gmc, spec);
        validator::validateOrThrow(graph, gmc);
        return mapTlnToSpice(graph, gmc);
    }

    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *SpiceBatchTest::registry_ = nullptr;

/** Max |a-b| over all samples/unknowns, relative to the peak |a|. */
double
maxRelDeviation(const TransientResult &a, const TransientResult &b)
{
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.dim(), b.dim());
    double peak = 0.0;
    for (std::size_t s = 0; s < a.size(); ++s)
        for (double v : a.state(s))
            peak = std::max(peak, std::fabs(v));
    double worst = 0.0;
    for (std::size_t s = 0; s < a.size() && s < b.size(); ++s) {
        auto sa = a.state(s);
        auto sb = b.state(s);
        for (std::size_t i = 0; i < sa.size(); ++i)
            worst = std::max(worst, std::fabs(sa[i] - sb[i]));
    }
    return peak > 0.0 ? worst / peak : worst;
}

void
expectBitIdentical(const TransientResult &a, const TransientResult &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a.time(s), b.time(s));
        auto sa = a.state(s);
        auto sb = b.state(s);
        for (std::size_t i = 0; i < sa.size(); ++i)
            ASSERT_EQ(sa[i], sb[i]) << "sample " << s << " unknown " << i;
    }
}

TEST_F(SpiceBatchTest, SparseTransientMatchesDenseOnRandomTln)
{
    // The tentpole equivalence property: on random generated TLN
    // netlists the sparse MNA transient tracks the dense path to
    // rounding (<= 1e-12 relative to the waveform peak).
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        MappedTln mapped = randomLine(seed);
        MnaSystem dense(mapped.netlist);
        SparseMnaSystem sparse(mapped.netlist);
        ASSERT_EQ(dense.size(), sparse.size());
        TransientResult viaDense = transient(dense, 0.0, 2e-8, 1e-11);
        TransientResult viaSparse = transient(sparse, 0.0, 2e-8, 1e-11);
        ASSERT_TRUE(viaDense.ok());
        ASSERT_TRUE(viaSparse.ok());
        EXPECT_LE(maxRelDeviation(viaDense, viaSparse), 1e-12)
            << "seed " << seed;
    }
}

TEST_F(SpiceBatchTest, SparseSystemMirrorsDenseAssembly)
{
    MappedTln mapped = randomLine(9);
    MnaSystem dense(mapped.netlist);
    SparseMnaSystem sparse(mapped.netlist);
    ASSERT_EQ(dense.size(), sparse.size());
    ASSERT_EQ(dense.numNodeUnknowns(), sparse.numNodeUnknowns());
    for (std::size_t r = 0; r < dense.size(); ++r) {
        EXPECT_EQ(dense.rowIsDynamic(r), sparse.rowIsDynamic(r));
        for (std::size_t c = 0; c < dense.size(); ++c) {
            EXPECT_DOUBLE_EQ(sparse.massMatrix().at(r, c),
                             dense.massMatrix()(r, c));
            EXPECT_DOUBLE_EQ(sparse.stiffnessMatrix().at(r, c),
                             dense.stiffnessMatrix()(r, c));
        }
    }
    std::vector<double> ud = dense.sourceVector(3e-9);
    std::vector<double> us = sparse.sourceVector(3e-9);
    for (std::size_t r = 0; r < ud.size(); ++r)
        EXPECT_DOUBLE_EQ(us[r], ud[r]);
}

TEST_F(SpiceBatchTest, SharedStructureInstancesGroup)
{
    SparseMnaSystem a(sharedStructureLine(1).netlist);
    SparseMnaSystem b(sharedStructureLine(2).netlist);
    SparseMnaSystem c(randomLine(3, 7, 7).netlist); // different topology
    EXPECT_TRUE(a.sharesStructure(b));
    EXPECT_FALSE(a.sharesMatrixValues(b)); // mismatch values differ
    EXPECT_TRUE(a.sharesMatrixValues(a));
    EXPECT_FALSE(a.sharesStructure(c));
}

TEST_F(SpiceBatchTest, BatchMatchesSerialOnMixedTopologies)
{
    // Mixed sweep: several shared-structure groups plus singletons.
    std::vector<MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        mapped.push_back(sharedStructureLine(seed));
    for (std::uint64_t seed = 5; seed <= 8; ++seed)
        mapped.push_back(randomLine(seed));
    std::vector<const Netlist *> netlists;
    for (const MappedTln &map : mapped)
        netlists.push_back(&map.netlist);

    const double t1 = 1e-8, dt = 1e-11;
    TransientBatch sparseBatch;
    TransientBatchStats stats;
    std::vector<TransientResult> batched =
        sparseBatch.run(netlists, 0.0, t1, dt, &stats);
    ASSERT_EQ(batched.size(), netlists.size());
    // The four shared-structure instances collapse into one group;
    // the random topologies add at most one group each.
    EXPECT_GE(stats.structureGroups, 1u);
    EXPECT_LE(stats.structureGroups, 5u);
    for (std::size_t i = 0; i < netlists.size(); ++i) {
        ASSERT_TRUE(batched[i].ok()) << "instance " << i;
        MnaSystem dense(*netlists[i]);
        TransientResult serial = transient(dense, 0.0, t1, dt);
        EXPECT_LE(maxRelDeviation(serial, batched[i]), 1e-12)
            << "instance " << i;
    }

    // The dense ablation path is the serial loop, parallelized:
    // results must be bit-identical to serial dense.
    TransientBatchOptions denseOptions;
    denseOptions.sparse = false;
    std::vector<TransientResult> denseBatch =
        TransientBatch(denseOptions).run(netlists, 0.0, t1, dt);
    for (std::size_t i = 0; i < netlists.size(); ++i) {
        MnaSystem dense(*netlists[i]);
        expectBitIdentical(transient(dense, 0.0, t1, dt),
                           denseBatch[i]);
    }
}

TEST_F(SpiceBatchTest, IdenticalInstancesShareFactorsExactly)
{
    // Bit-identical netlists share the leader's factors outright, so
    // every instance must reproduce the serial sparse run exactly.
    MappedTln mapped = sharedStructureLine(42);
    std::vector<const Netlist *> netlists(5, &mapped.netlist);
    SparseMnaSystem system(mapped.netlist);
    TransientResult serial = transient(system, 0.0, 1e-8, 1e-11);
    TransientBatchStats stats;
    std::vector<TransientResult> batched =
        TransientBatch().run(netlists, 0.0, 1e-8, 1e-11, &stats);
    EXPECT_EQ(stats.structureGroups, 1u);
    for (const TransientResult &result : batched)
        expectBitIdentical(serial, result);
}

TEST_F(SpiceBatchTest, ResultsIndependentOfThreadCount)
{
    std::vector<MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        mapped.push_back(sharedStructureLine(seed));
    std::vector<const Netlist *> netlists;
    for (const MappedTln &map : mapped)
        netlists.push_back(&map.netlist);

    TransientBatchOptions one;
    one.numThreads = 1;
    TransientBatchOptions four;
    four.numThreads = 4;
    std::vector<TransientResult> serial =
        TransientBatch(one).run(netlists, 0.0, 1e-8, 1e-11);
    std::vector<TransientResult> threaded =
        TransientBatch(four).run(netlists, 0.0, 1e-8, 1e-11);
    for (std::size_t i = 0; i < netlists.size(); ++i)
        expectBitIdentical(serial[i], threaded[i]);
}

TEST_F(SpiceBatchTest, SingularInstanceFailsAloneStructurally)
{
    // A floating resistor pair has a singular conductance matrix; it
    // must fail with a structured SingularMatrix report while the
    // healthy instances in the same batch complete.
    Netlist singular;
    int a = singular.addNode("a");
    int b = singular.addNode("b");
    singular.resistor("R", a, b, 1.0);

    MappedTln good = sharedStructureLine(7);
    std::vector<const Netlist *> netlists{&good.netlist, &singular,
                                          &good.netlist};
    std::vector<TransientResult> results =
        TransientBatch().run(netlists, 0.0, 1e-8, 1e-11);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_TRUE(results[2].ok());
    ASSERT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].failure->reason,
              TransientAbort::SingularMatrix);
    EXPECT_FALSE(results[1].failure->message.empty());

    // Same structured outcome through the dense ablation path.
    TransientBatchOptions denseOptions;
    denseOptions.sparse = false;
    std::vector<TransientResult> dense =
        TransientBatch(denseOptions).run(netlists, 0.0, 1e-8, 1e-11);
    EXPECT_TRUE(dense[0].ok());
    ASSERT_FALSE(dense[1].ok());
    EXPECT_EQ(dense[1].failure->reason, TransientAbort::SingularMatrix);
}

TEST_F(SpiceBatchTest, UnstableInstanceReportsNonfiniteState)
{
    // Negative-conductance VCCS on a capacitor: v grows by ~3999x per
    // trapezoidal step and overflows to inf mid-run. The failure must
    // be structured (reason, step, time) and the samples recorded
    // before the blowup kept.
    Netlist unstable;
    int n = unstable.addNode("n");
    unstable.capacitor("C", n, kGround, 1.0);
    unstable.vccs("G", kGround, n, n, kGround, 1999.0);
    unstable.currentSource("I", kGround, n, 1.0);

    MappedTln good = sharedStructureLine(11);
    std::vector<const Netlist *> netlists{&unstable, &good.netlist};
    std::vector<TransientResult> results =
        TransientBatch().run(netlists, 0.0, 0.2, 1e-3);
    ASSERT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].failure->reason,
              TransientAbort::NonfiniteState);
    EXPECT_GT(results[0].failure->step, 0u);
    EXPECT_GT(results[0].failure->time, 0.0);
    EXPECT_GE(results[0].size(), 1u);
    EXPECT_TRUE(results[1].ok());

    // The serial paths report the same structured failure.
    SparseMnaSystem sparse(unstable);
    TransientResult serial = transient(sparse, 0.0, 0.2, 1e-3);
    ASSERT_FALSE(serial.ok());
    EXPECT_EQ(serial.failure->reason, TransientAbort::NonfiniteState);
    EXPECT_EQ(serial.failure->step, results[0].failure->step);
    MnaSystem denseSys(unstable);
    TransientResult serialDense = transient(denseSys, 0.0, 0.2, 1e-3);
    ASSERT_FALSE(serialDense.ok());
    EXPECT_EQ(serialDense.failure->reason,
              TransientAbort::NonfiniteState);
    EXPECT_EQ(serialDense.failure->step, results[0].failure->step);
}

TEST_F(SpiceBatchTest, ShortFinalStepMatchesDense)
{
    // A window that is not an integer multiple of dt exercises the
    // fractional-final-step path (one-off companion at h < dt) on
    // both engines; they must still agree to rounding and land the
    // final sample on t1.
    MappedTln mapped = sharedStructureLine(3);
    const double dt = 1e-11;
    const double t1 = 10.5 * dt;
    MnaSystem dense(mapped.netlist);
    SparseMnaSystem sparse(mapped.netlist);
    TransientResult viaDense = transient(dense, 0.0, t1, dt);
    TransientResult viaSparse = transient(sparse, 0.0, t1, dt);
    ASSERT_TRUE(viaDense.ok());
    ASSERT_TRUE(viaSparse.ok());
    ASSERT_EQ(viaDense.size(), 12u); // initial + 10 full + 1 half step
    ASSERT_EQ(viaSparse.size(), viaDense.size());
    EXPECT_DOUBLE_EQ(viaDense.time(viaDense.size() - 1), t1);
    EXPECT_LE(maxRelDeviation(viaDense, viaSparse), 1e-12);

    // And through the batch engine.
    std::vector<const Netlist *> netlists{&mapped.netlist};
    std::vector<TransientResult> batched =
        TransientBatch().run(netlists, 0.0, t1, dt);
    ASSERT_TRUE(batched[0].ok());
    EXPECT_LE(maxRelDeviation(viaDense, batched[0]), 1e-12);
}

TEST_F(SpiceBatchTest, LeaderSharedFinalStepOperator)
{
    // Non-divisible grids end on one fractional step. The leader can
    // pre-factor that operator (prepareFinalStep) so the group shares
    // it like the main companion factors, instead of each instance
    // one-off-factoring it.
    const double dt = 1e-11;
    const double t1 = 10.5 * dt;
    const double hFinal = finalStepSize(0.0, t1, dt);
    EXPECT_GT(hFinal, 0.0);
    EXPECT_LT(hFinal, dt); // genuinely fractional on this grid

    // Prepared-vs-one-off bit identity on one instance: both factor
    // the identical final companion matrix, so the shared operator
    // must not change a single bit of the trajectory.
    MappedTln leader = sharedStructureLine(3);
    SparseMnaSystem system(leader.netlist);
    TransientStepper oneOff(system, dt);
    TransientStepper prepared(system, dt);
    prepared.prepareFinalStep(system, hFinal);
    EXPECT_EQ(prepared.preparedFinalStep(), hFinal);
    TransientResult viaOneOff = oneOff.run(system, 0.0, t1);
    TransientResult viaPrepared = prepared.run(system, 0.0, t1);
    ASSERT_TRUE(viaOneOff.ok());
    ASSERT_TRUE(viaPrepared.ok());
    expectBitIdentical(viaOneOff, viaPrepared);
    // A divisible-grid request clears the prepared operator.
    prepared.prepareFinalStep(system, dt);
    EXPECT_EQ(prepared.preparedFinalStep(), 0.0);

    // Through the batch engine: mismatch members ride the refactored
    // final operator, a value-identical duplicate shares the leader's
    // factors outright; each must match its serial sparse transient
    // to rounding and land its last sample exactly on t1.
    std::vector<MappedTln> mapped;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        mapped.push_back(sharedStructureLine(seed));
    mapped.push_back(sharedStructureLine(1)); // value-identical twin
    std::vector<const Netlist *> netlists;
    for (const MappedTln &map : mapped)
        netlists.push_back(&map.netlist);
    std::vector<TransientResult> batched =
        TransientBatch().run(netlists, 0.0, t1, dt);
    ASSERT_EQ(batched.size(), netlists.size());
    for (std::size_t i = 0; i < netlists.size(); ++i) {
        ASSERT_TRUE(batched[i].ok()) << "instance " << i;
        EXPECT_DOUBLE_EQ(batched[i].time(batched[i].size() - 1), t1);
        SparseMnaSystem serial(*netlists[i]);
        TransientResult reference = transient(serial, 0.0, t1, dt);
        EXPECT_LE(maxRelDeviation(reference, batched[i]), 1e-12)
            << "instance " << i;
    }
    // The duplicate pair shares every factor, final step included.
    expectBitIdentical(batched[0], batched[4]);
}

TEST_F(SpiceBatchTest, BatchLevelBadArgumentsThrow)
{
    MappedTln mapped = sharedStructureLine(1);
    std::vector<const Netlist *> netlists{&mapped.netlist};
    TransientBatch batch;
    EXPECT_THROW(batch.run(netlists, 0.0, 1e-8, 0.0), SimError);
    EXPECT_THROW(batch.run(netlists, 0.0, 1e-8, -1e-11), SimError);
    EXPECT_THROW(batch.run(netlists, 1e-8, 0.0, 1e-11), SimError);
    // Zero-length window: valid, one initial sample per instance.
    std::vector<TransientResult> point =
        batch.run(netlists, 0.0, 0.0, 1e-11);
    ASSERT_TRUE(point[0].ok());
    EXPECT_EQ(point[0].size(), 1u);
    // Empty batches are a no-op.
    EXPECT_TRUE(batch.run(std::vector<const Netlist *>{}, 0.0, 1e-8,
                          1e-11)
                    .empty());
}

void
expectIdenticalTransients(const TransientResult &a,
                          const TransientResult &b)
{
    ASSERT_EQ(a.ok(), b.ok());
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a.time(s), b.time(s));
        auto stateA = a.state(s);
        auto stateB = b.state(s);
        for (std::size_t i = 0; i < stateA.size(); ++i)
            EXPECT_EQ(stateA[i], stateB[i]) << "sample " << s;
    }
}

TEST_F(SpiceBatchTest, MidSweepCancellationKeepsCompletedPrefix)
{
    // Serial execution makes the cut deterministic: the progress
    // callback requests stop after the third completion, so instances
    // 0-2 finish bit-identical to an uncancelled sweep and the rest
    // are skipped with structured Cancelled failures.
    std::vector<MappedTln> mapped;
    std::vector<const Netlist *> netlists;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        mapped.push_back(sharedStructureLine(seed));
    for (const MappedTln &line : mapped)
        netlists.push_back(&line.netlist);

    std::vector<TransientResult> clean =
        TransientBatch().run(netlists, 0.0, 1e-8, 1e-11);

    for (bool sparse : {true, false}) {
        TransientBatchOptions options;
        options.sparse = sparse;
        options.numThreads = 1;
        std::stop_source source;
        options.stop = source.get_token();
        std::vector<std::pair<std::size_t, std::size_t>> calls;
        options.progress = [&](std::size_t done, std::size_t total) {
            calls.emplace_back(done, total);
            if (done == 3)
                source.request_stop();
        };
        std::vector<TransientResult> results =
            TransientBatch(options).run(netlists, 0.0, 1e-8, 1e-11);
        ASSERT_EQ(results.size(), netlists.size());

        std::size_t completed = 0, cancelled = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].ok()) {
                ++completed;
                if (sparse)
                    expectIdenticalTransients(results[i], clean[i]);
            } else {
                ++cancelled;
                EXPECT_EQ(results[i].failure->reason,
                          TransientAbort::Cancelled);
                EXPECT_EQ(results[i].size(), 0u);
            }
        }
        EXPECT_EQ(completed, 3u) << "sparse=" << sparse;
        EXPECT_EQ(cancelled, netlists.size() - 3);
        // Progress still ticks once per instance, skipped included.
        std::size_t prev = 0;
        for (auto [done, total] : calls) {
            EXPECT_EQ(total, netlists.size());
            EXPECT_GT(done, prev);
            prev = done;
        }
        EXPECT_EQ(prev, netlists.size());
    }
}

TEST_F(SpiceBatchTest, ExpiredDeadlineSkipsSweepStructurally)
{
    std::vector<MappedTln> mapped;
    std::vector<const Netlist *> netlists;
    for (std::uint64_t seed = 0; seed < 4; ++seed)
        mapped.push_back(sharedStructureLine(seed));
    for (const MappedTln &line : mapped)
        netlists.push_back(&line.netlist);

    for (bool sparse : {true, false}) {
        TransientBatchOptions options;
        options.sparse = sparse;
        options.deadline = std::chrono::steady_clock::now() -
                           std::chrono::seconds(1);
        std::vector<TransientResult> results =
            TransientBatch(options).run(netlists, 0.0, 1e-8, 1e-11);
        for (const TransientResult &result : results) {
            ASSERT_FALSE(result.ok());
            EXPECT_EQ(result.failure->reason,
                      TransientAbort::DeadlineExceeded);
            EXPECT_EQ(result.size(), 0u);
        }
    }
}

TEST_F(SpiceBatchTest, FarFutureDeadlineKeepsSweepBitIdentical)
{
    std::vector<MappedTln> mapped;
    std::vector<const Netlist *> netlists;
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        mapped.push_back(sharedStructureLine(seed));
    for (const MappedTln &line : mapped)
        netlists.push_back(&line.netlist);

    std::vector<TransientResult> clean =
        TransientBatch().run(netlists, 0.0, 1e-8, 1e-11);
    TransientBatchOptions options;
    options.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(10);
    std::vector<TransientResult> bounded =
        TransientBatch(options).run(netlists, 0.0, 1e-8, 1e-11);
    ASSERT_EQ(bounded.size(), clean.size());
    for (std::size_t i = 0; i < bounded.size(); ++i)
        expectIdenticalTransients(bounded[i], clean[i]);
}

TEST_F(SpiceBatchTest, SerialTransientHonorsControl)
{
    // The per-step stop/deadline checks live in the serial drivers
    // too (TransientStepper::run and the dense transient): a
    // pre-triggered stop yields Cancelled at step 0 with no samples;
    // stop wins over an expired deadline when both hold.
    MappedTln mapped = sharedStructureLine(3);
    SparseMnaSystem sparse(mapped.netlist);
    MnaSystem dense(mapped.netlist);
    std::stop_source source;
    source.request_stop();
    TransientControl control;
    control.stop = source.get_token();
    control.deadline = std::chrono::steady_clock::now() -
                       std::chrono::seconds(1);

    TransientResult viaSparse =
        transient(sparse, 0.0, 1e-8, 1e-11, {}, control);
    ASSERT_FALSE(viaSparse.ok());
    EXPECT_EQ(viaSparse.failure->reason, TransientAbort::Cancelled);
    EXPECT_EQ(viaSparse.size(), 0u);
    TransientResult viaDense =
        transient(dense, 0.0, 1e-8, 1e-11, {}, control);
    ASSERT_FALSE(viaDense.ok());
    EXPECT_EQ(viaDense.failure->reason, TransientAbort::Cancelled);

    // Deadline alone: structured DeadlineExceeded, same shape.
    TransientControl deadlineOnly;
    deadlineOnly.deadline = control.deadline;
    TransientResult timed =
        transient(sparse, 0.0, 1e-8, 1e-11, {}, deadlineOnly);
    ASSERT_FALSE(timed.ok());
    EXPECT_EQ(timed.failure->reason, TransientAbort::DeadlineExceeded);
}

TEST_F(SpiceBatchTest, ValidationSweepParitySparseVsDense)
{
    // Acceptance criterion at regression scale: the batched sparse
    // §4.5 sweep reports the same mapped/RMSE statistics as the
    // serial-equivalent dense path.
    const lang::Language &gmc = registry_->language("gmc-tln");
    apps::experiments::SpiceValidationOptions sparse;
    sparse.sparse = true;
    apps::experiments::SpiceValidationOptions dense;
    dense.sparse = false;
    apps::experiments::SpiceValidation viaSparse =
        apps::experiments::runSpiceValidation(gmc, 12, 1, sparse);
    apps::experiments::SpiceValidation viaDense =
        apps::experiments::runSpiceValidation(gmc, 12, 1, dense);
    EXPECT_EQ(viaSparse.total, viaDense.total);
    EXPECT_EQ(viaSparse.mapped, viaDense.mapped);
    EXPECT_EQ(viaSparse.mapped, viaSparse.total);
    EXPECT_EQ(viaSparse.under1pct, viaDense.under1pct);
    EXPECT_NEAR(viaSparse.meanRmse, viaDense.meanRmse, 1e-9);
    EXPECT_NEAR(viaSparse.maxRmse, viaDense.maxRmse, 1e-9);
    EXPECT_GT(viaSparse.spiceGroups, 0);
    EXPECT_LE(viaSparse.spiceGroups, viaSparse.total);
    // The structure count is a property of the sweep, not the path.
    EXPECT_EQ(viaSparse.spiceGroups, viaDense.spiceGroups);
    EXPECT_LT(viaSparse.maxRmse, 0.01);
}

} // namespace
