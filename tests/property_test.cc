/**
 * @file
 * Cross-cutting randomized properties:
 *  - randomly generated valid TLN graphs always validate, compile,
 *    simulate, and map to SPICE within tolerance;
 *  - validator engines (ILP vs max-flow) agree on randomized graphs,
 *    including invalid ones;
 *  - mismatch sampling is invariant across builder runs with the same
 *    seed and differs across seeds;
 *  - the gmc-tln cast property holds across random line topologies.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "support/linalg.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;
namespace ptln = paradigms::tln;

class PipelineProperty : public ::testing::TestWithParam<int>
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new lang::LanguageRegistry(
            paradigms::makeStandardRegistry());
    }
    static void TearDownTestSuite()
    {
        delete registry_;
        registry_ = nullptr;
    }
    static lang::LanguageRegistry *registry_;
};

lang::LanguageRegistry *PipelineProperty::registry_ = nullptr;

TEST_P(PipelineProperty, RandomValidTlnGraphsRunEndToEnd)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    const lang::Language &gmc = registry_->language("gmc-tln");
    for (int trial = 0; trial < 4; ++trial) {
        ptln::LineSpec spec;
        spec.sections = static_cast<int>(rng.uniformInt(2, 14));
        spec.inductance = rng.uniform(2e-10, 5e-9);
        spec.capacitance = rng.uniform(2e-10, 5e-9);
        spec.sourceConductance = rng.uniform(0.3, 3.0);
        spec.termConductance = rng.uniform(0.3, 3.0);
        spec.pulseWidth = rng.uniform(0.5e-8, 2e-8);
        spec.mismatchC = rng.bernoulli(0.5);
        spec.mismatchGm = rng.bernoulli(0.5);
        spec.seed = rng.deriveSeed();

        dg::Graph graph =
            rng.bernoulli(0.5)
                ? ptln::buildLine(gmc, spec)
                : [&] {
                      ptln::BranchSpec branch;
                      branch.line = spec;
                      branch.stubSections =
                          static_cast<int>(rng.uniformInt(1, 5));
                      branch.attachAt = static_cast<int>(
                          rng.uniformInt(0, spec.sections));
                      return ptln::buildBranched(gmc, branch);
                  }();

        // Valid by construction.
        validator::ValidationResult ilp =
            validator::validate(graph, gmc, validator::Engine::Ilp);
        validator::ValidationResult flow =
            validator::validate(graph, gmc, validator::Engine::Flow);
        EXPECT_TRUE(ilp.ok) << ilp.summary();
        EXPECT_EQ(ilp.ok, flow.ok);

        // Compiles and simulates without error; the waveform stays
        // bounded (passive network, bounded input).
        compiler::OdeSystem system = compiler::compile(graph, gmc);
        sim::SimOptions options;
        options.recordDt = 1e-9;
        sim::SimResult result =
            sim::simulate(system, 0.0, 4e-8, options);
        int out = system.stateIndex(ptln::outputNode(), 0);
        for (double v : result.trajectory.series(out)) {
            EXPECT_LT(std::fabs(v), 10.0);
        }
    }
}

TEST_P(PipelineProperty, CorruptedGraphsRejectedByBothEngines)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    const lang::Language &tln = registry_->language("tln");
    for (int trial = 0; trial < 4; ++trial) {
        ptln::LineSpec spec;
        spec.sections = static_cast<int>(rng.uniformInt(2, 8));
        dg::Graph graph = ptln::buildLine(tln, spec);

        // Corrupt: add an illegal V->V edge between random distinct
        // V nodes (the malformation of Figure 2-(iii)).
        std::vector<dg::NodeId> vNodes;
        for (std::size_t i = 0; i < graph.numNodes(); ++i) {
            dg::NodeId id{static_cast<std::int32_t>(i)};
            if (graph.node(id).type == "V")
                vNodes.push_back(id);
        }
        auto a = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(vNodes.size()) - 1));
        auto b = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(vNodes.size()) - 1));
        if (a == b)
            b = (b + 1) % vNodes.size();
        graph.addEdge("corrupt", "E", vNodes[a], vNodes[b]);

        validator::ValidationResult ilp =
            validator::validate(graph, tln, validator::Engine::Ilp);
        validator::ValidationResult flow =
            validator::validate(graph, tln, validator::Engine::Flow);
        EXPECT_FALSE(ilp.ok);
        EXPECT_EQ(ilp.ok, flow.ok);
    }
}

TEST_P(PipelineProperty, SpiceMappingTracksOdeOnRandomLines)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
    const lang::Language &gmc = registry_->language("gmc-tln");
    ptln::LineSpec spec;
    spec.sections = static_cast<int>(rng.uniformInt(2, 8));
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = rng.deriveSeed();
    dg::Graph graph = ptln::buildLine(gmc, spec);

    compiler::OdeSystem system = compiler::compile(graph, gmc);
    sim::SimOptions options;
    options.relTol = 1e-8;
    options.absTol = 1e-12;
    options.recordDt = 2e-11;
    sim::SimResult ode = sim::simulate(system, 0.0, 2e-8, options);

    spice::MappedTln mapped = spice::mapTlnToSpice(graph, gmc);
    spice::MnaSystem mna(mapped.netlist);
    spice::TransientResult tran =
        spice::transient(mna, 0.0, 2e-8, 1e-11);

    int out = system.stateIndex(ptln::outputNode(), 0);
    auto circuit = static_cast<std::size_t>(
        mapped.circuitNodeOf.at(ptln::outputNode()));
    std::vector<double> a, b;
    for (int g = 0; g < 150; ++g) {
        double t = 2e-8 * g / 149.0;
        a.push_back(ode.trajectory.sampleAt(out, t));
        std::size_t step = std::min(
            static_cast<std::size_t>(t / 1e-11), tran.size() - 1);
        b.push_back(tran.state(step)[circuit]);
    }
    EXPECT_LT(support::relativeRmse(a, b), 0.01);
}

TEST_P(PipelineProperty, MismatchSamplingStableAcrossRebuilds)
{
    const lang::Language &gmc = registry_->language("gmc-tln");
    auto seed = static_cast<std::uint64_t>(GetParam());
    ptln::LineSpec spec;
    spec.sections = 5;
    spec.mismatchGm = true;
    spec.seed = seed;
    dg::Graph a = ptln::buildLine(gmc, spec);
    dg::Graph b = ptln::buildLine(gmc, spec);
    spec.seed = seed + 1000;
    dg::Graph c = ptln::buildLine(gmc, spec);
    bool anyDiffer = false;
    for (std::size_t i = 0; i < a.numEdges(); ++i) {
        dg::EdgeId id{static_cast<std::int32_t>(i)};
        if (!a.edgeTypeOf(id).findAttr("ws"))
            continue;
        EXPECT_DOUBLE_EQ(a.edgeAttr(id, "ws").asReal(),
                         b.edgeAttr(id, "ws").asReal());
        anyDiffer |= a.edgeAttr(id, "ws").asReal() !=
                     c.edgeAttr(id, "ws").asReal();
    }
    EXPECT_TRUE(anyDiffer);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range(1, 7));

} // namespace
