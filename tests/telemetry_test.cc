/**
 * @file
 * Tests for the telemetry subsystem: counter/histogram correctness
 * under concurrent writers, span nesting and thread attribution,
 * Chrome-trace JSON validity, the non-interference contract
 * (collection on vs. off is bit-identical), and the timestamped
 * log-sink path.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "lang/registry.h"
#include "sim/sim.h"
#include "support/ledger.h"
#include "support/logging.h"
#include "support/statsserver.h"
#include "support/telemetry.h"
#include "support/watchdog.h"

#include "json_checker.h"

namespace {

using namespace ark;
using telemetry::Registry;
using testutil::JsonChecker;

/** Restores both collection switches and clears the trace on exit so
 *  tests cannot leak enabled telemetry into each other. */
struct TelemetryGuard
{
    TelemetryGuard()
        : metrics_(telemetry::metricsEnabled()),
          tracing_(telemetry::tracingEnabled())
    {
    }

    ~TelemetryGuard()
    {
        telemetry::setMetricsEnabled(metrics_);
        telemetry::setTracingEnabled(tracing_);
        telemetry::clearTrace();
    }

    bool metrics_;
    bool tracing_;
};

TEST(TelemetryTest, CounterConcurrentWritersAreExact)
{
    TelemetryGuard guard;
    telemetry::setMetricsEnabled(true);
    telemetry::Counter &counter =
        Registry::shared().counter("ark.test.concurrent_counter");
    const std::uint64_t before = counter.value();

    constexpr int kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.add();
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value() - before, kThreads * kAddsPerThread);
}

TEST(TelemetryTest, HistogramConcurrentWritersAreExact)
{
    TelemetryGuard guard;
    telemetry::setMetricsEnabled(true);
    telemetry::Histogram &hist =
        Registry::shared().histogram("ark.test.concurrent_hist");
    const std::uint64_t countBefore = hist.count();
    const std::uint64_t sumBefore = hist.sum();

    constexpr int kThreads = 8;
    constexpr std::uint64_t kSamplesPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist, t] {
            for (std::uint64_t i = 0; i < kSamplesPerThread; ++i)
                hist.record(i % 1000 + static_cast<std::uint64_t>(t));
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(hist.count() - countBefore, kThreads * kSamplesPerThread);
    EXPECT_GT(hist.sum(), sumBefore);

    std::uint64_t bucketTotal = 0;
    for (std::uint64_t b : hist.bucketCounts())
        bucketTotal += b;
    EXPECT_EQ(bucketTotal, hist.count());
}

TEST(TelemetryTest, BucketOfMatchesBitWidth)
{
    using telemetry::Histogram;
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~0ull), Histogram::kBuckets - 1);
}

TEST(TelemetryTest, DisabledCollectionIsInert)
{
    TelemetryGuard guard;
    telemetry::setMetricsEnabled(false);
    telemetry::setTracingEnabled(false);

    telemetry::Counter &counter =
        Registry::shared().counter("ark.test.inert_counter");
    telemetry::Gauge &gauge =
        Registry::shared().gauge("ark.test.inert_gauge");
    telemetry::Histogram &hist =
        Registry::shared().histogram("ark.test.inert_hist");
    const std::uint64_t counterBefore = counter.value();
    const std::uint64_t histBefore = hist.count();

    counter.add(42);
    gauge.set(3.5);
    hist.record(7);
    {
        telemetry::ScopedSpan span("ark.test.inert_span", 1);
    }

    EXPECT_EQ(counter.value(), counterBefore);
    EXPECT_EQ(gauge.value(), 0.0);
    EXPECT_EQ(hist.count(), histBefore);

    std::ostringstream trace;
    telemetry::writeChromeTrace(trace);
    EXPECT_EQ(trace.str().find("ark.test.inert_span"), std::string::npos);
}

TEST(TelemetryTest, SpanNestingAndThreadAttribution)
{
    TelemetryGuard guard;
    telemetry::clearTrace();
    telemetry::setTracingEnabled(true);

    {
        telemetry::ScopedSpan outer("ark.test.outer", 2);
        telemetry::ScopedSpan inner("ark.test.inner");
    }
    std::thread([] {
        telemetry::ScopedSpan span("ark.test.other_thread");
    }).join();
    telemetry::setTracingEnabled(false);

    std::ostringstream out;
    telemetry::writeChromeTrace(out);
    const std::string trace = out.str();

    // Pull (name, ts, dur, tid) out of the trace via the event regex.
    struct Event
    {
        std::string name;
        double ts;
        double dur;
        int tid;
    };
    std::regex eventRe("\\{\"name\":\"([^\"]+)\",\"cat\":\"ark\","
                       "\"ph\":\"X\",\"ts\":([0-9.eE+-]+),"
                       "\"dur\":([0-9.eE+-]+),\"pid\":1,"
                       "\"tid\":([0-9]+)");
    std::vector<Event> events;
    for (std::sregex_iterator it(trace.begin(), trace.end(), eventRe),
         end;
         it != end; ++it) {
        events.push_back({(*it)[1], std::stod((*it)[2]),
                          std::stod((*it)[3]), std::stoi((*it)[4])});
    }

    const Event *outer = nullptr;
    const Event *inner = nullptr;
    const Event *other = nullptr;
    for (const Event &event : events) {
        if (event.name == "ark.test.outer")
            outer = &event;
        else if (event.name == "ark.test.inner")
            inner = &event;
        else if (event.name == "ark.test.other_thread")
            other = &event;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(other, nullptr);

    // The inner span nests within the outer interval.
    EXPECT_GE(inner->ts, outer->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-3);
    EXPECT_EQ(inner->tid, outer->tid);
    // The second thread records under its own tid.
    EXPECT_NE(other->tid, outer->tid);
    // The outer span exports its argument.
    EXPECT_NE(trace.find("\"args\":{\"v\":2}"), std::string::npos);
}

TEST(TelemetryTest, ChromeTraceJsonRoundTrips)
{
    TelemetryGuard guard;
    telemetry::clearTrace();
    telemetry::setTracingEnabled(true);
    {
        telemetry::ScopedSpan a("ark.test.json_a", 7);
        telemetry::ScopedSpan b("ark.test.json_b");
    }
    telemetry::setTracingEnabled(false);

    std::ostringstream out;
    telemetry::writeChromeTrace(out);
    std::string trace = out.str();

    JsonChecker checker(trace);
    EXPECT_TRUE(checker.valid()) << trace;
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("ark.test.json_a"), std::string::npos);
    EXPECT_NE(trace.find("ark.test.json_b"), std::string::npos);

    // The metrics snapshot JSON round-trips too.
    telemetry::setMetricsEnabled(true);
    Registry::shared().counter("ark.test.json_counter").add(3);
    Registry::shared().histogram("ark.test.json_hist").record(12);
    std::string snapshot = Registry::shared().snapshot().json();
    telemetry::setMetricsEnabled(false);
    JsonChecker snapshotChecker(snapshot);
    EXPECT_TRUE(snapshotChecker.valid()) << snapshot;
}

TEST(TelemetryTest, TraceSessionWritesFile)
{
    TelemetryGuard guard;
    const std::string path =
        testing::TempDir() + "/telemetry_test.trace.json";
    {
        telemetry::TraceSession session(path);
        telemetry::ScopedSpan span("ark.test.session_span");
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    JsonChecker checker(content);
    EXPECT_TRUE(checker.valid()) << content;
    EXPECT_NE(content.find("ark.test.session_span"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetryTest, MetricsSnapshotLookupAndNaming)
{
    TelemetryGuard guard;
    telemetry::setMetricsEnabled(true);
    telemetry::Counter &counter =
        Registry::shared().counter("ark.test.lookup");
    const std::uint64_t before = counter.value();
    counter.add(5);

    telemetry::MetricsSnapshot snap = Registry::shared().snapshot();
    EXPECT_EQ(snap.value("ark.test.lookup"),
              static_cast<double>(before + 5));
    EXPECT_EQ(snap.value("ark.test.no_such_metric", -1.0), -1.0);

    // Every registered metric follows the ark.<area>.<name> scheme.
    for (const telemetry::MetricsSnapshot::Entry &entry : snap.entries) {
        EXPECT_EQ(entry.name.rfind("ark.", 0), 0u)
            << "metric '" << entry.name
            << "' violates the naming scheme";
        EXPECT_GT(entry.name.find('.', 4), 4u) << entry.name;
    }

    EXPECT_NE(snap.str().find("ark.test.lookup"), std::string::npos);
}

/** dx/dt = -k x through the full pipeline (ensemble_test's system). */
compiler::OdeSystem
decaySystem(lang::LanguageRegistry &registry, double k, double x0)
{
    if (!registry.findLanguage("decay")) {
        registry.addProgram(R"(
            lang decay {
                ntyp(1,sum) X {attr k=real[0,100],
                               init(0) real[-100,100]};
                etyp E {};
                prod(e:E,s:X->s:X) s <= -s.k*var(s);
            }
        )");
    }
    lang::GraphBuilder builder(registry.language("decay"), 0);
    builder.node("x", "X");
    builder.attr("x", "k", k);
    builder.edge("self", "E", "x", "x");
    builder.init("x", 0, x0);
    return compiler::compile(builder.take(),
                             registry.language("decay"));
}

TEST(TelemetryTest, EnsembleBitIdenticalOnVsOff)
{
    TelemetryGuard guard;
    lang::LanguageRegistry registry;
    std::vector<compiler::OdeSystem> systems;
    for (int i = 0; i < 6; ++i)
        systems.push_back(decaySystem(registry, 1.0 + i, 2.0 + i));
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    sim::EnsembleOptions options;
    options.sim.dt = 1e-3;

    telemetry::setMetricsEnabled(false);
    telemetry::setTracingEnabled(false);
    std::vector<sim::SimResult> plain =
        sim::simulateEnsemble(pointers, 0.0, 1.0, options);

    // The instrumented pass arms the whole telemetry plane: metrics,
    // tracing, the flight recorder, a live stats server, and the
    // stall watchdog. All of it is observation-only by contract.
    telemetry::setMetricsEnabled(true);
    telemetry::setTracingEnabled(true);
    telemetry::RunLedger ledger;
    sim::EnsembleOptions instrumentedOptions = options;
    instrumentedOptions.ledger = &ledger;
    telemetry::StatsServer server;
    ASSERT_TRUE(server.start(0));
    telemetry::StallWatchdog::shared().setStallInterval(
        std::chrono::minutes(1));
    std::vector<sim::SimResult> instrumented =
        sim::simulateEnsemble(pointers, 0.0, 1.0, instrumentedOptions);
    telemetry::StallWatchdog::shared().setStallInterval(
        std::chrono::milliseconds(0));
    server.stop();
    telemetry::setMetricsEnabled(false);
    telemetry::setTracingEnabled(false);
    EXPECT_EQ(ledger.size(), pointers.size());

    ASSERT_EQ(plain.size(), instrumented.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        const sim::SimResult &a = plain[i];
        const sim::SimResult &b = instrumented[i];
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a.steps, b.steps);
        ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
        for (std::size_t s = 0; s < a.trajectory.size(); ++s) {
            EXPECT_EQ(a.trajectory.time(s), b.trajectory.time(s));
            auto stateA = a.trajectory.state(s);
            auto stateB = b.trajectory.state(s);
            ASSERT_EQ(stateA.size(), stateB.size());
            for (std::size_t v = 0; v < stateA.size(); ++v)
                EXPECT_EQ(stateA[v], stateB[v])
                    << "instance " << i << " sample " << s;
        }
    }
}

TEST(TelemetryTest, LogSinkCapturesTimestampedLines)
{
    std::vector<std::string> lines;
    support::setLogSink(
        [&lines](support::LogSeverity, const std::string &line) {
            lines.push_back(line);
        });

    constexpr int kThreads = 4;
    constexpr int kLinesPerThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kLinesPerThread; ++i)
                support::warn(support::cat("sink-test t", t, " line ", i));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    support::setLogSink(nullptr);

    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kLinesPerThread));
    // Each captured line is whole — "HH:MM:SS.mmm warn: sink-test tN
    // line M" — never an interleaved fragment.
    std::regex lineRe("[0-9]{2}:[0-9]{2}:[0-9]{2}\\.[0-9]{3} warn: "
                      "sink-test t[0-9]+ line [0-9]+");
    for (const std::string &line : lines)
        EXPECT_TRUE(std::regex_match(line, lineRe)) << line;
}

} // namespace
