/**
 * @file
 * Tests for the dynamical-graph IR: datatypes, type tables, graph
 * construction, adjacency queries, switching, and mismatch sampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dg/datatype.h"
#include "dg/graph.h"
#include "dg/types.h"
#include "expr/expr.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ark;
using dg::DataType;
using dg::Graph;
using dg::Mismatch;
using dg::TypeTable;
using expr::Value;
using support::SemaError;
using support::TypeError;

// --- datatypes -----------------------------------------------------------

TEST(DataTypeTest, ContainsChecksKindAndRange)
{
    DataType real = DataType::real(0.0, 1.0);
    EXPECT_TRUE(real.contains(Value::real(0.5)));
    EXPECT_TRUE(real.contains(Value::real(1.0)));   // inclusive
    EXPECT_TRUE(real.contains(Value::integer(1)));  // widening
    EXPECT_FALSE(real.contains(Value::real(1.5)));
    EXPECT_FALSE(real.contains(Value::boolean(true)));

    DataType integer = DataType::integer(0, 1);
    EXPECT_TRUE(integer.contains(Value::integer(0)));
    EXPECT_FALSE(integer.contains(Value::integer(2)));
    EXPECT_FALSE(integer.contains(Value::real(0.5))); // no narrowing

    DataType fn = DataType::function({"a0"});
    EXPECT_TRUE(fn.contains(Value::function(
        expr::Lambda{{"t"}, expr::Expr::var("t")})));
    EXPECT_FALSE(fn.contains(Value::function(
        expr::Lambda{{"a", "b"}, expr::Expr::var("a")})));
}

TEST(DataTypeTest, NarrowerOrEqual)
{
    DataType parent = DataType::real(0.0, 10.0);
    EXPECT_TRUE(DataType::real(1.0, 5.0).narrowerOrEqual(parent));
    EXPECT_TRUE(DataType::real(0.0, 10.0).narrowerOrEqual(parent));
    EXPECT_FALSE(DataType::real(-1.0, 5.0).narrowerOrEqual(parent));
    EXPECT_FALSE(DataType::integer(0, 5).narrowerOrEqual(parent));
    // Mismatch annotations are orthogonal to the range relation.
    EXPECT_TRUE(DataType::realMm(0.0, 10.0, Mismatch{0, 0.1})
                    .narrowerOrEqual(parent));
}

TEST(DataTypeTest, Rendering)
{
    EXPECT_EQ(DataType::real(0, 1).str(), "real[0,1]");
    EXPECT_EQ(DataType::realMm(0.5, 2, Mismatch{0, 0.1}).str(),
              "real[0.5,2] mm(0,0.1)");
    EXPECT_EQ(DataType::integer(1, 1).str(), "int[1,1]");
    EXPECT_EQ(DataType::function({"a0"}).str(), "lambd(a0)");
    EXPECT_EQ(DataType::real(0, 1).asConst().str(), "real[0,1] const");
}

// --- type tables -----------------------------------------------------------

TypeTable
makeTable()
{
    TypeTable table;
    dg::NodeTypeDef v;
    v.name = "V";
    v.order = 1;
    v.attrs.push_back({"c", DataType::real(0, 1), std::nullopt});
    v.inits.push_back({0, DataType::real(-10, 10),
                       Value::real(0.0)});
    table.addNodeType(v);

    dg::NodeTypeDef vm = v;
    vm.name = "Vm";
    vm.parent = "V";
    table.addNodeType(vm);

    dg::EdgeTypeDef e;
    e.name = "E";
    table.addEdgeType(e);

    dg::EdgeTypeDef f;
    f.name = "F";
    f.fixed = true;
    table.addEdgeType(f);
    return table;
}

TEST(TypeTableTest, LookupAndAncestry)
{
    TypeTable table = makeTable();
    EXPECT_TRUE(table.hasNodeType("V"));
    EXPECT_FALSE(table.hasNodeType("X"));
    EXPECT_TRUE(table.isNodeAncestor("V", "Vm"));
    EXPECT_TRUE(table.isNodeAncestor("V", "V")); // reflexive
    EXPECT_FALSE(table.isNodeAncestor("Vm", "V"));
    EXPECT_EQ(table.nodeDistance("Vm", "V"), 1);
    EXPECT_EQ(table.nodeDistance("V", "V"), 0);
    EXPECT_EQ(table.nodeDistance("V", "Vm"), -1);
    EXPECT_THROW(table.nodeType("nope"), SemaError);
}

TEST(TypeTableTest, RejectsDuplicatesAndUnknownParents)
{
    TypeTable table = makeTable();
    dg::NodeTypeDef dup;
    dup.name = "V";
    EXPECT_THROW(table.addNodeType(dup), SemaError);
    dg::NodeTypeDef orphan;
    orphan.name = "Z";
    orphan.parent = "Missing";
    EXPECT_THROW(table.addNodeType(orphan), SemaError);
    dg::EdgeTypeDef edgeClash;
    edgeClash.name = "V"; // collides with a node type
    EXPECT_THROW(table.addEdgeType(edgeClash), SemaError);
}

// --- graphs ------------------------------------------------------------------

class GraphTest : public ::testing::Test
{
  protected:
    GraphTest() : table_(makeTable()), graph_(&table_, "test") {}

    TypeTable table_;
    Graph graph_;
};

TEST_F(GraphTest, AddAndLookup)
{
    dg::NodeId a = graph_.addNode("a", "V");
    dg::NodeId b = graph_.addNode("b", "Vm");
    dg::EdgeId e = graph_.addEdge("e", "E", a, b);
    EXPECT_EQ(graph_.numNodes(), 2u);
    EXPECT_EQ(graph_.numEdges(), 1u);
    EXPECT_EQ(graph_.findNode("a"), std::optional<dg::NodeId>(a));
    EXPECT_EQ(graph_.findEdge("e"), std::optional<dg::EdgeId>(e));
    EXPECT_FALSE(graph_.findNode("zz").has_value());
    EXPECT_EQ(graph_.node(b).type, "Vm");
}

TEST_F(GraphTest, RejectsDuplicatesAndUnknownTypes)
{
    graph_.addNode("a", "V");
    EXPECT_THROW(graph_.addNode("a", "V"), SemaError);
    EXPECT_THROW(graph_.addNode("b", "Nope"), SemaError);
    dg::NodeId a = *graph_.findNode("a");
    EXPECT_THROW(graph_.addEdge("a", "E", a, a), SemaError); // name dup
    EXPECT_THROW(graph_.addEdge("e", "Nope", a, a), SemaError);
}

TEST_F(GraphTest, AdjacencyClassification)
{
    dg::NodeId a = graph_.addNode("a", "V");
    dg::NodeId b = graph_.addNode("b", "V");
    graph_.addEdge("ab", "E", a, b);
    graph_.addEdge("ba", "E", b, a);
    graph_.addEdge("aa", "E", a, a);

    EXPECT_EQ(graph_.outgoingEdges(a).size(), 1u);
    EXPECT_EQ(graph_.incomingEdges(a).size(), 1u);
    EXPECT_EQ(graph_.selfEdges(a).size(), 1u);
    EXPECT_EQ(graph_.edgesOf(a).size(), 3u);
    EXPECT_EQ(graph_.selfEdges(b).size(), 0u);
    EXPECT_EQ(graph_.edgesOf(b).size(), 2u);
}

TEST_F(GraphTest, SwitchingExcludesFromQueries)
{
    dg::NodeId a = graph_.addNode("a", "V");
    dg::NodeId b = graph_.addNode("b", "V");
    dg::EdgeId e = graph_.addEdge("ab", "E", a, b);
    graph_.setEnabled(e, false);
    EXPECT_TRUE(graph_.outgoingEdges(a).empty());
    EXPECT_EQ(graph_.allEdgesOf(a).size(), 1u);
    EXPECT_FALSE(graph_.edge(e).enabled);
    graph_.setEnabled(e, true);
    EXPECT_EQ(graph_.outgoingEdges(a).size(), 1u);
}

TEST_F(GraphTest, FixedEdgesCannotSwitch)
{
    dg::NodeId a = graph_.addNode("a", "V");
    dg::NodeId b = graph_.addNode("b", "V");
    dg::EdgeId e = graph_.addEdge("ab", "F", a, b);
    EXPECT_THROW(graph_.setEnabled(e, false), SemaError);
}

TEST_F(GraphTest, AttributeRangeEnforced)
{
    dg::NodeId a = graph_.addNode("a", "V");
    graph_.setNodeAttr(a, "c", Value::real(0.5));
    EXPECT_DOUBLE_EQ(graph_.nodeAttr(a, "c").asReal(), 0.5);
    EXPECT_THROW(graph_.setNodeAttr(a, "c", Value::real(2.0)),
                 TypeError);
    EXPECT_THROW(graph_.setNodeAttr(a, "zz", Value::real(0.5)),
                 SemaError);
}

TEST_F(GraphTest, IntLiteralsWidenIntoRealAttrs)
{
    dg::NodeId a = graph_.addNode("a", "V");
    graph_.setNodeAttr(a, "c", Value::integer(1));
    EXPECT_TRUE(graph_.nodeAttr(a, "c").isReal());
    EXPECT_DOUBLE_EQ(graph_.nodeAttr(a, "c").asReal(), 1.0);
}

TEST_F(GraphTest, InitValuesDefaultAndRange)
{
    dg::NodeId a = graph_.addNode("a", "V");
    // Declared fixed default 0.0 applies without set-init.
    EXPECT_DOUBLE_EQ(graph_.initValue(a, 0).asReal(), 0.0);
    graph_.setInit(a, 0, Value::real(2.5));
    EXPECT_DOUBLE_EQ(graph_.initValue(a, 0).asReal(), 2.5);
    EXPECT_THROW(graph_.setInit(a, 1, Value::real(0)), SemaError);
    EXPECT_THROW(graph_.setInit(a, 0, Value::real(100)), TypeError);
}

TEST_F(GraphTest, CheckCompleteFindsMissingAttrs)
{
    graph_.addNode("a", "V");
    EXPECT_THROW(graph_.checkComplete(), SemaError);
    graph_.setNodeAttr(*graph_.findNode("a"), "c", Value::real(0.5));
    EXPECT_NO_THROW(graph_.checkComplete());
}

// --- mismatch sampling ---------------------------------------------------------

class MismatchGraphTest : public ::testing::Test
{
  protected:
    MismatchGraphTest()
    {
        dg::NodeTypeDef v;
        v.name = "Vm";
        v.order = 1;
        v.attrs.push_back(
            {"c", DataType::realMm(0, 10, Mismatch{0, 0.1}),
             std::nullopt});
        v.attrs.push_back(
            {"off", DataType::realMm(0, 0, Mismatch{0.02, 0}),
             std::nullopt});
        v.inits.push_back({0, DataType::real(-10, 10),
                           Value::real(0.0)});
        table_.addNodeType(v);
    }

    TypeTable table_;
};

TEST_F(MismatchGraphTest, RelativeMismatchScalesWithNominal)
{
    support::Rng rng(42);
    Graph graph(&table_, "t");
    dg::NodeId a = graph.addNode("a", "Vm");
    graph.setNodeAttr(a, "c", Value::real(5.0), &rng);
    double sampled = graph.nodeAttr(a, "c").asReal();
    EXPECT_NE(sampled, 5.0);
    EXPECT_NEAR(sampled, 5.0, 5.0 * 0.1 * 6); // within 6 sigma
    // The nominal value is preserved alongside the sample.
    EXPECT_DOUBLE_EQ(graph.nodeAttrNominal(a, "c").asReal(), 5.0);
}

TEST_F(MismatchGraphTest, AbsoluteMismatchOnZeroNominal)
{
    // The ofs-obc pattern: nominal 0 with absolute sigma 0.02 must
    // produce non-zero samples (see DESIGN.md on mm semantics).
    support::Rng rng(7);
    Graph graph(&table_, "t");
    dg::NodeId a = graph.addNode("a", "Vm");
    graph.setNodeAttr(a, "off", Value::real(0.0), &rng);
    double sampled = graph.nodeAttr(a, "off").asReal();
    EXPECT_NE(sampled, 0.0);
    EXPECT_LT(std::fabs(sampled), 0.02 * 6);
}

TEST_F(MismatchGraphTest, SeedsReproduce)
{
    auto sample = [&](std::uint64_t seed) {
        support::Rng rng(seed);
        Graph graph(&table_, "t");
        dg::NodeId a = graph.addNode("a", "Vm");
        graph.setNodeAttr(a, "c", Value::real(5.0), &rng);
        return graph.nodeAttr(a, "c").asReal();
    };
    EXPECT_EQ(sample(1), sample(1));
    EXPECT_NE(sample(1), sample(2));
}

TEST_F(MismatchGraphTest, NoRngMeansNominal)
{
    Graph graph(&table_, "t");
    dg::NodeId a = graph.addNode("a", "Vm");
    graph.setNodeAttr(a, "c", Value::real(5.0), nullptr);
    EXPECT_DOUBLE_EQ(graph.nodeAttr(a, "c").asReal(), 5.0);
}

TEST_F(MismatchGraphTest, SampleStatisticsMatchSpec)
{
    // Across many seeds, sampled c ~ N(5, 0.5).
    const int n = 4000;
    double sum = 0, sumSq = 0;
    for (int i = 0; i < n; ++i) {
        support::Rng rng(static_cast<std::uint64_t>(i) + 1);
        Graph graph(&table_, "t");
        dg::NodeId a = graph.addNode("a", "Vm");
        graph.setNodeAttr(a, "c", Value::real(5.0), &rng);
        double v = graph.nodeAttr(a, "c").asReal();
        sum += v;
        sumSq += v * v;
    }
    double mean = sum / n;
    double sd = std::sqrt(sumSq / n - mean * mean);
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(sd, 0.5, 0.05);
}

} // namespace
