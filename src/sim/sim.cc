#include "sim/sim.h"

#include <algorithm>
#include <cmath>

#include "expr/cjit.h"
#include "expr/rewrite.h"
#include "sim/batch.h"
#include "sim/dopri5.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::sim {

using support::cat;
using support::SimError;

void
Trajectory::addSample(double t, const std::vector<double> &state,
                      const std::vector<double> *deriv)
{
    if (times_.empty())
        stateDim_ = state.size();
    support::panicIf(state.size() != stateDim_,
                     "Trajectory::addSample: state dimension changed");
    support::panicIf(deriv && deriv->size() != stateDim_,
                     "Trajectory::addSample: deriv dimension mismatch");
    times_.push_back(t);
    states_.insert(states_.end(), state.begin(), state.end());
    // Invariant: derivs_ mirrors states_ only while every sample has
    // carried a derivative; the first omission drops slopes for good
    // (misaligned Hermite data must never survive silently).
    if (derivsDropped_)
        return;
    if (deriv) {
        derivs_.insert(derivs_.end(), deriv->begin(), deriv->end());
    } else {
        derivs_.clear();
        derivs_.shrink_to_fit();
        derivsDropped_ = true;
    }
}

void
Trajectory::reserve(std::size_t samples, std::size_t stateDim)
{
    times_.reserve(samples);
    states_.reserve(samples * stateDim);
    if (!derivsDropped_)
        derivs_.reserve(samples * stateDim);
}

std::span<const double>
Trajectory::state(std::size_t sample) const
{
    support::panicIf(sample >= times_.size(),
                     "Trajectory::state: sample out of range");
    return {states_.data() + sample * stateDim_, stateDim_};
}

std::vector<double>
Trajectory::series(int stateIndex) const
{
    auto idx = static_cast<std::size_t>(stateIndex);
    support::panicIf(idx >= stateDim_ && !times_.empty(),
                     "Trajectory::series: state index out of range");
    std::vector<double> out;
    out.reserve(times_.size());
    for (std::size_t s = 0; s < times_.size(); ++s)
        out.push_back(states_[s * stateDim_ + idx]);
    return out;
}

double
Trajectory::sampleAt(int stateIndex, double t) const
{
    if (times_.empty())
        throw SimError("sampleAt on an empty trajectory");
    auto idx = static_cast<std::size_t>(stateIndex);
    support::panicIf(idx >= stateDim_,
                     "Trajectory::sampleAt: state index out of range");
    if (t <= times_.front())
        return states_[idx];
    if (t >= times_.back())
        return states_[(times_.size() - 1) * stateDim_ + idx];
    auto it = std::lower_bound(times_.begin(), times_.end(), t);
    std::size_t hi = static_cast<std::size_t>(it - times_.begin());
    std::size_t lo = hi - 1;
    double span = times_[hi] - times_[lo];
    if (span <= 0)
        return states_[lo * stateDim_ + idx];
    double y0 = states_[lo * stateDim_ + idx];
    double y1 = states_[hi * stateDim_ + idx];
    if (hasDerivs()) {
        // Cubic Hermite using the recorded slopes.
        double s = (t - times_[lo]) / span;
        double s2 = s * s;
        double s3 = s2 * s;
        double m0 = derivs_[lo * stateDim_ + idx];
        double m1 = derivs_[hi * stateDim_ + idx];
        return (2 * s3 - 3 * s2 + 1) * y0 +
               (s3 - 2 * s2 + s) * span * m0 +
               (-2 * s3 + 3 * s2) * y1 + (s3 - s2) * span * m1;
    }
    double alpha = (t - times_[lo]) / span;
    return y0 + alpha * (y1 - y0);
}

std::vector<double>
Trajectory::resample(int stateIndex, double t0, double t1,
                     std::size_t n) const
{
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        double t = n > 1 ? t0 + (t1 - t0) * static_cast<double>(i) /
                               static_cast<double>(n - 1)
                         : t0;
        out.push_back(sampleAt(stateIndex, t));
    }
    return out;
}

namespace {

/** Index of the first nonfinite entry, or -1 when all are finite. */
int
firstNonfinite(const std::vector<double> &state)
{
    for (std::size_t i = 0; i < state.size(); ++i)
        if (!std::isfinite(state[i]))
            return static_cast<int>(i);
    return -1;
}

/** Shared integration driver state. */
struct Driver
{
    const compiler::OdeSystem &system;
    const SimOptions &options;
    const std::stop_token &stop;
    const std::optional<std::chrono::steady_clock::time_point> &deadline;
    /** The RHS program: the plain fused tape, its FMA-contracted
     *  variant when options.tapeFma is set, or the reassociated
     *  variant when options.tapeReassoc is set (rhsTape builds lazy
     *  variants and raises scratchSize before returning, so the
     *  member order tape-then-scratch below is load-bearing). */
    const expr::FusedTape &tape;
    /** Tier-5 override: when non-null, evalRhs calls this width-1
     *  native kernel instead of interpreting `tape` (bit-identical —
     *  same instruction stream, same IEEE ops). */
    const expr::JitScalarRhs *jit;
    SimResult result;
    std::vector<double> scratch;
    double lastRecord = -1.0;
    double recordDt;

    Driver(const compiler::OdeSystem &sys, const SimOptions &opts,
           const std::stop_token &stopToken,
           const std::optional<std::chrono::steady_clock::time_point>
               &deadlinePoint,
           const expr::JitScalarRhs *jitRhs)
        : system(sys), options(opts), stop(stopToken),
          deadline(deadlinePoint),
          tape(sys.rhsTape(opts.tapeFma,
                           expr::reassocEnabled(opts.tapeReassoc))),
          jit(jitRhs), scratch(sys.scratchSize()),
          recordDt(opts.recordDt)
    {
    }

    void
    evalRhs(const double *state, double t, double *dstate)
    {
        if (jit != nullptr) {
            jit->kernel->call(state, t, dstate,
                              jit->tape.constants().data());
            return;
        }
        tape.evalInto(state, t, dstate, scratch.data());
    }

    void
    record(double t, const std::vector<double> &state, bool force,
           const std::vector<double> *deriv = nullptr)
    {
        if (force || recordDt <= 0.0 ||
            t - lastRecord >= recordDt * (1.0 - 1e-12)) {
            result.trajectory.addSample(t, state, deriv);
            lastRecord = t;
        }
    }

    /** Records a divergence abort; the integrator must return. */
    void
    failDiverged(int var, double t)
    {
        result.failure =
            detail::divergedFailure(system, var, t, result.steps);
    }

    /** Records a budget-exhaustion abort; the integrator must return. */
    void
    failBudget(double t)
    {
        result.failure = detail::budgetFailure(t, result.steps);
    }

    /**
     * True when the stop token fired or the wall-clock deadline
     * passed; records the matching structured failure.
     */
    bool
    cancelled(double t)
    {
        if (stop.stop_requested()) {
            result.failure = detail::cancelledFailure(t, result.steps);
            return true;
        }
        if (deadline &&
            std::chrono::steady_clock::now() >= *deadline) {
            result.failure = detail::deadlineFailure(t, result.steps);
            return true;
        }
        return false;
    }
};

/** Classical fixed-step fourth-order Runge-Kutta. */
void
runRk4(Driver &driver, std::vector<double> &state, double t0, double t1,
       double dt)
{
    const std::size_t n = driver.system.size();
    std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
    double t = t0;
    // k1 doubles as the recorded slope at each sample point AND the
    // first stage of the next step: (state, t) is unchanged between
    // the end-of-step recording eval and the loop top, so each step
    // costs four RHS evaluations, not five.
    driver.evalRhs(state.data(), t, k1.data());
    driver.record(t, state, true, &k1);
    while (t < t1 - 1e-15 * std::max(1.0, std::fabs(t1))) {
        double h = std::min(dt, t1 - t);
        if (driver.result.steps >= driver.options.maxSteps) {
            driver.failBudget(t);
            return;
        }
        if (driver.cancelled(t))
            return;
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = state[i] + 0.5 * h * k1[i];
        driver.evalRhs(tmp.data(), t + 0.5 * h, k2.data());
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = state[i] + 0.5 * h * k2[i];
        driver.evalRhs(tmp.data(), t + 0.5 * h, k3.data());
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = state[i] + h * k3[i];
        driver.evalRhs(tmp.data(), t + h, k4.data());
        for (std::size_t i = 0; i < n; ++i) {
            state[i] += h / 6.0 *
                        (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        ++driver.result.steps;
        if (int bad = firstNonfinite(state); bad >= 0) {
            driver.failDiverged(bad, t);
            return;
        }
        driver.evalRhs(state.data(), t, k1.data());
        driver.record(t, state, false, &k1);
    }
    driver.record(t, state, true, &k1);
}

/** Dormand-Prince 5(4) adaptive integrator with PI step control. */
void
runDopri5(Driver &driver, std::vector<double> &state, double t0, double t1,
          double h0, double hMax)
{
    // Tableau and controller shared with the lane-batched adaptive
    // driver (sim/dopri5.h): the voting driver's spill path only
    // continues a lane exactly like this loop because both use the
    // identical coefficient expressions.
    using detail::Dopri5;
    constexpr double c2 = Dopri5::c2, c3 = Dopri5::c3, c4 = Dopri5::c4,
                     c5 = Dopri5::c5;
    constexpr double a21 = Dopri5::a21;
    constexpr double a31 = Dopri5::a31, a32 = Dopri5::a32;
    constexpr double a41 = Dopri5::a41, a42 = Dopri5::a42,
                     a43 = Dopri5::a43;
    constexpr double a51 = Dopri5::a51, a52 = Dopri5::a52,
                     a53 = Dopri5::a53, a54 = Dopri5::a54;
    constexpr double a61 = Dopri5::a61, a62 = Dopri5::a62,
                     a63 = Dopri5::a63, a64 = Dopri5::a64,
                     a65 = Dopri5::a65;
    constexpr double b1 = Dopri5::b1, b3 = Dopri5::b3, b4 = Dopri5::b4,
                     b5 = Dopri5::b5, b6 = Dopri5::b6;
    constexpr double e1 = Dopri5::e1, e3 = Dopri5::e3, e4 = Dopri5::e4,
                     e5 = Dopri5::e5, e6 = Dopri5::e6, e7 = Dopri5::e7;

    const std::size_t n = driver.system.size();
    std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n);
    std::vector<double> tmp(n), next(n);

    double t = t0;
    double h = h0;
    double prevErr = 1.0;
    driver.evalRhs(state.data(), t, k1.data());
    driver.record(t, state, true, &k1);

    while (t < t1 - 1e-15 * std::max(1.0, std::fabs(t1))) {
        h = std::min(h, t1 - t);
        h = std::min(h, hMax);
        if (h < 1e-18 * std::max(1.0, std::fabs(t)))
            throw SimError(cat("step size collapsed at t=", t));
        if (driver.result.steps + driver.result.rejectedSteps >=
            driver.options.maxSteps) {
            driver.failBudget(t);
            return;
        }
        if (driver.cancelled(t))
            return;

        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = state[i] + h * a21 * k1[i];
        driver.evalRhs(tmp.data(), t + c2 * h, k2.data());
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = state[i] + h * (a31 * k1[i] + a32 * k2[i]);
        driver.evalRhs(tmp.data(), t + c3 * h, k3.data());
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = state[i] +
                     h * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
        }
        driver.evalRhs(tmp.data(), t + c4 * h, k4.data());
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = state[i] + h * (a51 * k1[i] + a52 * k2[i] +
                                     a53 * k3[i] + a54 * k4[i]);
        }
        driver.evalRhs(tmp.data(), t + c5 * h, k5.data());
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = state[i] + h * (a61 * k1[i] + a62 * k2[i] +
                                     a63 * k3[i] + a64 * k4[i] +
                                     a65 * k5[i]);
        }
        driver.evalRhs(tmp.data(), t + h, k6.data());
        for (std::size_t i = 0; i < n; ++i) {
            next[i] = state[i] + h * (b1 * k1[i] + b3 * k3[i] +
                                      b4 * k4[i] + b5 * k5[i] +
                                      b6 * k6[i]);
        }
        driver.evalRhs(next.data(), t + h, k7.data());

        // Error estimate: difference of 5th and embedded 4th order.
        double errNorm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double y4 = state[i] + h * (e1 * k1[i] + e3 * k3[i] +
                                        e4 * k4[i] + e5 * k5[i] +
                                        e6 * k6[i] + e7 * k7[i]);
            double scale = driver.options.absTol +
                           driver.options.relTol *
                               std::max(std::fabs(state[i]),
                                        std::fabs(next[i]));
            double e = (next[i] - y4) / scale;
            errNorm += e * e;
        }
        errNorm = std::sqrt(errNorm / static_cast<double>(n));

        // A nonfinite error estimate means a stage or the candidate
        // state blew up: error control can never accept again, and the
        // reject branch would grind the step down toward collapse
        // while integrating NaNs. Abort structurally instead.
        if (!std::isfinite(errNorm)) {
            int bad = firstNonfinite(next);
            if (bad < 0)
                bad = firstNonfinite(k7);
            driver.failDiverged(bad, t);
            return;
        }

        if (errNorm <= 1.0) {
            t += h;
            state = next;
            std::swap(k1, k7); // FSAL: last stage is next first stage
            ++driver.result.steps;
            if (int bad = firstNonfinite(state); bad >= 0) {
                driver.failDiverged(bad, t);
                return;
            }
            driver.record(t, state, false, &k1);
            // PI controller (Gustafsson): smooth step adaptation.
            h *= Dopri5::acceptFactor(errNorm, prevErr);
            prevErr = errNorm;
        } else {
            ++driver.result.rejectedSteps;
            h *= Dopri5::rejectFactor(errNorm);
        }
    }
    driver.record(t, state, true, &k1);
}

} // namespace

SimResult
simulate(const compiler::OdeSystem &system, double t0, double t1,
         const SimOptions &options)
{
    return simulate(system, system.initialState(), t0, t1, options);
}

SimResult
simulate(const compiler::OdeSystem &system,
         const std::vector<double> &initial, double t0, double t1,
         const SimOptions &options)
{
    return detail::simulateWithStop(system, initial, t0, t1, options,
                                    std::stop_token{});
}

const char *
abortReasonName(AbortReason reason)
{
    switch (reason) {
    case AbortReason::Diverged:
        return "diverged";
    case AbortReason::Cancelled:
        return "cancelled";
    case AbortReason::BudgetExhausted:
        return "budget_exhausted";
    case AbortReason::DeadlineExceeded:
        return "deadline_exceeded";
    case AbortReason::Fault:
        return "fault";
    }
    return "unknown";
}

SimFailure
detail::divergedFailure(const compiler::OdeSystem &system, int var,
                        double t, std::size_t steps)
{
    SimFailure failure;
    failure.reason = AbortReason::Diverged;
    failure.step = steps;
    failure.stateIndex = var;
    failure.time = t;
    const char *label =
        var >= 0
            ? system.vars()[static_cast<std::size_t>(var)].node.c_str()
            : "<error estimate>";
    failure.message = cat("state diverged (non-finite ", label,
                          " after step ", steps, " at t=", t, ")");
    return failure;
}

SimFailure
detail::cancelledFailure(double t, std::size_t steps)
{
    SimFailure failure;
    failure.reason = AbortReason::Cancelled;
    failure.step = steps;
    failure.time = t;
    failure.message = cat("cancelled at t=", t);
    return failure;
}

SimFailure
detail::budgetFailure(double t, std::size_t steps)
{
    SimFailure failure;
    failure.reason = AbortReason::BudgetExhausted;
    failure.step = steps;
    failure.time = t;
    failure.message =
        cat("step budget exhausted after step ", steps, " at t=", t);
    return failure;
}

SimFailure
detail::deadlineFailure(double t, std::size_t steps)
{
    SimFailure failure;
    failure.reason = AbortReason::DeadlineExceeded;
    failure.step = steps;
    failure.time = t;
    failure.message = cat("deadline exceeded at t=", t);
    return failure;
}

SimFailure
detail::faultFailure(double t, const std::string &what)
{
    SimFailure failure;
    failure.reason = AbortReason::Fault;
    failure.time = t;
    failure.message = cat("internal fault: ", what);
    return failure;
}

SimResult
detail::simulateWithStop(
    const compiler::OdeSystem &system, const std::vector<double> &initial,
    double t0, double t1, const SimOptions &options,
    const std::stop_token &stop,
    const std::optional<std::chrono::steady_clock::time_point> &deadline,
    const expr::JitScalarRhs *jit)
{
    if (t1 <= t0)
        throw SimError("simulate: t1 must exceed t0");
    if (initial.size() != system.size()) {
        throw SimError(cat("simulate: initial state has ",
                           initial.size(), " entries, system has ",
                           system.size()));
    }
    Driver driver(system, options, stop, deadline, jit);
    std::vector<double> state = initial;
    if (int bad = firstNonfinite(state); bad >= 0) {
        driver.failDiverged(bad, t0);
        return std::move(driver.result);
    }

    double dt = options.dt > 0 ? options.dt : (t1 - t0) / 1000.0;
    double hMax = options.maxDt > 0 ? options.maxDt : (t1 - t0) / 10.0;

    // Pre-size the trajectory from the recording stride (or the fixed
    // step count) so the hot loop never reallocates mid-integration.
    std::size_t estimate =
        options.recordDt > 0
            ? static_cast<std::size_t>((t1 - t0) / options.recordDt) + 4
        : options.method == Method::Rk4
            ? static_cast<std::size_t>((t1 - t0) / dt) + 4
            : 256;
    driver.result.trajectory.reserve(
        std::min<std::size_t>(estimate, std::size_t{1} << 20),
        system.size());

    if (options.method == Method::Rk4)
        runRk4(driver, state, t0, t1, dt);
    else
        runDopri5(driver, state, t0, t1, dt, hMax);
    return std::move(driver.result);
}

std::vector<SimResult>
simulateEnsemble(const compiler::OdeSystem &system,
                 const std::vector<std::vector<double>> &initialStates,
                 double t0, double t1, const EnsembleOptions &options)
{
    return BatchRunner::shared().run(system, initialStates, t0, t1,
                                     options);
}

std::vector<SimResult>
simulateEnsemble(const std::vector<const compiler::OdeSystem *> &systems,
                 double t0, double t1, const EnsembleOptions &options)
{
    return BatchRunner::shared().run(systems, t0, t1, options);
}

SimResult
simulateToSteadyState(const compiler::OdeSystem &system, double t0,
                      double tMax, double derivTol,
                      const SimOptions &options)
{
    SimOptions opts = options;
    if (opts.recordDt <= 0)
        opts.recordDt = (tMax - t0) / 2000.0;
    SimResult run = simulate(system, t0, tMax, opts);
    // A diverged run never settled: don't let a quiet early sample of
    // the partial trajectory masquerade as steady state.
    if (!run.ok())
        return run;

    std::vector<double> deriv(system.size());
    std::vector<double> scratch;
    for (std::size_t s = 0; s < run.trajectory.size(); ++s) {
        system.evalRhs(run.trajectory.state(s).data(),
                       run.trajectory.time(s), deriv.data(), scratch);
        double maxDeriv = 0.0;
        for (double d : deriv)
            maxDeriv = std::max(maxDeriv, std::fabs(d));
        if (maxDeriv < derivTol) {
            run.reachedSteadyState = true;
            break;
        }
    }
    return run;
}

} // namespace ark::sim
