#ifndef ARK_SIM_BATCH_H
#define ARK_SIM_BATCH_H

/**
 * @file
 * Lane-parallel batch execution engine for ensemble simulation.
 *
 * BatchRunner is the ensemble tier of the execution stack (tier 4 in
 * sim.h's ladder): it partitions an N-instance batch into lane blocks
 * of up to expr::LaneTape::kMaxLanes instances that share one fused
 * program structure and integrates each block over a
 * structure-of-arrays state block — one instruction stream, all
 * lanes per dispatch:
 *
 *  - Rk4 blocks run the lane-batched fixed-step driver on the shared
 *    grid; every lane's trajectory is bit-identical to serial
 *    simulate() of that instance.
 *  - Dopri5 blocks run the lane-synchronized adaptive driver ("step
 *    voting"): per step, every lane gets its own embedded error
 *    estimate, the block accepts only when every active lane's error
 *    test passes, and the next shared step size is the minimum of
 *    the per-lane PI controller outputs. Rejections are charged only
 *    to the lanes whose error exceeded 1 (per-lane rejection
 *    masking). A diverging lane (nonfinite error estimate or
 *    accepted state) retires on the spot with a structured failure
 *    while the rest keep integrating, and so does a lane whose step
 *    budget runs out (shared accepted steps plus the lane's own
 *    rejections reaching maxSteps retires THAT lane with
 *    BudgetExhausted — a stiff instance cannot take down its
 *    lane-mates); when survivors fit a narrower SoA width the block
 *    compacts, and a single survivor spills to a scalar continuation
 *    of the exact sim.cc recurrence. The shared
 *    voted grid makes batched adaptive trajectories tolerance-level
 *    equivalent to serial Dopri5 (every accepted step satisfied
 *    every lane's error test; empirically the voted grid, being the
 *    min over lanes, tracks a tight reference closer than the scalar
 *    runs do), NOT bitwise — and still bit-identical across thread
 *    counts, because the voting sequence depends only on the block
 *    assignment.
 *
 * The scalar fused path remains for instances lane batching cannot
 * take: structurally heterogeneous batches (fused programs differing
 * beyond Const immediates — per-lane constant tables absorb
 * parameter differences only), singleton blocks, and
 * laneBatching=false ablation runs; those results are bit-identical
 * to serial simulate() for both integrators.
 *
 * Both paths run on a persistent std::jthread worker pool owned by the
 * runner and reused across calls — no per-call thread spawn/join. The
 * pool parks on a condition variable between batches and grows lazily
 * to the requested concurrency.
 *
 * Determinism: block partitioning depends only on the batch, never on
 * thread count or scheduling; each block integrates independently, so
 * results at any thread count equal the single-thread results on
 * every path. EnsembleOptions::progress ticks per completed instance
 * — including lanes that retire mid-block — strictly increasing to
 * the total. SimOptions::tapeFma routes every driver (scalar and
 * lane) through the FMA-contracted tape variant uniformly, so the
 * lane-vs-scalar identity contracts above hold for either setting.
 *
 * Failure discipline (the arkd-prerequisite contract): divergence,
 * budget exhaustion, cancellation, and deadline expiry are always
 * structured per-instance failures — never exceptions — on every
 * path (scalar, lane RK4, voted Dopri5, spill). Exceptions are
 * reserved for caller errors and step-size collapse; with
 * EnsembleOptions::structuredFaults even those are captured as
 * AbortReason::Fault failures on the affected instances instead of
 * rethrowing, which is how the engine::Session retry supervisor
 * turns faults into retryable work.
 */

#include <memory>
#include <vector>

#include "sim/sim.h"

namespace ark::sim {

/**
 * Persistent-pool ensemble runner. One instance may be shared across
 * threads (calls are serialized internally); most callers want the
 * process-wide shared() runner, which sim::simulateEnsemble routes
 * through.
 */
class BatchRunner
{
  public:
    BatchRunner();
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /**
     * Homogeneous batch: one system, N initial states. Same contract
     * as sim::simulateEnsemble (ordering, determinism, structured
     * failures, throw semantics).
     */
    std::vector<SimResult>
    run(const compiler::OdeSystem &system,
        const std::vector<std::vector<double>> &initialStates, double t0,
        double t1, const EnsembleOptions &options = EnsembleOptions{});

    /**
     * Heterogeneous batch: N distinct systems, each from its compiled
     * initial state. Instances whose fused programs are structurally
     * identical (e.g. per-chip mismatch variants of one circuit) are
     * lane-batched together; the rest run scalar.
     */
    std::vector<SimResult>
    run(const std::vector<const compiler::OdeSystem *> &systems,
        double t0, double t1,
        const EnsembleOptions &options = EnsembleOptions{});

    /**
     * Generic batch primitive on the same persistent pool: runs
     * job(0..count-1) with the calling thread participating alongside
     * up to numThreads-1 workers (0 picks the hardware concurrency;
     * the pool is capped at count). Non-ODE batch workloads — the
     * sparse SPICE transient engine (spice::TransientBatch) — ride
     * this instead of spawning their own threads. The job MUST NOT
     * throw: capture exceptions per index and rethrow after the call.
     */
    void parallelFor(std::size_t count, unsigned numThreads,
                     const std::function<void(std::size_t)> &job);

    /** Worker threads currently parked in the pool. */
    unsigned poolThreads() const;

    /** Process-wide runner backing sim::simulateEnsemble. */
    static BatchRunner &shared();

  private:
    class Pool;

    std::vector<SimResult>
    runImpl(const compiler::OdeSystem *homogeneous,
            const std::vector<std::vector<double>> *initialStates,
            const std::vector<const compiler::OdeSystem *> *systems,
            double t0, double t1, const EnsembleOptions &options);

    std::unique_ptr<Pool> pool_;
};

} // namespace ark::sim

#endif // ARK_SIM_BATCH_H
