#ifndef ARK_SIM_BATCH_H
#define ARK_SIM_BATCH_H

/**
 * @file
 * Lane-parallel batch execution engine for ensemble simulation.
 *
 * BatchRunner is the ensemble tier of the execution stack (tier 4 in
 * sim.h's ladder): it partitions an N-instance batch into lane blocks
 * of up to expr::LaneTape::kMaxLanes instances that share one fused
 * program structure, integrates each block with a lane-batched
 * fixed-step RK4 (one instruction stream driving a structure-of-arrays
 * state block), and falls back to the scalar fused path per instance
 * whenever lane batching does not apply:
 *
 *  - adaptive integration (Dopri5): per-instance step control makes
 *    the time grids diverge, so instances run scalar;
 *  - structurally heterogeneous batches: instances whose fused
 *    programs differ beyond Const immediates cannot share a stream
 *    (per-lane constant tables absorb parameter differences only);
 *  - singleton blocks: one lane would just add SoA overhead.
 *
 * Both paths run on a persistent std::jthread worker pool owned by the
 * runner and reused across calls — no per-call thread spawn/join. The
 * pool parks on a condition variable between batches and grows lazily
 * to the requested concurrency.
 *
 * Determinism: block partitioning depends only on the batch, never on
 * thread count or scheduling, and every lane executes the exact
 * scalar instruction sequence, so results are bit-identical to serial
 * simulate() per instance on both paths at any thread count.
 * Divergence is masked per lane: a NaN instance aborts early with a
 * structured SimResult failure while the rest of its block keeps
 * integrating.
 */

#include <memory>
#include <vector>

#include "sim/sim.h"

namespace ark::sim {

/**
 * Persistent-pool ensemble runner. One instance may be shared across
 * threads (calls are serialized internally); most callers want the
 * process-wide shared() runner, which sim::simulateEnsemble routes
 * through.
 */
class BatchRunner
{
  public:
    BatchRunner();
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /**
     * Homogeneous batch: one system, N initial states. Same contract
     * as sim::simulateEnsemble (ordering, determinism, structured
     * failures, throw semantics).
     */
    std::vector<SimResult>
    run(const compiler::OdeSystem &system,
        const std::vector<std::vector<double>> &initialStates, double t0,
        double t1, const EnsembleOptions &options = EnsembleOptions{});

    /**
     * Heterogeneous batch: N distinct systems, each from its compiled
     * initial state. Instances whose fused programs are structurally
     * identical (e.g. per-chip mismatch variants of one circuit) are
     * lane-batched together; the rest run scalar.
     */
    std::vector<SimResult>
    run(const std::vector<const compiler::OdeSystem *> &systems,
        double t0, double t1,
        const EnsembleOptions &options = EnsembleOptions{});

    /**
     * Generic batch primitive on the same persistent pool: runs
     * job(0..count-1) with the calling thread participating alongside
     * up to numThreads-1 workers (0 picks the hardware concurrency;
     * the pool is capped at count). Non-ODE batch workloads — the
     * sparse SPICE transient engine (spice::TransientBatch) — ride
     * this instead of spawning their own threads. The job MUST NOT
     * throw: capture exceptions per index and rethrow after the call.
     */
    void parallelFor(std::size_t count, unsigned numThreads,
                     const std::function<void(std::size_t)> &job);

    /** Worker threads currently parked in the pool. */
    unsigned poolThreads() const;

    /** Process-wide runner backing sim::simulateEnsemble. */
    static BatchRunner &shared();

  private:
    class Pool;

    std::vector<SimResult>
    runImpl(const compiler::OdeSystem *homogeneous,
            const std::vector<std::vector<double>> *initialStates,
            const std::vector<const compiler::OdeSystem *> *systems,
            double t0, double t1, const EnsembleOptions &options);

    std::unique_ptr<Pool> pool_;
};

} // namespace ark::sim

#endif // ARK_SIM_BATCH_H
