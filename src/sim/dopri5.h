#ifndef ARK_SIM_DOPRI5_H
#define ARK_SIM_DOPRI5_H

/**
 * @file
 * Dormand-Prince 5(4) coefficients and step-size control, shared by
 * the scalar adaptive driver (sim.cc) and the lane-synchronized batch
 * driver (batch.cc).
 *
 * Keeping the tableau and the PI controller formulas in one place is
 * a correctness requirement, not a convenience: the batch driver's
 * step voting takes the minimum of per-lane controller outputs, and
 * its spill path continues a lane with the scalar recurrence — both
 * only behave as documented (a lane block with one active lane steps
 * exactly like the scalar integrator) if every driver computes the
 * identical factor expression.
 */

#include <algorithm>
#include <cmath>

namespace ark::sim::detail {

/** Butcher tableau (Dormand & Prince 1980) + embedded 4th order. */
struct Dopri5
{
    static constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5,
                            c5 = 8.0 / 9;
    static constexpr double a21 = 1.0 / 5;
    static constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
    static constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15,
                            a43 = 32.0 / 9;
    static constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187,
                            a53 = 64448.0 / 6561, a54 = -212.0 / 729;
    static constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33,
                            a63 = 46732.0 / 5247, a64 = 49.0 / 176,
                            a65 = -5103.0 / 18656;
    static constexpr double b1 = 35.0 / 384, b3 = 500.0 / 1113,
                            b4 = 125.0 / 192, b5 = -2187.0 / 6784,
                            b6 = 11.0 / 84;
    // Embedded 4th-order weights (error estimate).
    static constexpr double e1 = 5179.0 / 57600, e3 = 7571.0 / 16695,
                            e4 = 393.0 / 640, e5 = -92097.0 / 339200,
                            e6 = 187.0 / 2100, e7 = 1.0 / 40;

    /**
     * PI controller (Gustafsson) growth factor after an accepted step
     * with error norm `err` (previous accepted norm `prevErr`),
     * clamped to [0.2, 5].
     */
    static double
    acceptFactor(double err, double prevErr)
    {
        double factor = 0.9 *
                        std::pow(err > 0 ? err : 1e-10, -0.7 / 5.0) *
                        std::pow(prevErr > 0 ? prevErr : 1e-10, 0.4 / 5.0);
        return std::clamp(factor, 0.2, 5.0);
    }

    /** Shrink factor after a rejected step with error norm `err`. */
    static double
    rejectFactor(double err)
    {
        return std::max(0.1, 0.9 * std::pow(err, -0.2));
    }
};

} // namespace ark::sim::detail

#endif // ARK_SIM_DOPRI5_H
