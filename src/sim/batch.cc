#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "engine/jit.h"
#include "expr/cjit.h"
#include "expr/lanetape.h"
#include "expr/rewrite.h"
#include "sim/dopri5.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "support/ledger.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "support/watchdog.h"

namespace ark::sim {

using support::cat;
using support::SimError;

namespace {

/**
 * Step-voting and retirement tallies, accumulated locally by the
 * drivers (which already track steps/rejections for SimResult) and
 * flushed to the registry once per block — per-step instrumentation
 * would violate the telemetry overhead budget.
 */
struct VoteStats
{
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t retirements = 0;
    std::size_t spills = 0;

    ~VoteStats() { flush(); }

    void
    flush() const
    {
        if (!telemetry::metricsEnabled())
            return;
        static telemetry::Counter &acceptedVotes =
            telemetry::Registry::shared().counter("ark.sim.vote.accepted");
        static telemetry::Counter &rejectedVotes =
            telemetry::Registry::shared().counter("ark.sim.vote.rejected");
        static telemetry::Counter &laneRetirements =
            telemetry::Registry::shared().counter(
                "ark.sim.lane_retirements");
        static telemetry::Counter &scalarSpills =
            telemetry::Registry::shared().counter("ark.sim.spills");
        acceptedVotes.add(accepted);
        rejectedVotes.add(rejected);
        laneRetirements.add(retirements);
        scalarSpills.add(spills);
    }
};

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

/** Lazily-grown pool cap; parked workers are cheap but not free. */
constexpr unsigned kMaxPoolThreads = 64;

SimResult
cancelledResult(double t)
{
    SimResult result;
    result.failure = detail::cancelledFailure(t, 0);
    return result;
}

SimResult
deadlineResult(double t)
{
    SimResult result;
    result.failure = detail::deadlineFailure(t, 0);
    return result;
}

bool
deadlinePassed(const Deadline &deadline)
{
    return deadline &&
           std::chrono::steady_clock::now() >= *deadline;
}

/**
 * One lane block's RHS, routed through the tier-5 native kernel when
 * one resolves and the tier-4 interpreter otherwise. Resolution
 * happens once per block (a cache hit after the first compile); every
 * failure mode — jit off, no toolchain, compile failure — leaves
 * kernel_ null and the block runs interpreted with identical results.
 * The kernel path replays the interpreter's deterministic TapeNan
 * poison site so fault-injection tests see one behavior on both tiers.
 */
class BlockEvaluator
{
  public:
    BlockEvaluator(const expr::LaneTape &tape, bool jitOn)
        : tape_(tape),
          kernel_(jitOn ? engine::jitKernel(tape) : nullptr)
    {
    }

    bool jitted() const { return kernel_ != nullptr; }

    void
    eval(const double *state, double t, double *out, double *regs) const
    {
        if (kernel_ != nullptr) {
            kernel_->call(state, t, out, tape_.constants().data());
            if (support::FaultInjector::shouldFire(
                    support::FaultSite::TapeNan) &&
                tape_.numOutputs() > 0) {
                out[0] = std::numeric_limits<double>::quiet_NaN();
            }
            return;
        }
        tape_.evalInto(state, t, out, regs);
    }

  private:
    const expr::LaneTape &tape_;
    expr::JitKernelPtr kernel_;
};

/** Message for an in-flight exception (structured fault capture). */
std::string
currentExceptionMessage()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

/**
 * Lane-batched fixed-step RK4 over one block. Mirrors the scalar RK4
 * driver in sim.cc operation-for-operation — same stage expressions,
 * same time accumulation, same record gating — so every lane's
 * trajectory is bit-identical to a serial simulate() of that instance.
 * A lane whose state goes nonfinite is masked out with a structured
 * failure (recording stops, its columns keep computing ignored
 * garbage; lanes never mix, so the rest of the block is unaffected).
 * Budget exhaustion is likewise structural: all lanes share one fixed
 * grid, so when the step budget runs out every still-active lane
 * retires with a BudgetExhausted failure — exactly what each would
 * have reported in a serial run.
 */
std::vector<SimResult>
runLaneRk4(const expr::LaneTape &tape, const BlockEvaluator &rhs,
           const std::vector<const std::vector<double> *> &initials,
           const std::vector<const compiler::OdeSystem *> &systems,
           double t0, double t1, const SimOptions &options,
           const std::stop_token &stop, const Deadline &deadline,
           const std::function<void(std::size_t)> &laneDone)
{
    const std::size_t lanes = tape.lanes();
    const std::size_t width = tape.width();
    const std::size_t n = tape.numOutputs();
    const std::size_t m = n * width;
    std::vector<SimResult> results(lanes);
    VoteStats stats;

    auto failDiverged = [&](std::size_t lane, int var, double t,
                            std::size_t steps) {
        results[lane].steps = steps;
        results[lane].failure =
            detail::divergedFailure(*systems[lane], var, t, steps);
        ++stats.retirements;
        laneDone(1);
    };

    // SoA blocks, lane-minor; padding lanes replicate lane 0 so their
    // (discarded) arithmetic stays finite.
    std::vector<double> state(m), k1(m), k2(m), k3(m), k4(m), tmp(m);
    std::vector<double> regs(tape.scratchSize());
    for (std::size_t l = 0; l < width; ++l) {
        const std::vector<double> &src = *initials[l < lanes ? l : 0];
        for (std::size_t i = 0; i < n; ++i)
            state[i * width + l] = src[i];
    }

    std::vector<char> alive(lanes, 1);
    std::size_t aliveCount = lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!std::isfinite(state[i * width + l])) {
                failDiverged(l, static_cast<int>(i), t0, 0);
                alive[l] = 0;
                --aliveCount;
                break;
            }
        }
    }
    if (aliveCount == 0)
        return results;

    const double dt = options.dt > 0 ? options.dt : (t1 - t0) / 1000.0;
    std::size_t estimate =
        options.recordDt > 0
            ? static_cast<std::size_t>((t1 - t0) / options.recordDt) + 4
            : static_cast<std::size_t>((t1 - t0) / dt) + 4;
    estimate = std::min<std::size_t>(estimate, std::size_t{1} << 20);
    for (std::size_t l = 0; l < lanes; ++l)
        if (alive[l])
            results[l].trajectory.reserve(estimate, n);

    const double recordDt = options.recordDt;
    double lastRecord = -1.0;
    std::vector<double> sample(n), slope(n);
    // All lanes share the time grid, so one record gate serves the
    // whole block; dead lanes are simply skipped.
    auto record = [&](double t, bool force) {
        if (!(force || recordDt <= 0.0 ||
              t - lastRecord >= recordDt * (1.0 - 1e-12)))
            return;
        for (std::size_t l = 0; l < lanes; ++l) {
            if (!alive[l])
                continue;
            for (std::size_t i = 0; i < n; ++i) {
                sample[i] = state[i * width + l];
                slope[i] = k1[i * width + l];
            }
            results[l].trajectory.addSample(t, sample, &slope);
        }
        lastRecord = t;
    };

    double t = t0;
    std::size_t steps = 0;
    // As in the scalar driver, k1 is both the recorded slope and the
    // next step's first stage — four block evaluations per step.
    rhs.eval(state.data(), t, k1.data(), regs.data());
    record(t, true);

    while (t < t1 - 1e-15 * std::max(1.0, std::fabs(t1))) {
        double h = std::min(dt, t1 - t);
        if (steps >= options.maxSteps) {
            for (std::size_t l = 0; l < lanes; ++l) {
                if (!alive[l])
                    continue;
                results[l].steps = steps;
                results[l].failure = detail::budgetFailure(t, steps);
            }
            laneDone(aliveCount);
            return results;
        }
        if (stop.stop_requested() || deadlinePassed(deadline)) {
            const bool cancel = stop.stop_requested();
            for (std::size_t l = 0; l < lanes; ++l) {
                if (!alive[l])
                    continue;
                results[l].steps = steps;
                results[l].failure =
                    cancel ? detail::cancelledFailure(t, steps)
                           : detail::deadlineFailure(t, steps);
            }
            laneDone(aliveCount);
            return results;
        }
        for (std::size_t j = 0; j < m; ++j)
            tmp[j] = state[j] + 0.5 * h * k1[j];
        rhs.eval(tmp.data(), t + 0.5 * h, k2.data(), regs.data());
        for (std::size_t j = 0; j < m; ++j)
            tmp[j] = state[j] + 0.5 * h * k2[j];
        rhs.eval(tmp.data(), t + 0.5 * h, k3.data(), regs.data());
        for (std::size_t j = 0; j < m; ++j)
            tmp[j] = state[j] + h * k3[j];
        rhs.eval(tmp.data(), t + h, k4.data(), regs.data());
        for (std::size_t j = 0; j < m; ++j) {
            state[j] += h / 6.0 *
                        (k1[j] + 2.0 * k2[j] + 2.0 * k3[j] + k4[j]);
        }
        t += h;
        ++steps;
        stats.accepted = steps;
        for (std::size_t l = 0; l < lanes; ++l) {
            if (!alive[l])
                continue;
            for (std::size_t i = 0; i < n; ++i) {
                if (!std::isfinite(state[i * width + l])) {
                    failDiverged(l, static_cast<int>(i), t, steps);
                    alive[l] = 0;
                    --aliveCount;
                    break;
                }
            }
        }
        if (aliveCount == 0)
            return results;
        rhs.eval(state.data(), t, k1.data(), regs.data());
        record(t, false);
    }
    record(t, true);
    for (std::size_t l = 0; l < lanes; ++l)
        if (alive[l])
            results[l].steps = steps;
    laneDone(aliveCount);
    return results;
}

/**
 * Lane-synchronized adaptive Dopri5 over one block ("step voting").
 *
 * Every lane advances on ONE shared step size: per step the block
 * evaluates the six Dormand-Prince stages plus the FSAL stage for all
 * lanes at once, computes a per-lane error norm, and
 *
 *  - accepts the step only when every active lane's error test
 *    passes, advancing all of them on the shared grid; the next step
 *    size is the minimum of the per-lane PI controller outputs (the
 *    most cautious lane wins the vote);
 *  - otherwise rejects the step for the whole block, charging a
 *    rejection only to the lanes whose error actually exceeded 1
 *    (per-lane rejection masking) and shrinking by the controller
 *    factor of the worst lane.
 *
 * A lane whose error estimate or accepted state goes nonfinite is
 * retired on the spot with a structured divergence failure and stops
 * voting; the rest of the block integrates on. When enough lanes
 * retire that a narrower SoA width would hold the survivors, the
 * block compacts (state/slope columns are re-merged into a fresh
 * LaneTape of the smaller width); a single surviving lane spills to a
 * scalar continuation that reuses the exact sim.cc recurrence, so a
 * degenerate block costs no lane overhead.
 *
 * Numerics: the shared grid makes trajectories tolerance-level
 * equivalent to scalar Dopri5 (every accepted step satisfied every
 * lane's error test), not bitwise; the voting sequence depends only
 * on the block membership, so results are bit-identical across
 * thread counts. Step collapse on the shared step still throws for
 * the block as a unit (a tolerance/step-floor misconfiguration, not a
 * per-instance property); budget exhaustion is charged per lane — a
 * lane retires with a structured BudgetExhausted failure once the
 * shared accepted steps plus ITS OWN voted-down rejections reach
 * maxSteps, and the healthy lanes integrate on.
 */
class LaneDopri5
{
  public:
    LaneDopri5(const std::vector<const expr::FusedTape *> &tapes,
               const std::vector<const std::vector<double> *> &initials,
               const std::vector<const compiler::OdeSystem *> &systems,
               double t0, double t1, const SimOptions &options,
               const std::stop_token &stop, const Deadline &deadline,
               const std::function<void(std::size_t)> &laneDone,
               bool jitOn)
        : tapes_(tapes), systems_(systems), options_(options),
          stop_(stop), deadline_(deadline), laneDone_(laneDone),
          jitOn_(jitOn),
          n_(tapes.front()->numOutputs()), t1_(t1),
          end_(t1 - 1e-15 * std::max(1.0, std::fabs(t1))),
          hMax_(options.maxDt > 0 ? options.maxDt : (t1 - t0) / 10.0),
          t_(t0), h_(options.dt > 0 ? options.dt : (t1 - t0) / 1000.0),
          recordDt_(options.recordDt), results_(tapes.size())
    {
        for (std::size_t member = 0; member < initials.size(); ++member) {
            const std::vector<double> &init = *initials[member];
            int bad = firstNonfinite(init.data(), init.size());
            if (bad >= 0) {
                results_[member].failure = detail::divergedFailure(
                    *systems_[member], bad, t0, 0);
                laneDone_(1);
                continue;
            }
            Lane lane;
            lane.member = member;
            lane.state = init;
            active_.push_back(std::move(lane));
        }
        std::size_t estimate =
            recordDt_ > 0
                ? static_cast<std::size_t>((t1 - t0) / recordDt_) + 4
                : 256;
        estimate = std::min<std::size_t>(estimate, std::size_t{1} << 20);
        for (const Lane &lane : active_)
            results_[lane.member].trajectory.reserve(estimate, n_);
    }

    ~LaneDopri5()
    {
        stats_.accepted = steps_;
        stats_.rejected = rejectedShared_;
        // stats_'s own destructor flushes to the registry.
    }

    /** True when any block (or the scalar spill) ran a tier-5
     *  kernel — drives the run ledger's tier attribution. */
    bool usedJit() const { return usedJit_; }

    std::vector<SimResult>
    run()
    {
        // The first block evaluation also produces the k1 slope for
        // the initial record; after a compaction the slopes carry
        // over and nothing is re-recorded.
        bool initial = true;
        while (!active_.empty() && t_ < end_) {
            if (active_.size() == 1) {
                spill(initial);
                return results_;
            }
            if (runBlock(initial) == Status::Done)
                return results_;
            initial = false;
        }
        // Degenerate ranges (t0 ~ t1): record the initial sample only.
        if (!active_.empty()) {
            finishActive(initial);
        }
        return results_;
    }

  private:
    enum class Status { Done, Compact };

    /** Per-lane state that survives block compaction. */
    struct Lane
    {
        std::size_t member = 0;    ///< Index into the job's results.
        std::vector<double> state; ///< Current state (n_).
        std::vector<double> k1;    ///< FSAL slope at (t_, state).
        double prevErr = 1.0;      ///< Last accepted error norm.
        std::size_t rejected = 0;  ///< Steps this lane voted down.
    };

    static int
    firstNonfinite(const double *x, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            if (!std::isfinite(x[i]))
                return static_cast<int>(i);
        return -1;
    }

    bool
    recordGateOpen(double t, bool force) const
    {
        return force || recordDt_ <= 0.0 ||
               t - lastRecord_ >= recordDt_ * (1.0 - 1e-12);
    }

    /** Integrates the current active set as one lane block. */
    Status
    runBlock(bool initial)
    {
        std::vector<const expr::FusedTape *> blockTapes;
        blockTapes.reserve(active_.size());
        for (const Lane &lane : active_)
            blockTapes.push_back(tapes_[lane.member]);
        std::optional<expr::LaneTape> merged =
            expr::LaneTape::merge(blockTapes);
        // The batch partition already verified compatibility.
        support::panicIf(!merged.has_value(),
                         "LaneDopri5: block merge failed");
        const expr::LaneTape &tape = *merged;
        const BlockEvaluator rhs(tape, jitOn_);
        if (rhs.jitted())
            usedJit_ = true;
        const std::size_t L = active_.size();
        const std::size_t W = tape.width();
        const std::size_t m = n_ * W;

        std::vector<double> state(m), next(m), tmp(m);
        std::vector<double> k1(m), k2(m), k3(m), k4(m), k5(m), k6(m),
            k7(m);
        std::vector<double> regs(tape.scratchSize());
        std::vector<double> err(L, 0.0);
        std::vector<char> alive(L, 1);
        std::size_t aliveCount = L;
        // SoA columns, lane-minor; padding lanes replicate slot 0 so
        // their (discarded) arithmetic stays finite.
        for (std::size_t s = 0; s < W; ++s) {
            const Lane &src = active_[s < L ? s : 0];
            for (std::size_t i = 0; i < n_; ++i)
                state[i * W + s] = src.state[i];
            if (!initial) {
                for (std::size_t i = 0; i < n_; ++i)
                    k1[i * W + s] = src.k1[i];
            }
        }

        std::vector<double> sample(n_), slope(n_);
        auto record = [&](double t, bool force) {
            if (!recordGateOpen(t, force))
                return;
            for (std::size_t s = 0; s < L; ++s) {
                if (!alive[s])
                    continue;
                for (std::size_t i = 0; i < n_; ++i) {
                    sample[i] = state[i * W + s];
                    slope[i] = k1[i * W + s];
                }
                results_[active_[s].member].trajectory.addSample(
                    t, sample, &slope);
            }
            lastRecord_ = t;
        };

        auto retireDiverged = [&](std::size_t s, int var) {
            SimResult &r = results_[active_[s].member];
            r.steps = steps_;
            r.rejectedSteps = active_[s].rejected;
            r.failure = detail::divergedFailure(*systems_[active_[s].member],
                                                var, t_, steps_);
            alive[s] = 0;
            --aliveCount;
            ++stats_.retirements;
            laneDone_(1);
        };

        if (initial) {
            rhs.eval(state.data(), t_, k1.data(), regs.data());
            record(t_, true);
        }

        using detail::Dopri5;
        while (t_ < end_) {
            h_ = std::min(h_, t1_ - t_);
            h_ = std::min(h_, hMax_);
            if (h_ < 1e-18 * std::max(1.0, std::fabs(t_)))
                throw SimError(cat("step size collapsed at t=", t_));
            // Per-lane budget: shared accepted steps plus the lane's
            // own voted-down rejections — the same accounting the
            // scalar driver applies to steps + rejectedSteps. Only
            // the exhausted lane retires; its block-mates vote on.
            bool budgetRetired = false;
            for (std::size_t s = 0; s < L; ++s) {
                if (!alive[s] ||
                    steps_ + active_[s].rejected < options_.maxSteps)
                    continue;
                SimResult &r = results_[active_[s].member];
                r.steps = steps_;
                r.rejectedSteps = active_[s].rejected;
                r.failure = detail::budgetFailure(t_, steps_);
                alive[s] = 0;
                --aliveCount;
                ++stats_.retirements;
                laneDone_(1);
                budgetRetired = true;
            }
            if (aliveCount == 0)
                return Status::Done;
            if (budgetRetired &&
                (aliveCount == 1 || aliveCount <= W / 2)) {
                compactInto(state, k1, alive, W);
                return Status::Compact;
            }
            if (stop_.stop_requested() || deadlinePassed(deadline_)) {
                const bool cancel = stop_.stop_requested();
                for (std::size_t s = 0; s < L; ++s) {
                    if (!alive[s])
                        continue;
                    SimResult &r = results_[active_[s].member];
                    r.steps = steps_;
                    r.rejectedSteps = active_[s].rejected;
                    r.failure =
                        cancel ? detail::cancelledFailure(t_, steps_)
                               : detail::deadlineFailure(t_, steps_);
                }
                laneDone_(aliveCount);
                return Status::Done;
            }

            const double h = h_;
            for (std::size_t j = 0; j < m; ++j)
                tmp[j] = state[j] + h * Dopri5::a21 * k1[j];
            rhs.eval(tmp.data(), t_ + Dopri5::c2 * h, k2.data(),
                     regs.data());
            for (std::size_t j = 0; j < m; ++j) {
                tmp[j] = state[j] +
                         h * (Dopri5::a31 * k1[j] + Dopri5::a32 * k2[j]);
            }
            rhs.eval(tmp.data(), t_ + Dopri5::c3 * h, k3.data(),
                     regs.data());
            for (std::size_t j = 0; j < m; ++j) {
                tmp[j] = state[j] +
                         h * (Dopri5::a41 * k1[j] + Dopri5::a42 * k2[j] +
                              Dopri5::a43 * k3[j]);
            }
            rhs.eval(tmp.data(), t_ + Dopri5::c4 * h, k4.data(),
                     regs.data());
            for (std::size_t j = 0; j < m; ++j) {
                tmp[j] = state[j] +
                         h * (Dopri5::a51 * k1[j] + Dopri5::a52 * k2[j] +
                              Dopri5::a53 * k3[j] + Dopri5::a54 * k4[j]);
            }
            rhs.eval(tmp.data(), t_ + Dopri5::c5 * h, k5.data(),
                     regs.data());
            for (std::size_t j = 0; j < m; ++j) {
                tmp[j] = state[j] +
                         h * (Dopri5::a61 * k1[j] + Dopri5::a62 * k2[j] +
                              Dopri5::a63 * k3[j] + Dopri5::a64 * k4[j] +
                              Dopri5::a65 * k5[j]);
            }
            rhs.eval(tmp.data(), t_ + h, k6.data(), regs.data());
            for (std::size_t j = 0; j < m; ++j) {
                next[j] = state[j] +
                          h * (Dopri5::b1 * k1[j] + Dopri5::b3 * k3[j] +
                               Dopri5::b4 * k4[j] + Dopri5::b5 * k5[j] +
                               Dopri5::b6 * k6[j]);
            }
            rhs.eval(next.data(), t_ + h, k7.data(), regs.data());

            // Per-lane scaled error norms (5th vs embedded 4th).
            for (std::size_t s = 0; s < L; ++s) {
                if (!alive[s])
                    continue;
                double norm = 0.0;
                for (std::size_t i = 0; i < n_; ++i) {
                    const std::size_t j = i * W + s;
                    double y4 =
                        state[j] +
                        h * (Dopri5::e1 * k1[j] + Dopri5::e3 * k3[j] +
                             Dopri5::e4 * k4[j] + Dopri5::e5 * k5[j] +
                             Dopri5::e6 * k6[j] + Dopri5::e7 * k7[j]);
                    double scale = options_.absTol +
                                   options_.relTol *
                                       std::max(std::fabs(state[j]),
                                                std::fabs(next[j]));
                    double e = (next[j] - y4) / scale;
                    norm += e * e;
                }
                err[s] = std::sqrt(norm / static_cast<double>(n_));
            }

            // A nonfinite error estimate retires the lane right here,
            // exactly like the scalar driver aborts: error control
            // can never accept it again. The survivors keep voting.
            for (std::size_t s = 0; s < L; ++s) {
                if (!alive[s] || std::isfinite(err[s]))
                    continue;
                int bad = firstNonfinite(next.data() + s, n_, W);
                if (bad < 0)
                    bad = firstNonfinite(k7.data() + s, n_, W);
                retireDiverged(s, bad);
            }
            if (aliveCount == 0)
                return Status::Done;

            double worst = 0.0;
            for (std::size_t s = 0; s < L; ++s)
                if (alive[s])
                    worst = std::max(worst, err[s]);

            if (worst <= 1.0) {
                t_ += h;
                ++steps_;
                state.swap(next);
                k1.swap(k7); // FSAL: last stage is next first stage
                for (std::size_t s = 0; s < L; ++s) {
                    if (!alive[s])
                        continue;
                    int bad = firstNonfinite(state.data() + s, n_, W);
                    if (bad >= 0)
                        retireDiverged(s, bad);
                }
                record(t_, false);
                if (aliveCount == 0)
                    return Status::Done;
                // Step voting: the most cautious lane sets the pace.
                double factor = Dopri5::acceptFactor(err[0], 1.0);
                bool haveFactor = false;
                for (std::size_t s = 0; s < L; ++s) {
                    if (!alive[s])
                        continue;
                    double f = Dopri5::acceptFactor(err[s],
                                                    active_[s].prevErr);
                    factor = haveFactor ? std::min(factor, f) : f;
                    haveFactor = true;
                    active_[s].prevErr = err[s];
                }
                h_ *= factor;
            } else {
                ++rejectedShared_;
                for (std::size_t s = 0; s < L; ++s)
                    if (alive[s] && err[s] > 1.0)
                        ++active_[s].rejected;
                h_ *= Dopri5::rejectFactor(worst);
            }

            // Too few survivors to pay for this width: extract the
            // live columns and let the caller rebuild (or spill) —
            // but only while integration work remains. Compacting on
            // the very step that reached t1 would skip the forced
            // final record below and end the surviving trajectories
            // on the last gated sample instead of t1.
            if (aliveCount < L && t_ < end_ &&
                (aliveCount == 1 || aliveCount <= W / 2)) {
                compactInto(state, k1, alive, W);
                return Status::Compact;
            }
        }

        record(t_, true);
        for (std::size_t s = 0; s < L; ++s) {
            if (!alive[s])
                continue;
            SimResult &r = results_[active_[s].member];
            r.steps = steps_;
            r.rejectedSteps = active_[s].rejected;
        }
        laneDone_(aliveCount);
        return Status::Done;
    }

    /** First nonfinite of a lane's strided column, or -1. */
    static int
    firstNonfinite(const double *column, std::size_t n, std::size_t stride)
    {
        for (std::size_t i = 0; i < n; ++i)
            if (!std::isfinite(column[i * stride]))
                return static_cast<int>(i);
        return -1;
    }

    /** Saves surviving columns into active_ and drops retired lanes. */
    void
    compactInto(const std::vector<double> &state,
                const std::vector<double> &k1,
                const std::vector<char> &alive, std::size_t W)
    {
        std::vector<Lane> survivors;
        survivors.reserve(active_.size());
        for (std::size_t s = 0; s < active_.size(); ++s) {
            if (!alive[s])
                continue;
            Lane lane = std::move(active_[s]);
            lane.state.resize(n_);
            lane.k1.resize(n_);
            for (std::size_t i = 0; i < n_; ++i) {
                lane.state[i] = state[i * W + s];
                lane.k1[i] = k1[i * W + s];
            }
            survivors.push_back(std::move(lane));
        }
        active_ = std::move(survivors);
    }

    /**
     * Scalar continuation of the last surviving lane: the sim.cc
     * Dopri5 recurrence (same tableau, same controller, same
     * divergence handling) resumed from the block's shared (t, h)
     * with the lane's own FSAL slope and PI history.
     */
    void
    spill(bool initial)
    {
        using detail::Dopri5;
        ++stats_.spills;
        telemetry::ScopedSpan span("ark.sim.scalar_spill");
        Lane lane = std::move(active_.front());
        active_.clear();
        const expr::FusedTape &tape = *tapes_[lane.member];
        SimResult &r = results_[lane.member];
        const std::size_t n = n_;

        std::vector<double> state = std::move(lane.state);
        std::vector<double> k1 = std::move(lane.k1);
        k1.resize(n);
        std::vector<double> k2(n), k3(n), k4(n), k5(n), k6(n), k7(n);
        std::vector<double> tmp(n), next(n);
        std::vector<double> regs(
            static_cast<std::size_t>(tape.numRegs()));
        double prevErr = lane.prevErr;

        // Tier-5 on the spill too: a width-1 broadcast of the lane's
        // program. No TapeNan replay here — the interpreted baseline
        // is FusedTape::evalInto, which has no poison site.
        std::optional<expr::LaneTape> jitTape;
        expr::JitKernelPtr jitKernel;
        if (jitOn_) {
            jitTape = expr::LaneTape::broadcast(tape, 1);
            jitKernel = engine::jitKernel(*jitTape);
            if (jitKernel != nullptr)
                usedJit_ = true;
        }
        auto evalRhs = [&](const double *s, double t, double *out) {
            if (jitKernel != nullptr) {
                jitKernel->call(s, t, out,
                                jitTape->constants().data());
                return;
            }
            tape.evalInto(s, t, out, regs.data());
        };

        auto record = [&](double t, bool force) {
            if (!recordGateOpen(t, force))
                return;
            r.trajectory.addSample(t, state, &k1);
            lastRecord_ = t;
        };

        if (initial) {
            evalRhs(state.data(), t_, k1.data());
            record(t_, true);
        }

        while (t_ < end_) {
            h_ = std::min(h_, t1_ - t_);
            h_ = std::min(h_, hMax_);
            if (h_ < 1e-18 * std::max(1.0, std::fabs(t_)))
                throw SimError(cat("step size collapsed at t=", t_));
            if (steps_ + lane.rejected >= options_.maxSteps) {
                r.steps = steps_;
                r.rejectedSteps = lane.rejected;
                r.failure = detail::budgetFailure(t_, steps_);
                laneDone_(1);
                return;
            }
            if (stop_.stop_requested() || deadlinePassed(deadline_)) {
                r.steps = steps_;
                r.rejectedSteps = lane.rejected;
                r.failure = stop_.stop_requested()
                                ? detail::cancelledFailure(t_, steps_)
                                : detail::deadlineFailure(t_, steps_);
                laneDone_(1);
                return;
            }

            const double h = h_;
            for (std::size_t i = 0; i < n; ++i)
                tmp[i] = state[i] + h * Dopri5::a21 * k1[i];
            evalRhs(tmp.data(), t_ + Dopri5::c2 * h, k2.data());
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = state[i] +
                         h * (Dopri5::a31 * k1[i] + Dopri5::a32 * k2[i]);
            }
            evalRhs(tmp.data(), t_ + Dopri5::c3 * h, k3.data());
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = state[i] +
                         h * (Dopri5::a41 * k1[i] + Dopri5::a42 * k2[i] +
                              Dopri5::a43 * k3[i]);
            }
            evalRhs(tmp.data(), t_ + Dopri5::c4 * h, k4.data());
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = state[i] +
                         h * (Dopri5::a51 * k1[i] + Dopri5::a52 * k2[i] +
                              Dopri5::a53 * k3[i] + Dopri5::a54 * k4[i]);
            }
            evalRhs(tmp.data(), t_ + Dopri5::c5 * h, k5.data());
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = state[i] +
                         h * (Dopri5::a61 * k1[i] + Dopri5::a62 * k2[i] +
                              Dopri5::a63 * k3[i] + Dopri5::a64 * k4[i] +
                              Dopri5::a65 * k5[i]);
            }
            evalRhs(tmp.data(), t_ + h, k6.data());
            for (std::size_t i = 0; i < n; ++i) {
                next[i] = state[i] +
                          h * (Dopri5::b1 * k1[i] + Dopri5::b3 * k3[i] +
                               Dopri5::b4 * k4[i] + Dopri5::b5 * k5[i] +
                               Dopri5::b6 * k6[i]);
            }
            evalRhs(next.data(), t_ + h, k7.data());

            double errNorm = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                double y4 = state[i] +
                            h * (Dopri5::e1 * k1[i] + Dopri5::e3 * k3[i] +
                                 Dopri5::e4 * k4[i] + Dopri5::e5 * k5[i] +
                                 Dopri5::e6 * k6[i] + Dopri5::e7 * k7[i]);
                double scale = options_.absTol +
                               options_.relTol *
                                   std::max(std::fabs(state[i]),
                                            std::fabs(next[i]));
                double e = (next[i] - y4) / scale;
                errNorm += e * e;
            }
            errNorm = std::sqrt(errNorm / static_cast<double>(n));

            if (!std::isfinite(errNorm)) {
                int bad = firstNonfinite(next.data(), n);
                if (bad < 0)
                    bad = firstNonfinite(k7.data(), n);
                r.steps = steps_;
                r.rejectedSteps = lane.rejected;
                r.failure = detail::divergedFailure(*systems_[lane.member],
                                                    bad, t_, steps_);
                laneDone_(1);
                return;
            }

            if (errNorm <= 1.0) {
                t_ += h;
                ++steps_;
                state.swap(next);
                std::swap(k1, k7);
                if (int bad = firstNonfinite(state.data(), n); bad >= 0) {
                    r.steps = steps_;
                    r.rejectedSteps = lane.rejected;
                    r.failure = detail::divergedFailure(
                        *systems_[lane.member], bad, t_, steps_);
                    laneDone_(1);
                    return;
                }
                record(t_, false);
                h_ *= Dopri5::acceptFactor(errNorm, prevErr);
                prevErr = errNorm;
            } else {
                ++rejectedShared_;
                ++lane.rejected;
                h_ *= Dopri5::rejectFactor(errNorm);
            }
        }
        record(t_, true);
        r.steps = steps_;
        r.rejectedSteps = lane.rejected;
        laneDone_(1);
    }

    /** Degenerate (t0 ~ t1) finish: record the initial state only. */
    void
    finishActive(bool initial)
    {
        for (Lane &lane : active_) {
            SimResult &r = results_[lane.member];
            if (initial) {
                lane.k1.resize(n_);
                std::vector<double> regs(static_cast<std::size_t>(
                    tapes_[lane.member]->numRegs()));
                tapes_[lane.member]->evalInto(lane.state.data(), t_,
                                              lane.k1.data(), regs.data());
                r.trajectory.addSample(t_, lane.state, &lane.k1);
            }
            r.steps = steps_;
            r.rejectedSteps = lane.rejected;
        }
        laneDone_(active_.size());
        active_.clear();
    }

    const std::vector<const expr::FusedTape *> &tapes_;
    const std::vector<const compiler::OdeSystem *> &systems_;
    const SimOptions &options_;
    const std::stop_token &stop_;
    const Deadline &deadline_;
    const std::function<void(std::size_t)> &laneDone_;
    const bool jitOn_;     ///< Try tier-5 kernels per block.
    bool usedJit_ = false; ///< Any block/spill actually ran one.

    const std::size_t n_;  ///< State variables per instance.
    const double t1_;
    const double end_;     ///< t1 minus the loop-exit epsilon.
    const double hMax_;

    double t_;             ///< Shared integration time.
    double h_;             ///< Shared (voted) step size.
    double lastRecord_ = -1.0;
    double recordDt_;
    std::size_t steps_ = 0;          ///< Shared accepted steps.
    std::size_t rejectedShared_ = 0; ///< Shared rejected block steps.
    VoteStats stats_;                ///< Registry tallies, flushed once.
    std::vector<Lane> active_;
    std::vector<SimResult> results_;
};

/** One pool job: a lane block (2+ members) or a scalar instance. */
struct Job
{
    std::vector<std::size_t> members;
    bool lane = false;
};

} // namespace

/**
 * Persistent worker pool. Workers are std::jthread, parked on a
 * condition variable between batches and woken per run() generation;
 * job indices are claimed with an atomic counter (work stealing), and
 * the calling thread drains alongside the workers. run() returns only
 * after every claimed job has finished AND every worker has left its
 * drain loop, so the job closure can safely live on the caller's
 * stack.
 */
class BatchRunner::Pool
{
  public:
    ~Pool()
    {
        // jthread destructors request stop; wake the parked workers so
        // they observe it.
        for (std::jthread &worker : workers_)
            worker.request_stop();
        cv_.notify_all();
    }

    unsigned
    size() const
    {
        std::lock_guard lock(m_);
        return static_cast<unsigned>(workers_.size());
    }

    /** Grows the pool to `target` workers (capped). */
    void
    ensure(unsigned target)
    {
        target = std::min(target, kMaxPoolThreads);
        std::lock_guard lock(m_);
        while (workers_.size() < target) {
            unsigned index = static_cast<unsigned>(workers_.size());
            workers_.emplace_back([this, index](std::stop_token st) {
                workerLoop(st, index);
            });
        }
    }

    /**
     * Runs job(0..count) using the calling thread plus up to
     * `activeWorkers` pool workers. The job must capture its own
     * exceptions (a throw would terminate a worker).
     */
    void
    run(std::size_t count, unsigned activeWorkers,
        const std::function<void(std::size_t)> &job)
    {
        if (count == 0)
            return;
        // One batch at a time: a second caller resetting next_/count_
        // mid-generation would re-issue indices and let run() return
        // while workers still hold the first batch's job closure.
        std::lock_guard runLock(runMutex_);
        {
            std::lock_guard lock(m_);
            ++generation_;
            count_ = count;
            job_ = &job;
            active_ = activeWorkers;
            finished_ = 0;
            next_.store(0, std::memory_order_relaxed);
        }
        cv_.notify_all();
        drain(&job, count, /*stolen=*/false);
        std::unique_lock lock(m_);
        doneCv_.wait(lock, [&] {
            return finished_ == count_ && draining_ == 0;
        });
        job_ = nullptr;
    }

  private:
    void
    drain(const std::function<void(std::size_t)> *job, std::size_t count,
          bool stolen)
    {
        static telemetry::Counter &tasks =
            telemetry::Registry::shared().counter("ark.sim.pool.tasks");
        static telemetry::Counter &steals =
            telemetry::Registry::shared().counter("ark.sim.pool.steals");
        for (std::size_t i = next_.fetch_add(1); i < count;
             i = next_.fetch_add(1)) {
            tasks.add();
            if (stolen)
                steals.add();
            (*job)(i);
            std::lock_guard lock(m_);
            if (++finished_ == count_)
                doneCv_.notify_all();
        }
    }

    void
    workerLoop(std::stop_token st, unsigned index)
    {
        static telemetry::Counter &parks =
            telemetry::Registry::shared().counter("ark.sim.pool.parks");
        static telemetry::Counter &wakes =
            telemetry::Registry::shared().counter("ark.sim.pool.wakes");
        static telemetry::Counter &busyNs =
            telemetry::Registry::shared().counter("ark.sim.pool.busy_ns");
        std::uint64_t seen = 0;
        while (true) {
            const std::function<void(std::size_t)> *job;
            std::size_t count;
            {
                std::unique_lock lock(m_);
                parks.add();
                bool live = cv_.wait(lock, st, [&] {
                    return job_ != nullptr && generation_ != seen &&
                           index < active_;
                });
                if (!live)
                    return; // stop requested (pool teardown)
                wakes.add();
                seen = generation_;
                job = job_;
                count = count_;
                ++draining_;
            }
            // Busy time covers the whole drain (jobs claimed by this
            // worker); the clock is only read when collection is on.
            const bool timed = telemetry::metricsEnabled();
            const std::uint64_t begin =
                timed ? telemetry::detail::nowNs() : 0;
            drain(job, count, /*stolen=*/true);
            if (timed)
                busyNs.add(telemetry::detail::nowNs() - begin);
            std::lock_guard lock(m_);
            if (--draining_ == 0 && finished_ == count_)
                doneCv_.notify_all();
        }
    }

    std::mutex runMutex_; ///< Serializes whole run() calls.
    mutable std::mutex m_;
    std::condition_variable_any cv_; ///< Workers park here.
    std::condition_variable doneCv_; ///< run() completion.
    std::uint64_t generation_ = 0;
    std::size_t count_ = 0;
    unsigned active_ = 0;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::atomic<std::size_t> next_{0};
    std::size_t finished_ = 0;  ///< Jobs completed this generation.
    unsigned draining_ = 0;     ///< Workers inside their drain loop.
    std::vector<std::jthread> workers_;
};

BatchRunner::BatchRunner() : pool_(std::make_unique<Pool>()) {}

BatchRunner::~BatchRunner() = default;

unsigned
BatchRunner::poolThreads() const
{
    return pool_->size();
}

void
BatchRunner::parallelFor(std::size_t count, unsigned numThreads,
                         const std::function<void(std::size_t)> &job)
{
    if (count == 0)
        return;
    if (numThreads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        numThreads = hw ? hw : 1;
    }
    unsigned effective = static_cast<unsigned>(
        std::min<std::size_t>(numThreads, count));
    if (effective <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            job(i);
        return;
    }
    pool_->ensure(effective - 1);
    pool_->run(count, effective - 1, job);
}

BatchRunner &
BatchRunner::shared()
{
    static BatchRunner runner;
    return runner;
}

std::vector<SimResult>
BatchRunner::run(const compiler::OdeSystem &system,
                 const std::vector<std::vector<double>> &initialStates,
                 double t0, double t1, const EnsembleOptions &options)
{
    return runImpl(&system, &initialStates, nullptr, t0, t1, options);
}

std::vector<SimResult>
BatchRunner::run(const std::vector<const compiler::OdeSystem *> &systems,
                 double t0, double t1, const EnsembleOptions &options)
{
    for (const compiler::OdeSystem *system : systems)
        support::panicIf(system == nullptr,
                         "simulateEnsemble: null system");
    return runImpl(nullptr, nullptr, &systems, t0, t1, options);
}

std::vector<SimResult>
BatchRunner::runImpl(const compiler::OdeSystem *homogeneous,
                     const std::vector<std::vector<double>> *initialStates,
                     const std::vector<const compiler::OdeSystem *> *systems,
                     double t0, double t1, const EnsembleOptions &options)
{
    const std::size_t count =
        homogeneous ? initialStates->size() : systems->size();
    if (count == 0)
        return {};
    if (t1 <= t0)
        throw SimError("simulate: t1 must exceed t0");

    auto systemOf = [&](std::size_t i) -> const compiler::OdeSystem & {
        return homogeneous ? *homogeneous : *(*systems)[i];
    };
    auto initialOf = [&](std::size_t i) -> const std::vector<double> & {
        return homogeneous ? (*initialStates)[i]
                           : (*systems)[i]->initialState();
    };
    for (std::size_t i = 0; i < count; ++i) {
        if (initialOf(i).size() != systemOf(i).size()) {
            throw SimError(cat("simulate: initial state has ",
                               initialOf(i).size(),
                               " entries, system has ",
                               systemOf(i).size()));
        }
    }

    // Partition into jobs: a stable group-by-structure pass collects
    // every instance sharing one fused program (interleaved batches
    // like [A, B, A, B, ...] still lane-batch per structure), then
    // each class splits into blocks of up to kMaxLanes. Partitioning
    // depends only on the batch, never on thread count, and results
    // are written by original index, so ordering is preserved. Both
    // integrators lane-batch; Rk4 blocks run the fixed-step driver,
    // Dopri5 blocks the step-voting adaptive driver.
    const bool laneEligible = options.laneBatching;
    const bool fma = options.sim.tapeFma;
    // Resolved once per batch (ARK_TAPE_REASSOC override folded in)
    // so every member of a lane class selects the same tape variant.
    const bool reassoc = expr::reassocEnabled(options.sim.tapeReassoc);
    // Resolved once per batch: the option gated by the ARK_JIT_FORCE
    // override. Kernel resolution itself stays per block (per merged
    // structure), so a mixed batch jits what it can.
    const bool jitOn = expr::jitEnabled(options.sim.jit);
    std::vector<std::vector<std::size_t>> classes;
    for (std::size_t i = 0; i < count; ++i) {
        if (laneEligible) {
            bool placed = false;
            for (std::vector<std::size_t> &cls : classes) {
                const compiler::OdeSystem &leader =
                    systemOf(cls.front());
                if (&systemOf(i) == &leader ||
                    expr::LaneTape::compatible(
                        leader.rhsTape(fma, reassoc),
                        systemOf(i).rhsTape(fma, reassoc))) {
                    cls.push_back(i);
                    placed = true;
                    break;
                }
            }
            if (placed)
                continue;
        }
        classes.push_back({i});
    }
    std::vector<Job> jobs;
    for (const std::vector<std::size_t> &cls : classes) {
        for (std::size_t base = 0; base < cls.size();
             base += expr::LaneTape::kMaxLanes) {
            std::size_t blockSize = std::min(
                expr::LaneTape::kMaxLanes, cls.size() - base);
            Job job;
            job.lane = blockSize >= 2;
            for (std::size_t k = 0; k < blockSize; ++k)
                job.members.push_back(cls[base + k]);
            jobs.push_back(std::move(job));
        }
    }

    // Flight recorder and stall watchdog are observation-only: the
    // ledger gets one record per instance after the pool drains, the
    // watchdog a heartbeat per completed instance. Cost when off: one
    // null-pointer check / one relaxed load.
    const std::uint64_t ledgerRun =
        options.ledger != nullptr
            ? options.ledger->beginRun(
                  telemetry::RunLedger::Workload::Ode, count)
            : 0;
    telemetry::StallWatchdog::Run watchdogRun("ode_ensemble", count);

    telemetry::ScopedSpan ensembleSpan("ark.sim.ensemble", count);
    if (telemetry::metricsEnabled()) {
        static telemetry::Counter &ensembles =
            telemetry::Registry::shared().counter("ark.sim.ensembles");
        static telemetry::Counter &instances =
            telemetry::Registry::shared().counter("ark.sim.instances");
        // Occupancy: lanes carried vs. SoA width paid, by width class.
        static telemetry::Counter &blockLanes =
            telemetry::Registry::shared().counter("ark.sim.block_lanes");
        static telemetry::Counter &blockWidth =
            telemetry::Registry::shared().counter("ark.sim.block_width");
        static telemetry::Counter *blocksByWidth[4] = {
            &telemetry::Registry::shared().counter(
                "ark.sim.lane_blocks_w1"),
            &telemetry::Registry::shared().counter(
                "ark.sim.lane_blocks_w2"),
            &telemetry::Registry::shared().counter(
                "ark.sim.lane_blocks_w4"),
            &telemetry::Registry::shared().counter(
                "ark.sim.lane_blocks_w8"),
        };
        ensembles.add();
        instances.add(count);
        for (const Job &job : jobs) {
            const std::size_t lanes = job.members.size();
            std::size_t width = 1, widthClass = 0;
            while (width < lanes) {
                width *= 2;
                ++widthClass;
            }
            blockLanes.add(lanes);
            blockWidth.add(width);
            blocksByWidth[widthClass]->add();
        }
    }

    std::vector<SimResult> results(count);
    std::vector<std::exception_ptr> errors(count);
    // Per-job tier-5 provenance for the ledger flush below: a job is
    // "jit" only when a kernel actually ran (not merely requested).
    std::vector<char> jitUsed(jobs.size(), 0);
    std::mutex progressMutex;
    std::size_t completed = 0;

    // Per-instance progress: both lane drivers report each instance
    // the moment it completes (finish, divergence retirement, or
    // cancellation), so `completed` ticks consistently across the
    // scalar and batched paths and stays strictly increasing under
    // lane retirement.
    auto instanceDone = [&](std::size_t done) {
        watchdogRun.heartbeat();
        if (done == 0 || !options.progress)
            return;
        std::lock_guard lock(progressMutex);
        completed += done;
        options.progress(completed, count);
    };

    auto runJob = [&](std::size_t jobIndex) {
        const Job &job = jobs[jobIndex];
        std::size_t reported = 0;
        std::function<void(std::size_t)> laneDone =
            [&](std::size_t done) {
                reported += done;
                instanceDone(done);
            };
        try {
            if (support::FaultInjector::shouldFire(
                    support::FaultSite::WorkerTask))
                throw SimError("fault injection: worker task fault");
            if (options.stop.stop_requested()) {
                // Skipped before starting: no samples at all.
                for (std::size_t member : job.members)
                    results[member] = cancelledResult(t0);
                laneDone(job.members.size());
            } else if (deadlinePassed(options.deadline)) {
                for (std::size_t member : job.members)
                    results[member] = deadlineResult(t0);
                laneDone(job.members.size());
            } else if (job.lane) {
                telemetry::ScopedSpan span("ark.sim.lane_block",
                                           job.members.size());
                std::vector<const expr::FusedTape *> tapes;
                std::vector<const std::vector<double> *> inits;
                std::vector<const compiler::OdeSystem *> blockSystems;
                tapes.reserve(job.members.size());
                inits.reserve(job.members.size());
                blockSystems.reserve(job.members.size());
                for (std::size_t member : job.members) {
                    tapes.push_back(
                        &systemOf(member).rhsTape(fma, reassoc));
                    inits.push_back(&initialOf(member));
                    blockSystems.push_back(&systemOf(member));
                }
                std::vector<SimResult> block;
                if (options.sim.method == Method::Rk4) {
                    std::optional<expr::LaneTape> tape =
                        expr::LaneTape::merge(tapes);
                    // Partitioning already verified compatibility.
                    support::panicIf(!tape.has_value(),
                                     "BatchRunner: lane merge failed");
                    const BlockEvaluator rhs(*tape, jitOn);
                    jitUsed[jobIndex] = rhs.jitted();
                    block = runLaneRk4(*tape, rhs, inits, blockSystems,
                                       t0, t1, options.sim, options.stop,
                                       options.deadline, laneDone);
                } else {
                    LaneDopri5 driver(tapes, inits, blockSystems, t0,
                                      t1, options.sim, options.stop,
                                      options.deadline, laneDone, jitOn);
                    block = driver.run();
                    jitUsed[jobIndex] = driver.usedJit();
                }
                for (std::size_t k = 0; k < job.members.size(); ++k)
                    results[job.members[k]] = std::move(block[k]);
            } else {
                telemetry::ScopedSpan span("ark.sim.scalar");
                std::size_t member = job.members.front();
                // Tier-5 for the scalar path: a width-1 broadcast of
                // the instance's program, handed to the serial driver
                // as a drop-in RHS (null means interpret as before).
                std::optional<expr::JitScalarRhs> jitRhs;
                if (jitOn) {
                    expr::LaneTape tape = expr::LaneTape::broadcast(
                        systemOf(member).rhsTape(fma, reassoc), 1);
                    expr::JitKernelPtr kernel = engine::jitKernel(tape);
                    if (kernel != nullptr) {
                        jitRhs.emplace(expr::JitScalarRhs{
                            std::move(tape), std::move(kernel)});
                    }
                }
                jitUsed[jobIndex] = jitRhs.has_value();
                results[member] = detail::simulateWithStop(
                    systemOf(member), initialOf(member), t0, t1,
                    options.sim, options.stop, options.deadline,
                    jitRhs.has_value() ? &*jitRhs : nullptr);
                laneDone(1);
            }
        } catch (...) {
            if (options.structuredFaults) {
                // Capture the escape as a per-instance Fault failure:
                // the retry supervisor treats it as data, and the
                // batch as a whole no longer throws for it.
                std::string what = currentExceptionMessage();
                for (std::size_t member : job.members) {
                    SimResult faulted;
                    faulted.failure = detail::faultFailure(t0, what);
                    results[member] = std::move(faulted);
                }
            } else {
                for (std::size_t member : job.members)
                    errors[member] = std::current_exception();
            }
        }
        // A thrown block (step collapse, budget) still accounts for
        // every member so `completed` reaches `total` exactly once.
        if (reported < job.members.size())
            instanceDone(job.members.size() - reported);
    };

    unsigned requested = options.numThreads;
    if (requested == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        requested = hw ? hw : 1;
    }
    unsigned effective = static_cast<unsigned>(
        std::min<std::size_t>(requested, jobs.size()));
    if (effective <= 1) {
        for (std::size_t jobIndex = 0; jobIndex < jobs.size(); ++jobIndex)
            runJob(jobIndex);
    } else {
        pool_->ensure(effective - 1);
        pool_->run(jobs.size(), effective - 1, runJob);
    }

    if (options.ledger != nullptr) {
        // One pass at the flush point the metrics block already uses:
        // per-job tier/width/block plus each result's step counters
        // and structured failure. Instances about to rethrow have no
        // result to describe and are skipped.
        for (std::size_t jobIndex = 0; jobIndex < jobs.size();
             ++jobIndex) {
            const Job &job = jobs[jobIndex];
            std::size_t width = 1;
            while (width < job.members.size())
                width *= 2;
            for (std::size_t member : job.members) {
                if (errors[member])
                    continue;
                const SimResult &result = results[member];
                telemetry::RunLedger::Record record;
                record.runId = ledgerRun;
                record.index = member;
                record.workload = telemetry::RunLedger::Workload::Ode;
                record.tier =
                    jitUsed[jobIndex]
                        ? telemetry::RunLedger::Tier::Jit
                        : (job.lane ? telemetry::RunLedger::Tier::Lane
                                    : telemetry::RunLedger::Tier::Scalar);
                record.laneWidth = job.lane ? width : 1;
                record.lanes = job.members.size();
                record.blockId = jobIndex;
                record.stepsAccepted = result.steps;
                record.stepsRejected = result.rejectedSteps;
                record.ok = result.ok();
                if (result.failure.has_value()) {
                    record.failureReason =
                        abortReasonName(result.failure->reason);
                    record.failureMessage = result.failure->message;
                }
                options.ledger->append(std::move(record));
            }
        }
    }

    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
    return results;
}

} // namespace ark::sim
