#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "expr/lanetape.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::sim {

using support::cat;
using support::SimError;

namespace {

/** Lazily-grown pool cap; parked workers are cheap but not free. */
constexpr unsigned kMaxPoolThreads = 64;

SimResult
cancelledResult(double t)
{
    SimResult result;
    result.failure = detail::cancelledFailure(t, 0);
    return result;
}

/**
 * Lane-batched fixed-step RK4 over one block. Mirrors the scalar RK4
 * driver in sim.cc operation-for-operation — same stage expressions,
 * same time accumulation, same record gating — so every lane's
 * trajectory is bit-identical to a serial simulate() of that instance.
 * A lane whose state goes nonfinite is masked out with a structured
 * failure (recording stops, its columns keep computing ignored
 * garbage; lanes never mix, so the rest of the block is unaffected).
 */
std::vector<SimResult>
runLaneRk4(const expr::LaneTape &tape,
           const std::vector<const std::vector<double> *> &initials,
           const std::vector<const compiler::OdeSystem *> &systems,
           double t0, double t1, const SimOptions &options,
           const std::stop_token &stop)
{
    const std::size_t lanes = tape.lanes();
    const std::size_t width = tape.width();
    const std::size_t n = tape.numOutputs();
    const std::size_t m = n * width;
    std::vector<SimResult> results(lanes);

    auto failDiverged = [&](std::size_t lane, int var, double t,
                            std::size_t steps) {
        results[lane].steps = steps;
        results[lane].failure =
            detail::divergedFailure(*systems[lane], var, t, steps);
    };

    // SoA blocks, lane-minor; padding lanes replicate lane 0 so their
    // (discarded) arithmetic stays finite.
    std::vector<double> state(m), k1(m), k2(m), k3(m), k4(m), tmp(m);
    std::vector<double> regs(tape.scratchSize());
    for (std::size_t l = 0; l < width; ++l) {
        const std::vector<double> &src = *initials[l < lanes ? l : 0];
        for (std::size_t i = 0; i < n; ++i)
            state[i * width + l] = src[i];
    }

    std::vector<char> alive(lanes, 1);
    std::size_t aliveCount = lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!std::isfinite(state[i * width + l])) {
                failDiverged(l, static_cast<int>(i), t0, 0);
                alive[l] = 0;
                --aliveCount;
                break;
            }
        }
    }
    if (aliveCount == 0)
        return results;

    const double dt = options.dt > 0 ? options.dt : (t1 - t0) / 1000.0;
    std::size_t estimate =
        options.recordDt > 0
            ? static_cast<std::size_t>((t1 - t0) / options.recordDt) + 4
            : static_cast<std::size_t>((t1 - t0) / dt) + 4;
    estimate = std::min<std::size_t>(estimate, std::size_t{1} << 20);
    for (std::size_t l = 0; l < lanes; ++l)
        if (alive[l])
            results[l].trajectory.reserve(estimate, n);

    const double recordDt = options.recordDt;
    double lastRecord = -1.0;
    std::vector<double> sample(n), slope(n);
    // All lanes share the time grid, so one record gate serves the
    // whole block; dead lanes are simply skipped.
    auto record = [&](double t, bool force) {
        if (!(force || recordDt <= 0.0 ||
              t - lastRecord >= recordDt * (1.0 - 1e-12)))
            return;
        for (std::size_t l = 0; l < lanes; ++l) {
            if (!alive[l])
                continue;
            for (std::size_t i = 0; i < n; ++i) {
                sample[i] = state[i * width + l];
                slope[i] = k1[i * width + l];
            }
            results[l].trajectory.addSample(t, sample, &slope);
        }
        lastRecord = t;
    };

    double t = t0;
    std::size_t steps = 0;
    // As in the scalar driver, k1 is both the recorded slope and the
    // next step's first stage — four block evaluations per step.
    tape.evalInto(state.data(), t, k1.data(), regs.data());
    record(t, true);

    while (t < t1 - 1e-15 * std::max(1.0, std::fabs(t1))) {
        double h = std::min(dt, t1 - t);
        if (steps >= options.maxSteps)
            throw SimError("step budget exhausted (RK4)");
        if (stop.stop_requested()) {
            for (std::size_t l = 0; l < lanes; ++l) {
                if (!alive[l])
                    continue;
                results[l].steps = steps;
                results[l].failure = detail::cancelledFailure(t, steps);
            }
            return results;
        }
        for (std::size_t j = 0; j < m; ++j)
            tmp[j] = state[j] + 0.5 * h * k1[j];
        tape.evalInto(tmp.data(), t + 0.5 * h, k2.data(), regs.data());
        for (std::size_t j = 0; j < m; ++j)
            tmp[j] = state[j] + 0.5 * h * k2[j];
        tape.evalInto(tmp.data(), t + 0.5 * h, k3.data(), regs.data());
        for (std::size_t j = 0; j < m; ++j)
            tmp[j] = state[j] + h * k3[j];
        tape.evalInto(tmp.data(), t + h, k4.data(), regs.data());
        for (std::size_t j = 0; j < m; ++j) {
            state[j] += h / 6.0 *
                        (k1[j] + 2.0 * k2[j] + 2.0 * k3[j] + k4[j]);
        }
        t += h;
        ++steps;
        for (std::size_t l = 0; l < lanes; ++l) {
            if (!alive[l])
                continue;
            for (std::size_t i = 0; i < n; ++i) {
                if (!std::isfinite(state[i * width + l])) {
                    failDiverged(l, static_cast<int>(i), t, steps);
                    alive[l] = 0;
                    --aliveCount;
                    break;
                }
            }
        }
        if (aliveCount == 0)
            return results;
        tape.evalInto(state.data(), t, k1.data(), regs.data());
        record(t, false);
    }
    record(t, true);
    for (std::size_t l = 0; l < lanes; ++l)
        if (alive[l])
            results[l].steps = steps;
    return results;
}

/** One pool job: a lane block (2+ members) or a scalar instance. */
struct Job
{
    std::vector<std::size_t> members;
    bool lane = false;
};

} // namespace

/**
 * Persistent worker pool. Workers are std::jthread, parked on a
 * condition variable between batches and woken per run() generation;
 * job indices are claimed with an atomic counter (work stealing), and
 * the calling thread drains alongside the workers. run() returns only
 * after every claimed job has finished AND every worker has left its
 * drain loop, so the job closure can safely live on the caller's
 * stack.
 */
class BatchRunner::Pool
{
  public:
    ~Pool()
    {
        // jthread destructors request stop; wake the parked workers so
        // they observe it.
        for (std::jthread &worker : workers_)
            worker.request_stop();
        cv_.notify_all();
    }

    unsigned
    size() const
    {
        std::lock_guard lock(m_);
        return static_cast<unsigned>(workers_.size());
    }

    /** Grows the pool to `target` workers (capped). */
    void
    ensure(unsigned target)
    {
        target = std::min(target, kMaxPoolThreads);
        std::lock_guard lock(m_);
        while (workers_.size() < target) {
            unsigned index = static_cast<unsigned>(workers_.size());
            workers_.emplace_back([this, index](std::stop_token st) {
                workerLoop(st, index);
            });
        }
    }

    /**
     * Runs job(0..count) using the calling thread plus up to
     * `activeWorkers` pool workers. The job must capture its own
     * exceptions (a throw would terminate a worker).
     */
    void
    run(std::size_t count, unsigned activeWorkers,
        const std::function<void(std::size_t)> &job)
    {
        if (count == 0)
            return;
        // One batch at a time: a second caller resetting next_/count_
        // mid-generation would re-issue indices and let run() return
        // while workers still hold the first batch's job closure.
        std::lock_guard runLock(runMutex_);
        {
            std::lock_guard lock(m_);
            ++generation_;
            count_ = count;
            job_ = &job;
            active_ = activeWorkers;
            finished_ = 0;
            next_.store(0, std::memory_order_relaxed);
        }
        cv_.notify_all();
        drain(&job, count);
        std::unique_lock lock(m_);
        doneCv_.wait(lock, [&] {
            return finished_ == count_ && draining_ == 0;
        });
        job_ = nullptr;
    }

  private:
    void
    drain(const std::function<void(std::size_t)> *job, std::size_t count)
    {
        for (std::size_t i = next_.fetch_add(1); i < count;
             i = next_.fetch_add(1)) {
            (*job)(i);
            std::lock_guard lock(m_);
            if (++finished_ == count_)
                doneCv_.notify_all();
        }
    }

    void
    workerLoop(std::stop_token st, unsigned index)
    {
        std::uint64_t seen = 0;
        while (true) {
            const std::function<void(std::size_t)> *job;
            std::size_t count;
            {
                std::unique_lock lock(m_);
                bool live = cv_.wait(lock, st, [&] {
                    return job_ != nullptr && generation_ != seen &&
                           index < active_;
                });
                if (!live)
                    return; // stop requested (pool teardown)
                seen = generation_;
                job = job_;
                count = count_;
                ++draining_;
            }
            drain(job, count);
            std::lock_guard lock(m_);
            if (--draining_ == 0 && finished_ == count_)
                doneCv_.notify_all();
        }
    }

    std::mutex runMutex_; ///< Serializes whole run() calls.
    mutable std::mutex m_;
    std::condition_variable_any cv_; ///< Workers park here.
    std::condition_variable doneCv_; ///< run() completion.
    std::uint64_t generation_ = 0;
    std::size_t count_ = 0;
    unsigned active_ = 0;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::atomic<std::size_t> next_{0};
    std::size_t finished_ = 0;  ///< Jobs completed this generation.
    unsigned draining_ = 0;     ///< Workers inside their drain loop.
    std::vector<std::jthread> workers_;
};

BatchRunner::BatchRunner() : pool_(std::make_unique<Pool>()) {}

BatchRunner::~BatchRunner() = default;

unsigned
BatchRunner::poolThreads() const
{
    return pool_->size();
}

void
BatchRunner::parallelFor(std::size_t count, unsigned numThreads,
                         const std::function<void(std::size_t)> &job)
{
    if (count == 0)
        return;
    if (numThreads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        numThreads = hw ? hw : 1;
    }
    unsigned effective = static_cast<unsigned>(
        std::min<std::size_t>(numThreads, count));
    if (effective <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            job(i);
        return;
    }
    pool_->ensure(effective - 1);
    pool_->run(count, effective - 1, job);
}

BatchRunner &
BatchRunner::shared()
{
    static BatchRunner runner;
    return runner;
}

std::vector<SimResult>
BatchRunner::run(const compiler::OdeSystem &system,
                 const std::vector<std::vector<double>> &initialStates,
                 double t0, double t1, const EnsembleOptions &options)
{
    return runImpl(&system, &initialStates, nullptr, t0, t1, options);
}

std::vector<SimResult>
BatchRunner::run(const std::vector<const compiler::OdeSystem *> &systems,
                 double t0, double t1, const EnsembleOptions &options)
{
    for (const compiler::OdeSystem *system : systems)
        support::panicIf(system == nullptr,
                         "simulateEnsemble: null system");
    return runImpl(nullptr, nullptr, &systems, t0, t1, options);
}

std::vector<SimResult>
BatchRunner::runImpl(const compiler::OdeSystem *homogeneous,
                     const std::vector<std::vector<double>> *initialStates,
                     const std::vector<const compiler::OdeSystem *> *systems,
                     double t0, double t1, const EnsembleOptions &options)
{
    const std::size_t count =
        homogeneous ? initialStates->size() : systems->size();
    if (count == 0)
        return {};
    if (t1 <= t0)
        throw SimError("simulate: t1 must exceed t0");

    auto systemOf = [&](std::size_t i) -> const compiler::OdeSystem & {
        return homogeneous ? *homogeneous : *(*systems)[i];
    };
    auto initialOf = [&](std::size_t i) -> const std::vector<double> & {
        return homogeneous ? (*initialStates)[i]
                           : (*systems)[i]->initialState();
    };
    for (std::size_t i = 0; i < count; ++i) {
        if (initialOf(i).size() != systemOf(i).size()) {
            throw SimError(cat("simulate: initial state has ",
                               initialOf(i).size(),
                               " entries, system has ",
                               systemOf(i).size()));
        }
    }

    // Partition into jobs: a stable group-by-structure pass collects
    // every instance sharing one fused program (interleaved batches
    // like [A, B, A, B, ...] still lane-batch per structure), then
    // each class splits into blocks of up to kMaxLanes. Partitioning
    // depends only on the batch, never on thread count, and results
    // are written by original index, so ordering is preserved.
    const bool laneEligible =
        options.laneBatching && options.sim.method == Method::Rk4;
    std::vector<std::vector<std::size_t>> classes;
    for (std::size_t i = 0; i < count; ++i) {
        if (laneEligible) {
            bool placed = false;
            for (std::vector<std::size_t> &cls : classes) {
                const compiler::OdeSystem &leader =
                    systemOf(cls.front());
                if (&systemOf(i) == &leader ||
                    expr::LaneTape::compatible(
                        leader.fusedTape(), systemOf(i).fusedTape())) {
                    cls.push_back(i);
                    placed = true;
                    break;
                }
            }
            if (placed)
                continue;
        }
        classes.push_back({i});
    }
    std::vector<Job> jobs;
    for (const std::vector<std::size_t> &cls : classes) {
        for (std::size_t base = 0; base < cls.size();
             base += expr::LaneTape::kMaxLanes) {
            std::size_t blockSize = std::min(
                expr::LaneTape::kMaxLanes, cls.size() - base);
            Job job;
            job.lane = blockSize >= 2;
            for (std::size_t k = 0; k < blockSize; ++k)
                job.members.push_back(cls[base + k]);
            jobs.push_back(std::move(job));
        }
    }

    std::vector<SimResult> results(count);
    std::vector<std::exception_ptr> errors(count);
    std::mutex progressMutex;
    std::size_t completed = 0;

    auto runJob = [&](std::size_t jobIndex) {
        const Job &job = jobs[jobIndex];
        try {
            if (options.stop.stop_requested()) {
                // Skipped before starting: no samples at all.
                for (std::size_t member : job.members)
                    results[member] = cancelledResult(t0);
            } else if (job.lane) {
                std::vector<const expr::FusedTape *> tapes;
                std::vector<const std::vector<double> *> inits;
                std::vector<const compiler::OdeSystem *> blockSystems;
                tapes.reserve(job.members.size());
                inits.reserve(job.members.size());
                blockSystems.reserve(job.members.size());
                for (std::size_t member : job.members) {
                    tapes.push_back(&systemOf(member).fusedTape());
                    inits.push_back(&initialOf(member));
                    blockSystems.push_back(&systemOf(member));
                }
                std::optional<expr::LaneTape> tape =
                    expr::LaneTape::merge(tapes);
                // Partitioning already verified compatibility.
                support::panicIf(!tape.has_value(),
                                 "BatchRunner: lane merge failed");
                std::vector<SimResult> block =
                    runLaneRk4(*tape, inits, blockSystems, t0, t1,
                               options.sim, options.stop);
                for (std::size_t k = 0; k < job.members.size(); ++k)
                    results[job.members[k]] = std::move(block[k]);
            } else {
                std::size_t member = job.members.front();
                results[member] = detail::simulateWithStop(
                    systemOf(member), initialOf(member), t0, t1,
                    options.sim, options.stop);
            }
        } catch (...) {
            for (std::size_t member : job.members)
                errors[member] = std::current_exception();
        }
        if (options.progress) {
            std::lock_guard lock(progressMutex);
            completed += job.members.size();
            options.progress(completed, count);
        }
    };

    unsigned requested = options.numThreads;
    if (requested == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        requested = hw ? hw : 1;
    }
    unsigned effective = static_cast<unsigned>(
        std::min<std::size_t>(requested, jobs.size()));
    if (effective <= 1) {
        for (std::size_t jobIndex = 0; jobIndex < jobs.size(); ++jobIndex)
            runJob(jobIndex);
    } else {
        pool_->ensure(effective - 1);
        pool_->run(jobs.size(), effective - 1, runJob);
    }

    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
    return results;
}

} // namespace ark::sim
