#ifndef ARK_SIM_SIM_H
#define ARK_SIM_SIM_H

/**
 * @file
 * Transient simulation of compiled Ark dynamical systems.
 *
 * Two integrators cover the paper's workloads: a fixed-step classical
 * RK4 (predictable cost, used for SPICE cross-validation on matching
 * time grids) and an adaptive Dormand-Prince 5(4) with PI step
 * control (default; handles the nanosecond-scale TLN/OBC dynamics and
 * the CNN's piecewise-linear saturations efficiently).
 *
 * RHS evaluation has five execution tiers, each a strict speedup over
 * the previous at identical semantics:
 *
 *  1. tree interpreter (OdeSystem::evalRhsInterpreted) — ground truth
 *     for equivalence tests;
 *  2. per-variable tapes (evalRhsPerTape) — one register program per
 *     equation, kept as the ablation path;
 *  3. fused whole-system tape (evalRhs / expr::FusedTape) — one
 *     program with cross-equation CSE fills all of dstate per pass;
 *     what simulate() drives;
 *  4. lane-parallel batch tape (expr::LaneTape + sim::BatchRunner,
 *     sim/batch.h) — the fused program executed over a
 *     structure-of-arrays block of up to 8 ensemble instances at
 *     once, amortizing instruction dispatch and autovectorizing the
 *     lane loops;
 *  5. JIT native kernels (expr/cjit.h, SimOptions::jit) — the lane
 *     program lowered to straight-line C, compiled at runtime, and
 *     called through one function pointer per evaluation. Results
 *     are bit-identical to tiers 3/4 (same IEEE ops in the same
 *     order); any compile problem silently falls back to the
 *     interpreted tier.
 *
 * Tier 4 is selected automatically by simulateEnsemble for ensembles
 * whose instances share one program structure — one system with many
 * initial states, or distinct systems that differ only in constants
 * (per-chip mismatch) — under BOTH integrators:
 *
 *  - Rk4 blocks run the lane-batched fixed-step driver on the shared
 *    time grid; every lane's trajectory is bit-identical to serial
 *    simulate() of that instance.
 *  - Dopri5 blocks run the lane-synchronized adaptive driver
 *    (sim/batch.h): all lanes advance on ONE shared step size chosen
 *    by min-over-active-lanes of the PI controller ("step voting"),
 *    with per-lane error estimates and rejection masking. The shared
 *    grid means the step sequence differs from a per-instance scalar
 *    Dopri5 run, so batched adaptive results agree with serial
 *    simulate() at tolerance level (each accepted step satisfies
 *    every lane's error test), NOT bitwise. They ARE bit-identical
 *    across thread counts, and EnsembleOptions::laneBatching = false
 *    restores the exact scalar path.
 *
 * Structurally heterogeneous instances and singleton blocks fall back
 * to tier 3 per instance (bit-identical to serial simulate() for both
 * integrators). Both batch paths run on BatchRunner's persistent
 * worker pool and honor EnsembleOptions::progress/stop.
 */

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stop_token>
#include <string>
#include <vector>

#include "compiler/odesystem.h"

namespace ark::telemetry {
class RunLedger;
}

namespace ark::expr {
struct JitScalarRhs;
}

namespace ark::sim {

/** Integration method selection. */
enum class Method { Rk4, Dopri5 };

/** Simulation controls. */
struct SimOptions
{
    Method method = Method::Dopri5;
    double dt = 0.0;        ///< Fixed step (Rk4) / initial step (Dopri5);
                            ///< 0 picks (t1-t0)/1000.
    double absTol = 1e-9;   ///< Dopri5 absolute tolerance.
    double relTol = 1e-6;   ///< Dopri5 relative tolerance.
    /**
     * Step ceiling; 0 = (t1-t0)/10. Adaptive steps grow without bound
     * through quiescent dynamics, and a step larger than a narrow
     * input pulse can clear it without any stage sampling inside it
     * (error control never sees the event). Set maxDt below the
     * narrowest input feature's width when driving with short pulses.
     */
    double maxDt = 0.0;
    double recordDt = 0.0;  ///< Sampling interval; 0 records every step.
    std::size_t maxSteps = 50'000'000; ///< Hard stop against stalls.

    /**
     * Evaluate the RHS through the FMA-contracted tape variant
     * (expr::FusedTape::compile with fuseMulAdd): single-use Mul+Add pairs
     * execute as one FusedMulAdd instruction via std::fma — exactly
     * one rounding for a*b+c, deterministic across hosts. Off by
     * default: the contracted program agrees with the plain tape only
     * to rounding (~1 ulp per pair), so the default build keeps the
     * tier-equivalence bit contract. Lane and scalar paths honor the
     * flag identically, so lane-vs-scalar bit identity holds for
     * either setting. Perf note: the contraction removes one
     * instruction per pair but only pays off where std::fma is a
     * hardware instruction (ARK_ENABLE_NATIVE on FMA hosts);
     * baseline-ISA builds route through libm's soft fma, which is
     * slower than Mul+Add.
     */
    bool tapeFma = false;

    /**
     * Evaluate the RHS through the reassociated tape variant
     * (expr/rewrite.h then FMA contraction): division by a constant
     * becomes multiplication by its reciprocal and literal
     * coefficients gather at the head of each product, exposing
     * FusedMulAdd contractions the plain matcher cannot see through
     * intervening Div/Neg nodes (GmC-TLN terms like `w*var(t)/c`
     * contract 0% without it). Same contract as tapeFma — the
     * rewritten program agrees with the default tape only to
     * tolerance level, never reorders sums, and never touches
     * branch-deciding subtrees — so it is off by default and all
     * tiers honor the flag identically (lane-vs-scalar bit identity
     * holds under the flag). Takes precedence over tapeFma when both
     * are set (the reassociated variant is always FMA-contracted).
     * The ARK_TAPE_REASSOC environment variable overrides this flag
     * in both directions (expr::reassocEnabled).
     */
    bool tapeReassoc = false;

    /**
     * Serve RHS evaluation from tier-5 JIT-compiled native kernels
     * (expr/cjit.h): the ensemble engine lowers each lane block's
     * program (and each scalar instance's width-1 broadcast) to C,
     * compiles it once per structure through the engine's
     * ArtifactCache and an on-disk object cache, and evaluates
     * through the resolved function pointer. Results are
     * bit-identical to the interpreted tiers — the emitted code
     * replays the exact instruction stream with the same IEEE
     * semantics (-fno-fast-math, -ffp-contract=off, same libm) —
     * regression-tested in tests/jit_test.cc. Off by default: the
     * tier needs a working C compiler at runtime, and hosts without
     * one must never pay a probe on the default path. When enabled
     * without a usable toolchain (or when compilation fails, or
     * FaultSite::JitCompile is armed) execution silently falls back
     * to the interpreted tier. The ARK_JIT_FORCE environment variable
     * overrides this flag in both directions (the non-gating CI job
     * runs tier-1 with it set).
     */
    bool jit = false;
};

/**
 * Recorded trajectory: times plus full state per sample.
 *
 * Storage is flat: one contiguous buffer of size() * stateDim()
 * doubles (sample-major), so recording a sample is a bulk append with
 * no per-sample vector allocation, and state(s) is a view into the
 * buffer. reserve() pre-sizes the buffers; the simulation driver
 * reserves from the recording stride before integrating.
 *
 * Derivative invariant: cubic-Hermite slopes are kept only while
 * *every* recorded sample has provided one. The first sample recorded
 * without a derivative drops the slope buffer permanently — later
 * derivatives cannot resurrect it, because a partially-populated
 * slope buffer cannot be aligned to the samples. sampleAt then falls
 * back to linear interpolation for the whole trajectory.
 */
class Trajectory
{
  public:
    /**
     * Appends a sample; `deriv` (dstate/dt at the sample, optional)
     * enables cubic Hermite interpolation in sampleAt. All samples
     * must share the first sample's dimension.
     */
    void addSample(double t, const std::vector<double> &state,
                   const std::vector<double> *deriv = nullptr);

    /** Pre-sizes the buffers for `samples` samples of `stateDim`. */
    void reserve(std::size_t samples, std::size_t stateDim);

    std::size_t size() const { return times_.size(); }
    /** State-vector length; 0 until the first sample lands. */
    std::size_t stateDim() const { return stateDim_; }
    const std::vector<double> &times() const { return times_; }
    /** One recorded state vector (a view into the flat buffer). */
    std::span<const double> state(std::size_t sample) const;
    double time(std::size_t sample) const { return times_.at(sample); }

    /** True while every sample has carried a derivative. */
    bool hasDerivs() const { return !times_.empty() && !derivsDropped_; }

    /** Series of one state variable across all samples. */
    std::vector<double> series(int stateIndex) const;

    /**
     * Value of one state variable at time t (clamped to the recorded
     * range): cubic Hermite between samples when derivatives were
     * recorded (O(h^4) — accurate across large adaptive steps),
     * linear otherwise.
     */
    double sampleAt(int stateIndex, double t) const;

    /** Resamples a variable onto a uniform grid of n points. */
    std::vector<double> resample(int stateIndex, double t0, double t1,
                                 std::size_t n) const;

  private:
    std::size_t stateDim_ = 0;
    std::vector<double> times_;
    std::vector<double> states_; ///< Flat, size() * stateDim_.
    std::vector<double> derivs_; ///< Flat; empty once dropped.
    bool derivsDropped_ = false;
};

/**
 * Why an instance stopped before reaching t1.
 *
 * Failure taxonomy (the arkd admission-control contract): every entry
 * here is an *instance-level* outcome — it is reported as a structured
 * SimResult::failure on exactly the affected instance, never as an
 * exception that poisons co-batched neighbors. Exceptions remain
 * reserved for caller errors (bad time range, wrong state dimension)
 * and for step-size collapse, which indicates a misconfigured
 * tolerance/step floor rather than a property of one instance's data.
 */
enum class AbortReason : std::uint8_t {
    Diverged,  ///< A state variable went NaN/Inf.
    Cancelled, ///< The ensemble's stop token was triggered.
    BudgetExhausted,  ///< SimOptions::maxSteps spent before reaching t1.
    DeadlineExceeded, ///< EnsembleOptions::deadline passed mid-run.
    Fault, ///< An internal exception was captured as a structured
           ///< failure (EnsembleOptions::structuredFaults).
};

/** Stable lower-case spelling for logs and ledger exports. */
const char *abortReasonName(AbortReason reason);

/**
 * Structured early-stop report. Divergence is detected the moment a
 * nonfinite value appears (accepted state or Dopri5 error estimate)
 * and aborts the instance right there — it is never integrated onward
 * toward maxSteps — recording which step and which state variable
 * went bad. The trajectory keeps every sample recorded before the
 * failure. Budget exhaustion and deadline expiry are reported the same
 * way: the instance stops at the step where the budget ran out (or the
 * wall clock passed the deadline) and keeps everything recorded so
 * far.
 */
struct SimFailure
{
    AbortReason reason = AbortReason::Diverged;
    std::size_t step = 0;  ///< Executed steps when detected (0 = initial state).
    int stateIndex = -1;   ///< First nonfinite variable; -1 if not variable-specific.
    double time = 0.0;     ///< Integration time reached.
    std::string message;   ///< Human-readable summary.
};

/** Simulation outcome. */
struct SimResult
{
    Trajectory trajectory;
    std::size_t steps = 0;          ///< Accepted steps.
    std::size_t rejectedSteps = 0;  ///< Dopri5 error-control rejects.
    bool reachedSteadyState = false;
    /** Set when the run stopped early (divergence, cancellation). */
    std::optional<SimFailure> failure;

    /** True when the run integrated all the way to t1. */
    bool ok() const { return !failure.has_value(); }
};

/**
 * Integrates the system from t0 to t1. A diverging state (NaN/Inf)
 * stops the run early and reports a structured SimResult::failure, and
 * so does an exhausted step budget (AbortReason::BudgetExhausted, with
 * every sample recorded up to the stop); configuration errors (bad
 * time range, step collapse) still throw.
 * @throws ark::support::SimError on step-size collapse.
 */
SimResult simulate(const compiler::OdeSystem &system, double t0, double t1,
                   const SimOptions &options = SimOptions{});

/**
 * Integrates from a caller-supplied initial state (ensemble restarts,
 * warm starts) instead of the system's compiled initial values.
 * @throws ark::support::SimError also when `initial` has the wrong
 *         dimension.
 */
SimResult simulate(const compiler::OdeSystem &system,
                   const std::vector<double> &initial, double t0,
                   double t1, const SimOptions &options = SimOptions{});

/** Controls for batched ensemble integration. */
struct EnsembleOptions
{
    SimOptions sim; ///< Per-instance integration controls.

    /**
     * Worker threads; 0 picks the hardware concurrency. The pool is
     * capped at the instance count; 1 degenerates to a serial loop on
     * the calling thread.
     */
    unsigned numThreads = 0;

    /**
     * Lane-batch structurally compatible instances through
     * expr::LaneTape — fixed-step Rk4 on the shared grid, adaptive
     * Dopri5 through the lane-synchronized step-voting driver. Off
     * forces the scalar per-instance path (ablation benchmarks and
     * differential tests). Rk4 results are bit-identical either way;
     * Dopri5 results are tolerance-level equivalent (the voting
     * driver integrates on a shared step sequence) and become
     * bit-identical to serial simulate() only with laneBatching off.
     */
    bool laneBatching = true;

    /**
     * Optional completion callback: invoked with (completed, total)
     * as each instance completes, on the scalar and lane paths alike
     * (a lane that retires mid-block — divergence, cancellation —
     * reports the moment it retires, not when its block ends).
     * `completed` is strictly increasing and reaches `total` exactly
     * once. Serialized internally — the callback never runs
     * concurrently with itself — but it may be invoked from worker
     * threads; keep it cheap and do not call back into the ensemble
     * API from inside it.
     */
    std::function<void(std::size_t completed, std::size_t total)> progress;

    /**
     * Cooperative cancellation. When the token's stop is requested,
     * instances not yet started are skipped and running instances
     * abort at the next integration step; all affected results carry
     * an AbortReason::Cancelled failure. A default-constructed token
     * never requests stop.
     */
    std::stop_token stop;

    /**
     * Wall-clock deadline, checked cooperatively at the same step
     * granularity as `stop`. Once steady_clock passes it, running
     * instances abort at their next step check and instances not yet
     * started are skipped; all affected results carry an
     * AbortReason::DeadlineExceeded failure, and everything that
     * completed before the cutoff is returned untouched (bit-identical
     * to the same run without a deadline). Unset = no deadline.
     */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /**
     * When true, an exception escaping an instance (or a lane block)
     * is captured as an AbortReason::Fault failure on the affected
     * result(s) instead of being rethrown after the batch drains —
     * simulateEnsemble then never throws for per-instance causes. Off
     * by default to preserve the historical rethrow contract; the
     * engine::Session retry supervisor turns it on so faults become
     * retryable data instead of control flow.
     */
    bool structuredFaults = false;

    /**
     * Optional flight recorder: when set, the batch appends one
     * telemetry::RunLedger::Record per instance at the end of the run
     * (tier, lane width, block id, step counts, structured failure).
     * Observation-only — results are bit-identical with and without a
     * ledger — and the pointer must outlive the call. Null = off.
     */
    telemetry::RunLedger *ledger = nullptr;
};

/**
 * Integrates N instances of one system concurrently, instance i
 * starting from initialStates[i]. Results are positionally ordered
 * and deterministic for every thread count. Rk4 batches (and any
 * batch with laneBatching off) are bit-identical to calling
 * simulate(system, initialStates[i], t0, t1, options.sim) serially;
 * lane-batched Dopri5 batches integrate on a shared voted step
 * sequence and agree with the serial runs at tolerance level instead
 * (see the file header). The voting sequence depends only on the
 * block assignment, so batched adaptive results are still
 * bit-identical across thread counts.
 *
 * Divergence, budget exhaustion, deadline expiry, and cancellation
 * never throw — the affected instance's result carries a structured
 * failure, and healthy lane-mates in the same block keep integrating
 * (an exhausted or diverged lane retires alone). If an instance still
 * throws (step collapse, internal fault), the remaining instances run
 * to completion and the lowest-indexed error is rethrown (a
 * lane-batched Dopri5 block throws as a unit: step collapse on the
 * shared step affects every member of the block) — unless
 * options.structuredFaults is set, in which case the capture becomes
 * an AbortReason::Fault failure on the affected result(s) instead.
 */
std::vector<SimResult> simulateEnsemble(
    const compiler::OdeSystem &system,
    const std::vector<std::vector<double>> &initialStates, double t0,
    double t1, const EnsembleOptions &options = EnsembleOptions{});

/**
 * Heterogeneous ensemble: integrates N distinct systems (e.g. one per
 * fabricated chip or per random max-cut instance) concurrently, each
 * from its own compiled initial state. Same ordering, determinism,
 * and failure semantics as the homogeneous overload.
 */
std::vector<SimResult> simulateEnsemble(
    const std::vector<const compiler::OdeSystem *> &systems, double t0,
    double t1, const EnsembleOptions &options = EnsembleOptions{});

/**
 * Integrates until max |dq/dt| falls below `derivTol` (checked every
 * sample) or tMax is reached; `reachedSteadyState` reports which.
 */
SimResult simulateToSteadyState(const compiler::OdeSystem &system,
                                double t0, double tMax, double derivTol,
                                const SimOptions &options = SimOptions{});

namespace detail {

/**
 * simulate() with a cooperative stop token and optional wall-clock
 * deadline checked once per step — the scalar-path workhorse behind
 * BatchRunner. Not part of the public API. `jit`, when non-null,
 * routes RHS evaluation through a tier-5 native kernel (a width-1
 * broadcast of the system's tape; bit-identical to the fused
 * interpreter).
 */
SimResult simulateWithStop(
    const compiler::OdeSystem &system, const std::vector<double> &initial,
    double t0, double t1, const SimOptions &options,
    const std::stop_token &stop,
    const std::optional<std::chrono::steady_clock::time_point> &deadline =
        {},
    const expr::JitScalarRhs *jit = nullptr);

/**
 * Shared failure constructors: the scalar and lane integrators must
 * report byte-identical failures for the same event, so both build
 * them here. `var` -1 means "not variable-specific" (e.g. a nonfinite
 * Dopri5 error estimate with every state entry still finite).
 */
SimFailure divergedFailure(const compiler::OdeSystem &system, int var,
                           double t, std::size_t steps);
SimFailure cancelledFailure(double t, std::size_t steps);
SimFailure budgetFailure(double t, std::size_t steps);
SimFailure deadlineFailure(double t, std::size_t steps);
SimFailure faultFailure(double t, const std::string &what);

} // namespace detail

} // namespace ark::sim

#endif // ARK_SIM_SIM_H
