#ifndef ARK_SIM_SIM_H
#define ARK_SIM_SIM_H

/**
 * @file
 * Transient simulation of compiled Ark dynamical systems.
 *
 * Two integrators cover the paper's workloads: a fixed-step classical
 * RK4 (predictable cost, used for SPICE cross-validation on matching
 * time grids) and an adaptive Dormand-Prince 5(4) with PI step
 * control (default; handles the nanosecond-scale TLN/OBC dynamics and
 * the CNN's piecewise-linear saturations efficiently).
 */

#include <functional>
#include <string>
#include <vector>

#include "compiler/odesystem.h"

namespace ark::sim {

/** Integration method selection. */
enum class Method { Rk4, Dopri5 };

/** Simulation controls. */
struct SimOptions
{
    Method method = Method::Dopri5;
    double dt = 0.0;        ///< Fixed step (Rk4) / initial step (Dopri5);
                            ///< 0 picks (t1-t0)/1000.
    double absTol = 1e-9;   ///< Dopri5 absolute tolerance.
    double relTol = 1e-6;   ///< Dopri5 relative tolerance.
    /**
     * Step ceiling; 0 = (t1-t0)/10. Adaptive steps grow without bound
     * through quiescent dynamics, and a step larger than a narrow
     * input pulse can clear it without any stage sampling inside it
     * (error control never sees the event). Set maxDt below the
     * narrowest input feature's width when driving with short pulses.
     */
    double maxDt = 0.0;
    double recordDt = 0.0;  ///< Sampling interval; 0 records every step.
    std::size_t maxSteps = 50'000'000; ///< Hard stop against stalls.
};

/** Recorded trajectory: times plus full state per sample. */
class Trajectory
{
  public:
    /**
     * Appends a sample; `deriv` (dstate/dt at the sample, optional)
     * enables cubic Hermite interpolation in sampleAt.
     */
    void addSample(double t, const std::vector<double> &state,
                   const std::vector<double> *deriv = nullptr);

    std::size_t size() const { return times_.size(); }
    const std::vector<double> &times() const { return times_; }
    const std::vector<double> &state(std::size_t sample) const;
    double time(std::size_t sample) const { return times_.at(sample); }

    /** Series of one state variable across all samples. */
    std::vector<double> series(int stateIndex) const;

    /**
     * Value of one state variable at time t (clamped to the recorded
     * range): cubic Hermite between samples when derivatives were
     * recorded (O(h^4) — accurate across large adaptive steps),
     * linear otherwise.
     */
    double sampleAt(int stateIndex, double t) const;

    /** Resamples a variable onto a uniform grid of n points. */
    std::vector<double> resample(int stateIndex, double t0, double t1,
                                 std::size_t n) const;

  private:
    std::vector<double> times_;
    std::vector<std::vector<double>> states_;
    std::vector<std::vector<double>> derivs_; ///< Empty if unavailable.
};

/** Simulation outcome. */
struct SimResult
{
    Trajectory trajectory;
    std::size_t steps = 0;          ///< Accepted steps.
    std::size_t rejectedSteps = 0;  ///< Dopri5 error-control rejects.
    bool reachedSteadyState = false;
};

/**
 * Integrates the system from t0 to t1.
 * @throws ark::support::SimError on NaN/Inf state or step collapse.
 */
SimResult simulate(const compiler::OdeSystem &system, double t0, double t1,
                   const SimOptions &options = SimOptions{});

/**
 * Integrates until max |dq/dt| falls below `derivTol` (checked every
 * sample) or tMax is reached; `reachedSteadyState` reports which.
 */
SimResult simulateToSteadyState(const compiler::OdeSystem &system,
                                double t0, double tMax, double derivTol,
                                const SimOptions &options = SimOptions{});

} // namespace ark::sim

#endif // ARK_SIM_SIM_H
