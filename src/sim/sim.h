#ifndef ARK_SIM_SIM_H
#define ARK_SIM_SIM_H

/**
 * @file
 * Transient simulation of compiled Ark dynamical systems.
 *
 * Two integrators cover the paper's workloads: a fixed-step classical
 * RK4 (predictable cost, used for SPICE cross-validation on matching
 * time grids) and an adaptive Dormand-Prince 5(4) with PI step
 * control (default; handles the nanosecond-scale TLN/OBC dynamics and
 * the CNN's piecewise-linear saturations efficiently). Both drive the
 * system's fused whole-system tape (one pass per RHS evaluation) with
 * scratch sized once up front.
 *
 * Ensemble workloads — PUF challenge batteries, max-cut random
 * restarts, Monte-Carlo mismatch sweeps — go through
 * simulateEnsemble: a thread-pooled batch driver that integrates N
 * instances concurrently. Each instance owns its scratch and RNG-free
 * integration, so results are bit-identical to running simulate()
 * serially per instance, independent of thread count or scheduling.
 */

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "compiler/odesystem.h"

namespace ark::sim {

/** Integration method selection. */
enum class Method { Rk4, Dopri5 };

/** Simulation controls. */
struct SimOptions
{
    Method method = Method::Dopri5;
    double dt = 0.0;        ///< Fixed step (Rk4) / initial step (Dopri5);
                            ///< 0 picks (t1-t0)/1000.
    double absTol = 1e-9;   ///< Dopri5 absolute tolerance.
    double relTol = 1e-6;   ///< Dopri5 relative tolerance.
    /**
     * Step ceiling; 0 = (t1-t0)/10. Adaptive steps grow without bound
     * through quiescent dynamics, and a step larger than a narrow
     * input pulse can clear it without any stage sampling inside it
     * (error control never sees the event). Set maxDt below the
     * narrowest input feature's width when driving with short pulses.
     */
    double maxDt = 0.0;
    double recordDt = 0.0;  ///< Sampling interval; 0 records every step.
    std::size_t maxSteps = 50'000'000; ///< Hard stop against stalls.
};

/**
 * Recorded trajectory: times plus full state per sample.
 *
 * Storage is flat: one contiguous buffer of size() * stateDim()
 * doubles (sample-major), so recording a sample is a bulk append with
 * no per-sample vector allocation, and state(s) is a view into the
 * buffer. reserve() pre-sizes the buffers; the simulation driver
 * reserves from the recording stride before integrating.
 *
 * Derivative invariant: cubic-Hermite slopes are kept only while
 * *every* recorded sample has provided one. The first sample recorded
 * without a derivative drops the slope buffer permanently — later
 * derivatives cannot resurrect it, because a partially-populated
 * slope buffer cannot be aligned to the samples. sampleAt then falls
 * back to linear interpolation for the whole trajectory.
 */
class Trajectory
{
  public:
    /**
     * Appends a sample; `deriv` (dstate/dt at the sample, optional)
     * enables cubic Hermite interpolation in sampleAt. All samples
     * must share the first sample's dimension.
     */
    void addSample(double t, const std::vector<double> &state,
                   const std::vector<double> *deriv = nullptr);

    /** Pre-sizes the buffers for `samples` samples of `stateDim`. */
    void reserve(std::size_t samples, std::size_t stateDim);

    std::size_t size() const { return times_.size(); }
    /** State-vector length; 0 until the first sample lands. */
    std::size_t stateDim() const { return stateDim_; }
    const std::vector<double> &times() const { return times_; }
    /** One recorded state vector (a view into the flat buffer). */
    std::span<const double> state(std::size_t sample) const;
    double time(std::size_t sample) const { return times_.at(sample); }

    /** True while every sample has carried a derivative. */
    bool hasDerivs() const { return !times_.empty() && !derivsDropped_; }

    /** Series of one state variable across all samples. */
    std::vector<double> series(int stateIndex) const;

    /**
     * Value of one state variable at time t (clamped to the recorded
     * range): cubic Hermite between samples when derivatives were
     * recorded (O(h^4) — accurate across large adaptive steps),
     * linear otherwise.
     */
    double sampleAt(int stateIndex, double t) const;

    /** Resamples a variable onto a uniform grid of n points. */
    std::vector<double> resample(int stateIndex, double t0, double t1,
                                 std::size_t n) const;

  private:
    std::size_t stateDim_ = 0;
    std::vector<double> times_;
    std::vector<double> states_; ///< Flat, size() * stateDim_.
    std::vector<double> derivs_; ///< Flat; empty once dropped.
    bool derivsDropped_ = false;
};

/** Simulation outcome. */
struct SimResult
{
    Trajectory trajectory;
    std::size_t steps = 0;          ///< Accepted steps.
    std::size_t rejectedSteps = 0;  ///< Dopri5 error-control rejects.
    bool reachedSteadyState = false;
};

/**
 * Integrates the system from t0 to t1.
 * @throws ark::support::SimError on NaN/Inf state or step collapse.
 */
SimResult simulate(const compiler::OdeSystem &system, double t0, double t1,
                   const SimOptions &options = SimOptions{});

/**
 * Integrates from a caller-supplied initial state (ensemble restarts,
 * warm starts) instead of the system's compiled initial values.
 * @throws ark::support::SimError also when `initial` has the wrong
 *         dimension.
 */
SimResult simulate(const compiler::OdeSystem &system,
                   const std::vector<double> &initial, double t0,
                   double t1, const SimOptions &options = SimOptions{});

/** Controls for batched ensemble integration. */
struct EnsembleOptions
{
    SimOptions sim; ///< Per-instance integration controls.

    /**
     * Worker threads; 0 picks the hardware concurrency. The pool is
     * capped at the instance count; 1 degenerates to a serial loop on
     * the calling thread.
     */
    unsigned numThreads = 0;
};

/**
 * Integrates N instances of one system concurrently, instance i
 * starting from initialStates[i]. Results are positionally ordered
 * and bit-identical to calling simulate(system, initialStates[i],
 * t0, t1, options.sim) serially, for every thread count.
 *
 * If any instance throws, the remaining instances still run to
 * completion and the lowest-indexed failure is rethrown.
 */
std::vector<SimResult> simulateEnsemble(
    const compiler::OdeSystem &system,
    const std::vector<std::vector<double>> &initialStates, double t0,
    double t1, const EnsembleOptions &options = EnsembleOptions{});

/**
 * Heterogeneous ensemble: integrates N distinct systems (e.g. one per
 * fabricated chip or per random max-cut instance) concurrently, each
 * from its own compiled initial state. Same ordering, determinism,
 * and failure semantics as the homogeneous overload.
 */
std::vector<SimResult> simulateEnsemble(
    const std::vector<const compiler::OdeSystem *> &systems, double t0,
    double t1, const EnsembleOptions &options = EnsembleOptions{});

/**
 * Integrates until max |dq/dt| falls below `derivTol` (checked every
 * sample) or tMax is reached; `reachedSteadyState` reports which.
 */
SimResult simulateToSteadyState(const compiler::OdeSystem &system,
                                double t0, double tMax, double derivTol,
                                const SimOptions &options = SimOptions{});

} // namespace ark::sim

#endif // ARK_SIM_SIM_H
