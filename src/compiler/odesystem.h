#ifndef ARK_COMPILER_ODESYSTEM_H
#define ARK_COMPILER_ODESYSTEM_H

/**
 * @file
 * The compiled dynamical system: state variables, initial values, and
 * right-hand-side expressions (as trees and evaluation tapes).
 *
 * A node of order p contributes p state variables q_0..q_{p-1}
 * (LowOrdEqs chain dq_i/dt = q_{i+1}); order-0 nodes are inlined as
 * pure functions and own no state.
 *
 * The RHS is compiled twice: into one expr::FusedTape covering the
 * whole system (the hot path — cross-equation common subexpressions
 * are computed once and one pass fills all of dstate) and into
 * per-variable expr::Tapes (reference path for ablation benchmarks
 * and equivalence tests). Scratch is sized once per system
 * (scratchSize()); evalRhs* only grow an undersized caller buffer on
 * the first call, keeping resizes out of the integration loop.
 *
 * The fused program is also the unit of ensemble batching: fusedTape()
 * exposes the compiled layout so sim::BatchRunner can merge
 * structurally identical systems (same stream, different constants —
 * e.g. per-chip mismatch) into one expr::LaneTape and integrate many
 * instances per instruction dispatch. See sim/sim.h for the full
 * four-tier execution ladder.
 */

#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/fusedtape.h"
#include "expr/tape.h"

namespace ark::compiler {

/** Descriptor of one state variable. */
struct StateVar
{
    std::string node; ///< Owning DG node name.
    int derivative;   ///< Which derivative of the node (0-based).

    /** "name" for derivative 0, "name'" etc. above. */
    std::string label() const;
};

/**
 * A system of first-order ODEs dq/dt = f(q, t) produced by the Ark
 * compiler. Immutable after construction.
 */
class OdeSystem
{
  public:
    OdeSystem(std::vector<StateVar> vars, std::vector<double> initial,
              std::vector<expr::ExprPtr> rhs);

    std::size_t size() const { return vars_.size(); }
    const std::vector<StateVar> &vars() const { return vars_; }
    const std::vector<double> &initialState() const { return initial_; }
    const std::vector<expr::ExprPtr> &rhsExprs() const { return rhs_; }

    /**
     * State index of a node's derivative.
     * @throws CompileError when the node has no such state variable.
     */
    int stateIndex(const std::string &node, int derivative = 0) const;

    /**
     * Evaluates the right-hand side into dstate using the fused
     * whole-system tape. `scratch` is caller-owned to keep the hot
     * loop allocation-free; it is grown to scratchSize() on first use
     * and never resized again.
     */
    void evalRhs(const double *state, double t, double *dstate,
                 std::vector<double> &scratch) const;

    /**
     * Per-variable tape evaluation (the pre-fusion hot path); kept
     * for ablation benchmarks and equivalence tests.
     */
    void evalRhsPerTape(const double *state, double t, double *dstate,
                        std::vector<double> &scratch) const;

    /** Reference tree-walking evaluation (tests, perf ablation). */
    void evalRhsInterpreted(const double *state, double t,
                            double *dstate) const;

    /** Scratch doubles evalRhs/evalRhsPerTape require. */
    std::size_t scratchSize() const { return scratchSize_; }

    /** A correctly sized scratch buffer for evalRhs*. */
    std::vector<double> makeScratch() const
    {
        return std::vector<double>(scratchSize_);
    }

    /** The fused whole-system tape (introspection, benchmarks). */
    const expr::FusedTape &fusedTape() const { return fused_; }

    /**
     * The FMA-contracted variant of the fused tape (single-use
     * Mul+Add pairs folded into FusedMulAdd, one std::fma rounding
     * per pair). Same outputs and register file; agrees with
     * fusedTape() to rounding, not bitwise. Selected on the
     * simulation hot paths by sim::SimOptions::tapeFma.
     */
    const expr::FusedTape &fusedTapeFma() const { return fusedFma_; }

    /** The RHS tape a simulation driver should execute. */
    const expr::FusedTape &rhsTape(bool fma) const
    {
        return fma ? fusedFma_ : fused_;
    }

    /** The per-variable tapes (introspection, benchmarks). */
    const std::vector<expr::Tape> &tapes() const { return tapes_; }

    /** Pretty-printed equations, one per line ("d name/dt = ..."). */
    std::string equationsStr() const;

  private:
    std::vector<StateVar> vars_;
    std::vector<double> initial_;
    std::vector<expr::ExprPtr> rhs_;
    std::vector<expr::Tape> tapes_;
    expr::FusedTape fused_;
    expr::FusedTape fusedFma_;
    std::size_t scratchSize_ = 0;
};

} // namespace ark::compiler

#endif // ARK_COMPILER_ODESYSTEM_H
