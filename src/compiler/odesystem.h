#ifndef ARK_COMPILER_ODESYSTEM_H
#define ARK_COMPILER_ODESYSTEM_H

/**
 * @file
 * The compiled dynamical system: state variables, initial values, and
 * right-hand-side expressions (as trees and evaluation tapes).
 *
 * A node of order p contributes p state variables q_0..q_{p-1}
 * (LowOrdEqs chain dq_i/dt = q_{i+1}); order-0 nodes are inlined as
 * pure functions and own no state.
 *
 * Construction compiles exactly one program: the fused whole-system
 * expr::FusedTape (the default hot path — cross-equation common
 * subexpressions are computed once and one pass fills all of dstate).
 * The other programs are compiled lazily on first request, so the
 * cold compile path (218 distinct structures in the §4.5 sweep) never
 * pays for variants it doesn't run:
 *
 *  - per-variable expr::Tapes (reference path for ablation benchmarks
 *    and equivalence tests);
 *  - the FMA-contracted variant (SimOptions::tapeFma);
 *  - the reassociated variant (SimOptions::tapeReassoc — the
 *    expr/rewrite.h pass over the RHS, then FMA contraction).
 *
 * Laziness is invisible to callers: variants build under
 * std::call_once (safe against concurrent ensemble workers), and
 * scratchSize() is an atomic high-water mark that each newly built
 * variant raises before it is ever evaluated. Integration drivers
 * size their scratch after selecting the tape, so a lazily built
 * variant can never see an undersized buffer; evalRhs* additionally
 * grow an undersized caller buffer on first call, keeping resizes out
 * of the integration loop.
 *
 * The fused program is also the unit of ensemble batching: rhsTape()
 * exposes the compiled layout so sim::BatchRunner can merge
 * structurally identical systems (same stream, different constants —
 * e.g. per-chip mismatch) into one expr::LaneTape and integrate many
 * instances per instruction dispatch. See sim/sim.h for the full
 * five-tier execution ladder.
 */

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/fusedtape.h"
#include "expr/rewrite.h"
#include "expr/tape.h"

namespace ark::compiler {

/** Descriptor of one state variable. */
struct StateVar
{
    std::string node; ///< Owning DG node name.
    int derivative;   ///< Which derivative of the node (0-based).

    /** "name" for derivative 0, "name'" etc. above. */
    std::string label() const;
};

/**
 * A system of first-order ODEs dq/dt = f(q, t) produced by the Ark
 * compiler. Logically immutable after construction; the lazily
 * compiled tape variants are memoized derived data (thread-safe,
 * value-independent), not state.
 */
class OdeSystem
{
  public:
    OdeSystem(std::vector<StateVar> vars, std::vector<double> initial,
              std::vector<expr::ExprPtr> rhs);

    /** Copies share the (interned) RHS and fused tape; the lazy
     *  variant cache starts empty in the copy. */
    OdeSystem(const OdeSystem &other);
    OdeSystem &operator=(const OdeSystem &other);
    OdeSystem(OdeSystem &&) noexcept = default;
    OdeSystem &operator=(OdeSystem &&) noexcept = default;

    std::size_t size() const { return vars_.size(); }
    const std::vector<StateVar> &vars() const { return vars_; }
    const std::vector<double> &initialState() const { return initial_; }
    const std::vector<expr::ExprPtr> &rhsExprs() const { return rhs_; }

    /**
     * State index of a node's derivative.
     * @throws CompileError when the node has no such state variable.
     */
    int stateIndex(const std::string &node, int derivative = 0) const;

    /**
     * Evaluates the right-hand side into dstate using the fused
     * whole-system tape. `scratch` is caller-owned to keep the hot
     * loop allocation-free; it is grown to scratchSize() on first use
     * and never resized again.
     */
    void evalRhs(const double *state, double t, double *dstate,
                 std::vector<double> &scratch) const;

    /**
     * Per-variable tape evaluation (the pre-fusion hot path); kept
     * for ablation benchmarks and equivalence tests. Compiles the
     * per-variable tapes on first call.
     */
    void evalRhsPerTape(const double *state, double t, double *dstate,
                        std::vector<double> &scratch) const;

    /** Reference tree-walking evaluation (tests, perf ablation). */
    void evalRhsInterpreted(const double *state, double t,
                            double *dstate) const;

    /**
     * Scratch doubles evalRhs/evalRhsPerTape require. A lazily
     * compiled variant raises this before it can be selected, so
     * sizing scratch after picking a tape is always sufficient.
     */
    std::size_t scratchSize() const
    {
        return lazy_->scratch.load(std::memory_order_acquire);
    }

    /** A correctly sized scratch buffer for evalRhs*. */
    std::vector<double> makeScratch() const
    {
        return std::vector<double>(scratchSize());
    }

    /** The fused whole-system tape (introspection, benchmarks). */
    const expr::FusedTape &fusedTape() const { return fused_; }

    /**
     * The FMA-contracted variant of the fused tape (single-use
     * Mul+Add pairs folded into FusedMulAdd, one std::fma rounding
     * per pair), compiled on first request. Same outputs; agrees with
     * fusedTape() to rounding, not bitwise. Selected on the
     * simulation hot paths by sim::SimOptions::tapeFma.
     */
    const expr::FusedTape &fusedTapeFma() const;

    /**
     * The reassociated variant: the expr/rewrite.h pass over the RHS
     * (Div-by-constant → reciprocal multiply, coefficient gathering)
     * followed by FMA contraction, compiled on first request. Agrees
     * with fusedTape() at tolerance level only; selected by
     * sim::SimOptions::tapeReassoc. Every tier executes this same
     * program under the flag, so lane-vs-scalar bit identity holds.
     */
    const expr::FusedTape &fusedTapeReassoc() const;

    /** What the reassociation pass changed (builds the variant). */
    const expr::RewriteStats &reassocStats() const;

    /**
     * The RHS tape a simulation driver should execute. `reassoc`
     * selects the reassociated (and FMA-contracted) variant
     * regardless of `fma`; otherwise `fma` picks the contracted or
     * plain fused tape.
     */
    const expr::FusedTape &rhsTape(bool fma, bool reassoc = false) const
    {
        if (reassoc)
            return fusedTapeReassoc();
        return fma ? fusedTapeFma() : fused_;
    }

    /** The per-variable tapes (introspection, benchmarks); compiled
     *  on first call. */
    const std::vector<expr::Tape> &tapes() const;

    /** Pretty-printed equations, one per line ("d name/dt = ..."). */
    std::string equationsStr() const;

  private:
    /**
     * Lazily compiled tape variants. Heap-allocated so OdeSystem
     * stays movable (std::once_flag and std::atomic are not); the
     * pointer never changes after construction, so concurrent readers
     * race only on the call_once/atomic members, which are safe.
     */
    struct LazyTapes
    {
        std::once_flag fmaOnce;
        std::once_flag perVarOnce;
        std::once_flag reassocOnce;
        expr::FusedTape fma;
        std::vector<expr::Tape> perVar;
        expr::FusedTape reassoc;
        expr::RewriteStats reassocStats;
        std::atomic<std::size_t> scratch{0};
    };

    std::vector<StateVar> vars_;
    std::vector<double> initial_;
    std::vector<expr::ExprPtr> rhs_;
    expr::FusedTape fused_;
    std::unique_ptr<LazyTapes> lazy_;
};

} // namespace ark::compiler

#endif // ARK_COMPILER_ODESYSTEM_H
