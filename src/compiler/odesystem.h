#ifndef ARK_COMPILER_ODESYSTEM_H
#define ARK_COMPILER_ODESYSTEM_H

/**
 * @file
 * The compiled dynamical system: state variables, initial values, and
 * right-hand-side expressions (as both trees and evaluation tapes).
 *
 * A node of order p contributes p state variables q_0..q_{p-1}
 * (LowOrdEqs chain dq_i/dt = q_{i+1}); order-0 nodes are inlined as
 * pure functions and own no state.
 */

#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/tape.h"

namespace ark::compiler {

/** Descriptor of one state variable. */
struct StateVar
{
    std::string node; ///< Owning DG node name.
    int derivative;   ///< Which derivative of the node (0-based).

    /** "name" for derivative 0, "name'" etc. above. */
    std::string label() const;
};

/**
 * A system of first-order ODEs dq/dt = f(q, t) produced by the Ark
 * compiler. Immutable after construction.
 */
class OdeSystem
{
  public:
    OdeSystem(std::vector<StateVar> vars, std::vector<double> initial,
              std::vector<expr::ExprPtr> rhs);

    std::size_t size() const { return vars_.size(); }
    const std::vector<StateVar> &vars() const { return vars_; }
    const std::vector<double> &initialState() const { return initial_; }
    const std::vector<expr::ExprPtr> &rhsExprs() const { return rhs_; }

    /**
     * State index of a node's derivative.
     * @throws CompileError when the node has no such state variable.
     */
    int stateIndex(const std::string &node, int derivative = 0) const;

    /**
     * Evaluates the right-hand side into dstate using the compiled
     * tapes. `scratch` is caller-owned to keep the hot loop
     * allocation-free.
     */
    void evalRhs(const double *state, double t, double *dstate,
                 std::vector<double> &scratch) const;

    /** Reference tree-walking evaluation (tests, perf ablation). */
    void evalRhsInterpreted(const double *state, double t,
                            double *dstate) const;

    /** Pretty-printed equations, one per line ("d name/dt = ..."). */
    std::string equationsStr() const;

  private:
    std::vector<StateVar> vars_;
    std::vector<double> initial_;
    std::vector<expr::ExprPtr> rhs_;
    std::vector<expr::Tape> tapes_;
};

} // namespace ark::compiler

#endif // ARK_COMPILER_ODESYSTEM_H
