#include "compiler/compiler.h"

#include <unordered_map>
#include <unordered_set>

#include "expr/fold.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/telemetry.h"

namespace ark::compiler {

using expr::Expr;
using expr::ExprKind;
using expr::ExprPtr;
using lang::ProdRule;
using support::cat;
using support::CompileError;

namespace {

/** One compilation session over a (graph, language) pair. */
class Compilation
{
  public:
    Compilation(const dg::Graph &graph, const lang::Language &lang)
        : graph_(graph), lang_(lang)
    {
        allocateState();
    }

    OdeSystem run()
    {
        std::vector<ExprPtr> rhs(vars_.size());
        for (std::size_t idx = 0; idx < graph_.numNodes(); ++idx) {
            dg::NodeId id{static_cast<std::int32_t>(idx)};
            const dg::NodeTypeDef &type = graph_.nodeTypeOf(id);
            if (type.order == 0)
                continue;
            const std::string &name = graph_.node(id).name;
            // LowOrdEqs: dq_i/dt = q_{i+1} for i < p-1.
            for (int d = 0; d + 1 < type.order; ++d) {
                rhs[static_cast<std::size_t>(stateIndex(name, d))] =
                    Expr::stateVar(stateIndex(name, d + 1));
            }
            rhs[static_cast<std::size_t>(stateIndex(name, type.order - 1))] =
                nodeDynamics(id);
        }
        return OdeSystem(vars_, initial_, std::move(rhs));
    }

    /** var(node): state slot or inlined order-0 expression. */
    ExprPtr valueOf(dg::NodeId id)
    {
        const dg::Node &node = graph_.node(id);
        const dg::NodeTypeDef &type = graph_.nodeTypeOf(id);
        if (type.order > 0)
            return Expr::stateVar(stateIndex(node.name, 0));

        auto it = order0Cache_.find(node.name);
        if (it != order0Cache_.end())
            return it->second;
        if (!inProgress_.insert(node.name).second) {
            throw CompileError(cat("order-0 node '", node.name,
                                   "' participates in a pure-function "
                                   "cycle"));
        }
        ExprPtr value = nodeDynamics(id);
        inProgress_.erase(node.name);
        order0Cache_.emplace(node.name, value);
        return value;
    }

  private:
    const dg::Graph &graph_;
    const lang::Language &lang_;
    std::vector<StateVar> vars_;
    std::vector<double> initial_;
    std::unordered_map<std::string, int> indexByKey_;
    std::unordered_map<std::string, ExprPtr> order0Cache_;
    std::unordered_set<std::string> inProgress_;

    static std::string key(const std::string &node, int derivative)
    {
        return node + "#" + std::to_string(derivative);
    }

    void allocateState()
    {
        for (std::size_t idx = 0; idx < graph_.numNodes(); ++idx) {
            dg::NodeId id{static_cast<std::int32_t>(idx)};
            const dg::Node &node = graph_.node(id);
            const dg::NodeTypeDef &type = graph_.nodeTypeOf(id);
            for (int d = 0; d < type.order; ++d) {
                indexByKey_[key(node.name, d)] =
                    static_cast<int>(vars_.size());
                vars_.push_back(StateVar{node.name, d});
                initial_.push_back(graph_.initValue(id, d).asReal());
            }
        }
    }

    int stateIndex(const std::string &node, int derivative) const
    {
        auto it = indexByKey_.find(key(node, derivative));
        support::panicIf(it == indexByKey_.end(),
                         "compiler: missing state variable");
        return it->second;
    }

    /**
     * Aggregated production terms for a node (the pth derivative of
     * order-p nodes; the value of order-0 nodes).
     */
    ExprPtr nodeDynamics(dg::NodeId id)
    {
        const dg::NodeTypeDef &type = graph_.nodeTypeOf(id);
        std::vector<ExprPtr> terms;
        for (dg::EdgeId edgeId : graph_.allEdgesOf(id)) {
            const dg::Edge &edge = graph_.edge(edgeId);
            bool off = !edge.enabled;
            bool self = edge.isSelf();
            ProdRule::Target target =
                (self || edge.src == id) ? ProdRule::Target::Src
                                         : ProdRule::Target::Dst;
            const std::string &srcType = graph_.node(edge.src).type;
            const std::string &dstType = graph_.node(edge.dst).type;
            const ProdRule *rule = lang_.lookupRule(
                edge.type, srcType, dstType, self, target, off);
            if (!rule)
                continue;
            terms.push_back(instantiate(*rule, edgeId));
        }
        if (terms.empty()) {
            return type.reduction == dg::Reduction::Sum
                       ? Expr::real(0.0)
                       : Expr::real(1.0);
        }
        // Terms arrive folded from instantiate(); folding each chain
        // link as it is built keeps the whole dynamics expression
        // folded without a second walk over the tree.
        ExprPtr acc = terms.front();
        for (std::size_t i = 1; i < terms.size(); ++i) {
            acc = expr::foldBinaryOf(type.reduction == dg::Reduction::Sum
                                         ? expr::BinOp::Add
                                         : expr::BinOp::Mul,
                                     acc, terms[i]);
        }
        return acc;
    }

    /**
     * The paper's Rewrite: rule expression onto concrete elements.
     * One bottom-up walk substitutes attribute values, resolves
     * var(s)/var(t), beta-reduces lambda calls, and constant-folds as
     * it rebuilds — the fused equivalent of the former
     * substituteAttrs → substituteNodeVars → inlineLambdaCalls →
     * fold pipeline (4 tree walks), producing the identical
     * (interned) result.
     */
    ExprPtr instantiate(const ProdRule &rule, dg::EdgeId edgeId)
    {
        return substFold(rule.expr, rule, edgeId, graph_.edge(edgeId));
    }

    ExprPtr substFold(const ExprPtr &e, const ProdRule &rule,
                      dg::EdgeId edgeId, const dg::Edge &edge)
    {
        switch (e->kind()) {
          case ExprKind::Literal:
          case ExprKind::Time:
          case ExprKind::StateVar:
          case ExprKind::Var:
            return e;
          case ExprKind::Attr: {
            // e.x / s.x / t.x -> attribute values.
            const std::string &base = e->attrBase();
            if (base == rule.edgeVar) {
                return Expr::literal(
                    graph_.edgeAttr(edgeId, e->attrName()));
            }
            if (base == rule.srcVar) {
                return Expr::literal(
                    graph_.nodeAttr(edge.src, e->attrName()));
            }
            if (base == rule.dstVar) {
                return Expr::literal(
                    graph_.nodeAttr(edge.dst, e->attrName()));
            }
            throw CompileError(cat("production rule references "
                                   "unbound name '", base, "'"));
          }
          case ExprKind::NodeVar: {
            // var(s) / var(t): state or inlined function value
            // (valueOf returns folded expressions).
            const std::string &name = e->nodeName();
            if (name == rule.srcVar)
                return valueOf(edge.src);
            if (name == rule.dstVar)
                return valueOf(edge.dst);
            throw CompileError(cat("var(", name,
                                   ") references an unbound rule "
                                   "name"));
          }
          case ExprKind::Unary:
            return expr::foldUnaryOf(
                e->unOp(), substFold(e->operand(), rule, edgeId, edge));
          case ExprKind::Binary:
            return expr::foldBinaryOf(
                e->binOp(), substFold(e->lhs(), rule, edgeId, edge),
                substFold(e->rhs(), rule, edgeId, edge));
          case ExprKind::If: {
            ExprPtr c = substFold(e->cond(), rule, edgeId, edge);
            ExprPtr a = substFold(e->thenBranch(), rule, edgeId, edge);
            ExprPtr b = substFold(e->elseBranch(), rule, edgeId, edge);
            return expr::foldIfOf(c, a, b);
          }
          case ExprKind::Call: {
            std::vector<ExprPtr> args;
            args.reserve(e->args().size());
            for (const auto &arg : e->args())
                args.push_back(substFold(arg, rule, edgeId, edge));
            if (e->calleeExpr()) {
                ExprPtr callee =
                    substFold(e->calleeExpr(), rule, edgeId, edge);
                if (callee->kind() == ExprKind::Literal &&
                    callee->literalValue().isFunction()) {
                    // Beta-reduce and keep walking: the body may
                    // contain further lambda calls; the substituted
                    // argument subtrees are already processed, so
                    // revisiting them is a no-op.
                    ExprPtr body = expr::applyLambda(
                        callee->literalValue().asFunction(), args);
                    return substFold(body, rule, edgeId, edge);
                }
                return Expr::callExpr(callee, std::move(args));
            }
            return expr::foldCallOf(e->callee(), std::move(args));
          }
        }
        return e;
    }
};

} // namespace

OdeSystem
compile(const dg::Graph &graph, const lang::Language &lang)
{
    static telemetry::Counter &systems =
        telemetry::Registry::shared().counter("ark.compile.systems");
    static telemetry::Histogram &lowerNs =
        telemetry::Registry::shared().histogram("ark.compile.lower_ns");
    telemetry::ScopedSpan span("ark.compile.lower", graph.numNodes());
    telemetry::ScopedTimer timer(lowerNs);
    systems.add();

    Compilation session(graph, lang);
    return session.run();
}

expr::ExprPtr
nodeValueExpr(const dg::Graph &graph, const lang::Language &lang,
              const std::string &nodeName)
{
    auto id = graph.findNode(nodeName);
    if (!id)
        throw CompileError(cat("unknown node '", nodeName, "'"));
    Compilation session(graph, lang);
    // valueOf returns folded expressions (instantiate folds inline).
    return session.valueOf(*id);
}

} // namespace ark::compiler
