#include "compiler/odesystem.h"

#include <sstream>

#include "expr/eval.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/telemetry.h"

namespace ark::compiler {

using support::cat;
using support::CompileError;

std::string
StateVar::label() const
{
    std::string out = node;
    for (int i = 0; i < derivative; ++i)
        out += "'";
    return out;
}

OdeSystem::OdeSystem(std::vector<StateVar> vars,
                     std::vector<double> initial,
                     std::vector<expr::ExprPtr> rhs)
    : vars_(std::move(vars)), initial_(std::move(initial)),
      rhs_(std::move(rhs))
{
    support::panicIf(vars_.size() != initial_.size() ||
                     vars_.size() != rhs_.size(),
                     "OdeSystem: inconsistent component sizes");
    static telemetry::Histogram &tapesNs =
        telemetry::Registry::shared().histogram("ark.compile.tapes_ns");
    static telemetry::Counter &tapeOps =
        telemetry::Registry::shared().counter("ark.compile.tape_ops");
    static telemetry::Counter &tapeRegs =
        telemetry::Registry::shared().counter("ark.compile.tape_regs");
    telemetry::ScopedSpan span("ark.compile.tapes", rhs_.size());
    telemetry::ScopedTimer timer(tapesNs);
    tapes_.reserve(rhs_.size());
    for (const auto &e : rhs_)
        tapes_.push_back(expr::Tape::compile(e));
    fused_ = expr::FusedTape::compile(rhs_);
    // The FMA variant is compiled eagerly so runtime tape selection
    // (sim::SimOptions::tapeFma) is just a pointer pick, the shared
    // scratch below can cover its (possibly larger) register file,
    // and the class stays immutable/movable — a lazily built variant
    // would need synchronization against concurrent ensemble workers.
    // Cost: ~90us on a 32-section line vs ~700us for the surrounding
    // graph compile.
    fusedFma_ = expr::FusedTape::compile(rhs_, /*fuseMulAdd=*/true);

    // One scratch block serves every evaluation path.
    scratchSize_ = static_cast<std::size_t>(fused_.numRegs());
    scratchSize_ = std::max(
        scratchSize_, static_cast<std::size_t>(fusedFma_.numRegs()));
    for (const auto &tape : tapes_) {
        scratchSize_ = std::max(
            scratchSize_, static_cast<std::size_t>(tape.numRegs()));
    }

    tapeOps.add(fused_.size());
    tapeRegs.add(static_cast<std::uint64_t>(fused_.numRegs()));
}

int
OdeSystem::stateIndex(const std::string &node, int derivative) const
{
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (vars_[i].node == node && vars_[i].derivative == derivative)
            return static_cast<int>(i);
    }
    throw CompileError(cat("no state variable for node '", node,
                           "' derivative ", derivative));
}

void
OdeSystem::evalRhs(const double *state, double t, double *dstate,
                   std::vector<double> &scratch) const
{
    if (scratch.size() < scratchSize_)
        scratch.resize(scratchSize_);
    fused_.evalInto(state, t, dstate, scratch.data());
}

void
OdeSystem::evalRhsPerTape(const double *state, double t, double *dstate,
                          std::vector<double> &scratch) const
{
    if (scratch.size() < scratchSize_)
        scratch.resize(scratchSize_);
    double *regs = scratch.data();
    for (std::size_t i = 0; i < tapes_.size(); ++i)
        dstate[i] = tapes_[i].eval(state, t, regs);
}

void
OdeSystem::evalRhsInterpreted(const double *state, double t,
                              double *dstate) const
{
    expr::EvalContext ctx;
    ctx.time = t;
    ctx.lookupState = [state](int index) { return state[index]; };
    for (std::size_t i = 0; i < rhs_.size(); ++i)
        dstate[i] = expr::evalReal(rhs_[i], ctx);
}

std::string
OdeSystem::equationsStr() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        oss << "d " << vars_[i].label() << "/dt = " << rhs_[i]->str()
            << "\n";
    }
    return oss.str();
}

} // namespace ark::compiler
