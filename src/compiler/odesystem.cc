#include "compiler/odesystem.h"

#include <algorithm>
#include <sstream>

#include "expr/eval.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/telemetry.h"

namespace ark::compiler {

using support::cat;
using support::CompileError;

namespace {

/** Lock-free fetch_max for the scratch high-water mark. */
void
raiseScratch(std::atomic<std::size_t> &scratch, std::size_t want)
{
    std::size_t cur = scratch.load(std::memory_order_relaxed);
    while (cur < want &&
           !scratch.compare_exchange_weak(cur, want,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
}

} // namespace

std::string
StateVar::label() const
{
    std::string out = node;
    for (int i = 0; i < derivative; ++i)
        out += "'";
    return out;
}

OdeSystem::OdeSystem(std::vector<StateVar> vars,
                     std::vector<double> initial,
                     std::vector<expr::ExprPtr> rhs)
    : vars_(std::move(vars)), initial_(std::move(initial)),
      rhs_(std::move(rhs)), lazy_(std::make_unique<LazyTapes>())
{
    support::panicIf(vars_.size() != initial_.size() ||
                     vars_.size() != rhs_.size(),
                     "OdeSystem: inconsistent component sizes");
    static telemetry::Histogram &tapesNs =
        telemetry::Registry::shared().histogram("ark.compile.tapes_ns");
    static telemetry::Counter &tapeOps =
        telemetry::Registry::shared().counter("ark.compile.tape_ops");
    static telemetry::Counter &tapeRegs =
        telemetry::Registry::shared().counter("ark.compile.tape_regs");
    telemetry::ScopedSpan span("ark.compile.tapes", rhs_.size());
    telemetry::ScopedTimer timer(tapesNs);
    fused_ = expr::FusedTape::compile(rhs_);
    lazy_->scratch.store(static_cast<std::size_t>(fused_.numRegs()),
                         std::memory_order_release);

    tapeOps.add(fused_.size());
    tapeRegs.add(static_cast<std::uint64_t>(fused_.numRegs()));
}

OdeSystem::OdeSystem(const OdeSystem &other)
    : vars_(other.vars_), initial_(other.initial_), rhs_(other.rhs_),
      fused_(other.fused_), lazy_(std::make_unique<LazyTapes>())
{
    lazy_->scratch.store(static_cast<std::size_t>(fused_.numRegs()),
                         std::memory_order_release);
}

OdeSystem &
OdeSystem::operator=(const OdeSystem &other)
{
    if (this != &other)
        *this = OdeSystem(other);
    return *this;
}

int
OdeSystem::stateIndex(const std::string &node, int derivative) const
{
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (vars_[i].node == node && vars_[i].derivative == derivative)
            return static_cast<int>(i);
    }
    throw CompileError(cat("no state variable for node '", node,
                           "' derivative ", derivative));
}

const expr::FusedTape &
OdeSystem::fusedTapeFma() const
{
    std::call_once(lazy_->fmaOnce, [this] {
        lazy_->fma = expr::FusedTape::compile(rhs_, /*fuseMulAdd=*/true);
        raiseScratch(lazy_->scratch,
                     static_cast<std::size_t>(lazy_->fma.numRegs()));
    });
    return lazy_->fma;
}

const expr::FusedTape &
OdeSystem::fusedTapeReassoc() const
{
    std::call_once(lazy_->reassocOnce, [this] {
        std::vector<expr::ExprPtr> rewritten =
            expr::reassociate(rhs_, &lazy_->reassocStats);
        lazy_->reassoc =
            expr::FusedTape::compile(rewritten, /*fuseMulAdd=*/true);
        raiseScratch(lazy_->scratch,
                     static_cast<std::size_t>(lazy_->reassoc.numRegs()));
    });
    return lazy_->reassoc;
}

const expr::RewriteStats &
OdeSystem::reassocStats() const
{
    fusedTapeReassoc();
    return lazy_->reassocStats;
}

const std::vector<expr::Tape> &
OdeSystem::tapes() const
{
    std::call_once(lazy_->perVarOnce, [this] {
        std::vector<expr::Tape> tapes;
        tapes.reserve(rhs_.size());
        std::size_t regs = 0;
        for (const auto &e : rhs_) {
            tapes.push_back(expr::Tape::compile(e));
            regs = std::max(
                regs, static_cast<std::size_t>(tapes.back().numRegs()));
        }
        raiseScratch(lazy_->scratch, regs);
        lazy_->perVar = std::move(tapes);
    });
    return lazy_->perVar;
}

void
OdeSystem::evalRhs(const double *state, double t, double *dstate,
                   std::vector<double> &scratch) const
{
    if (scratch.size() < scratchSize())
        scratch.resize(scratchSize());
    fused_.evalInto(state, t, dstate, scratch.data());
}

void
OdeSystem::evalRhsPerTape(const double *state, double t, double *dstate,
                          std::vector<double> &scratch) const
{
    const std::vector<expr::Tape> &perVar = tapes();
    if (scratch.size() < scratchSize())
        scratch.resize(scratchSize());
    double *regs = scratch.data();
    for (std::size_t i = 0; i < perVar.size(); ++i)
        dstate[i] = perVar[i].eval(state, t, regs);
}

void
OdeSystem::evalRhsInterpreted(const double *state, double t,
                              double *dstate) const
{
    expr::EvalContext ctx;
    ctx.time = t;
    ctx.lookupState = [state](int index) { return state[index]; };
    for (std::size_t i = 0; i < rhs_.size(); ++i)
        dstate[i] = expr::evalReal(rhs_[i], ctx);
}

std::string
OdeSystem::equationsStr() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        oss << "d " << vars_[i].label() << "/dt = " << rhs_[i]->str()
            << "\n";
    }
    return oss.str();
}

} // namespace ark::compiler
