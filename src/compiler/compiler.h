#ifndef ARK_COMPILER_COMPILER_H
#define ARK_COMPILER_COMPILER_H

/**
 * @file
 * The Ark dynamical system compiler (paper §5, Algorithm 1).
 *
 * For every node the compiler looks up the most specific production
 * rule for each incident edge (falling back along inheritance chains),
 * rewrites the rule expression onto the concrete elements (attribute
 * values substituted, var(.) references resolved), aggregates the
 * terms with the node type's reduction operator, and emits the
 * differential equations. Order-0 nodes lower to pure functions that
 * are inlined into their consumers; switched-off edges contribute
 * only through `off` production rules.
 */

#include "compiler/odesystem.h"
#include "dg/graph.h"
#include "lang/language.h"

namespace ark::compiler {

/**
 * Compiles a dynamical graph into its ODE system.
 *
 * @throws ark::support::CompileError on ambiguous rules, var(.)
 *         references to undefined values, or order-0 dependency
 *         cycles.
 */
OdeSystem compile(const dg::Graph &graph, const lang::Language &lang);

/**
 * Returns the inlined defining expression of an order-0 node, or the
 * state variable reference for order>0 nodes (exposed for tests and
 * for observers that read function-node outputs).
 */
expr::ExprPtr nodeValueExpr(const dg::Graph &graph,
                            const lang::Language &lang,
                            const std::string &nodeName);

} // namespace ark::compiler

#endif // ARK_COMPILER_COMPILER_H
