#include "validator/validator.h"

#include "ilp/flow.h"
#include "ilp/ilp.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace ark::validator {

using lang::MatchClause;
using lang::MatchDir;
using support::cat;
using support::ValidationError;

std::string
ValidationResult::summary() const
{
    return support::join(problems, "; ");
}

GlobalRuleRegistry &
GlobalRuleRegistry::instance()
{
    static GlobalRuleRegistry registry;
    return registry;
}

void
GlobalRuleRegistry::add(const std::string &name, Rule rule)
{
    for (auto &[existing, fn] : rules_) {
        if (existing == name) {
            fn = std::move(rule);
            return;
        }
    }
    rules_.emplace_back(name, std::move(rule));
}

const GlobalRuleRegistry::Rule *
GlobalRuleRegistry::find(const std::string &name) const
{
    for (const auto &[existing, fn] : rules_)
        if (existing == name)
            return &fn;
    return nullptr;
}

namespace {

/**
 * The paper's Matched(n, e, cls): the edge's direction relative to the
 * target matches the clause, its type descends from the clause's edge
 * type, and the far endpoint's type descends from one of the clause's
 * node types.
 */
bool
matched(const dg::Graph &graph, dg::NodeId node, dg::EdgeId edgeId,
        const MatchClause &clause, const lang::Language &lang)
{
    const dg::Edge &edge = graph.edge(edgeId);
    if (!lang.types().isEdgeAncestor(clause.edgeType, edge.type))
        return false;

    switch (clause.dir) {
      case MatchDir::Self:
        return edge.isSelf();
      case MatchDir::Out: {
        if (edge.isSelf() || edge.src != node)
            return false;
        const dg::Node &far = graph.node(edge.dst);
        for (const std::string &type : clause.nodeTypes)
            if (lang.types().isNodeAncestor(type, far.type))
                return true;
        return false;
      }
      case MatchDir::In: {
        if (edge.isSelf() || edge.dst != node)
            return false;
        const dg::Node &far = graph.node(edge.src);
        for (const std::string &type : clause.nodeTypes)
            if (lang.types().isNodeAncestor(type, far.type))
                return true;
        return false;
      }
    }
    return false;
}

/** Algorithm 2 with the branch-and-bound ILP. */
bool
describedIlp(const dg::Graph &graph, dg::NodeId node,
             const lang::Pattern &pattern, const lang::Language &lang)
{
    std::vector<dg::EdgeId> edges = graph.edgesOf(node);
    const std::size_t numEdges = edges.size();
    const std::size_t numClauses = pattern.clauses.size();

    ilp::Model model;
    int first = model.addVars(static_cast<int>(numEdges * numClauses));
    auto varOf = [&](std::size_t i, std::size_t j) {
        return first + static_cast<int>(i * numClauses + j);
    };

    // vars[i][j] = 1 iff edge i is assigned to clause j; pairs that
    // fail Matched are pinned to zero.
    for (std::size_t i = 0; i < numEdges; ++i)
        for (std::size_t j = 0; j < numClauses; ++j)
            if (!matched(graph, node, edges[i], pattern.clauses[j], lang))
                model.fixVar(varOf(i, j), 0);

    // UnityRowSum: every edge is assigned to exactly one clause.
    for (std::size_t i = 0; i < numEdges; ++i) {
        std::vector<int> row;
        row.reserve(numClauses);
        for (std::size_t j = 0; j < numClauses; ++j)
            row.push_back(varOf(i, j));
        model.addSumEquals(row, 1.0);
    }

    // RangedColSum: clause cardinality bounds.
    for (std::size_t j = 0; j < numClauses; ++j) {
        std::vector<int> col;
        col.reserve(numEdges);
        for (std::size_t i = 0; i < numEdges; ++i)
            col.push_back(varOf(i, j));
        const MatchClause &clause = pattern.clauses[j];
        double hi = clause.hi < 0 ? static_cast<double>(numEdges)
                                  : clause.hi;
        model.addSumRange(col, clause.lo, hi);
    }

    return ilp::solve(model).has_value();
}

/** Same decision through the max-flow formulation. */
bool
describedFlow(const dg::Graph &graph, dg::NodeId node,
              const lang::Pattern &pattern, const lang::Language &lang)
{
    std::vector<dg::EdgeId> edges = graph.edgesOf(node);
    std::vector<std::vector<bool>> allowed(
        edges.size(),
        std::vector<bool>(pattern.clauses.size(), false));
    for (std::size_t i = 0; i < edges.size(); ++i)
        for (std::size_t j = 0; j < pattern.clauses.size(); ++j)
            allowed[i][j] =
                matched(graph, node, edges[i], pattern.clauses[j], lang);
    std::vector<int> lo, hi;
    lo.reserve(pattern.clauses.size());
    hi.reserve(pattern.clauses.size());
    for (const MatchClause &clause : pattern.clauses) {
        lo.push_back(clause.lo);
        hi.push_back(clause.hi);
    }
    return ilp::solveAssignment(allowed, lo, hi).has_value();
}

} // namespace

bool
isDescribed(const dg::Graph &graph, dg::NodeId node,
            const lang::Pattern &pattern, const lang::Language &lang,
            Engine engine)
{
    if (engine == Engine::Flow)
        return describedFlow(graph, node, pattern, lang);
    return describedIlp(graph, node, pattern, lang);
}

ValidationResult
validate(const dg::Graph &graph, const lang::Language &lang, Engine engine)
{
    ValidationResult result;

    // Local validity rules (per-node cardinality patterns).
    for (std::size_t idx = 0; idx < graph.numNodes(); ++idx) {
        dg::NodeId id{static_cast<std::int32_t>(idx)};
        const dg::Node &node = graph.node(id);
        for (const lang::Cstr *cstr : lang.cstrsFor(node.type)) {
            bool accepted = cstr->accepts.empty();
            for (const lang::Pattern &pattern : cstr->accepts) {
                if (isDescribed(graph, id, pattern, lang, engine)) {
                    accepted = true;
                    break;
                }
            }
            if (!accepted) {
                result.ok = false;
                result.problems.push_back(
                    cat("node '", node.name, "' of type '", node.type,
                        "' matches no accepted pattern of cstr ",
                        cstr->nodeType, " (from language '",
                        cstr->definedIn, "')"));
                continue;
            }
            for (const lang::Pattern &pattern : cstr->rejects) {
                if (isDescribed(graph, id, pattern, lang, engine)) {
                    result.ok = false;
                    result.problems.push_back(
                        cat("node '", node.name, "' of type '", node.type,
                            "' matches a rejected pattern of cstr ",
                            cstr->nodeType, " (from language '",
                            cstr->definedIn, "')"));
                    break;
                }
            }
        }
    }

    // Global validity rules (extern-func bindings).
    for (const std::string &name : lang.externFuncs()) {
        const GlobalRuleRegistry::Rule *rule =
            GlobalRuleRegistry::instance().find(name);
        if (!rule) {
            result.ok = false;
            result.problems.push_back(
                cat("global rule '", name,
                    "' is not registered with the validator"));
            continue;
        }
        if (!(*rule)(graph)) {
            result.ok = false;
            result.problems.push_back(
                cat("global rule '", name, "' rejected the graph"));
        }
    }

    return result;
}

void
validateOrThrow(const dg::Graph &graph, const lang::Language &lang,
                Engine engine)
{
    ValidationResult result = validate(graph, lang, engine);
    if (!result.ok)
        throw ValidationError(result.summary());
}

} // namespace ark::validator
