#ifndef ARK_VALIDATOR_VALIDATOR_H
#define ARK_VALIDATOR_VALIDATOR_H

/**
 * @file
 * The Ark dynamical graph validator (paper §6).
 *
 * Local validity: every node must be *described* by at least one
 * accepted pattern of every applicable cstr (its type's and every
 * ancestor type's) and by none of the rejected patterns. A pattern
 * describes a node when its enabled edges can be assigned to the
 * pattern's clauses, one clause per edge, respecting each clause's
 * cardinality range — decided exactly with the 0/1 ILP of Algorithm 2
 * or the equivalent max-flow formulation.
 *
 * Global validity: extern-func names bound in the language are looked
 * up in the process-wide GlobalRuleRegistry and run over the whole
 * graph.
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dg/graph.h"
#include "lang/language.h"

namespace ark::validator {

/** Which decision procedure answers pattern queries. */
enum class Engine { Ilp, Flow };

/** Outcome of validating a graph. */
struct ValidationResult
{
    bool ok = true;
    std::vector<std::string> problems;

    /** Joined problem list (empty string when ok). */
    std::string summary() const;
};

/**
 * Registry of global validity callbacks (`extern-func v`).
 * Process-wide; paradigm libraries register their checkers once.
 */
class GlobalRuleRegistry
{
  public:
    using Rule = std::function<bool(const dg::Graph &)>;

    static GlobalRuleRegistry &instance();

    /** Registers or replaces a rule. */
    void add(const std::string &name, Rule rule);

    /** nullptr when unknown. */
    const Rule *find(const std::string &name) const;

  private:
    GlobalRuleRegistry() = default;
    std::vector<std::pair<std::string, Rule>> rules_;
};

/**
 * Decides whether `pattern` describes node `node` (Algorithm 2).
 * Exposed for tests and the ILP-vs-flow ablation bench.
 */
bool isDescribed(const dg::Graph &graph, dg::NodeId node,
                 const lang::Pattern &pattern, const lang::Language &lang,
                 Engine engine = Engine::Ilp);

/**
 * Validates a dynamical graph against its language's local and global
 * rules; never throws for rule violations (collects them instead).
 */
ValidationResult validate(const dg::Graph &graph,
                          const lang::Language &lang,
                          Engine engine = Engine::Ilp);

/** validate() + throw ValidationError when not ok. */
void validateOrThrow(const dg::Graph &graph, const lang::Language &lang,
                     Engine engine = Engine::Ilp);

} // namespace ark::validator

#endif // ARK_VALIDATOR_VALIDATOR_H
