#include "paradigms/obc.h"

#include <cmath>
#include <numbers>

#include "lang/func.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::paradigms::obc {

using lang::GraphBuilder;
using support::cat;
using support::SemaError;

const std::string &
obcSource()
{
    // Figure 12a verbatim.
    static const std::string source = R"ARK(
lang obc {
    ntyp(1,sum) Osc {};
    etyp Cpl {attr k=real[-8,8]};
    prod(e:Cpl,s:Osc->t:Osc) s <= -1.6e9*e.k*sin(var(s)-var(t));
    prod(e:Cpl,s:Osc->t:Osc) t <= -1.6e9*e.k*sin(-var(s)+var(t));
    prod(e:Cpl,s:Osc->s:Osc) s <= -1e9*sin(2*var(s));
}
)ARK";
    return source;
}

const std::string &
ofsObcSource()
{
    // Figure 12b verbatim (offset sigma 0.02; see DESIGN.md on the
    // mm(s0,s1) convention).
    static const std::string source = R"ARK(
lang ofs-obc inherits obc {
    etyp Cpl_ofs inherit Cpl {attr k=real[-8,8],
                              attr offset=real[0,0] mm(0.02,0)};
    prod(e:Cpl_ofs,s:Osc->t:Osc)
        s <= -1.6e9*e.k*(e.offset+sin(var(s)-var(t)));
    prod(e:Cpl_ofs,s:Osc->t:Osc)
        t <= -1.6e9*e.k*(e.offset+sin(-var(s)+var(t)));
}
)ARK";
    return source;
}

const std::string &
interconObcSource()
{
    // Figure 13 verbatim.
    static const std::string source = R"ARK(
lang intercon-obc inherits obc {
    ntyp(1,sum) Osc_G0 inherit Osc {};
    ntyp(1,sum) Osc_G1 inherit Osc {};
    etyp Cpl_l inherit Cpl {attr k=real[-8,8], attr cost=int[1,1]};
    etyp Cpl_g inherit Cpl {attr k=real[-8,8], attr cost=int[10,10]};

    cstr Osc_G0 {acc[match(1,1,Cpl_l,Osc_G0),
        match(0,inf,Cpl_l,Osc_G0->[Osc_G0]),
        match(0,inf,Cpl_l,[Osc_G0]->Osc_G0),
        match(0,inf,Cpl_g,Osc_G0->[Osc]),
        match(0,inf,Cpl_g,[Osc]->Osc_G0)]}
    cstr Osc_G1 {acc[match(1,1,Cpl_l,Osc_G1),
        match(0,inf,Cpl_l,Osc_G1->[Osc_G1]),
        match(0,inf,Cpl_l,[Osc_G1]->Osc_G1),
        match(0,inf,Cpl_g,Osc_G1->[Osc]),
        match(0,inf,Cpl_g,[Osc]->Osc_G1)]}
}
)ARK";
    return source;
}

void
registerAll(lang::LanguageRegistry &registry)
{
    registry.addProgram(obcSource());
    registry.addProgram(ofsObcSource());
    registry.addProgram(interconObcSource());
}

std::string
oscName(int v)
{
    return cat("OSC_", v);
}

namespace {

void
checkInstance(const MaxcutInstance &instance)
{
    if (instance.numVertices < 1)
        throw SemaError("max-cut instance needs at least one vertex");
    for (const auto &[a, b] : instance.edges) {
        if (a < 0 || b < 0 || a >= instance.numVertices ||
            b >= instance.numVertices || a == b) {
            throw SemaError(cat("bad max-cut edge (", a, ",", b, ")"));
        }
    }
}

void
addOscillators(GraphBuilder &builder, const MaxcutInstance &instance,
               const std::vector<double> &initPhases,
               const std::string &oscType, const std::string &selfType)
{
    for (int v = 0; v < instance.numVertices; ++v) {
        builder.node(oscName(v), oscType);
        if (!initPhases.empty())
            builder.init(oscName(v), 0,
                         initPhases[static_cast<std::size_t>(v)]);
        // Sub-harmonic injection locking (the -C2 sin(2 phi) term).
        std::string self = cat("SHIL_", v);
        builder.edge(self, selfType, oscName(v), oscName(v));
        builder.attr(self, "k", 1.0);
        if (selfType == "Cpl_l")
            builder.attr(self, "cost", expr::Value::integer(1));
    }
}

} // namespace

dg::Graph
buildMaxcut(const lang::Language &language, const MaxcutInstance &instance,
            const MaxcutSpec &spec)
{
    checkInstance(instance);
    if (!spec.initPhases.empty() &&
        static_cast<int>(spec.initPhases.size()) != instance.numVertices) {
        throw SemaError("initPhases size must match the vertex count");
    }
    const std::string cplType = spec.withOffset ? "Cpl_ofs" : "Cpl";
    if (spec.withOffset && !language.types().hasEdgeType("Cpl_ofs")) {
        throw SemaError(cat("language '", language.name(),
                            "' lacks Cpl_ofs; use ofs-obc"));
    }

    GraphBuilder builder(language, spec.seed);
    addOscillators(builder, instance, spec.initPhases, "Osc", "Cpl");
    int index = 0;
    for (const auto &[a, b] : instance.edges) {
        std::string name = cat("CPL_", index++);
        builder.edge(name, cplType, oscName(a), oscName(b));
        builder.attr(name, "k", spec.coupling);
        if (spec.withOffset)
            builder.attr(name, "offset", 0.0);
    }
    return builder.take();
}

std::optional<std::vector<int>>
decodePartition(const std::vector<double> &phases, double d)
{
    const double pi = std::numbers::pi;
    std::vector<int> partition;
    partition.reserve(phases.size());
    for (double phase : phases) {
        // Fold into [0, 2pi).
        double folded = std::fmod(phase, 2.0 * pi);
        if (folded < 0)
            folded += 2.0 * pi;
        double dist0 = std::min(folded, 2.0 * pi - folded);
        double distPi = std::fabs(folded - pi);
        if (dist0 <= d) {
            partition.push_back(0);
        } else if (distPi <= d) {
            partition.push_back(1);
        } else {
            return std::nullopt; // "unknown" oscillator
        }
    }
    return partition;
}

int
cutSize(const MaxcutInstance &instance, const std::vector<int> &partition)
{
    int cut = 0;
    for (const auto &[a, b] : instance.edges) {
        if (partition[static_cast<std::size_t>(a)] !=
            partition[static_cast<std::size_t>(b)]) {
            ++cut;
        }
    }
    return cut;
}

int
bruteForceMaxCut(const MaxcutInstance &instance)
{
    checkInstance(instance);
    support::panicIf(instance.numVertices > 20,
                     "bruteForceMaxCut: instance too large");
    int best = 0;
    for (std::uint32_t mask = 0;
         mask < (1u << instance.numVertices); ++mask) {
        int cut = 0;
        for (const auto &[a, b] : instance.edges) {
            bool sideA = (mask >> a) & 1u;
            bool sideB = (mask >> b) & 1u;
            cut += sideA != sideB;
        }
        best = std::max(best, cut);
    }
    return best;
}

dg::Graph
buildGrouped(const lang::Language &language, const MaxcutInstance &instance,
             const GroupedSpec &spec)
{
    checkInstance(instance);
    if (static_cast<int>(spec.groups.size()) != instance.numVertices)
        throw SemaError("groups size must match the vertex count");
    if (!language.types().hasNodeType("Osc_G0"))
        throw SemaError("grouped networks need the intercon-obc language");

    GraphBuilder builder(language, spec.seed);
    for (int v = 0; v < instance.numVertices; ++v) {
        int group = spec.groups[static_cast<std::size_t>(v)];
        if (group != 0 && group != 1)
            throw SemaError(cat("vertex ", v, " has invalid group ",
                                group));
        builder.node(oscName(v), group == 0 ? "Osc_G0" : "Osc_G1");
        if (!spec.initPhases.empty())
            builder.init(oscName(v), 0,
                         spec.initPhases[static_cast<std::size_t>(v)]);
        std::string self = cat("SHIL_", v);
        builder.edge(self, "Cpl_l", oscName(v), oscName(v));
        builder.attr(self, "k", 1.0);
        builder.attr(self, "cost", expr::Value::integer(1));
    }
    int index = 0;
    for (const auto &[a, b] : instance.edges) {
        bool local = spec.groups[static_cast<std::size_t>(a)] ==
                     spec.groups[static_cast<std::size_t>(b)];
        std::string name = cat("CPL_", index++);
        builder.edge(name, local ? "Cpl_l" : "Cpl_g", oscName(a),
                     oscName(b));
        builder.attr(name, "k", spec.coupling);
        builder.attr(name, "cost",
                     expr::Value::integer(local ? 1 : 10));
    }
    return builder.take();
}

dg::Graph
buildGroupedIllegal(const lang::Language &language)
{
    if (!language.types().hasNodeType("Osc_G0"))
        throw SemaError("grouped networks need the intercon-obc language");
    GraphBuilder builder(language, 0);
    builder.node(oscName(0), "Osc_G0");
    builder.node(oscName(1), "Osc_G1");
    for (int v = 0; v < 2; ++v) {
        std::string self = cat("SHIL_", v);
        builder.edge(self, "Cpl_l", oscName(v), oscName(v));
        builder.attr(self, "k", 1.0);
        builder.attr(self, "cost", expr::Value::integer(1));
    }
    // Cross-group connection using a *local* edge: must be rejected.
    builder.edge("CPL_bad", "Cpl_l", oscName(0), oscName(1));
    builder.attr("CPL_bad", "k", -1.0);
    builder.attr("CPL_bad", "cost", expr::Value::integer(1));
    return builder.take();
}

std::int64_t
interconnectCost(const dg::Graph &graph)
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < graph.numEdges(); ++i) {
        dg::EdgeId id{static_cast<std::int32_t>(i)};
        const dg::Edge &edge = graph.edge(id);
        if (graph.edgeTypeOf(id).findAttr("cost") && edge.enabled &&
            !edge.isSelf()) {
            total += graph.edgeAttr(id, "cost").asInt();
        }
    }
    return total;
}

} // namespace ark::paradigms::obc
