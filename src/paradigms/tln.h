#ifndef ARK_PARADIGMS_TLN_H
#define ARK_PARADIGMS_TLN_H

/**
 * @file
 * The transmission-line network (TLN) compute paradigm (paper §2, §4.4)
 * and its GmC hardware extension (§4.5).
 *
 * The `tln` language implements the discretized Telegrapher's
 * equations over alternating V/I nodes; `gmc-tln` extends it with
 * mismatch-sensitive Vm/Im node types (Cint variation) and Em edge
 * types (Gm variation, via the modified Telegrapher's equations of
 * §2.3). Both languages ship as embedded Ark source so every use
 * exercises the full frontend.
 *
 * Builders generate the paper's workloads: linear lines, branched
 * lines (Figure 2), and the `br-func` programmable-branch function of
 * Figure 8.
 */

#include <cstdint>
#include <string>

#include "dg/graph.h"
#include "lang/registry.h"

namespace ark::paradigms::tln {

/** Ark source of the `tln` language. */
const std::string &tlnSource();

/** Ark source of the `gmc-tln` extension. */
const std::string &gmcTlnSource();

/** Ark source of the Figure-8 `br-func` example function. */
const std::string &brFuncSource();

/**
 * Registers `tln`, `gmc-tln`, and `br-func` into a registry.
 * Idempotent per registry? No — call once per registry.
 */
void registerAll(lang::LanguageRegistry &registry);

/** Parameters shared by the line builders. */
struct LineSpec
{
    /** Number of LC sections (V-I pairs) after the input node. */
    int sections = 26;
    double inductance = 1e-9;  ///< l attribute per I node.
    double capacitance = 1e-9; ///< c attribute per V node.
    /** Norton source conductance (InpI g attribute). */
    double sourceConductance = 1.0;
    /** Termination conductance at OUT_V (g attribute). */
    double termConductance = 1.0;
    double pulseStart = 0.0;
    double pulseWidth = 2e-8;

    /** Substitute Vm/Im node types (Cint mismatch, gmc-tln only). */
    bool mismatchC = false;
    /** Substitute Em edge types (Gm mismatch, gmc-tln only). */
    bool mismatchGm = false;
    /** Mismatch sampling seed ("fabricated instance" id). */
    std::uint64_t seed = 0;
};

/**
 * Builds a linear t-line (Figure 2-(ii)):
 * InpI_0 -> IN_V -> I_0 -> V_1 -> ... -> OUT_V.
 *
 * @param language `tln`, or `gmc-tln` when a mismatch flag is set.
 */
dg::Graph buildLine(const lang::Language &language, const LineSpec &spec);

/** Branched line parameters (Figure 2-(i)). */
struct BranchSpec
{
    LineSpec line;
    /** Sections in the open-ended stub. */
    int stubSections = 8;
    /** Index of the main-line V node the stub attaches to (1-based
     *  section index; 0 attaches at IN_V). */
    int attachAt = 13;
};

/** Builds a branched t-line; the stub end is left open (reflective). */
dg::Graph buildBranched(const lang::Language &language,
                        const BranchSpec &spec);

/**
 * Builds a deliberately malformed line containing a V-V connection
 * (Figure 2-(iii)); the TLN validator must reject it.
 */
dg::Graph buildMalformed(const lang::Language &language);

/** Name of the observation node in all builders. */
inline const char *outputNode() { return "OUT_V"; }

/** Name of the injection node in all builders. */
inline const char *inputNode() { return "InpI_0"; }

} // namespace ark::paradigms::tln

#endif // ARK_PARADIGMS_TLN_H
