#include "paradigms/tln.h"

#include "lang/func.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::paradigms::tln {

using lang::GraphBuilder;
using support::cat;
using support::SemaError;

const std::string &
tlnSource()
{
    // Figure 7 of the paper, with the elided rules reconstructed from
    // Eq. 1 and the Figure 14 (mm-tln) listing with ws = wt = 1.
    static const std::string source = R"ARK(
lang tln {
    ntyp(1,sum) V {attr c=real[1e-10,1e-08], attr g=real[0,inf]};
    ntyp(1,sum) I {attr l=real[1e-10,1e-08], attr r=real[0,inf]};
    ntyp(0,sum) InpV {attr fn=fn(a0), attr r=real[0,inf]};
    ntyp(0,sum) InpI {attr fn=fn(a0), attr g=real[0,inf]};
    etyp E {};

    // V -> I: the V node sees -I/C, the I node sees +V/L.
    prod(e:E,s:V->t:I) s <= -var(t)/s.c;
    prod(e:E,s:V->t:I) t <= var(s)/t.l;
    // I -> V: the I node sees -V/L, the V node sees +I/C.
    prod(e:E,s:I->t:V) s <= -var(t)/s.l;
    prod(e:E,s:I->t:V) t <= var(s)/t.c;
    // Self edges carry the loss terms -G*V/C and -R*I/L.
    prod(e:E,s:V->s:V) s <= -s.g*var(s)/s.c;
    prod(e:E,s:I->s:I) s <= -s.r*var(s)/s.l;
    // Norton/Thevenin input sources.
    prod(e:E,s:InpV->t:V) t <= (-var(t)+s.fn(time))/(s.r*t.c);
    prod(e:E,s:InpV->t:I) t <= (-s.r*var(t)+s.fn(time))/t.l;
    prod(e:E,s:InpI->t:V) t <= (-s.g*var(t)+s.fn(time))/t.c;
    prod(e:E,s:InpI->t:I) t <= (-var(t)+s.fn(time))/(s.g*t.l);

    cstr V {acc[
        match(0,inf,E,V->[I]), match(0,inf,E,[I]->V),
        match(0,inf,E,[InpV]->V), match(0,inf,E,[InpI]->V),
        match(1,1,E,V)]}
    cstr I {acc[
        match(0,1,E,I->[V]), match(0,1,E,[V,InpV,InpI]->I),
        match(1,1,E,I)]}
}
)ARK";
    return source;
}

const std::string &
gmcTlnSource()
{
    // Figure 9 with the remaining Em rules reconstructed from the
    // Figure 14 listing (modified Telegrapher's equations, §2.3).
    static const std::string source = R"ARK(
lang gmc-tln inherits tln {
    ntyp(1,sum) Vm inherit V
        {attr c=real[1e-10,1e-08] mm(0,0.1), attr g=real[0,inf]};
    ntyp(1,sum) Im inherit I
        {attr l=real[1e-10,1e-08] mm(0,0.1), attr r=real[0,inf]};
    etyp Em inherit E {attr ws=real[0.5,2] mm(0,0.1),
                       attr wt=real[0.5,2] mm(0,0.1)};

    prod(e:Em,s:V->t:I) s <= -e.ws*var(t)/s.c;
    prod(e:Em,s:V->t:I) t <= e.wt*var(s)/t.l;
    prod(e:Em,s:I->t:V) s <= -e.ws*var(t)/s.l;
    prod(e:Em,s:I->t:V) t <= e.wt*var(s)/t.c;
    prod(e:Em,s:InpV->t:V) t <= e.wt*(-var(t)+s.fn(time))/(s.r*t.c);
    prod(e:Em,s:InpV->t:I) t <= e.wt*(-s.r*var(t)+s.fn(time))/t.l;
    prod(e:Em,s:InpI->t:V) t <= e.wt*(-s.g*var(t)+s.fn(time))/t.c;
    prod(e:Em,s:InpI->t:I) t <= e.wt*(-var(t)+s.fn(time))/(s.g*t.l);
}
)ARK";
    return source;
}

const std::string &
brFuncSource()
{
    // Figure 8: a 3-section line with a switchable 2-section branch
    // hanging off V_1. All attributes match the paper's parameters.
    static const std::string source = R"ARK(
func br-func (br:int[0,1]) uses tln {
    node InpI_0 : InpI;
    node IN_V : V;
    node I_0 : I; node V_1 : V; node I_1 : I; node V_2 : V;
    node I_2 : I; node OUT_V : V;
    node IB_0 : I; node VB_0 : V; node IB_1 : I; node VB_1 : V;

    edge <InpI_0, IN_V> E_in : E;
    edge <IN_V, I_0> E_0 : E;
    edge <I_0, V_1> E_1 : E;
    edge <V_1, I_1> E_2 : E;
    edge <I_1, V_2> E_3 : E;
    edge <V_2, I_2> E_4 : E;
    edge <I_2, OUT_V> E_5 : E;
    edge <V_1, IB_0> E_6 : E;
    edge <IB_0, VB_0> E_7 : E;
    edge <VB_0, IB_1> E_8 : E;
    edge <IB_1, VB_1> E_9 : E;
    edge <IN_V, IN_V> E_10 : E;
    edge <V_1, V_1> E_11 : E;
    edge <V_2, V_2> E_12 : E;
    edge <OUT_V, OUT_V> E_13 : E;
    edge <VB_0, VB_0> E_14 : E;
    edge <VB_1, VB_1> E_15 : E;
    edge <I_0, I_0> E_16 : E;
    edge <I_1, I_1> E_17 : E;
    edge <I_2, I_2> E_18 : E;
    edge <IB_0, IB_0> E_19 : E;
    edge <IB_1, IB_1> E_20 : E;

    set-switch E_6 when br;

    set-attr InpI_0.fn = lambd(t0): pulse(t0, 0.0, 2e-8);
    set-attr InpI_0.g = 1.0;
    set-attr IN_V.c = 1e-09;  set-attr IN_V.g = 0.0;
    set-attr V_1.c = 1e-09;   set-attr V_1.g = 0.0;
    set-attr V_2.c = 1e-09;   set-attr V_2.g = 0.0;
    set-attr OUT_V.c = 1e-09; set-attr OUT_V.g = 1.0;
    set-attr VB_0.c = 1e-09;  set-attr VB_0.g = 0.0;
    set-attr VB_1.c = 1e-09;  set-attr VB_1.g = 0.0;
    set-attr I_0.l = 1e-09;   set-attr I_0.r = 0.0;
    set-attr I_1.l = 1e-09;   set-attr I_1.r = 0.0;
    set-attr I_2.l = 1e-09;   set-attr I_2.r = 0.0;
    set-attr IB_0.l = 1e-09;  set-attr IB_0.r = 0.0;
    set-attr IB_1.l = 1e-09;  set-attr IB_1.r = 0.0;
}
)ARK";
    return source;
}

void
registerAll(lang::LanguageRegistry &registry)
{
    registry.addProgram(tlnSource());
    registry.addProgram(gmcTlnSource());
    registry.addProgram(brFuncSource());
}

namespace {

/** Per-spec type names: ideal vs mismatch-substituted. */
struct TypeNames
{
    std::string v, i, e;
};

TypeNames
typeNames(const lang::Language &language, const LineSpec &spec)
{
    TypeNames names{"V", "I", "E"};
    if (spec.mismatchC) {
        names.v = "Vm";
        names.i = "Im";
    }
    if (spec.mismatchGm)
        names.e = "Em";
    if ((spec.mismatchC || spec.mismatchGm) &&
        !language.types().hasNodeType("Vm") &&
        !language.types().hasEdgeType("Em")) {
        throw SemaError(cat("language '", language.name(),
                            "' lacks the mismatch types; use gmc-tln"));
    }
    return names;
}

/** Emits one V node with its loss self-edge. */
void
addVNode(GraphBuilder &builder, const TypeNames &names,
         const LineSpec &spec, const std::string &name, double g)
{
    builder.node(name, names.v);
    builder.edge("self_" + name, "E", name, name);
    builder.attr(name, "c", spec.capacitance);
    builder.attr(name, "g", g);
}

/** Emits one I node with its loss self-edge. */
void
addINode(GraphBuilder &builder, const TypeNames &names,
         const LineSpec &spec, const std::string &name)
{
    builder.node(name, names.i);
    builder.edge("self_" + name, "E", name, name);
    builder.attr(name, "l", spec.inductance);
    builder.attr(name, "r", 0.0);
}

/** Emits a coupling edge, setting Em weights when applicable. */
void
addCoupling(GraphBuilder &builder, const TypeNames &names,
            const std::string &name, const std::string &src,
            const std::string &dst)
{
    builder.edge(name, names.e, src, dst);
    if (names.e == "Em") {
        builder.attr(name, "ws", 1.0);
        builder.attr(name, "wt", 1.0);
    }
}

/** Adds the pulsed Norton input source feeding `target`. */
void
addInput(GraphBuilder &builder, const TypeNames &names,
         const LineSpec &spec, const std::string &target)
{
    builder.node(inputNode(), "InpI");
    expr::Lambda pulse;
    pulse.params = {"t0"};
    pulse.body = expr::Expr::call(
        "pulse", {expr::Expr::var("t0"), expr::Expr::real(spec.pulseStart),
                  expr::Expr::real(spec.pulseWidth)});
    builder.attr(inputNode(), "fn", expr::Value::function(std::move(pulse)));
    builder.attr(inputNode(), "g", spec.sourceConductance);
    addCoupling(builder, names, "E_inp", inputNode(), target);
}

} // namespace

dg::Graph
buildLine(const lang::Language &language, const LineSpec &spec)
{
    if (spec.sections < 1)
        throw SemaError("a t-line needs at least one LC section");
    TypeNames names = typeNames(language, spec);
    GraphBuilder builder(language, spec.seed);

    // V chain: IN_V, V_1 .. V_{n-1}, OUT_V; I chain: I_0 .. I_{n-1}.
    addVNode(builder, names, spec, "IN_V", 0.0);
    for (int k = 1; k < spec.sections; ++k)
        addVNode(builder, names, spec, cat("V_", k), 0.0);
    addVNode(builder, names, spec, outputNode(), spec.termConductance);
    for (int k = 0; k < spec.sections; ++k)
        addINode(builder, names, spec, cat("I_", k));

    auto vName = [&](int k) -> std::string {
        if (k == 0)
            return "IN_V";
        if (k == spec.sections)
            return outputNode();
        return cat("V_", k);
    };
    for (int k = 0; k < spec.sections; ++k) {
        addCoupling(builder, names, cat("EV_", k), vName(k),
                    cat("I_", k));
        addCoupling(builder, names, cat("EI_", k), cat("I_", k),
                    vName(k + 1));
    }
    addInput(builder, names, spec, "IN_V");
    return builder.take();
}

dg::Graph
buildBranched(const lang::Language &language, const BranchSpec &spec)
{
    if (spec.stubSections < 1)
        throw SemaError("the branch stub needs at least one section");
    if (spec.attachAt < 0 || spec.attachAt > spec.line.sections)
        throw SemaError("branch attachment index out of range");
    TypeNames names = typeNames(language, spec.line);
    GraphBuilder builder(language, spec.line.seed);

    addVNode(builder, names, spec.line, "IN_V", 0.0);
    for (int k = 1; k < spec.line.sections; ++k)
        addVNode(builder, names, spec.line, cat("V_", k), 0.0);
    addVNode(builder, names, spec.line, outputNode(),
             spec.line.termConductance);
    for (int k = 0; k < spec.line.sections; ++k)
        addINode(builder, names, spec.line, cat("I_", k));

    auto vName = [&](int k) -> std::string {
        if (k == 0)
            return "IN_V";
        if (k == spec.line.sections)
            return outputNode();
        return cat("V_", k);
    };
    for (int k = 0; k < spec.line.sections; ++k) {
        addCoupling(builder, names, cat("EV_", k), vName(k),
                    cat("I_", k));
        addCoupling(builder, names, cat("EI_", k), cat("I_", k),
                    vName(k + 1));
    }

    // Open-ended stub hanging off the attachment node. The final V
    // node has no termination, so waves reflect back into the main
    // line ("echo" in Figure 4a).
    std::string attach = vName(spec.attachAt);
    for (int k = 0; k < spec.stubSections; ++k) {
        addINode(builder, names, spec.line, cat("IB_", k));
        addVNode(builder, names, spec.line, cat("VB_", k), 0.0);
        std::string from = k == 0 ? attach : cat("VB_", k - 1);
        addCoupling(builder, names, cat("EBV_", k), from, cat("IB_", k));
        addCoupling(builder, names, cat("EBI_", k), cat("IB_", k),
                    cat("VB_", k));
    }
    addInput(builder, names, spec.line, "IN_V");
    return builder.take();
}

dg::Graph
buildMalformed(const lang::Language &language)
{
    LineSpec spec;
    spec.sections = 1;
    TypeNames names = typeNames(language, spec);
    GraphBuilder builder(language, spec.seed);
    addVNode(builder, names, spec, "IN_V", 0.0);
    addVNode(builder, names, spec, outputNode(), 1.0);
    addINode(builder, names, spec, "I_0");
    addCoupling(builder, names, "EV_0", "IN_V", "I_0");
    addCoupling(builder, names, "EI_0", "I_0", outputNode());
    // The malformation: a direct V-V connection (Figure 2-(iii)).
    addCoupling(builder, names, "E_bad", "IN_V", outputNode());
    addInput(builder, names, spec, "IN_V");
    return builder.take();
}

} // namespace ark::paradigms::tln
