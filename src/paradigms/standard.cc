#include "paradigms/standard.h"

#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/tln.h"

namespace ark::paradigms {

lang::LanguageRegistry
makeStandardRegistry()
{
    lang::LanguageRegistry registry;
    tln::registerAll(registry);
    cnn::registerAll(registry);
    obc::registerAll(registry);
    return registry;
}

} // namespace ark::paradigms
