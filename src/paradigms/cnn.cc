#include "paradigms/cnn.h"

#include "lang/func.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::paradigms::cnn {

using lang::GraphBuilder;
using support::cat;
using support::SemaError;

const std::string &
cnnSource()
{
    // Figure 10a. Deviations (see DESIGN.md): the cell self edge is
    // iE in both the production rule and the constraint; external
    // inputs are carried by an Inp attribute `u` (the paper's listing
    // reads var(s) of a stateless node); cstr V admits the B-template
    // input edges the prod rules require.
    static const std::string source = R"ARK(
lang cnn {
    ntyp(1,sum) V {attr z=real[-10,10]};
    ntyp(0,sum) Out {};
    ntyp(0,sum) Inp {attr u=real[-10,10]};
    etyp iE {};
    etyp fE {attr g=real[-10,10]};

    prod(e:fE,s:Inp->t:V) t <= e.g*s.u;
    prod(e:iE,s:V->t:Out) t <= sat(var(s));
    prod(e:iE,s:V->s:V) s <= s.z - var(s);
    prod(e:fE,s:Out->t:V) t <= e.g*var(s);

    cstr V {acc[match(1,1,iE,V->[Out]),
                match(4,9,fE,[Out]->V),
                match(4,9,fE,[Inp]->V),
                match(1,1,iE,V)]}
    cstr Out {acc[match(4,9,fE,Out->[V]),
                  match(1,1,iE,[V]->Out)]}
    cstr Inp {acc[match(4,9,fE,Inp->[V])]}
}
)ARK";
    return source;
}

const std::string &
hwCnnSource()
{
    // Figure 10b, with the Inp rule adapted to the `u` attribute.
    static const std::string source = R"ARK(
lang hw-cnn inherits cnn {
    ntyp(0,sum) OutNL inherit Out {};
    ntyp(1,sum) Vm inherit V {attr z=real[-10,10],
                              attr mm=real[1,1] mm(0,0.1)};
    etyp fEm inherit fE {attr g=real[-10,10] mm(0,0.1)};

    prod(e:fE,s:Inp->t:Vm) t <= e.g*t.mm*s.u;
    prod(e:iE,s:Vm->s:Vm) s <= s.mm*(s.z - var(s));
    prod(e:fE,s:Out->t:Vm) t <= e.g*t.mm*var(s);
    prod(e:iE,s:V->t:OutNL) t <= sat_ni(var(s));
}
)ARK";
    return source;
}

void
registerAll(lang::LanguageRegistry &registry)
{
    registry.addProgram(cnnSource());
    registry.addProgram(hwCnnSource());
}

Template
edgeDetectA()
{
    // Chua-Yang EDGE template: self-feedback only.
    return Template{0, 0, 0, 0, 2, 0, 0, 0, 0};
}

Template
edgeDetectB()
{
    // 8-neighbour Laplacian.
    return Template{-1, -1, -1, -1, 8, -1, -1, -1, -1};
}

double
edgeDetectZ()
{
    return -1.0;
}

std::string
cellName(int row, int col)
{
    return cat("X_", row, "_", col);
}

dg::Graph
buildCnn(const lang::Language &language, const CnnSpec &spec,
         const std::vector<double> &input)
{
    const int w = spec.width;
    const int h = spec.height;
    if (w < 3 || h < 3)
        throw SemaError("CNN grids must be at least 3x3");
    if (static_cast<int>(input.size()) != w * h) {
        throw SemaError(cat("input image has ", input.size(),
                            " pixels, expected ", w * h));
    }
    const bool needsHw =
        spec.mismatchZ || spec.mismatchG || spec.nonIdealSat;
    if (needsHw && !language.types().hasNodeType("Vm")) {
        throw SemaError(cat("language '", language.name(),
                            "' lacks the hw-cnn nonideality types"));
    }

    const std::string cellType = spec.mismatchZ ? "Vm" : "V";
    const std::string outType = spec.nonIdealSat ? "OutNL" : "Out";
    const std::string weightType = spec.mismatchG ? "fEm" : "fE";

    GraphBuilder builder(language, spec.seed);

    auto outName = [](int r, int c) { return cat("OUT_", r, "_", c); };
    auto inpName = [](int r, int c) { return cat("IN_", r, "_", c); };

    // Cells, outputs, inputs, and per-cell local edges.
    for (int r = 0; r < h; ++r) {
        for (int c = 0; c < w; ++c) {
            std::string cell = cellName(r, c);
            builder.node(cell, cellType);
            builder.attr(cell, "z", spec.z);
            if (spec.mismatchZ)
                builder.attr(cell, "mm", 1.0);
            if (spec.initFromInput) {
                builder.init(cell, 0,
                             input[static_cast<std::size_t>(r * w + c)]);
            }
            builder.node(outName(r, c), outType);
            builder.node(inpName(r, c), "Inp");
            builder.attr(inpName(r, c), "u",
                         input[static_cast<std::size_t>(r * w + c)]);
            builder.edge(cat("self_", cell), "iE", cell, cell);
            builder.edge(cat("io_", cell), "iE", cell, outName(r, c));
        }
    }

    // Full 3x3 programmable neighbourhood: A edges from neighbouring
    // outputs, B edges from neighbouring inputs.
    for (int r = 0; r < h; ++r) {
        for (int c = 0; c < w; ++c) {
            std::string cell = cellName(r, c);
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    int nr = r + dr;
                    int nc = c + dc;
                    if (nr < 0 || nr >= h || nc < 0 || nc >= w)
                        continue;
                    auto k = static_cast<std::size_t>(
                        (dr + 1) * 3 + (dc + 1));
                    std::string aEdge =
                        cat("A_", r, "_", c, "_", dr + 1, dc + 1);
                    builder.edge(aEdge, weightType, outName(nr, nc),
                                 cell);
                    builder.attr(aEdge, "g", spec.a[k]);
                    std::string bEdge =
                        cat("B_", r, "_", c, "_", dr + 1, dc + 1);
                    builder.edge(bEdge, weightType, inpName(nr, nc),
                                 cell);
                    builder.attr(bEdge, "g", spec.b[k]);
                }
            }
        }
    }
    return builder.take();
}

} // namespace ark::paradigms::cnn
