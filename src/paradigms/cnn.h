#ifndef ARK_PARADIGMS_CNN_H
#define ARK_PARADIGMS_CNN_H

/**
 * @file
 * The cellular nonlinear network (CNN) compute paradigm (paper §7.1)
 * and its hw-cnn hardware extension.
 *
 * Cells are V nodes with a self iE edge (-x + z dynamics), an Out
 * node applying the saturation nonlinearity, full 3x3 programmable
 * A-template connectivity (fE edges Out -> V) and B-template input
 * connectivity (fE edges Inp -> V). The hw-cnn extension models
 * integrator mismatch (Vm), template-weight mismatch (fEm), and a
 * non-ideal MOS saturation (OutNL).
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dg/graph.h"
#include "lang/registry.h"

namespace ark::paradigms::cnn {

/** Ark source of the `cnn` language. */
const std::string &cnnSource();

/** Ark source of the `hw-cnn` extension. */
const std::string &hwCnnSource();

/** Registers both languages into a registry. */
void registerAll(lang::LanguageRegistry &registry);

/** A 3x3 CNN template, row-major (offset (-1,-1) first). */
using Template = std::array<double, 9>;

/** The classic EDGE-detection template pair (A, B) and bias z. */
Template edgeDetectA();
Template edgeDetectB();
double edgeDetectZ();

/** Nonideality substitutions (columns B-D of Figure 11). */
struct CnnSpec
{
    int width = 16;
    int height = 16;
    Template a = edgeDetectA();
    Template b = edgeDetectB();
    double z = edgeDetectZ();

    bool mismatchZ = false;   ///< Substitute Vm (integrator mismatch).
    bool mismatchG = false;   ///< Substitute fEm (template mismatch).
    bool nonIdealSat = false; ///< Substitute OutNL (MOS saturation).
    std::uint64_t seed = 0;

    /** Cells start at the input value (x(0) = u) when true, else 0. */
    bool initFromInput = false;
};

/**
 * Builds a WxH CNN over the given input image (values in [-1, 1],
 * row-major, +1 = black). Cell state nodes are named X_<r>_<c>.
 *
 * @param language `cnn`, or `hw-cnn` when a nonideality is selected.
 */
dg::Graph buildCnn(const lang::Language &language, const CnnSpec &spec,
                   const std::vector<double> &input);

/** State-node name of cell (row, col). */
std::string cellName(int row, int col);

} // namespace ark::paradigms::cnn

#endif // ARK_PARADIGMS_CNN_H
