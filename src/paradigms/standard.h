#ifndef ARK_PARADIGMS_STANDARD_H
#define ARK_PARADIGMS_STANDARD_H

/**
 * @file
 * One-call setup of every paradigm DSL the paper defines.
 */

#include "lang/registry.h"

namespace ark::paradigms {

/**
 * Builds a registry containing tln, gmc-tln, cnn, hw-cnn, obc,
 * ofs-obc, intercon-obc, and the br-func example function — all
 * parsed from their embedded Ark sources.
 */
lang::LanguageRegistry makeStandardRegistry();

} // namespace ark::paradigms

#endif // ARK_PARADIGMS_STANDARD_H
