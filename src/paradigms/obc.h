#ifndef ARK_PARADIGMS_OBC_H
#define ARK_PARADIGMS_OBC_H

/**
 * @file
 * The oscillator-based computing (OBC) paradigm (paper §7.2) and its
 * two hardware extensions: ofs-obc (integrator offset nonideality)
 * and intercon-obc (local/global interconnect cost modeling).
 *
 * Oscillator phases follow the modified Kuramoto model (Eq. 6) with
 * C1 = 1.6e9 and C2 = 1e9 baked into the production rules as in the
 * paper's listing. Max-cut instances map graph vertices to Osc nodes
 * and graph edges to anti-ferromagnetic couplings (k < 0); the
 * sub-harmonic injection-locking self edge binarizes phases to
 * {0, pi}.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dg/graph.h"
#include "lang/registry.h"

namespace ark::paradigms::obc {

/** Ark source of the `obc` language. */
const std::string &obcSource();

/** Ark source of the `ofs-obc` extension. */
const std::string &ofsObcSource();

/** Ark source of the `intercon-obc` extension. */
const std::string &interconObcSource();

/** Registers all three languages into a registry. */
void registerAll(lang::LanguageRegistry &registry);

/** An undirected max-cut instance on vertices 0..n-1. */
struct MaxcutInstance
{
    int numVertices = 0;
    std::vector<std::pair<int, int>> edges;
};

/** Max-cut oscillator network parameters. */
struct MaxcutSpec
{
    /** Coupling strength per graph edge (negative = anti-phase). */
    double coupling = -1.0;
    /** Use ofs-obc Cpl_ofs couplings (integrator offset mismatch). */
    bool withOffset = false;
    /** Mismatch sampling seed. */
    std::uint64_t seed = 0;
    /** Initial oscillator phases (size numVertices); empty = zeros. */
    std::vector<double> initPhases;
};

/**
 * Builds the coupled-oscillator network solving a max-cut instance.
 * Oscillator nodes are named OSC_<v>.
 *
 * @param language `obc`, or `ofs-obc` when spec.withOffset is set.
 */
dg::Graph buildMaxcut(const lang::Language &language,
                      const MaxcutInstance &instance,
                      const MaxcutSpec &spec);

/** Oscillator node name for vertex v. */
std::string oscName(int v);

/**
 * Decodes oscillator phases into a partition: phases within `d`
 * radians of 0 (mod 2pi) go to side 0, within `d` of pi to side 1.
 * @return nullopt when any oscillator is outside both bands
 *         ("unknown" in the paper; the graph failed to synchronize).
 */
std::optional<std::vector<int>> decodePartition(
    const std::vector<double> &phases, double d);

/** Cut size of a partition. */
int cutSize(const MaxcutInstance &instance,
            const std::vector<int> &partition);

/** Exhaustive best cut (instances are tiny). */
int bruteForceMaxCut(const MaxcutInstance &instance);

/** Grouped-interconnect network (intercon-obc). */
struct GroupedSpec
{
    /** Group (0 or 1) of each vertex. */
    std::vector<int> groups;
    double coupling = -1.0;
    std::uint64_t seed = 0;
    std::vector<double> initPhases;
};

/**
 * Builds a two-group oscillator network in intercon-obc: in-group
 * couplings use Cpl_l (cost 1), cross-group use Cpl_g (cost 10);
 * every oscillator gets a Cpl_l SHIL self edge.
 */
dg::Graph buildGrouped(const lang::Language &language,
                       const MaxcutInstance &instance,
                       const GroupedSpec &spec);

/**
 * Builds an INVALID grouped network (one cross-group Cpl_l edge) to
 * demonstrate the compile-time interconnect restriction.
 */
dg::Graph buildGroupedIllegal(const lang::Language &language);

/** Sum of the `cost` attributes over all coupling edges. */
std::int64_t interconnectCost(const dg::Graph &graph);

} // namespace ark::paradigms::obc

#endif // ARK_PARADIGMS_OBC_H
