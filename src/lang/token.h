#ifndef ARK_LANG_TOKEN_H
#define ARK_LANG_TOKEN_H

/**
 * @file
 * Token definitions for the Ark lexer.
 *
 * Ark reserves no keywords at the lexer level: words like `lang`,
 * `node`, or `func` arrive as Ident tokens and the parser matches them
 * contextually. This lets programs reuse short names (`V`, `g`, `E`)
 * and lets declaration names contain hyphens (`gmc-tln`, `br-func`)
 * without ambiguity against subtraction, which the parser resolves by
 * joining Ident '-' Ident sequences only in name positions.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace ark::lang {

/** Lexical token categories. */
enum class TokenKind : std::uint8_t {
    Ident,      ///< Word: letters, digits, underscores (starts nondigit).
    IntLit,     ///< Integer literal.
    RealLit,    ///< Real literal (decimal point and/or exponent).
    LBrace, RBrace,     // { }
    LParen, RParen,     // ( )
    LBracket, RBracket, // [ ]
    Comma, Colon, Semi, Dot,
    Assign,     ///< =
    Arrow,      ///< ->
    ProdApply,  ///< <=  (production "applies term" / less-equal)
    Lt, Gt,     ///< < >  (edge<src,dst> delimiters / comparisons)
    Ge,         ///< >=
    EqEq, NotEq,
    Plus, Minus, Star, Slash, Caret,
    EndOfFile,
};

/** Token spelling for diagnostics. */
const char *tokenKindName(TokenKind kind);

/** One lexed token. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;     ///< Ident spelling (empty otherwise).
    double realValue = 0; ///< RealLit payload.
    std::int64_t intValue = 0; ///< IntLit payload.
    support::SourceLoc loc;

    bool is(TokenKind k) const { return kind == k; }
    bool isIdent(const std::string &word) const
    {
        return kind == TokenKind::Ident && text == word;
    }
};

/**
 * Tokenizes Ark source. Comments run from `//` or `#` to end of line.
 * @throws ark::support::LexError on malformed input.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace ark::lang

#endif // ARK_LANG_TOKEN_H
