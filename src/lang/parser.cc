#include "lang/parser.h"

#include <limits>

#include "expr/eval.h"
#include "lang/token.h"
#include "support/logging.h"

namespace ark::lang {

using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::UnOp;
using support::cat;
using support::ParseError;
using support::SourceLoc;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens))
    {
    }

    Program parseProgram();
    ExprPtr parseExpressionOnly();
    dg::DataType parseDataTypeOnly();

  private:
    std::vector<Token> tokens_;
    std::size_t pos_ = 0;

    /** @name Token-stream helpers */
    /// @{
    const Token &peek(std::size_t ahead = 0) const
    {
        std::size_t p = pos_ + ahead;
        if (p >= tokens_.size())
            p = tokens_.size() - 1; // EOF sentinel
        return tokens_[p];
    }
    const Token &advance() { return tokens_[pos_++]; }
    bool at(TokenKind kind) const { return peek().is(kind); }
    bool atIdent(const std::string &word) const
    {
        return peek().isIdent(word);
    }
    bool accept(TokenKind kind)
    {
        if (!at(kind))
            return false;
        ++pos_;
        return true;
    }
    bool acceptIdent(const std::string &word)
    {
        if (!atIdent(word))
            return false;
        ++pos_;
        return true;
    }
    Token expect(TokenKind kind, const std::string &what)
    {
        if (!at(kind)) {
            throw ParseError(cat("expected ", tokenKindName(kind), " ",
                                 what, ", found ",
                                 describe(peek())),
                             peek().loc);
        }
        return advance();
    }
    void expectIdent(const std::string &word)
    {
        if (!acceptIdent(word)) {
            throw ParseError(cat("expected '", word, "', found ",
                                 describe(peek())),
                             peek().loc);
        }
    }
    static std::string describe(const Token &tok)
    {
        if (tok.kind == TokenKind::Ident)
            return cat("'", tok.text, "'");
        return tokenKindName(tok.kind);
    }
    /// @}

    /** Ident ('-' Ident)*, joined with '-'; declaration positions. */
    std::string parseName(const std::string &what);

    /** @name Declarations */
    /// @{
    LangDecl parseLang();
    FuncDecl parseFunc();
    NodeTypeDecl parseNodeType(SourceLoc loc);
    EdgeTypeDecl parseEdgeType(SourceLoc loc);
    void parseAttrBlock(std::vector<AttrDecl> &attrs,
                        std::vector<InitDecl> &inits, bool allowInits);
    ProdRuleDecl parseProdRule(SourceLoc loc);
    CstrDecl parseCstr(SourceLoc loc);
    MatchClause parseMatchClause();
    dg::DataType parseDataType();
    std::optional<expr::Value> parseOptionalConstValue();
    expr::Value parseValueLiteral();
    /// @}

    /** @name Functions */
    /// @{
    FuncArgDecl parseFuncArg();
    FuncStmt parseFuncStmt();
    /// @}

    /** @name Expressions (precedence climbing) */
    /// @{
    ExprPtr parseExpr();
    ExprPtr parseOr();
    ExprPtr parseAnd();
    ExprPtr parseNot();
    ExprPtr parseCmp();
    ExprPtr parseAdd();
    ExprPtr parseMul();
    ExprPtr parseUnary();
    ExprPtr parsePow();
    ExprPtr parsePrimary();
    /// @}

    int parseCardinality();
};

std::string
Parser::parseName(const std::string &what)
{
    Token first = expect(TokenKind::Ident, what);
    std::string name = first.text;
    // Join hyphenated names: Ident '-' Ident ... (e.g. gmc-tln).
    while (at(TokenKind::Minus) && peek(1).is(TokenKind::Ident)) {
        advance(); // '-'
        name += "-";
        name += advance().text;
    }
    return name;
}

Program
Parser::parseProgram()
{
    Program prog;
    while (!at(TokenKind::EndOfFile)) {
        if (atIdent("lang")) {
            prog.langs.push_back(parseLang());
        } else if (atIdent("func")) {
            prog.funcs.push_back(parseFunc());
        } else {
            throw ParseError(cat("expected 'lang' or 'func' at top level,"
                                 " found ", describe(peek())),
                             peek().loc);
        }
    }
    return prog;
}

LangDecl
Parser::parseLang()
{
    LangDecl decl;
    decl.loc = peek().loc;
    expectIdent("lang");
    decl.name = parseName("(language name)");
    if (acceptIdent("inherits") || acceptIdent("inherit"))
        decl.inherits = parseName("(parent language)");
    expect(TokenKind::LBrace, "to open language body");
    while (!accept(TokenKind::RBrace)) {
        SourceLoc loc = peek().loc;
        if (acceptIdent("node") || acceptIdent("ntyp")) {
            // Accept both `node-type` (hyphen splits into node - type)
            // and the `ntyp` abbreviation.
            if (tokens_[pos_ - 1].text == "node") {
                expect(TokenKind::Minus, "in 'node-type'");
                expectIdent("type");
            }
            decl.nodeTypes.push_back(parseNodeType(loc));
        } else if (acceptIdent("edge") || acceptIdent("etyp")) {
            if (tokens_[pos_ - 1].text == "edge") {
                expect(TokenKind::Minus, "in 'edge-type'");
                expectIdent("type");
            }
            decl.edgeTypes.push_back(parseEdgeType(loc));
        } else if (acceptIdent("prod")) {
            decl.prodRules.push_back(parseProdRule(loc));
        } else if (acceptIdent("cstr")) {
            decl.cstrs.push_back(parseCstr(loc));
        } else if (acceptIdent("extern")) {
            expect(TokenKind::Minus, "in 'extern-func'");
            expectIdent("func");
            ExternFuncDecl ext;
            ext.loc = loc;
            ext.name = parseName("(extern function name)");
            accept(TokenKind::Semi);
            decl.externFuncs.push_back(std::move(ext));
        } else if (accept(TokenKind::Semi)) {
            // stray separator
        } else {
            throw ParseError(cat("unexpected ", describe(peek()),
                                 " in language body"),
                             peek().loc);
        }
    }
    accept(TokenKind::Semi);
    return decl;
}

NodeTypeDecl
Parser::parseNodeType(SourceLoc loc)
{
    NodeTypeDecl decl;
    decl.loc = loc;
    expect(TokenKind::LParen, "after node-type");
    Token order = expect(TokenKind::IntLit, "(node order)");
    decl.order = static_cast<int>(order.intValue);
    if (decl.order < 0)
        throw ParseError("node order must be non-negative", order.loc);
    expect(TokenKind::Comma, "in node-type header");
    if (acceptIdent("sum")) {
        decl.reduction = dg::Reduction::Sum;
    } else if (acceptIdent("mul")) {
        decl.reduction = dg::Reduction::Mul;
    } else {
        throw ParseError(cat("expected reduction 'sum' or 'mul', found ",
                             describe(peek())),
                         peek().loc);
    }
    expect(TokenKind::RParen, "to close node-type header");
    decl.name = parseName("(node type name)");
    if (acceptIdent("inherit") || acceptIdent("inherits"))
        decl.inherits = parseName("(parent node type)");
    expect(TokenKind::LBrace, "to open attribute block");
    parseAttrBlock(decl.attrs, decl.inits, /*allowInits=*/true);
    accept(TokenKind::Semi);
    return decl;
}

EdgeTypeDecl
Parser::parseEdgeType(SourceLoc loc)
{
    EdgeTypeDecl decl;
    decl.loc = loc;
    if (acceptIdent("fixed"))
        decl.fixed = true;
    decl.name = parseName("(edge type name)");
    if (!decl.fixed && acceptIdent("fixed"))
        decl.fixed = true; // allow either order
    if (acceptIdent("inherit") || acceptIdent("inherits"))
        decl.inherits = parseName("(parent edge type)");
    expect(TokenKind::LBrace, "to open attribute block");
    std::vector<InitDecl> inits;
    parseAttrBlock(decl.attrs, inits, /*allowInits=*/false);
    accept(TokenKind::Semi);
    return decl;
}

void
Parser::parseAttrBlock(std::vector<AttrDecl> &attrs,
                       std::vector<InitDecl> &inits, bool allowInits)
{
    while (!accept(TokenKind::RBrace)) {
        SourceLoc loc = peek().loc;
        if (acceptIdent("attr")) {
            AttrDecl attr;
            attr.loc = loc;
            attr.name = parseName("(attribute name)");
            expect(TokenKind::Assign, "in attribute declaration");
            attr.type = parseDataType();
            attr.constValue = parseOptionalConstValue();
            if (attr.constValue)
                attr.type = attr.type.asConst();
            attrs.push_back(std::move(attr));
        } else if (atIdent("init")) {
            if (!allowInits) {
                throw ParseError("edge types contain only attribute "
                                 "statements",
                                 loc);
            }
            advance();
            expect(TokenKind::LParen, "after init");
            Token idx = expect(TokenKind::IntLit, "(derivative index)");
            expect(TokenKind::RParen, "after init index");
            InitDecl init;
            init.loc = loc;
            init.derivative = static_cast<int>(idx.intValue);
            init.type = parseDataType();
            init.constValue = parseOptionalConstValue();
            if (init.constValue)
                init.type = init.type.asConst();
            inits.push_back(std::move(init));
        } else if (accept(TokenKind::Comma) || accept(TokenKind::Semi)) {
            // separators between attribute statements
        } else {
            throw ParseError(cat("expected 'attr' or 'init', found ",
                                 describe(peek())),
                             peek().loc);
        }
    }
}

std::optional<expr::Value>
Parser::parseOptionalConstValue()
{
    if (!acceptIdent("const"))
        return std::nullopt;
    // `const` alone marks non-programmability; `const <literal>` pins
    // the value at declaration.
    if (at(TokenKind::IntLit) || at(TokenKind::RealLit) ||
        at(TokenKind::Minus) || atIdent("lambd") || atIdent("fn") ||
        atIdent("true") || atIdent("false")) {
        return parseValueLiteral();
    }
    // Plain const: value must be supplied at instantiation with a
    // constant; mark with no pinned value.
    return std::nullopt;
}

expr::Value
Parser::parseValueLiteral()
{
    SourceLoc loc = peek().loc;
    ExprPtr e = parseExpr();
    try {
        expr::EvalContext ctx;
        return expr::eval(e, ctx);
    } catch (const support::ArkError &err) {
        throw ParseError(cat("expected a constant value: ",
                             err.message()),
                         loc);
    }
}

ProdRuleDecl
Parser::parseProdRule(SourceLoc loc)
{
    ProdRuleDecl decl;
    decl.loc = loc;
    expect(TokenKind::LParen, "after prod");
    decl.edgeVar = parseName("(edge binding)");
    expect(TokenKind::Colon, "in prod edge binding");
    decl.edgeType = parseName("(edge type)");
    expect(TokenKind::Comma, "in prod clause");
    decl.srcVar = parseName("(source binding)");
    expect(TokenKind::Colon, "in prod source binding");
    decl.srcType = parseName("(source type)");
    expect(TokenKind::Arrow, "in prod clause");
    decl.dstVar = parseName("(destination binding)");
    expect(TokenKind::Colon, "in prod destination binding");
    decl.dstType = parseName("(destination type)");
    expect(TokenKind::RParen, "to close prod clause");
    decl.targetVar = parseName("(production target)");
    expect(TokenKind::ProdApply, "in production expression");
    decl.expr = parseExpr();
    if (acceptIdent("off"))
        decl.off = true;
    accept(TokenKind::Semi);
    return decl;
}

CstrDecl
Parser::parseCstr(SourceLoc loc)
{
    CstrDecl decl;
    decl.loc = loc;
    std::string first = parseName("(cstr target)");
    if (accept(TokenKind::Colon)) {
        decl.targetVar = first;
        decl.nodeType = parseName("(cstr node type)");
    } else {
        decl.targetVar = first;
        decl.nodeType = first;
    }
    expect(TokenKind::LBrace, "to open cstr body");
    while (!accept(TokenKind::RBrace)) {
        SourceLoc ploc = peek().loc;
        bool isAcc;
        if (acceptIdent("acc")) {
            isAcc = true;
        } else if (acceptIdent("rej")) {
            isAcc = false;
        } else if (accept(TokenKind::Comma) || accept(TokenKind::Semi)) {
            continue;
        } else {
            throw ParseError(cat("expected 'acc' or 'rej', found ",
                                 describe(peek())),
                             peek().loc);
        }
        PatternDecl pattern;
        pattern.accept = isAcc;
        pattern.loc = ploc;
        expect(TokenKind::LBracket, "to open pattern");
        while (!accept(TokenKind::RBracket)) {
            if (accept(TokenKind::Comma))
                continue;
            pattern.clauses.push_back(parseMatchClause());
        }
        decl.patterns.push_back(std::move(pattern));
    }
    accept(TokenKind::Semi);
    return decl;
}

int
Parser::parseCardinality()
{
    if (acceptIdent("inf"))
        return -1;
    Token tok = expect(TokenKind::IntLit, "(cardinality)");
    if (tok.intValue < 0)
        throw ParseError("cardinality must be non-negative", tok.loc);
    return static_cast<int>(tok.intValue);
}

MatchClause
Parser::parseMatchClause()
{
    MatchClause clause;
    clause.loc = peek().loc;
    expectIdent("match");
    expect(TokenKind::LParen, "after match");
    clause.lo = parseCardinality();
    expect(TokenKind::Comma, "in match clause");
    clause.hi = parseCardinality();
    expect(TokenKind::Comma, "in match clause");
    clause.edgeType = parseName("(edge type)");
    if (accept(TokenKind::RParen)) {
        // 3-argument self form: match(lo, hi, EType).
        clause.dir = MatchDir::Self;
        return clause;
    }
    expect(TokenKind::Comma, "in match clause");
    if (accept(TokenKind::LBracket)) {
        // match(lo, hi, ET, [T*] -> vn): incoming.
        clause.dir = MatchDir::In;
        while (!accept(TokenKind::RBracket)) {
            if (accept(TokenKind::Comma))
                continue;
            clause.nodeTypes.push_back(parseName("(node type)"));
        }
        expect(TokenKind::Arrow, "in match clause");
        clause.targetName = parseName("(match target)");
    } else {
        std::string target = parseName("(match target)");
        clause.targetName = target;
        if (accept(TokenKind::Arrow)) {
            // match(lo, hi, ET, vn -> [T*]): outgoing.
            clause.dir = MatchDir::Out;
            expect(TokenKind::LBracket, "in match clause");
            while (!accept(TokenKind::RBracket)) {
                if (accept(TokenKind::Comma))
                    continue;
                clause.nodeTypes.push_back(parseName("(node type)"));
            }
        } else {
            // match(lo, hi, ET, vn): self edges on the target.
            clause.dir = MatchDir::Self;
        }
    }
    expect(TokenKind::RParen, "to close match clause");
    return clause;
}

dg::DataType
Parser::parseDataType()
{
    SourceLoc loc = peek().loc;
    auto parseRealBound = [&]() -> double {
        bool neg = accept(TokenKind::Minus);
        double v;
        if (acceptIdent("inf")) {
            v = kInf;
        } else if (at(TokenKind::RealLit)) {
            v = advance().realValue;
        } else if (at(TokenKind::IntLit)) {
            v = static_cast<double>(advance().intValue);
        } else {
            throw ParseError(cat("expected a numeric bound, found ",
                                 describe(peek())),
                             peek().loc);
        }
        return neg ? -v : v;
    };

    if (acceptIdent("real")) {
        expect(TokenKind::LBracket, "after real");
        double lo = parseRealBound();
        expect(TokenKind::Comma, "in real bounds");
        double hi = parseRealBound();
        expect(TokenKind::RBracket, "to close real bounds");
        if (lo > hi)
            throw ParseError("real range is empty (lo > hi)", loc);
        dg::DataType type = dg::DataType::real(lo, hi);
        if (acceptIdent("mm")) {
            expect(TokenKind::LParen, "after mm");
            double s0 = parseRealBound();
            expect(TokenKind::Comma, "in mm");
            double s1 = parseRealBound();
            expect(TokenKind::RParen, "to close mm");
            if (s0 < 0 || s1 < 0)
                throw ParseError("mm deviations must be non-negative",
                                 loc);
            type = dg::DataType::realMm(lo, hi, dg::Mismatch{s0, s1});
        }
        if (acceptIdent("const"))
            type = type.asConst();
        return type;
    }
    if (acceptIdent("int")) {
        expect(TokenKind::LBracket, "after int");
        bool negLo = accept(TokenKind::Minus);
        Token lo = expect(TokenKind::IntLit, "(int bound)");
        expect(TokenKind::Comma, "in int bounds");
        bool negHi = accept(TokenKind::Minus);
        Token hi = expect(TokenKind::IntLit, "(int bound)");
        expect(TokenKind::RBracket, "to close int bounds");
        std::int64_t loV = negLo ? -lo.intValue : lo.intValue;
        std::int64_t hiV = negHi ? -hi.intValue : hi.intValue;
        if (loV > hiV)
            throw ParseError("int range is empty (lo > hi)", loc);
        dg::DataType type = dg::DataType::integer(loV, hiV);
        if (acceptIdent("const"))
            type = type.asConst();
        return type;
    }
    if (acceptIdent("lambd") || acceptIdent("fn")) {
        expect(TokenKind::LParen, "after lambd");
        std::vector<std::string> params;
        while (!accept(TokenKind::RParen)) {
            if (accept(TokenKind::Comma))
                continue;
            params.push_back(parseName("(lambda parameter)"));
        }
        dg::DataType type = dg::DataType::function(std::move(params));
        if (acceptIdent("const"))
            type = type.asConst();
        return type;
    }
    throw ParseError(cat("expected a datatype (real/int/lambd), found ",
                         describe(peek())),
                     peek().loc);
}

FuncDecl
Parser::parseFunc()
{
    FuncDecl decl;
    decl.loc = peek().loc;
    expectIdent("func");
    decl.name = parseName("(function name)");
    expect(TokenKind::LParen, "after function name");
    while (!accept(TokenKind::RParen)) {
        if (accept(TokenKind::Comma))
            continue;
        decl.args.push_back(parseFuncArg());
    }
    expectIdent("uses");
    decl.usesLang = parseName("(language name)");
    expect(TokenKind::LBrace, "to open function body");
    while (!accept(TokenKind::RBrace)) {
        if (accept(TokenKind::Semi))
            continue;
        decl.body.push_back(parseFuncStmt());
    }
    accept(TokenKind::Semi);
    return decl;
}

FuncArgDecl
Parser::parseFuncArg()
{
    FuncArgDecl arg;
    arg.loc = peek().loc;
    arg.name = parseName("(argument name)");
    if (accept(TokenKind::Dot))
        arg.attrName = parseName("(argument attribute)");
    expect(TokenKind::Colon, "in function argument");
    arg.type = parseDataType();
    return arg;
}

FuncStmt
Parser::parseFuncStmt()
{
    FuncStmt stmt;
    stmt.loc = peek().loc;
    if (acceptIdent("node")) {
        stmt.kind = FuncStmtKind::Node;
        stmt.name = parseName("(node name)");
        expect(TokenKind::Colon, "in node statement");
        stmt.type = parseName("(node type)");
        return stmt;
    }
    if (acceptIdent("edge")) {
        stmt.kind = FuncStmtKind::Edge;
        expect(TokenKind::Lt, "after edge");
        stmt.src = parseName("(edge source)");
        expect(TokenKind::Comma, "in edge endpoints");
        stmt.dst = parseName("(edge destination)");
        expect(TokenKind::Gt, "to close edge endpoints");
        stmt.name = parseName("(edge name)");
        expect(TokenKind::Colon, "in edge statement");
        stmt.type = parseName("(edge type)");
        return stmt;
    }
    if (atIdent("set")) {
        advance();
        expect(TokenKind::Minus, "in set-* statement");
        Token verb = expect(TokenKind::Ident, "(set-* verb)");
        if (verb.text == "attr") {
            stmt.kind = FuncStmtKind::SetAttr;
            stmt.name = parseName("(element name)");
            expect(TokenKind::Dot, "in set-attr");
            stmt.attr = parseName("(attribute name)");
            expect(TokenKind::Assign, "in set-attr");
            stmt.value = parseExpr();
            return stmt;
        }
        if (verb.text == "init") {
            stmt.kind = FuncStmtKind::SetInit;
            stmt.name = parseName("(node name)");
            expect(TokenKind::LParen, "in set-init");
            Token idx = expect(TokenKind::IntLit, "(derivative index)");
            stmt.derivative = static_cast<int>(idx.intValue);
            expect(TokenKind::RParen, "in set-init");
            expect(TokenKind::Assign, "in set-init");
            stmt.value = parseExpr();
            return stmt;
        }
        if (verb.text == "switch" || verb.text == "edge") {
            stmt.kind = FuncStmtKind::SetSwitch;
            stmt.name = parseName("(edge name)");
            expectIdent("when");
            stmt.when = parseExpr();
            return stmt;
        }
        throw ParseError(cat("unknown statement 'set-", verb.text, "'"),
                         verb.loc);
    }
    throw ParseError(cat("expected a function statement, found ",
                         describe(peek())),
                     peek().loc);
}

ExprPtr
Parser::parseExpr()
{
    return parseOr();
}

ExprPtr
Parser::parseOr()
{
    ExprPtr lhs = parseAnd();
    while (atIdent("or")) {
        advance();
        lhs = Expr::binary(BinOp::Or, lhs, parseAnd());
    }
    return lhs;
}

ExprPtr
Parser::parseAnd()
{
    ExprPtr lhs = parseNot();
    while (atIdent("and")) {
        advance();
        lhs = Expr::binary(BinOp::And, lhs, parseNot());
    }
    return lhs;
}

ExprPtr
Parser::parseNot()
{
    if (acceptIdent("not"))
        return Expr::unary(UnOp::Not, parseNot());
    return parseCmp();
}

ExprPtr
Parser::parseCmp()
{
    ExprPtr lhs = parseAdd();
    BinOp op;
    if (at(TokenKind::Lt))
        op = BinOp::Lt;
    else if (at(TokenKind::ProdApply))
        op = BinOp::Le; // '<=' doubles as comparison inside expressions
    else if (at(TokenKind::Gt))
        op = BinOp::Gt;
    else if (at(TokenKind::Ge))
        op = BinOp::Ge;
    else if (at(TokenKind::EqEq))
        op = BinOp::Eq;
    else if (at(TokenKind::NotEq))
        op = BinOp::Ne;
    else
        return lhs;
    advance();
    return Expr::binary(op, lhs, parseAdd());
}

ExprPtr
Parser::parseAdd()
{
    ExprPtr lhs = parseMul();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
        BinOp op = at(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
        advance();
        lhs = Expr::binary(op, lhs, parseMul());
    }
    return lhs;
}

ExprPtr
Parser::parseMul()
{
    ExprPtr lhs = parseUnary();
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
        BinOp op = at(TokenKind::Star) ? BinOp::Mul : BinOp::Div;
        advance();
        lhs = Expr::binary(op, lhs, parseUnary());
    }
    return lhs;
}

ExprPtr
Parser::parseUnary()
{
    if (accept(TokenKind::Minus))
        return Expr::unary(UnOp::Neg, parseUnary());
    if (accept(TokenKind::Plus))
        return parseUnary();
    return parsePow();
}

ExprPtr
Parser::parsePow()
{
    ExprPtr base = parsePrimary();
    if (accept(TokenKind::Caret))
        return Expr::binary(BinOp::Pow, base, parseUnary());
    return base;
}

ExprPtr
Parser::parsePrimary()
{
    const Token &tok = peek();
    if (tok.is(TokenKind::RealLit)) {
        advance();
        return Expr::real(tok.realValue);
    }
    if (tok.is(TokenKind::IntLit)) {
        advance();
        return Expr::integer(tok.intValue);
    }
    if (accept(TokenKind::LParen)) {
        ExprPtr inner = parseExpr();
        expect(TokenKind::RParen, "to close parenthesized expression");
        return inner;
    }
    if (!tok.is(TokenKind::Ident)) {
        throw ParseError(cat("expected an expression, found ",
                             describe(tok)),
                         tok.loc);
    }
    // Contextual word forms.
    if (tok.text == "if") {
        advance();
        ExprPtr cond = parseExpr();
        expectIdent("then");
        ExprPtr thenE = parseExpr();
        expectIdent("else");
        ExprPtr elseE = parseExpr();
        return Expr::ifThenElse(cond, thenE, elseE);
    }
    if (tok.text == "lambd" || tok.text == "fn") {
        // Lambda literal: lambd(params): body. Distinguish from a call
        // to a variable named fn by requiring the ':' after ')'.
        std::size_t save = pos_;
        advance();
        if (accept(TokenKind::LParen)) {
            std::vector<std::string> params;
            bool ok = true;
            while (!accept(TokenKind::RParen)) {
                if (accept(TokenKind::Comma))
                    continue;
                if (!at(TokenKind::Ident)) {
                    ok = false;
                    break;
                }
                params.push_back(advance().text);
            }
            if (ok && accept(TokenKind::Colon)) {
                ExprPtr body = parseExpr();
                return Expr::literal(expr::Value::function(
                    expr::Lambda{std::move(params), body}));
            }
        }
        pos_ = save; // fall through: treat as a normal name
    }
    if (tok.text == "true") {
        advance();
        return Expr::boolean(true);
    }
    if (tok.text == "false") {
        advance();
        return Expr::boolean(false);
    }
    if (tok.text == "inf") {
        advance();
        return Expr::real(kInf);
    }
    if (tok.text == "time" || tok.text == "times") {
        advance();
        return Expr::time();
    }

    advance(); // consume the identifier
    std::string name = tok.text;

    // var(x): reference to a node's state variable.
    if (name == "var" && at(TokenKind::LParen)) {
        advance();
        std::string node = parseName("(node binding)");
        expect(TokenKind::RParen, "to close var(.)");
        return Expr::nodeVar(node);
    }

    // Attribute reference base.attr, optionally called: s.fn(times).
    if (accept(TokenKind::Dot)) {
        std::string attrName =
            expect(TokenKind::Ident, "(attribute name)").text;
        ExprPtr attrRef = Expr::attr(name, attrName);
        if (accept(TokenKind::LParen)) {
            std::vector<ExprPtr> args;
            while (!accept(TokenKind::RParen)) {
                if (accept(TokenKind::Comma))
                    continue;
                args.push_back(parseExpr());
            }
            return Expr::callExpr(attrRef, std::move(args));
        }
        return attrRef;
    }

    // Function call f(args): builtin or lambda-valued variable.
    if (accept(TokenKind::LParen)) {
        std::vector<ExprPtr> args;
        while (!accept(TokenKind::RParen)) {
            if (accept(TokenKind::Comma))
                continue;
            args.push_back(parseExpr());
        }
        return Expr::call(name, std::move(args));
    }

    return Expr::var(name);
}

ExprPtr
Parser::parseExpressionOnly()
{
    ExprPtr e = parseExpr();
    expect(TokenKind::EndOfFile, "after expression");
    return e;
}

dg::DataType
Parser::parseDataTypeOnly()
{
    dg::DataType t = parseDataType();
    expect(TokenKind::EndOfFile, "after datatype");
    return t;
}

} // namespace

Program
parseProgram(const std::string &source)
{
    Parser parser(tokenize(source));
    return parser.parseProgram();
}

expr::ExprPtr
parseExpression(const std::string &source)
{
    Parser parser(tokenize(source));
    return parser.parseExpressionOnly();
}

dg::DataType
parseDataType(const std::string &source)
{
    Parser parser(tokenize(source));
    return parser.parseDataTypeOnly();
}

} // namespace ark::lang
