#ifndef ARK_LANG_PARSER_H
#define ARK_LANG_PARSER_H

/**
 * @file
 * Recursive-descent parser for the Ark grammar (paper Figure 6).
 *
 * Accepted sugar beyond the paper's listings:
 *  - `ntyp` / `etyp` abbreviate node-type / edge-type (used by the
 *    paper's own figures);
 *  - `inherit` and `inherits` are interchangeable;
 *  - `set-edge` and `set-switch` are interchangeable (the grammar and
 *    prose disagree; both are accepted);
 *  - `fn(...)` abbreviates `lambd(...)` in types and literals;
 *  - `time` and `times` both denote simulation time;
 *  - attribute separators may be `,` or `;`.
 *
 * Declaration names may contain hyphens (`gmc-tln`, `br-func`); the
 * parser joins Ident '-' Ident runs in name positions only, so `-`
 * still parses as subtraction inside expressions.
 */

#include <string>

#include "lang/ast.h"

namespace ark::lang {

/**
 * Parses a whole Ark source buffer.
 * @throws ark::support::LexError / ParseError with source locations.
 */
Program parseProgram(const std::string &source);

/** Parses a single expression (tests, tools). */
expr::ExprPtr parseExpression(const std::string &source);

/** Parses a datatype like "real[0,inf] mm(0,0.1)" (tests, tools). */
dg::DataType parseDataType(const std::string &source);

} // namespace ark::lang

#endif // ARK_LANG_PARSER_H
