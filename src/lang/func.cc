#include "lang/func.h"

#include <unordered_map>
#include <unordered_set>

#include "expr/eval.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace ark::lang {

using support::cat;
using support::SemaError;
using support::TypeError;

namespace {

/** Static element tracking during function checking. */
struct ElementInfo
{
    bool isNode = false;
    std::string type;
};

expr::StaticType
staticTypeOf(const dg::DataType &type)
{
    switch (type.kind()) {
      case dg::TypeKind::Real:
        return expr::StaticType::Real;
      case dg::TypeKind::Int:
        return expr::StaticType::Int;
      case dg::TypeKind::Function:
        return expr::StaticType::Function;
    }
    return expr::StaticType::Real;
}

/** Scope exposing function arguments to value expressions. */
expr::TypeScope
argScope(const FuncDecl &func)
{
    expr::TypeScope scope;
    scope.varType = [&func](const std::string &name)
        -> std::optional<expr::StaticType> {
        for (const FuncArgDecl &arg : func.args)
            if (!arg.isDotted() && arg.name == name)
                return staticTypeOf(arg.type);
        return std::nullopt;
    };
    scope.lambdaArity = [&func](const std::string &name,
                                const std::string &attr)
        -> std::optional<int> {
        if (!attr.empty())
            return std::nullopt;
        for (const FuncArgDecl &arg : func.args) {
            if (!arg.isDotted() && arg.name == name &&
                arg.type.isFunction()) {
                return arg.type.arity();
            }
        }
        return std::nullopt;
    };
    return scope;
}

const dg::DataType *
attrTypeOf(const Language &lang, const ElementInfo &element,
           const std::string &attr)
{
    if (element.isNode) {
        const auto *def = lang.types().nodeType(element.type).findAttr(attr);
        return def ? &def->type : nullptr;
    }
    const auto *def = lang.types().edgeType(element.type).findAttr(attr);
    return def ? &def->type : nullptr;
}

} // namespace

void
checkFunction(const FuncDecl &func, const Language &lang)
{
    if (func.usesLang != lang.name()) {
        throw SemaError(cat("function '", func.name, "' uses language '",
                            func.usesLang, "' but was checked against '",
                            lang.name(), "'"),
                        func.loc);
    }

    std::unordered_set<std::string> argNames;
    for (const FuncArgDecl &arg : func.args) {
        std::string key = arg.isDotted() ? arg.name + "." + arg.attrName
                                         : arg.name;
        if (!argNames.insert(key).second) {
            throw SemaError(cat("duplicate argument '", key,
                                "' in function '", func.name, "'"),
                            arg.loc);
        }
    }

    expr::TypeScope scope = argScope(func);
    std::unordered_map<std::string, ElementInfo> elements;

    auto checkValueAgainst = [&](const expr::ExprPtr &value,
                                 const dg::DataType &target,
                                 support::SourceLoc loc,
                                 const std::string &what) {
        // Const attributes must not depend on function arguments
        // (paper §4.3 semantic check).
        if (target.isConst() && !value->freeVars().empty()) {
            throw SemaError(cat(what, " is const and cannot be assigned "
                                "from a function argument"),
                            loc);
        }
        expr::StaticType valueType;
        try {
            valueType = expr::checkType(value, scope);
        } catch (const TypeError &err) {
            throw SemaError(cat("in assignment to ", what, ": ",
                                err.message()),
                            loc);
        }
        expr::StaticType targetType = staticTypeOf(target);
        bool ok;
        switch (targetType) {
          case expr::StaticType::Real:
            ok = valueType == expr::StaticType::Real ||
                 valueType == expr::StaticType::Int;
            break;
          default:
            ok = valueType == targetType;
            break;
        }
        if (!ok) {
            throw SemaError(cat("cannot assign ",
                                expr::staticTypeName(valueType),
                                " value to ", what, " of type ",
                                target.str()),
                            loc);
        }
    };

    for (const FuncStmt &stmt : func.body) {
        switch (stmt.kind) {
          case FuncStmtKind::Node: {
            if (elements.count(stmt.name)) {
                throw SemaError(cat("element '", stmt.name,
                                    "' declared twice"),
                                stmt.loc);
            }
            if (!lang.types().hasNodeType(stmt.type)) {
                std::string hint = support::closestMatch(
                    stmt.type, lang.types().nodeTypeNames());
                throw SemaError(cat("unknown node type '", stmt.type, "'",
                                    hint.empty()
                                        ? ""
                                        : cat(" (did you mean '", hint,
                                              "'?)")),
                                stmt.loc);
            }
            elements[stmt.name] = ElementInfo{true, stmt.type};
            break;
          }
          case FuncStmtKind::Edge: {
            if (elements.count(stmt.name)) {
                throw SemaError(cat("element '", stmt.name,
                                    "' declared twice"),
                                stmt.loc);
            }
            if (!lang.types().hasEdgeType(stmt.type)) {
                throw SemaError(cat("unknown edge type '", stmt.type,
                                    "'"),
                                stmt.loc);
            }
            for (const std::string &endpoint : {stmt.src, stmt.dst}) {
                auto it = elements.find(endpoint);
                if (it == elements.end() || !it->second.isNode) {
                    throw SemaError(cat("edge '", stmt.name,
                                        "' references undefined node '",
                                        endpoint, "'"),
                                    stmt.loc);
                }
            }
            elements[stmt.name] = ElementInfo{false, stmt.type};
            break;
          }
          case FuncStmtKind::SetAttr: {
            auto it = elements.find(stmt.name);
            if (it == elements.end()) {
                throw SemaError(cat("set-attr references undefined "
                                    "element '", stmt.name, "'"),
                                stmt.loc);
            }
            const dg::DataType *attrType =
                attrTypeOf(lang, it->second, stmt.attr);
            if (!attrType) {
                throw SemaError(cat("type '", it->second.type,
                                    "' has no attribute '", stmt.attr,
                                    "'"),
                                stmt.loc);
            }
            checkValueAgainst(stmt.value, *attrType, stmt.loc,
                              cat("attribute '", stmt.name, ".",
                                  stmt.attr, "'"));
            break;
          }
          case FuncStmtKind::SetInit: {
            auto it = elements.find(stmt.name);
            if (it == elements.end() || !it->second.isNode) {
                throw SemaError(cat("set-init references undefined node '",
                                    stmt.name, "'"),
                                stmt.loc);
            }
            const dg::NodeTypeDef &def =
                lang.types().nodeType(it->second.type);
            const dg::InitDef *init = def.findInit(stmt.derivative);
            if (!init) {
                throw SemaError(cat("node type '", def.name,
                                    "' has no init(", stmt.derivative,
                                    ")"),
                                stmt.loc);
            }
            checkValueAgainst(stmt.value, init->type, stmt.loc,
                              cat("init(", stmt.derivative, ") of '",
                                  stmt.name, "'"));
            break;
          }
          case FuncStmtKind::SetSwitch: {
            auto it = elements.find(stmt.name);
            if (it == elements.end() || it->second.isNode) {
                throw SemaError(cat("set-switch references undefined "
                                    "edge '", stmt.name, "'"),
                                stmt.loc);
            }
            if (lang.types().edgeType(it->second.type).fixed) {
                throw SemaError(cat("edge '", stmt.name,
                                    "' has fixed type '", it->second.type,
                                    "' and cannot be switched"),
                                stmt.loc);
            }
            expr::StaticType condType;
            try {
                condType = expr::checkType(stmt.when, scope);
            } catch (const TypeError &err) {
                throw SemaError(cat("in set-switch condition: ",
                                    err.message()),
                                stmt.loc);
            }
            if (condType == expr::StaticType::Function) {
                throw SemaError("set-switch condition must be boolean or "
                                "numeric",
                                stmt.loc);
            }
            break;
          }
        }
    }

    // Dotted arguments bind to a node attribute; the node must exist.
    for (const FuncArgDecl &arg : func.args) {
        if (!arg.isDotted())
            continue;
        auto it = elements.find(arg.name);
        if (it == elements.end()) {
            throw SemaError(cat("argument '", arg.name, ".", arg.attrName,
                                "' names a node the body never declares"),
                            arg.loc);
        }
        const dg::DataType *attrType =
            attrTypeOf(lang, it->second, arg.attrName);
        if (!attrType) {
            throw SemaError(cat("argument '", arg.name, ".", arg.attrName,
                                "' names a missing attribute"),
                            arg.loc);
        }
        if (attrType->isConst()) {
            throw SemaError(cat("argument '", arg.name, ".", arg.attrName,
                                "' would program a const attribute"),
                            arg.loc);
        }
    }
}

dg::Graph
invokeFunction(const FuncDecl &func, const Language &lang,
               const std::vector<expr::Value> &args, std::uint64_t seed)
{
    if (args.size() != func.args.size()) {
        throw TypeError(cat("function '", func.name, "' expects ",
                            func.args.size(), " argument(s), got ",
                            args.size()));
    }
    std::unordered_map<std::string, expr::Value> bound;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const FuncArgDecl &decl = func.args[i];
        if (!decl.type.contains(args[i])) {
            throw TypeError(cat("argument ", i + 1, " ('", decl.name,
                                "') of function '", func.name,
                                "': value ", args[i].str(),
                                " does not fit ", decl.type.str()));
        }
        std::string key = decl.isDotted()
                              ? decl.name + "." + decl.attrName
                              : decl.name;
        bound.emplace(std::move(key), args[i]);
    }

    expr::EvalContext ctx;
    ctx.lookupVar = [&bound](const std::string &name)
        -> std::optional<expr::Value> {
        auto it = bound.find(name);
        if (it == bound.end())
            return std::nullopt;
        return it->second;
    };

    support::Rng rng(seed);
    dg::Graph graph(&lang.types(), lang.name());

    for (const FuncStmt &stmt : func.body) {
        switch (stmt.kind) {
          case FuncStmtKind::Node:
            graph.addNode(stmt.name, stmt.type);
            break;
          case FuncStmtKind::Edge: {
            auto src = graph.findNode(stmt.src);
            auto dst = graph.findNode(stmt.dst);
            if (!src || !dst) {
                throw SemaError(cat("edge '", stmt.name,
                                    "' references undefined node"),
                                stmt.loc);
            }
            graph.addEdge(stmt.name, stmt.type, *src, *dst);
            break;
          }
          case FuncStmtKind::SetAttr: {
            expr::Value value = expr::eval(stmt.value, ctx);
            if (auto node = graph.findNode(stmt.name)) {
                graph.setNodeAttr(*node, stmt.attr, value, &rng);
            } else if (auto edge = graph.findEdge(stmt.name)) {
                graph.setEdgeAttr(*edge, stmt.attr, value, &rng);
            } else {
                throw SemaError(cat("set-attr references undefined "
                                    "element '", stmt.name, "'"),
                                stmt.loc);
            }
            break;
          }
          case FuncStmtKind::SetInit: {
            expr::Value value = expr::eval(stmt.value, ctx);
            auto node = graph.findNode(stmt.name);
            if (!node) {
                throw SemaError(cat("set-init references undefined node '",
                                    stmt.name, "'"),
                                stmt.loc);
            }
            graph.setInit(*node, stmt.derivative, value, &rng);
            break;
          }
          case FuncStmtKind::SetSwitch: {
            expr::Value cond = expr::eval(stmt.when, ctx);
            bool on = cond.isBool() ? cond.asBool()
                                    : cond.asReal() != 0.0;
            auto edge = graph.findEdge(stmt.name);
            if (!edge) {
                throw SemaError(cat("set-switch references undefined "
                                    "edge '", stmt.name, "'"),
                                stmt.loc);
            }
            graph.setEnabled(*edge, on);
            break;
          }
        }
    }

    // Dotted arguments program their attribute after construction.
    for (const FuncArgDecl &arg : func.args) {
        if (!arg.isDotted())
            continue;
        const expr::Value &value = bound.at(arg.name + "." + arg.attrName);
        if (auto node = graph.findNode(arg.name)) {
            graph.setNodeAttr(*node, arg.attrName, value, &rng);
        } else if (auto edge = graph.findEdge(arg.name)) {
            graph.setEdgeAttr(*edge, arg.attrName, value, &rng);
        } else {
            throw SemaError(cat("dotted argument '", arg.name,
                                "' names an element the body never "
                                "declared"),
                            arg.loc);
        }
    }

    graph.checkComplete();
    return graph;
}

GraphBuilder::GraphBuilder(const Language &lang, std::uint64_t seed)
    : lang_(lang), graph_(&lang.types(), lang.name()), rng_(seed)
{
}

dg::NodeId
GraphBuilder::nodeId(const std::string &name) const
{
    auto id = graph_.findNode(name);
    if (!id)
        throw SemaError(cat("unknown node '", name, "'"));
    return *id;
}

dg::EdgeId
GraphBuilder::edgeId(const std::string &name) const
{
    auto id = graph_.findEdge(name);
    if (!id)
        throw SemaError(cat("unknown edge '", name, "'"));
    return *id;
}

const std::string &
GraphBuilder::node(const std::string &name, const std::string &type)
{
    dg::NodeId id = graph_.addNode(name, type);
    return graph_.node(id).name;
}

const std::string &
GraphBuilder::edge(const std::string &name, const std::string &type,
                   const std::string &src, const std::string &dst)
{
    dg::EdgeId id = graph_.addEdge(name, type, nodeId(src), nodeId(dst));
    return graph_.edge(id).name;
}

void
GraphBuilder::attr(const std::string &element, const std::string &attr,
                   const expr::Value &value)
{
    if (auto node = graph_.findNode(element)) {
        graph_.setNodeAttr(*node, attr, value, &rng_);
    } else if (auto edge = graph_.findEdge(element)) {
        graph_.setEdgeAttr(*edge, attr, value, &rng_);
    } else {
        throw SemaError(cat("unknown element '", element, "'"));
    }
}

void
GraphBuilder::attr(const std::string &element, const std::string &attr,
                   double value)
{
    this->attr(element, attr, expr::Value::real(value));
}

void
GraphBuilder::init(const std::string &node, int derivative, double value)
{
    graph_.setInit(nodeId(node), derivative, expr::Value::real(value),
                   &rng_);
}

void
GraphBuilder::enable(const std::string &edge, bool enabled)
{
    graph_.setEnabled(edgeId(edge), enabled);
}

dg::Graph
GraphBuilder::take()
{
    graph_.checkComplete();
    return std::move(graph_);
}

} // namespace ark::lang
