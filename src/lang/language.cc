#include "lang/language.h"

#include <limits>
#include <unordered_set>

#include "expr/eval.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::lang {

using support::cat;
using support::CompileError;
using support::SemaError;
using support::TypeError;

std::string
ProdRule::str() const
{
    std::string out = cat("prod(", edgeVar, ":", edgeType, ", ", srcVar,
                          ":", srcType, "->", dstVar, ":", dstType, ") ",
                          target == Target::Src ? srcVar : dstVar, " <= ",
                          expr ? expr->str() : "<null>");
    if (off)
        out += " off";
    return out;
}

const ProdRule *
Language::lookupRule(const std::string &edgeType, const std::string &srcType,
                     const std::string &dstType, bool self,
                     ProdRule::Target target, bool off) const
{
    const ProdRule *best = nullptr;
    int bestDist = std::numeric_limits<int>::max();
    bool ambiguous = false;

    for (const ProdRule &rule : prodRules_) {
        if (rule.off != off || rule.self != self || rule.target != target)
            continue;
        int de = types_.edgeDistance(edgeType, rule.edgeType);
        if (de < 0)
            continue;
        int ds = types_.nodeDistance(srcType, rule.srcType);
        if (ds < 0)
            continue;
        int dd = types_.nodeDistance(dstType, rule.dstType);
        if (dd < 0)
            continue;
        int dist = de + ds + dd;
        if (dist < bestDist) {
            bestDist = dist;
            best = &rule;
            ambiguous = false;
        } else if (dist == bestDist && best) {
            ambiguous = true;
        }
    }
    if (ambiguous) {
        throw CompileError(cat("ambiguous production rules for edge '",
                               edgeType, "' connecting '", srcType,
                               "' -> '", dstType, "' (two rules at equal "
                               "specificity)"));
    }
    return best;
}

std::vector<const Cstr *>
Language::cstrsFor(const std::string &nodeType) const
{
    std::vector<const Cstr *> out;
    for (const Cstr &cstr : cstrs_)
        if (types_.isNodeAncestor(cstr.nodeType, nodeType))
            out.push_back(&cstr);
    return out;
}

bool
Language::isDescendantOf(const std::string &ancestor) const
{
    for (const Language *lang = this; lang; lang = lang->parent_)
        if (lang->name_ == ancestor)
            return true;
    return false;
}

namespace {

/** Maps a DataType to the static type of expressions reading it. */
expr::StaticType
staticTypeOf(const dg::DataType &type)
{
    switch (type.kind()) {
      case dg::TypeKind::Real:
        return expr::StaticType::Real;
      case dg::TypeKind::Int:
        return expr::StaticType::Int;
      case dg::TypeKind::Function:
        return expr::StaticType::Function;
    }
    return expr::StaticType::Real;
}

/**
 * Merges declared attributes over the inherited ones: overrides must
 * keep the datatype kind and narrow (or keep) the range; new names
 * append in declaration order.
 */
std::vector<dg::AttrDef>
mergeAttrs(const std::vector<dg::AttrDef> &inherited,
           const std::vector<AttrDecl> &declared,
           const std::string &typeName)
{
    std::vector<dg::AttrDef> out = inherited;
    std::unordered_set<std::string> seen;
    for (const AttrDecl &decl : declared) {
        if (!seen.insert(decl.name).second) {
            throw SemaError(cat("attribute '", decl.name,
                                "' declared twice in type '", typeName,
                                "'"),
                            decl.loc);
        }
        bool overrode = false;
        for (auto &attr : out) {
            if (attr.name != decl.name)
                continue;
            if (!decl.type.narrowerOrEqual(attr.type)) {
                throw SemaError(cat("attribute '", typeName, ".",
                                    decl.name, "' of type ",
                                    decl.type.str(),
                                    " does not narrow the inherited ",
                                    attr.type.str()),
                                decl.loc);
            }
            attr.type = decl.type;
            attr.fixedValue = decl.constValue;
            overrode = true;
            break;
        }
        if (!overrode)
            out.push_back(dg::AttrDef{decl.name, decl.type,
                                      decl.constValue});
    }
    return out;
}

std::vector<dg::InitDef>
mergeInits(const std::vector<dg::InitDef> &inherited,
           const std::vector<InitDecl> &declared, int order,
           const std::string &typeName)
{
    std::vector<dg::InitDef> out = inherited;
    std::unordered_set<int> seen;
    for (const InitDecl &decl : declared) {
        if (decl.derivative < 0 || decl.derivative >= order) {
            throw SemaError(cat("init(", decl.derivative,
                                ") is out of range for order-", order,
                                " type '", typeName, "'"),
                            decl.loc);
        }
        if (!seen.insert(decl.derivative).second) {
            throw SemaError(cat("init(", decl.derivative,
                                ") declared twice in type '", typeName,
                                "'"),
                            decl.loc);
        }
        bool overrode = false;
        for (auto &init : out) {
            if (init.derivative != decl.derivative)
                continue;
            if (!decl.type.narrowerOrEqual(init.type)) {
                throw SemaError(cat("init(", decl.derivative, ") of '",
                                    typeName,
                                    "' does not narrow the inherited "
                                    "datatype"),
                                decl.loc);
            }
            init.type = decl.type;
            init.fixedValue = decl.constValue;
            overrode = true;
            break;
        }
        if (!overrode) {
            out.push_back(dg::InitDef{decl.derivative, decl.type,
                                      decl.constValue});
        }
    }
    // Implicit init(i) = 0.0 for derivatives without declarations; the
    // paper's listings elide these (§4.1 requires them to exist).
    for (int d = 0; d < order; ++d) {
        bool found = false;
        for (const auto &init : out)
            found |= (init.derivative == d);
        if (!found) {
            constexpr double inf = std::numeric_limits<double>::infinity();
            out.push_back(dg::InitDef{d, dg::DataType::real(-inf, inf),
                                      expr::Value::real(0.0)});
        }
    }
    return out;
}

/** Type-checking scope for a production rule's expression. */
expr::TypeScope
ruleScope(const dg::TypeTable &types, const ProdRuleDecl &decl)
{
    auto typeOfBinding =
        [&types, &decl](const std::string &base,
                        const std::string &attr)
        -> const dg::DataType * {
        if (base == decl.edgeVar) {
            const auto *def = types.edgeType(decl.edgeType).findAttr(attr);
            return def ? &def->type : nullptr;
        }
        if (base == decl.srcVar) {
            const auto *def = types.nodeType(decl.srcType).findAttr(attr);
            return def ? &def->type : nullptr;
        }
        if (base == decl.dstVar) {
            const auto *def = types.nodeType(decl.dstType).findAttr(attr);
            return def ? &def->type : nullptr;
        }
        return nullptr;
    };

    expr::TypeScope scope;
    scope.varType = [](const std::string &)
        -> std::optional<expr::StaticType> { return std::nullopt; };
    scope.attrType = [typeOfBinding](const std::string &base,
                                     const std::string &attr)
        -> std::optional<expr::StaticType> {
        const dg::DataType *type = typeOfBinding(base, attr);
        if (!type)
            return std::nullopt;
        return staticTypeOf(*type);
    };
    scope.lambdaArity = [typeOfBinding](const std::string &base,
                                        const std::string &attr)
        -> std::optional<int> {
        const dg::DataType *type = typeOfBinding(base, attr);
        if (!type || !type->isFunction())
            return std::nullopt;
        return type->arity();
    };
    scope.nodeVarOk = [&decl](const std::string &name) {
        return name == decl.srcVar || name == decl.dstVar;
    };
    return scope;
}

} // namespace

std::unique_ptr<Language>
buildLanguage(const LangDecl &decl, const Language *parent)
{
    auto lang = std::unique_ptr<Language>(new Language());
    lang->name_ = decl.name;
    lang->parent_ = parent;

    if (decl.inherits && !parent) {
        throw SemaError(cat("language '", decl.name,
                            "' inherits unknown language '",
                            *decl.inherits, "'"),
                        decl.loc);
    }
    if (!decl.inherits && parent) {
        throw SemaError(cat("language '", decl.name,
                            "' given a parent it does not declare"),
                        decl.loc);
    }

    // Start from the parent's complete state: inherited types and
    // rules can be extended but never removed (§4.1.1).
    std::unordered_set<std::string> ownTypes;
    if (parent) {
        lang->types_ = parent->types();
        lang->prodRules_ = parent->prodRules();
        lang->cstrs_ = parent->cstrs();
        lang->externFuncs_ = parent->externFuncs();
    }

    auto isOwnType = [&ownTypes](const std::string &name) {
        return ownTypes.count(name) > 0;
    };

    // --- Node types ----------------------------------------------------
    for (const NodeTypeDecl &nd : decl.nodeTypes) {
        dg::NodeTypeDef def;
        def.name = nd.name;
        def.order = nd.order;
        def.reduction = nd.reduction;
        def.lang = decl.name;
        std::vector<dg::AttrDef> inheritedAttrs;
        std::vector<dg::InitDef> inheritedInits;
        if (nd.inherits) {
            const dg::NodeTypeDef *parentDef =
                lang->types_.findNodeType(*nd.inherits);
            if (!parentDef) {
                throw SemaError(cat("node type '", nd.name,
                                    "' inherits unknown type '",
                                    *nd.inherits, "'"),
                                nd.loc);
            }
            if (parentDef->order != nd.order) {
                throw SemaError(cat("node type '", nd.name,
                                    "' must keep the inherited order ",
                                    parentDef->order),
                                nd.loc);
            }
            if (parentDef->reduction != nd.reduction) {
                throw SemaError(cat("node type '", nd.name,
                                    "' must keep the inherited '",
                                    dg::reductionName(parentDef->reduction),
                                    "' reduction"),
                                nd.loc);
            }
            def.parent = *nd.inherits;
            inheritedAttrs = parentDef->attrs;
            inheritedInits = parentDef->inits;
        }
        def.attrs = mergeAttrs(inheritedAttrs, nd.attrs, nd.name);
        def.inits = mergeInits(inheritedInits, nd.inits, nd.order,
                               nd.name);
        lang->types_.addNodeType(std::move(def));
        ownTypes.insert(nd.name);
    }

    // --- Edge types ----------------------------------------------------
    for (const EdgeTypeDecl &ed : decl.edgeTypes) {
        dg::EdgeTypeDef def;
        def.name = ed.name;
        def.fixed = ed.fixed;
        def.lang = decl.name;
        std::vector<dg::AttrDef> inheritedAttrs;
        if (ed.inherits) {
            const dg::EdgeTypeDef *parentDef =
                lang->types_.findEdgeType(*ed.inherits);
            if (!parentDef) {
                throw SemaError(cat("edge type '", ed.name,
                                    "' inherits unknown type '",
                                    *ed.inherits, "'"),
                                ed.loc);
            }
            def.parent = *ed.inherits;
            def.fixed = ed.fixed || parentDef->fixed;
            inheritedAttrs = parentDef->attrs;
        }
        def.attrs = mergeAttrs(inheritedAttrs, ed.attrs, ed.name);
        lang->types_.addEdgeType(std::move(def));
        ownTypes.insert(ed.name);
    }

    // --- Production rules ----------------------------------------------
    for (const ProdRuleDecl &pd : decl.prodRules) {
        ProdRule rule;
        rule.edgeType = pd.edgeType;
        rule.srcType = pd.srcType;
        rule.dstType = pd.dstType;
        rule.edgeVar = pd.edgeVar;
        rule.srcVar = pd.srcVar;
        rule.dstVar = pd.dstVar;
        rule.expr = pd.expr;
        rule.off = pd.off;
        rule.definedIn = decl.name;
        rule.self = (pd.srcVar == pd.dstVar);

        if (!lang->types_.hasEdgeType(pd.edgeType)) {
            throw SemaError(cat("production rule references unknown edge "
                                "type '", pd.edgeType, "'"),
                            pd.loc);
        }
        if (!lang->types_.hasNodeType(pd.srcType)) {
            throw SemaError(cat("production rule references unknown node "
                                "type '", pd.srcType, "'"),
                            pd.loc);
        }
        if (!lang->types_.hasNodeType(pd.dstType)) {
            throw SemaError(cat("production rule references unknown node "
                                "type '", pd.dstType, "'"),
                            pd.loc);
        }
        if (rule.self && pd.srcType != pd.dstType) {
            throw SemaError(cat("self rule binds '", pd.srcVar,
                                "' to two different types"),
                            pd.loc);
        }
        if (pd.targetVar == pd.srcVar) {
            rule.target = ProdRule::Target::Src;
        } else if (pd.targetVar == pd.dstVar) {
            rule.target = ProdRule::Target::Dst;
        } else {
            throw SemaError(cat("production target '", pd.targetVar,
                                "' is neither the source '", pd.srcVar,
                                "' nor the destination '", pd.dstVar,
                                "'"),
                            pd.loc);
        }

        // Expression checks: only rule bindings may be referenced, and
        // the term must be numeric.
        for (const std::string &freeVar : pd.expr->freeVars()) {
            throw SemaError(cat("production expression references "
                                "variable '", freeVar,
                                "' outside the prod(.) clause"),
                            pd.loc);
        }
        expr::TypeScope scope = ruleScope(lang->types_, pd);
        expr::StaticType resultType;
        try {
            resultType = expr::checkType(pd.expr, scope);
        } catch (const TypeError &err) {
            throw SemaError(cat("in production rule for edge '",
                                pd.edgeType, "': ", err.message()),
                            pd.loc);
        }
        if (resultType != expr::StaticType::Real &&
            resultType != expr::StaticType::Int) {
            throw SemaError("production expression must be numeric",
                            pd.loc);
        }

        // §4.1.1: parent rules cannot be overridden; derived-language
        // rules must mention at least one type of the derived language.
        for (const ProdRule &existing : lang->prodRules_) {
            if (existing.edgeType == rule.edgeType &&
                existing.srcType == rule.srcType &&
                existing.dstType == rule.dstType &&
                existing.self == rule.self &&
                existing.target == rule.target &&
                existing.off == rule.off) {
                throw SemaError(cat("production rule duplicates or "
                                    "overrides '", existing.str(), "'"),
                                pd.loc);
            }
        }
        if (parent && !isOwnType(rule.edgeType) &&
            !isOwnType(rule.srcType) && !isOwnType(rule.dstType)) {
            throw SemaError(cat("new production rule in '", decl.name,
                                "' must involve a type declared in '",
                                decl.name, "'"),
                            pd.loc);
        }
        lang->prodRules_.push_back(std::move(rule));
    }

    // --- Local validity rules -------------------------------------------
    for (const CstrDecl &cd : decl.cstrs) {
        Cstr cstr;
        cstr.nodeType = cd.nodeType;
        cstr.definedIn = decl.name;
        if (!lang->types_.hasNodeType(cd.nodeType)) {
            throw SemaError(cat("cstr references unknown node type '",
                                cd.nodeType, "'"),
                            cd.loc);
        }
        bool mentionsOwn = isOwnType(cd.nodeType);
        for (const PatternDecl &pat : cd.patterns) {
            Pattern pattern;
            for (const MatchClause &clause : pat.clauses) {
                if (!lang->types_.hasEdgeType(clause.edgeType)) {
                    throw SemaError(cat("match clause references unknown "
                                        "edge type '", clause.edgeType,
                                        "'"),
                                    clause.loc);
                }
                mentionsOwn |= isOwnType(clause.edgeType);
                for (const std::string &nodeType : clause.nodeTypes) {
                    if (!lang->types_.hasNodeType(nodeType)) {
                        throw SemaError(cat("match clause references "
                                            "unknown node type '",
                                            nodeType, "'"),
                                        clause.loc);
                    }
                    mentionsOwn |= isOwnType(nodeType);
                }
                if (!clause.targetName.empty() &&
                    clause.targetName != cd.targetVar) {
                    throw SemaError(cat("match clause names '",
                                        clause.targetName,
                                        "' instead of the cstr target '",
                                        cd.targetVar, "'"),
                                    clause.loc);
                }
                if (clause.hi >= 0 && clause.lo > clause.hi) {
                    throw SemaError("match cardinality range is empty",
                                    clause.loc);
                }
                pattern.clauses.push_back(clause);
            }
            if (pat.accept)
                cstr.accepts.push_back(std::move(pattern));
            else
                cstr.rejects.push_back(std::move(pattern));
        }
        if (parent && !mentionsOwn) {
            throw SemaError(cat("new validity rule in '", decl.name,
                                "' must involve a type declared in '",
                                decl.name, "'"),
                            cd.loc);
        }
        lang->cstrs_.push_back(std::move(cstr));
    }

    // --- Global validity functions ---------------------------------------
    for (const ExternFuncDecl &ext : decl.externFuncs)
        lang->externFuncs_.push_back(ext.name);

    return lang;
}

} // namespace ark::lang
