#ifndef ARK_LANG_FUNC_H
#define ARK_LANG_FUNC_H

/**
 * @file
 * Ark function checking and execution (paper §4.2, §4.6).
 *
 * Functions procedurally generate dynamical graphs. checkFunction
 * performs the static checks (types declared, elements defined before
 * use, datatype assignments valid, const attributes not argument-
 * dependent, switches only on non-fixed edges); invokeFunction runs a
 * checked function with concrete argument values and a mismatch seed,
 * yielding a complete dg::Graph.
 *
 * GraphBuilder offers the same typed construction path to C++ code,
 * used by the paradigm libraries to generate parametric topologies
 * (n-node lines, WxH cell grids) that would be unwieldy as literal
 * Ark function bodies.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dg/graph.h"
#include "lang/ast.h"
#include "lang/language.h"
#include "support/rng.h"

namespace ark::lang {

/**
 * Statically checks a function against its language.
 * @throws ark::support::SemaError / TypeError on violations.
 */
void checkFunction(const FuncDecl &func, const Language &lang);

/**
 * Executes a function, producing a dynamical graph.
 *
 * @param func Checked function declaration.
 * @param lang The language named by the function's `uses` clause.
 * @param args Positional argument values (checked against datatypes).
 * @param seed Seed for mismatch sampling; vary it across invocations
 *             to model multiple fabricated instances (paper §4.3).
 * @throws ark::support::SemaError / TypeError on bad arguments or an
 *         incomplete graph.
 */
dg::Graph invokeFunction(const FuncDecl &func, const Language &lang,
                         const std::vector<expr::Value> &args,
                         std::uint64_t seed = 0);

/**
 * Name-based graph construction for C++ callers, with the same
 * checking and mismatch sampling as Ark function execution.
 */
class GraphBuilder
{
  public:
    /** @param lang Language the graph is written in.
     *  @param seed Mismatch sampling seed. */
    explicit GraphBuilder(const Language &lang, std::uint64_t seed = 0);

    /** Adds a node; returns its name for chaining convenience. */
    const std::string &node(const std::string &name,
                            const std::string &type);

    /** Adds an edge between named nodes. */
    const std::string &edge(const std::string &name,
                            const std::string &type,
                            const std::string &src,
                            const std::string &dst);

    /** Sets a node or edge attribute (samples mm types). */
    void attr(const std::string &element, const std::string &attr,
              const expr::Value &value);
    void attr(const std::string &element, const std::string &attr,
              double value);

    /** Sets the initial value of a node's ith derivative. */
    void init(const std::string &node, int derivative, double value);

    /** Switches an edge on or off. */
    void enable(const std::string &edge, bool enabled);

    /** Read access while building. */
    const dg::Graph &graph() const { return graph_; }
    const Language &language() const { return lang_; }

    /**
     * Verifies completeness and moves the graph out; the builder is
     * unusable afterwards.
     */
    dg::Graph take();

  private:
    const Language &lang_;
    dg::Graph graph_;
    support::Rng rng_;

    dg::NodeId nodeId(const std::string &name) const;
    dg::EdgeId edgeId(const std::string &name) const;
};

} // namespace ark::lang

#endif // ARK_LANG_FUNC_H
