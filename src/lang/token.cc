#include "lang/token.h"

#include <cctype>
#include <cstdlib>

#include "support/logging.h"

namespace ark::lang {

using support::cat;
using support::LexError;
using support::SourceLoc;

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Ident: return "identifier";
      case TokenKind::IntLit: return "integer literal";
      case TokenKind::RealLit: return "real literal";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Comma: return "','";
      case TokenKind::Colon: return "':'";
      case TokenKind::Semi: return "';'";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Assign: return "'='";
      case TokenKind::Arrow: return "'->'";
      case TokenKind::ProdApply: return "'<='";
      case TokenKind::Lt: return "'<'";
      case TokenKind::Gt: return "'>'";
      case TokenKind::Ge: return "'>='";
      case TokenKind::EqEq: return "'=='";
      case TokenKind::NotEq: return "'!='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::EndOfFile: return "end of input";
    }
    return "token";
}

namespace {

/** Cursor over the source with line/column tracking. */
class Cursor
{
  public:
    explicit Cursor(const std::string &src) : src_(src) {}

    bool done() const { return pos_ >= src_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        std::size_t p = pos_ + ahead;
        return p < src_.size() ? src_[p] : '\0';
    }
    char advance()
    {
        char ch = src_[pos_++];
        if (ch == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return ch;
    }
    SourceLoc loc() const { return SourceLoc{line_, col_}; }

  private:
    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

bool
isIdentStart(char ch)
{
    return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_';
}

bool
isIdentChar(char ch)
{
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
}

Token
lexNumber(Cursor &cur)
{
    Token tok;
    tok.loc = cur.loc();
    std::string text;
    bool isReal = false;
    while (std::isdigit(static_cast<unsigned char>(cur.peek())))
        text += cur.advance();
    if (cur.peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
        isReal = true;
        text += cur.advance(); // '.'
        while (std::isdigit(static_cast<unsigned char>(cur.peek())))
            text += cur.advance();
    }
    if (cur.peek() == 'e' || cur.peek() == 'E') {
        char after = cur.peek(1);
        char after2 = cur.peek(2);
        bool signedExp = (after == '+' || after == '-') &&
                         std::isdigit(static_cast<unsigned char>(after2));
        if (std::isdigit(static_cast<unsigned char>(after)) || signedExp) {
            isReal = true;
            text += cur.advance(); // e
            if (signedExp)
                text += cur.advance();
            while (std::isdigit(static_cast<unsigned char>(cur.peek())))
                text += cur.advance();
        }
    }
    if (isReal) {
        tok.kind = TokenKind::RealLit;
        tok.realValue = std::strtod(text.c_str(), nullptr);
    } else {
        tok.kind = TokenKind::IntLit;
        tok.intValue = std::strtoll(text.c_str(), nullptr, 10);
    }
    return tok;
}

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    Cursor cur(source);

    auto push = [&](TokenKind kind, SourceLoc loc) {
        Token tok;
        tok.kind = kind;
        tok.loc = loc;
        tokens.push_back(std::move(tok));
    };

    while (!cur.done()) {
        char ch = cur.peek();
        SourceLoc loc = cur.loc();

        if (std::isspace(static_cast<unsigned char>(ch))) {
            cur.advance();
            continue;
        }
        // Comments: // ... or # ... to end of line.
        if (ch == '#' || (ch == '/' && cur.peek(1) == '/')) {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            tokens.push_back(lexNumber(cur));
            continue;
        }
        if (isIdentStart(ch)) {
            Token tok;
            tok.kind = TokenKind::Ident;
            tok.loc = loc;
            while (isIdentChar(cur.peek()))
                tok.text += cur.advance();
            tokens.push_back(std::move(tok));
            continue;
        }
        cur.advance();
        switch (ch) {
          case '{': push(TokenKind::LBrace, loc); break;
          case '}': push(TokenKind::RBrace, loc); break;
          case '(': push(TokenKind::LParen, loc); break;
          case ')': push(TokenKind::RParen, loc); break;
          case '[': push(TokenKind::LBracket, loc); break;
          case ']': push(TokenKind::RBracket, loc); break;
          case ',': push(TokenKind::Comma, loc); break;
          case ':': push(TokenKind::Colon, loc); break;
          case ';': push(TokenKind::Semi, loc); break;
          case '.': push(TokenKind::Dot, loc); break;
          case '+': push(TokenKind::Plus, loc); break;
          case '*': push(TokenKind::Star, loc); break;
          case '/': push(TokenKind::Slash, loc); break;
          case '^': push(TokenKind::Caret, loc); break;
          case '=':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::EqEq, loc);
            } else {
                push(TokenKind::Assign, loc);
            }
            break;
          case '!':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::NotEq, loc);
            } else {
                throw LexError("stray '!'", loc);
            }
            break;
          case '<':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::ProdApply, loc);
            } else {
                push(TokenKind::Lt, loc);
            }
            break;
          case '>':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::Ge, loc);
            } else {
                push(TokenKind::Gt, loc);
            }
            break;
          case '-':
            if (cur.peek() == '>') {
                cur.advance();
                push(TokenKind::Arrow, loc);
            } else {
                push(TokenKind::Minus, loc);
            }
            break;
          default:
            throw LexError(cat("unexpected character '", std::string(1, ch),
                               "'"), loc);
        }
    }

    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.loc = cur.loc();
    tokens.push_back(std::move(eof));
    return tokens;
}

} // namespace ark::lang
