#ifndef ARK_LANG_AST_H
#define ARK_LANG_AST_H

/**
 * @file
 * Parsed representation of Ark programs (Figure 6 of the paper).
 *
 * The AST stays close to the concrete syntax; semantic analysis
 * (sema.h) lowers LangDecls into Language objects and checks
 * FuncDecls. Datatypes and literal values are already in their
 * semantic form (dg::DataType / expr::Value) because their syntax is
 * closed and unambiguous.
 */

#include <optional>
#include <string>
#include <vector>

#include "dg/datatype.h"
#include "dg/types.h"
#include "expr/expr.h"
#include "support/error.h"

namespace ark::lang {

/** attr v = SigTProg, optionally pinned to a constant value. */
struct AttrDecl
{
    std::string name;
    dg::DataType type;
    std::optional<expr::Value> constValue;
    support::SourceLoc loc;
};

/** init(i) SigTProg. */
struct InitDecl
{
    int derivative = 0;
    dg::DataType type;
    std::optional<expr::Value> constValue;
    support::SourceLoc loc;
};

/** node-type(p, Reduc) v [inherit w] { Attr* }. */
struct NodeTypeDecl
{
    std::string name;
    int order = 0;
    dg::Reduction reduction = dg::Reduction::Sum;
    std::optional<std::string> inherits;
    std::vector<AttrDecl> attrs;
    std::vector<InitDecl> inits;
    support::SourceLoc loc;
};

/** edge-type [fixed] v [inherit w] { Attr* }. */
struct EdgeTypeDecl
{
    std::string name;
    bool fixed = false;
    std::optional<std::string> inherits;
    std::vector<AttrDecl> attrs;
    support::SourceLoc loc;
};

/**
 * prod(e:ET, s:ST -> t:DT) v <= expr [off].
 * Self rules repeat the source name in the destination slot.
 */
struct ProdRuleDecl
{
    std::string edgeVar, edgeType;
    std::string srcVar, srcType;
    std::string dstVar, dstType;
    std::string targetVar; ///< The v in `v <= e`; srcVar or dstVar.
    expr::ExprPtr expr;
    bool off = false;
    support::SourceLoc loc;
};

/** Direction of a match clause relative to the target node. */
enum class MatchDir { In, Out, Self };

/**
 * match(lo, hi, EType, ...): between lo and hi edges of type EType in
 * the given direction, whose far endpoint's type is (a descendant of)
 * one of nodeTypes. Self clauses have no far endpoint.
 */
struct MatchClause
{
    MatchDir dir = MatchDir::Self;
    int lo = 0;
    int hi = -1; ///< -1 encodes inf.
    std::string edgeType;
    std::vector<std::string> nodeTypes; ///< Empty for Self.
    std::string targetName; ///< The vn the clause names (sema-checked).
    support::SourceLoc loc;
};

/** One acc[...] or rej[...] group: a pattern of clauses. */
struct PatternDecl
{
    bool accept = true;
    std::vector<MatchClause> clauses;
    support::SourceLoc loc;
};

/** cstr [vn:]T { (acc|rej)[...]* }. */
struct CstrDecl
{
    std::string targetVar; ///< Defaults to the type name.
    std::string nodeType;
    std::vector<PatternDecl> patterns;
    support::SourceLoc loc;
};

/** extern-func v: binds a registered global validity callback. */
struct ExternFuncDecl
{
    std::string name;
    support::SourceLoc loc;
};

/** lang v [inherits w] { LangSt* }. */
struct LangDecl
{
    std::string name;
    std::optional<std::string> inherits;
    std::vector<NodeTypeDecl> nodeTypes;
    std::vector<EdgeTypeDecl> edgeTypes;
    std::vector<ProdRuleDecl> prodRules;
    std::vector<CstrDecl> cstrs;
    std::vector<ExternFuncDecl> externFuncs;
    support::SourceLoc loc;
};

/**
 * Function argument: v : SigT, or the dotted form v0.v1 : SigT which
 * binds the argument directly to attribute v1 of node v0.
 */
struct FuncArgDecl
{
    std::string name;           ///< v, or v0 for the dotted form.
    std::string attrName;       ///< v1 for the dotted form; else empty.
    dg::DataType type;
    support::SourceLoc loc;

    bool isDotted() const { return !attrName.empty(); }
};

/** Function body statement kinds. */
enum class FuncStmtKind : std::uint8_t {
    Node,      ///< node v0 : v1
    Edge,      ///< edge<v0,v1> v2 : v3
    SetAttr,   ///< set-attr v0.v1 = FuncVal
    SetInit,   ///< set-init v(i) = FuncVal
    SetSwitch, ///< set-switch v when b   (alias: set-edge)
};

/**
 * One function-body statement. `value` holds FuncVal as an expression:
 * a literal, a lambda literal, or a variable reference to a function
 * argument.
 */
struct FuncStmt
{
    FuncStmtKind kind = FuncStmtKind::Node;
    std::string name;     ///< node/edge/target element name.
    std::string type;     ///< node/edge type name.
    std::string src, dst; ///< edge endpoints.
    std::string attr;     ///< set-attr attribute name.
    int derivative = 0;   ///< set-init derivative index.
    expr::ExprPtr value;  ///< set-attr/set-init right-hand side.
    expr::ExprPtr when;   ///< set-switch condition.
    support::SourceLoc loc;
};

/** func v0 (FuncArg*) uses v1 { FuncSt* }. */
struct FuncDecl
{
    std::string name;
    std::string usesLang;
    std::vector<FuncArgDecl> args;
    std::vector<FuncStmt> body;
    support::SourceLoc loc;
};

/** A whole source file: interleaved language and function decls. */
struct Program
{
    std::vector<LangDecl> langs;
    std::vector<FuncDecl> funcs;
};

} // namespace ark::lang

#endif // ARK_LANG_AST_H
