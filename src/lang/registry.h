#ifndef ARK_LANG_REGISTRY_H
#define ARK_LANG_REGISTRY_H

/**
 * @file
 * The Ark framework entry point (paper §4.6).
 *
 * A LanguageRegistry ingests Ark programs (language + function
 * definitions), lowers languages with inheritance resolution in
 * declaration order, checks functions, and invokes them to produce
 * dynamical graphs. Validation and compilation (Sections 5-6) live in
 * the validator/ and compiler/ modules and consume the Language and
 * dg::Graph objects this registry manages.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dg/graph.h"
#include "lang/ast.h"
#include "lang/func.h"
#include "lang/language.h"

namespace ark::lang {

/**
 * Owns languages and functions defined by Ark programs.
 *
 * Languages are immortal once defined (graphs and compiled systems
 * hold pointers into them), so the registry is move-only and
 * definitions cannot be replaced.
 */
class LanguageRegistry
{
  public:
    LanguageRegistry() = default;
    LanguageRegistry(const LanguageRegistry &) = delete;
    LanguageRegistry &operator=(const LanguageRegistry &) = delete;
    LanguageRegistry(LanguageRegistry &&) = default;
    LanguageRegistry &operator=(LanguageRegistry &&) = default;

    /**
     * Parses a source buffer and registers everything it defines.
     * @throws ArkError subclasses on lex/parse/sema failures; on
     *         failure the registry keeps the definitions that were
     *         already registered before the error.
     */
    void addProgram(const std::string &source);

    /** Registers a pre-parsed language declaration. */
    const Language &defineLanguage(const LangDecl &decl);

    /** Registers and checks a pre-parsed function. */
    void defineFunction(FuncDecl decl);

    const Language *findLanguage(const std::string &name) const;

    /** @throws SemaError when the language is unknown. */
    const Language &language(const std::string &name) const;

    const FuncDecl *findFunction(const std::string &name) const;

    /** @throws SemaError when the function is unknown. */
    const FuncDecl &function(const std::string &name) const;

    /**
     * Invokes a registered function (paper §4.6: execute, then
     * validate and compile downstream).
     */
    dg::Graph invoke(const std::string &funcName,
                     const std::vector<expr::Value> &args,
                     std::uint64_t seed = 0) const;

    std::vector<std::string> languageNames() const;
    std::vector<std::string> functionNames() const;

  private:
    std::vector<std::unique_ptr<Language>> languages_;
    std::unordered_map<std::string, const Language *> languageByName_;
    std::vector<FuncDecl> functions_;
    std::unordered_map<std::string, std::size_t> functionByName_;
};

} // namespace ark::lang

#endif // ARK_LANG_REGISTRY_H
