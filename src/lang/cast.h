#ifndef ARK_LANG_CAST_H
#define ARK_LANG_CAST_H

/**
 * @file
 * Casting dynamical graphs to ancestor languages (paper §4.1.1).
 *
 * The inheritance rules guarantee that "dynamic graphs comprised of
 * derived types can be cast to the parent type": every derived node
 * or edge type has an ancestor in the parent language, overridden
 * attributes fit the parent's (wider) ranges, and parent production
 * rules cover the resulting connections. castGraph performs that
 * conversion — mapping each element to its nearest ancestor type
 * available in the target language and carrying over the *nominal*
 * attribute values (hardware mismatch is a property of derived types;
 * the cast yields the idealized computation).
 */

#include "dg/graph.h"
#include "lang/language.h"

namespace ark::lang {

/**
 * Casts a graph written in a descendant of `target` into `target`.
 *
 * @param graph  Source graph (its language must descend from target,
 *               which is not checkable from the graph alone; type
 *               resolution failures throw).
 * @param target Ancestor language to cast into.
 * @return A graph over target's types: nearest-ancestor types,
 *         nominal attribute values for attributes the target type
 *         declares, initial values and switch states preserved.
 * @throws ark::support::SemaError when an element's type has no
 *         ancestor in the target language.
 */
dg::Graph castGraph(const dg::Graph &graph, const Language &target);

} // namespace ark::lang

#endif // ARK_LANG_CAST_H
