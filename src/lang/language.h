#ifndef ARK_LANG_LANGUAGE_H
#define ARK_LANG_LANGUAGE_H

/**
 * @file
 * Semantic model of an Ark language (an analog compute paradigm DSL).
 *
 * A Language owns the complete type table (its own types plus every
 * inherited one), the production rules that lower graph connectivity
 * into differential-equation terms, the local validity rules, and the
 * names of global extern-func validators. Languages form single-
 * inheritance chains obeying the paper's §4.1.1 restrictions, which
 * sema.h enforces when lowering a parsed LangDecl into a Language.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dg/types.h"
#include "lang/ast.h"

namespace ark::lang {

/**
 * A lowered production rule. The side the term applies to is explicit
 * (`target`), since the paper's rules write either `s <= e` or
 * `t <= e` for the same connection pattern.
 */
struct ProdRule
{
    enum class Target : std::uint8_t { Src, Dst };

    std::string edgeType;
    std::string srcType;
    std::string dstType;
    bool self = false;   ///< Rule binds source and destination names equal.
    Target target = Target::Src;
    std::string edgeVar, srcVar, dstVar; ///< Binding names for rewrite.
    expr::ExprPtr expr;
    bool off = false;    ///< Applies to switched-off edges (nonideality).
    std::string definedIn;

    /** "prod(e:E, s:V->t:I) s <= ..."-style summary. */
    std::string str() const;
};

/** One acc/rej pattern: a conjunction of match clauses. */
struct Pattern
{
    std::vector<MatchClause> clauses;
};

/** A lowered local validity rule for one node type. */
struct Cstr
{
    std::string nodeType;
    std::vector<Pattern> accepts;
    std::vector<Pattern> rejects;
    std::string definedIn;
};

/**
 * An immutable Ark language. Instances are built by sema (see
 * buildLanguage) and owned by a LanguageRegistry; parent pointers
 * reference registry-owned ancestors.
 */
class Language
{
  public:
    const std::string &name() const { return name_; }
    const Language *parent() const { return parent_; }
    const dg::TypeTable &types() const { return types_; }
    const std::vector<ProdRule> &prodRules() const { return prodRules_; }
    const std::vector<Cstr> &cstrs() const { return cstrs_; }
    const std::vector<std::string> &externFuncs() const
    {
        return externFuncs_;
    }

    /**
     * Most-specific production rule for a concrete connection.
     *
     * Matching rules have the requested off/self/target markers and
     * declare types that are ancestors of the queried concrete types.
     * Specificity is the summed inheritance distance over (edge, src,
     * dst); the unique minimum wins.
     *
     * @return nullptr when no rule matches (the connection simply
     *         contributes nothing to that side's dynamics).
     * @throws ark::support::CompileError when two distinct rules tie.
     */
    const ProdRule *lookupRule(const std::string &edgeType,
                               const std::string &srcType,
                               const std::string &dstType, bool self,
                               ProdRule::Target target, bool off) const;

    /**
     * Local validity rules applicable to a node of the given type:
     * every cstr whose target type is an ancestor of (or equals) it.
     */
    std::vector<const Cstr *> cstrsFor(const std::string &nodeType) const;

    /** True when `ancestor` appears on this language's parent chain
     *  (reflexive). */
    bool isDescendantOf(const std::string &ancestor) const;

    /**
     * One-shot memo slot for a derived 128-bit digest of this
     * (immutable, never-moved — registry-owned behind a unique_ptr)
     * language. The first caller's `compute` result is cached; later
     * calls return it without invoking `compute`. Thread-safe; used
     * by the engine layer so content fingerprinting hashes each
     * language's rules and types once per process instead of once
     * per compiled graph.
     */
    std::array<std::uint64_t, 2> memoizedDigest(
        const std::function<std::array<std::uint64_t, 2>()> &compute)
        const
    {
        std::call_once(digestOnce_, [&] { digest_ = compute(); });
        return digest_;
    }

  private:
    friend std::unique_ptr<Language> buildLanguage(const LangDecl &,
                                                   const Language *);

    Language() = default;

    std::string name_;
    const Language *parent_ = nullptr;
    dg::TypeTable types_;
    std::vector<ProdRule> prodRules_;
    std::vector<Cstr> cstrs_;
    std::vector<std::string> externFuncs_;
    mutable std::once_flag digestOnce_;
    mutable std::array<std::uint64_t, 2> digest_{};
};

/**
 * Lowers a parsed language declaration, enforcing every §4.1 semantic
 * check and the §4.1.1 inheritance restrictions:
 *
 *  - unique type names; known parent types; attribute redefinitions
 *    keep the datatype kind and narrow (or keep) the value range;
 *  - derived node types keep the parent's order and reduction;
 *  - parent production/validation rules are copied and cannot be
 *    overridden (same-signature redefinition is an error);
 *  - new rules in a derived language must mention at least one type
 *    the derived language itself declares;
 *  - production expressions may reference only the rule's bindings
 *    (attributes of e/s/t, var(s)/var(t), time) and must type-check
 *    to a numeric value;
 *  - match clauses name the cstr's target node and reference declared
 *    types; node types implicitly receive init(i) declarations
 *    (defaulting to 0.0) for derivatives without an explicit one.
 *
 * @throws ark::support::SemaError / TypeError on violations.
 */
std::unique_ptr<Language> buildLanguage(const LangDecl &decl,
                                        const Language *parent);

} // namespace ark::lang

#endif // ARK_LANG_LANGUAGE_H
