#include "lang/cast.h"

#include "support/error.h"
#include "support/logging.h"

namespace ark::lang {

using support::cat;
using support::SemaError;

namespace {

/** Nearest ancestor of `type` declared in the target's type table. */
std::string
resolveNodeType(const dg::TypeTable &source, const dg::TypeTable &target,
                const std::string &type)
{
    std::string current = type;
    while (true) {
        if (target.hasNodeType(current))
            return current;
        const dg::NodeTypeDef *def = source.findNodeType(current);
        if (!def || def->parent.empty()) {
            throw SemaError(cat("node type '", type,
                                "' has no ancestor in the target "
                                "language"));
        }
        current = def->parent;
    }
}

std::string
resolveEdgeType(const dg::TypeTable &source, const dg::TypeTable &target,
                const std::string &type)
{
    std::string current = type;
    while (true) {
        if (target.hasEdgeType(current))
            return current;
        const dg::EdgeTypeDef *def = source.findEdgeType(current);
        if (!def || def->parent.empty()) {
            throw SemaError(cat("edge type '", type,
                                "' has no ancestor in the target "
                                "language"));
        }
        current = def->parent;
    }
}

} // namespace

dg::Graph
castGraph(const dg::Graph &graph, const Language &target)
{
    const dg::TypeTable &source = graph.types();
    const dg::TypeTable &types = target.types();
    dg::Graph out(&types, target.name());

    for (std::size_t i = 0; i < graph.numNodes(); ++i) {
        dg::NodeId id{static_cast<std::int32_t>(i)};
        const dg::Node &node = graph.node(id);
        std::string castType = resolveNodeType(source, types, node.type);
        dg::NodeId newId = out.addNode(node.name, castType);
        const dg::NodeTypeDef &def = types.nodeType(castType);
        // Nominal values for the attributes the target type declares;
        // sampled (mismatched) values belong to the derived type.
        for (const dg::AttrDef &attr : def.attrs) {
            auto it = node.attrs.find(attr.name);
            if (it != node.attrs.end())
                out.setNodeAttr(newId, attr.name, it->second.nominal);
        }
        for (int d = 0; d < def.order &&
                        d < static_cast<int>(node.inits.size());
             ++d) {
            const auto &slot = node.inits[static_cast<std::size_t>(d)];
            if (slot)
                out.setInit(newId, d, *slot);
        }
    }

    for (std::size_t i = 0; i < graph.numEdges(); ++i) {
        dg::EdgeId id{static_cast<std::int32_t>(i)};
        const dg::Edge &edge = graph.edge(id);
        std::string castType = resolveEdgeType(source, types, edge.type);
        dg::EdgeId newId = out.addEdge(
            edge.name, castType,
            *out.findNode(graph.node(edge.src).name),
            *out.findNode(graph.node(edge.dst).name));
        const dg::EdgeTypeDef &def = types.edgeType(castType);
        for (const dg::AttrDef &attr : def.attrs) {
            auto it = edge.attrs.find(attr.name);
            if (it != edge.attrs.end())
                out.setEdgeAttr(newId, attr.name, it->second.nominal);
        }
        if (edge.switchable && !def.fixed)
            out.setEnabled(newId, edge.enabled);
        else if (!edge.enabled && def.fixed) {
            throw SemaError(cat("edge '", edge.name,
                                "' is switched off but casts to fixed "
                                "type '", castType, "'"));
        }
    }

    out.checkComplete();
    return out;
}

} // namespace ark::lang
