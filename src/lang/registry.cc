#include "lang/registry.h"

#include "lang/parser.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::lang {

using support::cat;
using support::SemaError;

void
LanguageRegistry::addProgram(const std::string &source)
{
    Program program = parseProgram(source);
    for (const LangDecl &lang : program.langs)
        defineLanguage(lang);
    for (FuncDecl &func : program.funcs)
        defineFunction(std::move(func));
}

const Language &
LanguageRegistry::defineLanguage(const LangDecl &decl)
{
    if (languageByName_.count(decl.name)) {
        throw SemaError(cat("language '", decl.name,
                            "' is already defined"),
                        decl.loc);
    }
    const Language *parent = nullptr;
    if (decl.inherits) {
        parent = findLanguage(*decl.inherits);
        if (!parent) {
            throw SemaError(cat("language '", decl.name,
                                "' inherits unknown language '",
                                *decl.inherits, "'"),
                            decl.loc);
        }
    }
    languages_.push_back(buildLanguage(decl, parent));
    const Language &lang = *languages_.back();
    languageByName_.emplace(lang.name(), &lang);
    return lang;
}

void
LanguageRegistry::defineFunction(FuncDecl decl)
{
    if (functionByName_.count(decl.name)) {
        throw SemaError(cat("function '", decl.name,
                            "' is already defined"),
                        decl.loc);
    }
    const Language *lang = findLanguage(decl.usesLang);
    if (!lang) {
        throw SemaError(cat("function '", decl.name,
                            "' uses unknown language '", decl.usesLang,
                            "'"),
                        decl.loc);
    }
    checkFunction(decl, *lang);
    functionByName_.emplace(decl.name, functions_.size());
    functions_.push_back(std::move(decl));
}

const Language *
LanguageRegistry::findLanguage(const std::string &name) const
{
    auto it = languageByName_.find(name);
    return it == languageByName_.end() ? nullptr : it->second;
}

const Language &
LanguageRegistry::language(const std::string &name) const
{
    const Language *lang = findLanguage(name);
    if (!lang)
        throw SemaError(cat("unknown language '", name, "'"));
    return *lang;
}

const FuncDecl *
LanguageRegistry::findFunction(const std::string &name) const
{
    auto it = functionByName_.find(name);
    return it == functionByName_.end() ? nullptr : &functions_[it->second];
}

const FuncDecl &
LanguageRegistry::function(const std::string &name) const
{
    const FuncDecl *func = findFunction(name);
    if (!func)
        throw SemaError(cat("unknown function '", name, "'"));
    return *func;
}

dg::Graph
LanguageRegistry::invoke(const std::string &funcName,
                         const std::vector<expr::Value> &args,
                         std::uint64_t seed) const
{
    const FuncDecl &func = function(funcName);
    return invokeFunction(func, language(func.usesLang), args, seed);
}

std::vector<std::string>
LanguageRegistry::languageNames() const
{
    std::vector<std::string> names;
    names.reserve(languages_.size());
    for (const auto &lang : languages_)
        names.push_back(lang->name());
    return names;
}

std::vector<std::string>
LanguageRegistry::functionNames() const
{
    std::vector<std::string> names;
    names.reserve(functions_.size());
    for (const auto &func : functions_)
        names.push_back(func.name);
    return names;
}

} // namespace ark::lang
