#ifndef ARK_APPS_PUF_H
#define ARK_APPS_PUF_H

/**
 * @file
 * Transmission-line PUF analysis (paper §2).
 *
 * The PUF is a t-line with switchable branch stubs: the challenge
 * bitvector selects which stubs connect, reshaping the reflection
 * pattern observed at OUT_V; per-chip GmC mismatch (Em edge weights,
 * optionally Vm/Im capacitances) makes the waveform device-unique.
 * The response encodes the chip's waveform against the nominal
 * (mismatch-free) waveform, sampled across the observation window.
 *
 * Standard PUF quality metrics are provided: uniqueness (inter-chip
 * Hamming distance, ideal 50%), reliability (intra-chip distance
 * under measurement noise, ideal 0%), and challenge sensitivity.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dg/graph.h"
#include "engine/session.h"
#include "lang/language.h"
#include "sim/sim.h"

namespace ark::apps {

/** PUF topology and measurement parameters. */
struct PufDesign
{
    int mainSections = 20;   ///< LC sections on the main line.
    int numBranches = 4;     ///< Challenge width (switchable stubs).
    int stubSections = 4;    ///< Sections per stub.
    double pulseWidth = 2e-8;
    double windowStart = 1e-8; ///< Observation window (paper §2.2).
    double windowEnd = 8e-8;
    int responseBits = 64;   ///< Samples encoded into the response.

    /**
     * Integration method for the waveform simulations. Rk4 (default)
     * runs every chip on one homogeneous time grid, which lets a
     * challenge battery lane-batch across chips (the per-chip mismatch
     * weights land in LaneTape's per-lane constant tables while the
     * instruction stream is shared) with results bit-identical to
     * per-chip simulate() calls. Dopri5 batteries lane-batch too,
     * through the step-voting adaptive driver (sim/batch.h) — all
     * chips advance on one voted step sequence, so waveforms are
     * tolerance-level equivalent to per-chip adaptive runs rather
     * than bit-identical.
     */
    sim::Method simMethod = sim::Method::Rk4;

    /**
     * Fixed step for Rk4 / initial step for Dopri5; 0 picks
     * windowEnd/4000, the grid density the §4.5 SPICE
     * cross-validation runs at (<1% RMSE on these lines).
     */
    double simDt = 0.0;

    /**
     * Serve battery RHS evaluations from tier-5 native kernels
     * (sim::SimOptions::jit). Bit-identical to the interpreted tiers
     * and falls back to them silently when no host toolchain exists,
     * so response bits never depend on this knob.
     */
    bool jit = false;
};

/**
 * A reconfigurable TLN PUF design bound to the gmc-tln language.
 * Thread-safe: concurrent response()/waveform() calls are supported
 * (the nominal-waveform cache is populated once per challenge under
 * a per-challenge once-flag).
 *
 * Compiled chip systems are served through the engine session's
 * content-addressed ArtifactCache: a (challenge, chipSeed) pair is
 * built, ILP-validated, and compiled at most once per cache lifetime,
 * so challenge batteries that revisit challenges (CRP-dataset
 * generation, evaluatePuf's re-measurement pass) skip compilation
 * entirely. Pass a Session with caching disabled to reproduce the
 * historical rebuild-per-call behavior (results are bit-identical
 * either way).
 */
class TlnPuf
{
  public:
    /** @param gmcTln The gmc-tln language (mismatch types needed).
     *  @param session Engine front door used for compilation and
     *         ensemble execution (defaults to the shared cache). */
    TlnPuf(const lang::Language &gmcTln, PufDesign design,
           engine::Session session = engine::Session{});

    const PufDesign &design() const { return design_; }

    /** The engine session this PUF compiles and simulates through. */
    const engine::Session &session() const { return session_; }

    /**
     * Builds the PUF dynamical graph for one chip and challenge.
     * @param challenge Bit b enables stub b (must fit numBranches).
     * @param chipSeed  Mismatch seed; 0 disables mismatch entirely
     *                  (the nominal reference device).
     */
    dg::Graph buildGraph(std::uint32_t challenge,
                         std::uint64_t chipSeed) const;

    /** OUT_V waveform across the observation window. */
    std::vector<double> waveform(std::uint32_t challenge,
                                 std::uint64_t chipSeed) const;

    /**
     * OUT_V waveforms of many chips under one challenge. Each chip's
     * dynamical graph is built and compiled up front, then the whole
     * battery integrates through sim::simulateEnsemble — chips
     * lane-batch into shared instruction streams (same circuit
     * structure, per-chip mismatch constants). With the default
     * fixed-step design, results match per-chip waveform() calls
     * exactly; a Dopri5 design lane-batches through the step-voting
     * driver and matches at tolerance level instead.
     * @param numThreads 0 picks the hardware concurrency.
     * @throws ark::support::SimError if any chip's simulation fails
     *         (the structured per-instance failure is surfaced).
     */
    std::vector<std::vector<double>> waveformBatch(
        std::uint32_t challenge,
        const std::vector<std::uint64_t> &chipSeeds,
        unsigned numThreads = 0) const;

    /**
     * Challenge responses of many chips under one challenge, batched
     * through the ensemble engine. `noiseSeeds` must be empty or hold
     * one seed per chip; noise is applied only when `noiseSigma` is
     * positive AND per-chip seeds are given (a shared implicit seed
     * would correlate the chips' noise).
     */
    std::vector<std::vector<std::uint8_t>> responseBatch(
        std::uint32_t challenge,
        const std::vector<std::uint64_t> &chipSeeds,
        double noiseSigma = 0.0,
        const std::vector<std::uint64_t> &noiseSeeds = {},
        unsigned numThreads = 0) const;

    /**
     * Multi-challenge CRP battery: responses[c][chip] is chip
     * `chipSeeds[chip]`'s response to `challenges[c]`. This is the
     * cached front door for CRP-dataset generation: each distinct
     * (challenge, chip) system is compiled once (content-addressed,
     * warm across calls) and simulated once per call even when the
     * challenge list repeats entries — repeated challenges replicate
     * the simulated waveform and differ only in measurement noise.
     * The whole battery (all distinct challenges x chips) integrates
     * as ONE ensemble dispatch, so lane batching and the worker pool
     * amortize across challenges, not just within one.
     *
     * `noiseSeeds` must be empty (no noise) or hold one seed per
     * (challenge, chip) pair, challenge-major
     * (noiseSeeds[c * chipSeeds.size() + chip]); noise is applied
     * only when noiseSigma is positive AND seeds are given. With the
     * default fixed-step design, responses are bit-identical to
     * calling responseBatch once per challenge; an adaptive Dopri5
     * design lane-batches across challenges on voted step grids, so
     * responses match per-challenge calls at tolerance level instead.
     * @throws ark::support::SimError if any chip simulation fails.
     */
    std::vector<std::vector<std::vector<std::uint8_t>>> responseMatrix(
        const std::vector<std::uint32_t> &challenges,
        const std::vector<std::uint64_t> &chipSeeds,
        double noiseSigma = 0.0,
        const std::vector<std::uint64_t> &noiseSeeds = {},
        unsigned numThreads = 0) const;

    /**
     * Challenge response: one bit per sample, set when the chip's
     * waveform exceeds the nominal device's waveform at that sample.
     * Additive Gaussian measurement noise models re-measurement.
     */
    std::vector<std::uint8_t> response(std::uint32_t challenge,
                                       std::uint64_t chipSeed,
                                       double noiseSigma = 0.0,
                                       std::uint64_t noiseSeed = 0) const;

  private:
    const lang::Language &lang_;
    PufDesign design_;
    engine::Session session_;
    /** Nominal waveform per challenge, filled at most once under the
     *  matching once-flag — safe against concurrent response() calls.
     *  nominalReady_ flips true after publication; responseMatrix
     *  probes it to decide whether to fold the nominal device into
     *  its ensemble dispatch (a stale false only costs a redundant
     *  instance, never correctness). */
    mutable std::vector<std::vector<double>> nominalCache_;
    std::unique_ptr<std::once_flag[]> nominalOnce_;
    std::unique_ptr<std::atomic<bool>[]> nominalReady_;

    const std::vector<double> &nominalWaveform(std::uint32_t challenge) const;
};

/** Fraction of differing bits (0..1). */
double hammingFraction(const std::vector<std::uint8_t> &a,
                       const std::vector<std::uint8_t> &b);

/** PUF corpus metrics over a set of chips. */
struct PufMetrics
{
    double uniqueness;  ///< Mean inter-chip response distance.
    double reliability; ///< Mean intra-chip distance under noise.
    double challengeSensitivity; ///< Mean distance across challenges.
};

/**
 * Evaluates a PUF design over `numChips` simulated chips and
 * `numChallenges` random challenges.
 */
PufMetrics evaluatePuf(const TlnPuf &puf, int numChips,
                       int numChallenges, double noiseSigma,
                       std::uint64_t seed);

} // namespace ark::apps

#endif // ARK_APPS_PUF_H
