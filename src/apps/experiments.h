#ifndef ARK_APPS_EXPERIMENTS_H
#define ARK_APPS_EXPERIMENTS_H

/**
 * @file
 * Shared experiment runners regenerating the paper's evaluation
 * artifacts (Figures 2, 4, 11; Table 1; the §4.5 SPICE
 * cross-validation). Bench binaries and integration tests both call
 * these, so the numbers in EXPERIMENTS.md come from exactly the code
 * under test.
 */

#include <cstdint>
#include <vector>

#include "apps/image.h"
#include "lang/language.h"
#include "paradigms/cnn.h"
#include "paradigms/obc.h"
#include "paradigms/tln.h"

namespace ark::apps::experiments {

/** @name Figure 4: t-line transient dynamics */
/// @{

/** One OUT_V trace. */
struct TlnTrace
{
    std::vector<double> times;
    std::vector<double> volts;

    double peak() const;
    /** Maximum |v| inside [t0, t1]. */
    double peakWithin(double t0, double t1) const;
};

/** Figure 4b: 26-section linear line. */
TlnTrace fig4LinearTrace(const lang::Language &tln);

/** Figure 4a: branched line (18 main + 8 stub sections). */
TlnTrace fig4BranchedTrace(const lang::Language &tln);

/**
 * Figures 4c/4d: mismatched linear lines over `trials` fabricated
 * instances. gmMismatch selects Em-edge (Gm) mismatch; otherwise
 * Vm/Im (Cint) mismatch.
 */
std::vector<TlnTrace> fig4MismatchTraces(const lang::Language &gmcTln,
                                         bool gmMismatch, int trials,
                                         std::uint64_t seedBase = 1);

/** Across-trial spread: mean and max range of v(t) over a window. */
struct SpreadStats
{
    double meanRange;
    double maxRange;
};
SpreadStats spreadWithinWindow(const std::vector<TlnTrace> &traces,
                               double t0, double t1);

/// @}

/** @name Figure 11: CNN edge detection under nonidealities */
/// @{

/** One CNN run: frames over time plus convergence summary. */
struct CnnRun
{
    std::vector<double> frameTimes;
    std::vector<Image> frames;    ///< sat(x) rendered per frame.
    Image finalOutput;            ///< Binarized last frame.
    int outputErrors = 0;         ///< Sign mismatches vs. ground truth.
    bool converged = false;       ///< All cells saturated by the end.
    double convergeTime = -1.0;   ///< First frame time fully saturated.
};

/**
 * Runs the edge detector over `input` with the given nonideality
 * configuration (Figure 11 columns A-D).
 */
CnnRun runCnnEdgeDetect(const lang::Language &language,
                        const paradigms::cnn::CnnSpec &spec,
                        const Image &input,
                        const std::vector<double> &frameTimes);

/// @}

/** @name Table 1: OBC max-cut */
/// @{

/** One solved instance: the graph and its final oscillator phases. */
struct MaxcutOutcome
{
    paradigms::obc::MaxcutInstance instance;
    std::vector<double> phases;
};

/**
 * Simulates `trials` random 4-vertex max-cut instances (edge
 * probability 0.5, random initial phases) on the ideal or
 * offset-afflicted oscillator network.
 */
std::vector<MaxcutOutcome> runMaxcutSims(const lang::Language &language,
                                         bool withOffset, int trials,
                                         std::uint64_t seedBase = 1);

/** Table-1 row: probabilities in percent. */
struct ObcRow
{
    double syncProb;
    double solvedProb;
};

/** Scores outcomes at phase tolerance d (radians). */
ObcRow scoreMaxcut(const std::vector<MaxcutOutcome> &outcomes, double d);

/// @}

/** @name §4.5: SPICE cross-validation */
/// @{

struct SpiceValidation
{
    int total = 0;
    int mapped = 0;       ///< DGs that produced a netlist.
    int under1pct = 0;    ///< Trials with relative RMSE < 1%.
    double meanRmse = 0;  ///< Mean relative RMSE.
    double maxRmse = 0;
    /** Distinct netlist structures in the sweep (each costs the
     *  sparse batch one symbolic factorization). */
    int spiceGroups = 0;
    /** Companion factorizations served warm from the engine's
     *  artifact cache (0 on a cold first sweep or with caching off;
     *  a repeated sweep is served entirely from warm factors). */
    int spiceFactorHits = 0;
    /** Companion factorizations built (symbolic or numeric) by this
     *  sweep's SPICE side. */
    int spiceFactorMisses = 0;
};

/** Execution controls for the cross-validation sweep. */
struct SpiceValidationOptions
{
    /**
     * SPICE side: sparse batched transient with shared-structure
     * factorization reuse (spice::TransientBatch). Off runs the
     * serial dense MNA path per netlist — the ablation baseline; the
     * reported statistics match to rounding either way.
     */
    bool sparse = true;

    /**
     * Worker threads for both the Ark ensemble and the SPICE batch
     * (0 = hardware concurrency). Statistics are independent of the
     * thread count.
     */
    unsigned numThreads = 0;

    /**
     * Serve compiled ODE systems and companion factorizations through
     * the engine's shared content-addressed ArtifactCache, so a
     * repeated sweep (same seedBase) skips validation/compilation on
     * the DG side and reuses warm factors on the SPICE side
     * (spiceFactorHits reports how many). Off rebuilds everything per
     * call; results and statistics are bit-identical either way.
     */
    bool cache = true;
};

/**
 * Generates `trials` random valid GmC-TLN DGs (random topology and
 * attributes, both mismatch kinds enabled), maps each to a SPICE
 * netlist, and compares transient dynamics against the Ark compiler +
 * ODE solver at OUT_V. Both sides run batched: the compiled systems
 * go through sim::simulateEnsemble, the netlists through
 * spice::TransientBatch, and the paired series are scored per trial.
 */
SpiceValidation runSpiceValidation(
    const lang::Language &gmcTln, int trials, std::uint64_t seedBase = 1,
    const SpiceValidationOptions &options = SpiceValidationOptions{});

/// @}

} // namespace ark::apps::experiments

#endif // ARK_APPS_EXPERIMENTS_H
