#ifndef ARK_APPS_IMAGE_H
#define ARK_APPS_IMAGE_H

/**
 * @file
 * Grayscale image support for the CNN case study.
 *
 * CNN convention: +1 is black, -1 is white (bipolar pixels). Images
 * load/store as binary PGM (P5) with 0=black..255=white, render as
 * ASCII art for terminal output, and provide the procedural test
 * patterns used by the Figure 11 experiment.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace ark::apps {

/** Row-major bipolar grayscale image. */
class Image
{
  public:
    Image() = default;

    /** Creates a width x height image filled with `fill`. */
    Image(int width, int height, double fill = -1.0);

    int width() const { return width_; }
    int height() const { return height_; }

    double &at(int row, int col);
    double at(int row, int col) const;

    /** Raw row-major pixels (CNN builder input format). */
    const std::vector<double> &pixels() const { return pixels_; }

    /** Builds an image from raw pixel values. */
    static Image fromPixels(int width, int height,
                            std::vector<double> pixels);

    /** Thresholds at 0: >0 becomes +1 (black), else -1 (white). */
    Image binarized() const;

    /** Pixels differing in sign from `other`. */
    int countSignMismatch(const Image &other) const;

    /** @name Test patterns (all bipolar, white background) */
    /// @{
    static Image filledSquare(int size, int margin);
    static Image hollowSquare(int size, int margin, int thickness);
    static Image cross(int size, int armWidth);
    static Image letterT(int size);
    /// @}

    /**
     * Ground-truth edge map: black pixels with at least one white
     * 8-neighbour stay black; everything else is white. Out-of-range
     * neighbours count as white.
     */
    Image edgeMap() const;

    /** ASCII rendering ('#' black, '.' white, '+' intermediate). */
    std::string ascii() const;

    /** @name PGM (P5) round trip */
    /// @{
    std::string toPgm() const;
    static Image fromPgm(const std::string &data);
    /// @}

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<double> pixels_;

    std::size_t index(int row, int col) const;
};

} // namespace ark::apps

#endif // ARK_APPS_IMAGE_H
