#include "apps/experiments.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "compiler/compiler.h"
#include "engine/session.h"
#include "sim/sim.h"
#include "spice/batch.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "support/error.h"
#include "support/linalg.h"
#include "support/logging.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace ark::apps::experiments {

namespace ptln = paradigms::tln;
namespace pcnn = paradigms::cnn;
namespace pobc = paradigms::obc;
using support::cat;

double
TlnTrace::peak() const
{
    double best = 0.0;
    for (double v : volts)
        best = std::max(best, std::fabs(v));
    return best;
}

double
TlnTrace::peakWithin(double t0, double t1) const
{
    double best = 0.0;
    for (std::size_t i = 0; i < times.size(); ++i) {
        if (times[i] >= t0 && times[i] <= t1)
            best = std::max(best, std::fabs(volts[i]));
    }
    return best;
}

namespace {

/** Simulate OUT_V of a (validated) t-line graph over [0, 8e-8]. */
TlnTrace
traceOutV(const dg::Graph &graph, const lang::Language &language)
{
    validator::validateOrThrow(graph, language);
    compiler::OdeSystem system = compiler::compile(graph, language);
    sim::SimOptions options;
    options.recordDt = 8e-8 / 800.0;
    sim::SimResult result = sim::simulate(system, 0.0, 8e-8, options);
    if (!result.ok()) {
        throw support::SimError(
            cat("t-line trace failed: ", result.failure->message));
    }
    TlnTrace trace;
    int out = system.stateIndex(ptln::outputNode(), 0);
    trace.times = result.trajectory.times();
    trace.volts = result.trajectory.series(out);
    return trace;
}

} // namespace

TlnTrace
fig4LinearTrace(const lang::Language &tln)
{
    // 10 sections x 1ns delay lands the pulse in the paper's 1e-8 ..
    // 3e-8 observation window (Figure 4b).
    ptln::LineSpec spec;
    spec.sections = 10;
    return traceOutV(ptln::buildLine(tln, spec), tln);
}

TlnTrace
fig4BranchedTrace(const lang::Language &tln)
{
    // Mid-line 8-section open stub: the echo's extra 16ns round trip
    // puts it past 4e-8 (the shaded region of Figure 4a).
    ptln::BranchSpec spec;
    spec.line.sections = 10;
    spec.stubSections = 8;
    spec.attachAt = 5;
    return traceOutV(ptln::buildBranched(tln, spec), tln);
}

std::vector<TlnTrace>
fig4MismatchTraces(const lang::Language &gmcTln, bool gmMismatch,
                   int trials, std::uint64_t seedBase)
{
    std::vector<TlnTrace> traces;
    traces.reserve(static_cast<std::size_t>(trials));
    for (int trial = 0; trial < trials; ++trial) {
        ptln::LineSpec spec;
        spec.sections = 10; // matches the Figure 4b linear line
        spec.mismatchC = !gmMismatch;
        spec.mismatchGm = gmMismatch;
        spec.seed = seedBase + static_cast<std::uint64_t>(trial);
        traces.push_back(traceOutV(ptln::buildLine(gmcTln, spec),
                                   gmcTln));
    }
    return traces;
}

SpreadStats
spreadWithinWindow(const std::vector<TlnTrace> &traces, double t0,
                   double t1)
{
    support::panicIf(traces.empty(), "spreadWithinWindow: no traces");
    // Resample every trace onto a common grid, then measure the
    // across-trace range at each time point.
    const std::size_t grid = 200;
    std::vector<std::vector<double>> sampled;
    for (const TlnTrace &trace : traces) {
        std::vector<double> row;
        row.reserve(grid);
        for (std::size_t g = 0; g < grid; ++g) {
            double t = t0 + (t1 - t0) * static_cast<double>(g) /
                                static_cast<double>(grid - 1);
            // Linear interpolation on the trace.
            auto it = std::lower_bound(trace.times.begin(),
                                       trace.times.end(), t);
            if (it == trace.times.begin()) {
                row.push_back(trace.volts.front());
            } else if (it == trace.times.end()) {
                row.push_back(trace.volts.back());
            } else {
                std::size_t hi = static_cast<std::size_t>(
                    it - trace.times.begin());
                std::size_t lo = hi - 1;
                double span = trace.times[hi] - trace.times[lo];
                double alpha =
                    span > 0 ? (t - trace.times[lo]) / span : 0.0;
                row.push_back(trace.volts[lo] +
                              alpha * (trace.volts[hi] -
                                       trace.volts[lo]));
            }
        }
        sampled.push_back(std::move(row));
    }

    double sumRange = 0.0;
    double maxRange = 0.0;
    for (std::size_t g = 0; g < grid; ++g) {
        double lo = sampled[0][g];
        double hi = sampled[0][g];
        for (const auto &row : sampled) {
            lo = std::min(lo, row[g]);
            hi = std::max(hi, row[g]);
        }
        sumRange += hi - lo;
        maxRange = std::max(maxRange, hi - lo);
    }
    return SpreadStats{sumRange / static_cast<double>(grid), maxRange};
}

CnnRun
runCnnEdgeDetect(const lang::Language &language,
                 const pcnn::CnnSpec &spec, const Image &input,
                 const std::vector<double> &frameTimes)
{
    support::panicIf(frameTimes.empty(), "runCnnEdgeDetect: no frames");
    dg::Graph graph = pcnn::buildCnn(language, spec, input.pixels());
    validator::validateOrThrow(graph, language);
    compiler::OdeSystem system = compiler::compile(graph, language);

    double tEnd = frameTimes.back();
    sim::SimOptions options;
    options.recordDt = tEnd / 400.0;
    sim::SimResult result = sim::simulate(system, 0.0, tEnd, options);
    if (!result.ok()) {
        throw support::SimError(
            cat("CNN run failed: ", result.failure->message));
    }

    // Pre-resolve each cell's state index.
    const int w = spec.width;
    const int h = spec.height;
    std::vector<int> cellIndex(static_cast<std::size_t>(w * h));
    for (int r = 0; r < h; ++r)
        for (int c = 0; c < w; ++c)
            cellIndex[static_cast<std::size_t>(r * w + c)] =
                system.stateIndex(pcnn::cellName(r, c), 0);

    CnnRun run;
    run.frameTimes = frameTimes;
    auto satOf = [](double x) {
        return 0.5 * (std::fabs(x + 1.0) - std::fabs(x - 1.0));
    };
    for (double t : frameTimes) {
        Image frame(w, h);
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                double x = result.trajectory.sampleAt(
                    cellIndex[static_cast<std::size_t>(r * w + c)], t);
                frame.at(r, c) = satOf(x);
            }
        }
        run.frames.push_back(std::move(frame));
    }
    run.finalOutput = run.frames.back().binarized();
    run.outputErrors =
        run.finalOutput.countSignMismatch(input.edgeMap());

    // Convergence: first frame where every cell is fully saturated.
    for (std::size_t f = 0; f < frameTimes.size(); ++f) {
        bool saturated = true;
        for (int r = 0; r < h && saturated; ++r) {
            for (int c = 0; c < w; ++c) {
                double x = result.trajectory.sampleAt(
                    cellIndex[static_cast<std::size_t>(r * w + c)],
                    frameTimes[f]);
                if (std::fabs(x) < 1.0) {
                    saturated = false;
                    break;
                }
            }
        }
        if (saturated) {
            run.converged = true;
            run.convergeTime = frameTimes[f];
            break;
        }
    }
    return run;
}

std::vector<MaxcutOutcome>
runMaxcutSims(const lang::Language &language, bool withOffset, int trials,
              std::uint64_t seedBase)
{
    const double pi = std::numbers::pi;
    // Random restarts: resolve every trial's oscillator network
    // through the engine session (compiled programs are shared and
    // content-addressed — repeated restart sweeps over the same seeds
    // skip validation and compilation), then integrate the whole
    // batch concurrently through the ensemble engine. Per-trial
    // results are identical to the serial loop (the RNG draws happen
    // in build order, and each instance integrates independently).
    engine::Session session;
    std::vector<MaxcutOutcome> outcomes;
    std::vector<engine::SystemPtr> systems;
    outcomes.reserve(static_cast<std::size_t>(trials));
    systems.reserve(static_cast<std::size_t>(trials));
    for (int trial = 0; trial < trials; ++trial) {
        support::Rng rng(seedBase + static_cast<std::uint64_t>(trial));
        MaxcutOutcome outcome;
        outcome.instance.numVertices = 4;
        for (int a = 0; a < 4; ++a)
            for (int b = a + 1; b < 4; ++b)
                if (rng.bernoulli(0.5))
                    outcome.instance.edges.emplace_back(a, b);

        pobc::MaxcutSpec spec;
        spec.withOffset = withOffset;
        spec.seed = seedBase + static_cast<std::uint64_t>(trial);
        for (int v = 0; v < 4; ++v)
            spec.initPhases.push_back(rng.uniform(0.0, 2.0 * pi));

        systems.push_back(session.compile(
            pobc::buildMaxcut(language, outcome.instance, spec),
            language));
        outcomes.push_back(std::move(outcome));
    }

    sim::EnsembleOptions options;
    options.sim.recordDt = 1e-9;
    std::vector<sim::SimResult> results =
        session.runEnsemble(systems, 0.0, 5e-8, options);

    for (std::size_t trial = 0; trial < results.size(); ++trial) {
        if (!results[trial].ok()) {
            throw support::SimError(
                cat("max-cut trial ", trial, " failed: ",
                    results[trial].failure->message));
        }
        const auto &trajectory = results[trial].trajectory;
        auto final = trajectory.state(trajectory.size() - 1);
        for (int v = 0; v < 4; ++v) {
            outcomes[trial].phases.push_back(
                final[static_cast<std::size_t>(
                    systems[trial]->stateIndex(pobc::oscName(v), 0))]);
        }
    }
    return outcomes;
}

ObcRow
scoreMaxcut(const std::vector<MaxcutOutcome> &outcomes, double d)
{
    int synced = 0;
    int solved = 0;
    for (const MaxcutOutcome &outcome : outcomes) {
        auto partition = pobc::decodePartition(outcome.phases, d);
        if (!partition)
            continue;
        ++synced;
        int cut = pobc::cutSize(outcome.instance, *partition);
        if (cut == pobc::bruteForceMaxCut(outcome.instance))
            ++solved;
    }
    double n = static_cast<double>(outcomes.size());
    return ObcRow{100.0 * synced / n, 100.0 * solved / n};
}

SpiceValidation
runSpiceValidation(const lang::Language &gmcTln, int trials,
                   std::uint64_t seedBase,
                   const SpiceValidationOptions &options)
{
    SpiceValidation report;
    report.total = trials;
    const double tEnd = 4e-8;
    const double spiceDt = 2e-11;
    const std::size_t compareGrid = 400;

    // Phase 1 (serial, deterministic): generate each trial's random
    // graph, compile the ODE system, and map the netlist. Per-trial
    // RNGs make the draw order identical to the historical serial
    // loop, so the sweep's statistics are reproducible bit-for-bit.
    // Compilation goes through the engine session: a repeated sweep
    // (same seeds -> same graph contents) hits the artifact cache and
    // skips ILP validation + lowering per trial.
    engine::Session session(
        engine::SessionOptions{.caching = options.cache});
    std::vector<engine::SystemPtr> systems;
    std::vector<spice::MappedTln> mapped;
    systems.reserve(static_cast<std::size_t>(trials));
    mapped.reserve(static_cast<std::size_t>(trials));
    for (int trial = 0; trial < trials; ++trial) {
        support::Rng rng(seedBase + static_cast<std::uint64_t>(trial));
        ptln::LineSpec spec;
        spec.sections = static_cast<int>(rng.uniformInt(3, 12));
        spec.inductance = rng.uniform(0.5e-9, 2e-9);
        spec.capacitance = rng.uniform(0.5e-9, 2e-9);
        spec.sourceConductance = rng.uniform(0.5, 2.0);
        spec.termConductance = rng.uniform(0.5, 2.0);
        spec.pulseWidth = rng.uniform(0.5e-8, 2e-8);
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = rng.deriveSeed();

        dg::Graph graph = [&]() {
            if (rng.bernoulli(0.5)) {
                ptln::BranchSpec branch;
                branch.line = spec;
                branch.stubSections =
                    static_cast<int>(rng.uniformInt(1, 4));
                branch.attachAt = static_cast<int>(
                    rng.uniformInt(1, spec.sections - 1));
                return ptln::buildBranched(gmcTln, branch);
            }
            return ptln::buildLine(gmcTln, spec);
        }();
        systems.push_back(session.compile(graph, gmcTln));
        mapped.push_back(spice::mapTlnToSpice(graph, gmcTln));
        ++report.mapped;
    }

    std::vector<const spice::Netlist *> netlists;
    netlists.reserve(mapped.size());
    for (const spice::MappedTln &map : mapped)
        netlists.push_back(&map.netlist);
    report.spiceGroups =
        static_cast<int>(spice::countStructureGroups(netlists));

    sim::EnsembleOptions odeOptions;
    odeOptions.sim.relTol = 1e-8;
    odeOptions.sim.absTol = 1e-12;
    odeOptions.sim.recordDt = tEnd / 2000.0;
    odeOptions.numThreads = options.numThreads;
    spice::TransientBatchOptions batchOptions;
    batchOptions.sparse = options.sparse;
    batchOptions.numThreads = options.numThreads;

    // Phases 2-4, chunked: each block runs the DG side as one
    // adaptive-ODE ensemble and the SPICE side as one transient batch
    // on the shared worker pool, then is scored and dropped — full
    // batch parallelism within a block, peak memory bounded by the
    // block size instead of the sweep size. Per-trial results (and so
    // the statistics) are independent of the chunking.
    const int chunk = 128;
    for (int base = 0; base < trials; base += chunk) {
        const int end = std::min(trials, base + chunk);
        std::vector<const compiler::OdeSystem *> odeSlice;
        std::vector<const spice::Netlist *> netSlice;
        odeSlice.reserve(static_cast<std::size_t>(end - base));
        netSlice.reserve(static_cast<std::size_t>(end - base));
        for (int trial = base; trial < end; ++trial) {
            odeSlice.push_back(
                systems[static_cast<std::size_t>(trial)].get());
            netSlice.push_back(netlists[static_cast<std::size_t>(trial)]);
        }
        std::vector<sim::SimResult> dgResults =
            sim::simulateEnsemble(odeSlice, 0.0, tEnd, odeOptions);
        engine::SweepStats sweepStats;
        std::vector<spice::TransientResult> spiceResults =
            session.runSweep(netSlice, 0.0, tEnd, spiceDt, batchOptions,
                             &sweepStats);
        report.spiceFactorHits +=
            static_cast<int>(sweepStats.factorHits);
        report.spiceFactorMisses +=
            static_cast<int>(sweepStats.factorMisses);

        // Paired per-trial RMSE statistics at OUT_V.
        for (int trial = base; trial < end; ++trial) {
            auto idx = static_cast<std::size_t>(trial);
            auto local = static_cast<std::size_t>(trial - base);
            if (!dgResults[local].ok()) {
                throw support::SimError(
                    cat("SPICE validation trial ", trial, " diverged: ",
                        dgResults[local].failure->message));
            }
            if (!spiceResults[local].ok()) {
                throw support::SimError(
                    cat("SPICE validation trial ", trial,
                        " transient failed: ",
                        spiceResults[local].failure->message));
            }
            std::vector<double> dgSeries =
                dgResults[local].trajectory.resample(
                    systems[idx]->stateIndex(ptln::outputNode(), 0),
                    0.0, tEnd, compareGrid);
            std::vector<double> spiceAll = spiceResults[local].series(
                static_cast<std::size_t>(
                    mapped[idx].circuitNodeOf.at(ptln::outputNode())));
            // Resample the (uniform-grid) SPICE series onto
            // compareGrid.
            std::vector<double> spiceSeries;
            spiceSeries.reserve(compareGrid);
            for (std::size_t g = 0; g < compareGrid; ++g) {
                double t = tEnd * static_cast<double>(g) /
                           static_cast<double>(compareGrid - 1);
                double pos = t / spiceDt;
                auto lo = static_cast<std::size_t>(pos);
                lo = std::min(lo, spiceAll.size() - 1);
                std::size_t hi = std::min(lo + 1, spiceAll.size() - 1);
                double alpha = pos - static_cast<double>(lo);
                spiceSeries.push_back(
                    spiceAll[lo] +
                    alpha * (spiceAll[hi] - spiceAll[lo]));
            }

            double rmse = support::relativeRmse(dgSeries, spiceSeries);
            report.meanRmse += rmse;
            report.maxRmse = std::max(report.maxRmse, rmse);
            if (rmse < 0.01)
                ++report.under1pct;
        }
    }
    if (report.total > 0)
        report.meanRmse /= report.total;
    return report;
}

} // namespace ark::apps::experiments
