#include "apps/image.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.h"
#include "support/logging.h"

namespace ark::apps {

using support::cat;
using support::IoError;
using support::panicIf;

Image::Image(int width, int height, double fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width * height), fill)
{
    panicIf(width <= 0 || height <= 0, "Image dimensions must be positive");
}

std::size_t
Image::index(int row, int col) const
{
    panicIf(row < 0 || row >= height_ || col < 0 || col >= width_,
            "Image::at out of range");
    return static_cast<std::size_t>(row * width_ + col);
}

double &
Image::at(int row, int col)
{
    return pixels_[index(row, col)];
}

double
Image::at(int row, int col) const
{
    return pixels_[index(row, col)];
}

Image
Image::fromPixels(int width, int height, std::vector<double> pixels)
{
    panicIf(static_cast<std::size_t>(width * height) != pixels.size(),
            "fromPixels: size mismatch");
    Image img(width, height);
    img.pixels_ = std::move(pixels);
    return img;
}

Image
Image::binarized() const
{
    Image out(width_, height_);
    for (std::size_t i = 0; i < pixels_.size(); ++i)
        out.pixels_[i] = pixels_[i] > 0.0 ? 1.0 : -1.0;
    return out;
}

int
Image::countSignMismatch(const Image &other) const
{
    panicIf(width_ != other.width_ || height_ != other.height_,
            "countSignMismatch: dimension mismatch");
    int count = 0;
    for (std::size_t i = 0; i < pixels_.size(); ++i) {
        bool a = pixels_[i] > 0.0;
        bool b = other.pixels_[i] > 0.0;
        count += a != b;
    }
    return count;
}

Image
Image::filledSquare(int size, int margin)
{
    Image img(size, size, -1.0);
    for (int r = margin; r < size - margin; ++r)
        for (int c = margin; c < size - margin; ++c)
            img.at(r, c) = 1.0;
    return img;
}

Image
Image::hollowSquare(int size, int margin, int thickness)
{
    Image img = filledSquare(size, margin);
    for (int r = margin + thickness; r < size - margin - thickness; ++r)
        for (int c = margin + thickness; c < size - margin - thickness;
             ++c) {
            img.at(r, c) = -1.0;
        }
    return img;
}

Image
Image::cross(int size, int armWidth)
{
    Image img(size, size, -1.0);
    int lo = (size - armWidth) / 2;
    int hi = lo + armWidth;
    for (int r = 0; r < size; ++r)
        for (int c = 0; c < size; ++c)
            if ((r >= lo && r < hi) || (c >= lo && c < hi))
                img.at(r, c) = 1.0;
    return img;
}

Image
Image::letterT(int size)
{
    Image img(size, size, -1.0);
    int bar = std::max(2, size / 5);
    for (int r = 1; r < 1 + bar; ++r)
        for (int c = 1; c < size - 1; ++c)
            img.at(r, c) = 1.0;
    int lo = (size - bar) / 2;
    for (int r = 1 + bar; r < size - 1; ++r)
        for (int c = lo; c < lo + bar; ++c)
            img.at(r, c) = 1.0;
    return img;
}

Image
Image::edgeMap() const
{
    Image out(width_, height_, -1.0);
    for (int r = 0; r < height_; ++r) {
        for (int c = 0; c < width_; ++c) {
            if (at(r, c) <= 0.0)
                continue; // white pixels never become edges
            bool hasWhiteNeighbour = false;
            for (int dr = -1; dr <= 1 && !hasWhiteNeighbour; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    if (dr == 0 && dc == 0)
                        continue;
                    int nr = r + dr;
                    int nc = c + dc;
                    bool white = nr < 0 || nr >= height_ || nc < 0 ||
                                 nc >= width_ || at(nr, nc) <= 0.0;
                    if (white) {
                        hasWhiteNeighbour = true;
                        break;
                    }
                }
            }
            if (hasWhiteNeighbour)
                out.at(r, c) = 1.0;
        }
    }
    return out;
}

std::string
Image::ascii() const
{
    std::string out;
    out.reserve(static_cast<std::size_t>((width_ + 1) * height_));
    for (int r = 0; r < height_; ++r) {
        for (int c = 0; c < width_; ++c) {
            double v = at(r, c);
            out += v > 0.33 ? '#' : (v < -0.33 ? '.' : '+');
        }
        out += '\n';
    }
    return out;
}

std::string
Image::toPgm() const
{
    std::ostringstream oss;
    oss << "P5\n" << width_ << " " << height_ << "\n255\n";
    for (double v : pixels_) {
        // +1 (black) -> 0, -1 (white) -> 255.
        double clamped = std::clamp(v, -1.0, 1.0);
        auto byte = static_cast<unsigned char>(
            std::lround((1.0 - clamped) * 127.5));
        oss.put(static_cast<char>(byte));
    }
    return oss.str();
}

Image
Image::fromPgm(const std::string &data)
{
    std::istringstream iss(data);
    std::string magic;
    iss >> magic;
    if (magic != "P5")
        throw IoError("not a binary PGM (P5) image");
    auto nextInt = [&iss]() -> int {
        // Skip whitespace and '#' comment lines.
        while (true) {
            int ch = iss.peek();
            if (ch == '#') {
                std::string line;
                std::getline(iss, line);
            } else if (std::isspace(ch)) {
                iss.get();
            } else {
                break;
            }
        }
        int value;
        if (!(iss >> value))
            throw IoError("truncated PGM header");
        return value;
    };
    int width = nextInt();
    int height = nextInt();
    int maxVal = nextInt();
    if (width <= 0 || height <= 0 || maxVal <= 0 || maxVal > 255)
        throw IoError("unsupported PGM geometry");
    iss.get(); // single whitespace after maxval
    Image img(width, height);
    for (int i = 0; i < width * height; ++i) {
        int byte = iss.get();
        if (byte == EOF)
            throw IoError("truncated PGM payload");
        double gray = static_cast<double>(byte) /
                      static_cast<double>(maxVal);
        img.pixels_[static_cast<std::size_t>(i)] = 1.0 - 2.0 * gray;
    }
    return img;
}

} // namespace ark::apps
