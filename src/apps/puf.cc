#include "apps/puf.h"

#include <unordered_map>

#include "lang/func.h"
#include "sim/sim.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/rng.h"

namespace ark::apps {

using lang::GraphBuilder;
using support::cat;
using support::SemaError;

TlnPuf::TlnPuf(const lang::Language &gmcTln, PufDesign design,
               engine::Session session)
    : lang_(gmcTln), design_(design), session_(session)
{
    if (!gmcTln.types().hasEdgeType("Em"))
        throw SemaError("TlnPuf needs the gmc-tln language");
    if (design_.numBranches < 1 || design_.numBranches > 16)
        throw SemaError("PUF challenge width must be 1..16");
    if (design_.mainSections < design_.numBranches + 1)
        throw SemaError("PUF main line too short for its branches");
    nominalCache_.resize(1u << design_.numBranches);
    nominalOnce_ =
        std::make_unique<std::once_flag[]>(1u << design_.numBranches);
    nominalReady_ =
        std::make_unique<std::atomic<bool>[]>(1u << design_.numBranches);
}

dg::Graph
TlnPuf::buildGraph(std::uint32_t challenge, std::uint64_t chipSeed) const
{
    if (challenge >= (1u << design_.numBranches))
        throw SemaError(cat("challenge ", challenge, " exceeds ",
                            design_.numBranches, " bits"));
    // chipSeed 0 = the nominal device: ideal E edges, no sampling.
    const bool mismatched = chipSeed != 0;
    const std::string eType = mismatched ? "Em" : "E";
    GraphBuilder builder(lang_, chipSeed);

    auto addV = [&](const std::string &name, double g) {
        builder.node(name, "V");
        builder.edge("self_" + name, "E", name, name);
        builder.attr(name, "c", 1e-9);
        builder.attr(name, "g", g);
    };
    auto addI = [&](const std::string &name) {
        builder.node(name, "I");
        builder.edge("self_" + name, "E", name, name);
        builder.attr(name, "l", 1e-9);
        builder.attr(name, "r", 0.0);
    };
    auto couple = [&](const std::string &name, const std::string &src,
                      const std::string &dst) {
        builder.edge(name, eType, src, dst);
        if (mismatched) {
            builder.attr(name, "ws", 1.0);
            builder.attr(name, "wt", 1.0);
        }
    };

    // Main line.
    addV("IN_V", 0.0);
    for (int k = 1; k < design_.mainSections; ++k)
        addV(cat("V_", k), 0.0);
    addV("OUT_V", 1.0);
    auto vName = [&](int k) -> std::string {
        if (k == 0)
            return "IN_V";
        if (k == design_.mainSections)
            return "OUT_V";
        return cat("V_", k);
    };
    for (int k = 0; k < design_.mainSections; ++k) {
        addI(cat("I_", k));
        couple(cat("EV_", k), vName(k), cat("I_", k));
        couple(cat("EI_", k), cat("I_", k), vName(k + 1));
    }

    // Switchable stubs at evenly spaced attachment points.
    for (int b = 0; b < design_.numBranches; ++b) {
        int attach = (b + 1) * design_.mainSections /
                     (design_.numBranches + 1);
        for (int k = 0; k < design_.stubSections; ++k) {
            addI(cat("SB", b, "_I", k));
            addV(cat("SB", b, "_V", k), 0.0);
            std::string from =
                k == 0 ? vName(attach) : cat("SB", b, "_V", k - 1);
            couple(cat("SB", b, "_EV", k), from, cat("SB", b, "_I", k));
            couple(cat("SB", b, "_EI", k), cat("SB", b, "_I", k),
                   cat("SB", b, "_V", k));
        }
        // The switch lives on the stub's first edge.
        builder.enable(cat("SB", b, "_EV0"),
                       ((challenge >> b) & 1u) != 0);
    }

    // Pulsed Norton input.
    builder.node("InpI_0", "InpI");
    expr::Lambda pulse;
    pulse.params = {"t0"};
    pulse.body = expr::Expr::call(
        "pulse", {expr::Expr::var("t0"), expr::Expr::real(0.0),
                  expr::Expr::real(design_.pulseWidth)});
    builder.attr("InpI_0", "fn", expr::Value::function(std::move(pulse)));
    builder.attr("InpI_0", "g", 1.0);
    couple("E_inp", "InpI_0", "IN_V");
    return builder.take();
}

std::vector<double>
TlnPuf::waveform(std::uint32_t challenge, std::uint64_t chipSeed) const
{
    return std::move(waveformBatch(challenge, {chipSeed}, 1).front());
}

namespace {

/** The ensemble controls every PUF battery integrates under. */
sim::EnsembleOptions
batteryOptions(const PufDesign &design, unsigned numThreads)
{
    sim::EnsembleOptions options;
    options.sim.method = design.simMethod;
    options.sim.dt = design.simDt > 0 ? design.simDt
                                      : design.windowEnd / 4000.0;
    options.sim.recordDt = design.windowEnd / 4000.0;
    options.sim.jit = design.jit;
    options.numThreads = numThreads;
    return options;
}

} // namespace

std::vector<std::vector<double>>
TlnPuf::waveformBatch(std::uint32_t challenge,
                      const std::vector<std::uint64_t> &chipSeeds,
                      unsigned numThreads) const
{
    // Resolve every chip's compiled system through the session's
    // content-addressed cache (a warm battery skips build + ILP
    // validation + compile), then hand the battery to the ensemble
    // engine as shared immutable programs.
    std::vector<engine::SystemPtr> systems;
    systems.reserve(chipSeeds.size());
    for (std::uint64_t chipSeed : chipSeeds)
        systems.push_back(
            session_.compile(buildGraph(challenge, chipSeed), lang_));

    std::vector<sim::SimResult> results = session_.runEnsemble(
        systems, 0.0, design_.windowEnd,
        batteryOptions(design_, numThreads));

    std::vector<std::vector<double>> waveforms;
    waveforms.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
            throw support::SimError(cat("PUF chip ", chipSeeds[i],
                                        " simulation failed: ",
                                        results[i].failure->message));
        }
        int out = systems[i]->stateIndex("OUT_V", 0);
        waveforms.push_back(results[i].trajectory.resample(
            out, design_.windowStart, design_.windowEnd,
            static_cast<std::size_t>(design_.responseBits)));
    }
    return waveforms;
}

const std::vector<double> &
TlnPuf::nominalWaveform(std::uint32_t challenge) const
{
    if (challenge >= (1u << design_.numBranches))
        throw SemaError(cat("challenge ", challenge, " exceeds ",
                            design_.numBranches, " bits"));
    // call_once keeps concurrent response() callers safe: exactly one
    // thread simulates the nominal device, everyone else blocks until
    // the waveform is published (a failed attempt rethrows and leaves
    // the flag unset, so a later call may retry).
    std::call_once(nominalOnce_[challenge], [&] {
        nominalCache_[challenge] = waveform(challenge, 0);
        nominalReady_[challenge].store(true, std::memory_order_release);
    });
    return nominalCache_[challenge];
}

std::vector<std::uint8_t>
TlnPuf::response(std::uint32_t challenge, std::uint64_t chipSeed,
                 double noiseSigma, std::uint64_t noiseSeed) const
{
    return std::move(responseBatch(challenge, {chipSeed}, noiseSigma,
                                   {noiseSeed}, 1)
                         .front());
}

std::vector<std::vector<std::uint8_t>>
TlnPuf::responseBatch(std::uint32_t challenge,
                      const std::vector<std::uint64_t> &chipSeeds,
                      double noiseSigma,
                      const std::vector<std::uint64_t> &noiseSeeds,
                      unsigned numThreads) const
{
    support::panicIf(!noiseSeeds.empty() &&
                         noiseSeeds.size() != chipSeeds.size(),
                     "responseBatch: need one noise seed per chip");
    // One-challenge special case of the CRP matrix (a single-entry
    // challenge list is challenge-major trivially).
    return std::move(responseMatrix({challenge}, chipSeeds, noiseSigma,
                                    noiseSeeds, numThreads)
                         .front());
}

std::vector<std::vector<std::vector<std::uint8_t>>>
TlnPuf::responseMatrix(const std::vector<std::uint32_t> &challenges,
                       const std::vector<std::uint64_t> &chipSeeds,
                       double noiseSigma,
                       const std::vector<std::uint64_t> &noiseSeeds,
                       unsigned numThreads) const
{
    const std::size_t numChips = chipSeeds.size();
    support::panicIf(!noiseSeeds.empty() &&
                         noiseSeeds.size() !=
                             challenges.size() * numChips,
                     "responseMatrix: need one noise seed per "
                     "(challenge, chip)");
    // Per the contract, empty noiseSeeds means no noise: sharing one
    // implicit seed across chips would correlate every chip's noise
    // and bias any uniqueness metric computed from the batch.
    const bool applyNoise = noiseSigma > 0 && !noiseSeeds.empty();
    for (std::uint32_t challenge : challenges) {
        if (challenge >= (1u << design_.numBranches))
            throw SemaError(cat("challenge ", challenge, " exceeds ",
                                design_.numBranches, " bits"));
    }

    // Deduplicate the challenge list (first-occurrence order): a CRP
    // battery that revisits a challenge replicates the deterministic
    // waveform instead of re-simulating it — measurement noise is
    // applied per occurrence below, so repeated challenges still
    // yield independent noisy measurements.
    std::vector<std::uint32_t> distinct;
    std::unordered_map<std::uint32_t, std::size_t> distinctOf;
    for (std::uint32_t challenge : challenges)
        if (distinctOf.emplace(challenge, distinct.size()).second)
            distinct.push_back(challenge);

    // Compile every distinct (challenge, chip) system through the
    // cache, then integrate the whole battery — all challenges, all
    // chips, plus any nominal reference devices not yet cached — as
    // ONE ensemble dispatch. Chips of one challenge share a program
    // structure and lane-batch; distinct challenges form their own
    // lane groups within the same dispatch. Nominal devices are
    // structural singletons (ideal E edges), so they integrate on
    // the scalar path — bit-identical to a standalone waveform()
    // call, which is what publishes them below.
    std::vector<engine::SystemPtr> systems;
    systems.reserve(distinct.size() * numChips);
    for (std::uint32_t challenge : distinct)
        for (std::uint64_t chipSeed : chipSeeds)
            systems.push_back(
                session_.compile(buildGraph(challenge, chipSeed),
                                 lang_));
    const std::size_t numChipInstances = systems.size();
    std::vector<std::uint32_t> nominalNeeded;
    for (std::uint32_t challenge : distinct) {
        if (!nominalReady_[challenge].load(std::memory_order_relaxed)) {
            nominalNeeded.push_back(challenge);
            systems.push_back(
                session_.compile(buildGraph(challenge, 0), lang_));
        }
    }

    std::vector<sim::SimResult> results = session_.runEnsemble(
        systems, 0.0, design_.windowEnd,
        batteryOptions(design_, numThreads));

    std::vector<std::vector<double>> waveforms(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
            std::string who =
                i < numChipInstances
                    ? cat("chip ", chipSeeds[i % numChips],
                          " (challenge ", distinct[i / numChips], ")")
                    : cat("nominal device (challenge ",
                          nominalNeeded[i - numChipInstances], ")");
            throw support::SimError(cat("PUF ", who,
                                        " simulation failed: ",
                                        results[i].failure->message));
        }
        int out = systems[i]->stateIndex("OUT_V", 0);
        waveforms[i] = results[i].trajectory.resample(
            out, design_.windowStart, design_.windowEnd,
            static_cast<std::size_t>(design_.responseBits));
    }

    // Publish the batch-simulated nominals; a concurrent caller that
    // beat us through nominalWaveform() wins the call_once and our
    // copy is simply dropped.
    for (std::size_t k = 0; k < nominalNeeded.size(); ++k) {
        std::uint32_t challenge = nominalNeeded[k];
        std::call_once(nominalOnce_[challenge], [&] {
            nominalCache_[challenge] =
                std::move(waveforms[numChipInstances + k]);
            nominalReady_[challenge].store(true,
                                           std::memory_order_release);
        });
    }

    std::vector<std::vector<std::vector<std::uint8_t>>> responses(
        challenges.size());
    for (std::size_t c = 0; c < challenges.size(); ++c) {
        const std::vector<double> &nominal =
            nominalWaveform(challenges[c]);
        const std::size_t base = distinctOf.at(challenges[c]) * numChips;
        responses[c].reserve(numChips);
        for (std::size_t chip = 0; chip < numChips; ++chip) {
            const std::vector<double> &measured = waveforms[base + chip];
            support::Rng noise(
                applyNoise ? noiseSeeds[c * numChips + chip] : 0);
            std::vector<std::uint8_t> bits;
            bits.reserve(measured.size());
            for (std::size_t i = 0; i < measured.size(); ++i) {
                double sample = measured[i];
                if (applyNoise)
                    sample += noise.gaussian(0.0, noiseSigma);
                bits.push_back(sample > nominal[i] ? 1 : 0);
            }
            responses[c].push_back(std::move(bits));
        }
    }
    return responses;
}

double
hammingFraction(const std::vector<std::uint8_t> &a,
                const std::vector<std::uint8_t> &b)
{
    support::panicIf(a.size() != b.size() || a.empty(),
                     "hammingFraction: size mismatch");
    std::size_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += a[i] != b[i];
    return static_cast<double>(diff) / static_cast<double>(a.size());
}

PufMetrics
evaluatePuf(const TlnPuf &puf, int numChips, int numChallenges,
            double noiseSigma, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::vector<std::uint32_t> challenges;
    std::uint32_t challengeSpace =
        1u << puf.design().numBranches;
    for (int i = 0; i < numChallenges; ++i) {
        challenges.push_back(static_cast<std::uint32_t>(
            rng.uniformInt(0, challengeSpace - 1)));
    }

    // Responses per (challenge, chip); chip seeds start at 1 (0 is
    // the nominal reference device). The whole CRP matrix runs as one
    // cached battery: distinct challenges compile once each and the
    // full (challenge, chip) ensemble integrates in a single
    // dispatch — repeated challenge draws cost nothing extra.
    std::vector<std::uint64_t> chipSeeds;
    for (int chip = 1; chip <= numChips; ++chip)
        chipSeeds.push_back(static_cast<std::uint64_t>(chip));
    std::vector<std::vector<std::vector<std::uint8_t>>> responses =
        puf.responseMatrix(challenges, chipSeeds);

    double interSum = 0.0;
    int interCount = 0;
    for (std::size_t ci = 0; ci < challenges.size(); ++ci) {
        for (int a = 0; a < numChips; ++a) {
            for (int b = a + 1; b < numChips; ++b) {
                interSum += hammingFraction(
                    responses[ci][static_cast<std::size_t>(a)],
                    responses[ci][static_cast<std::size_t>(b)]);
                ++interCount;
            }
        }
    }

    // Re-measurement pass as one noisy CRP matrix. Noise seeds are
    // drawn per (challenge, chip) in the same serial order as the
    // historical per-challenge loop — responseMatrix's flattened
    // contract is exactly that challenge-major order — so the metrics
    // are unchanged by the batched evaluation.
    double intraSum = 0.0;
    int intraCount = 0;
    std::vector<std::uint64_t> noiseSeeds;
    noiseSeeds.reserve(challenges.size() * chipSeeds.size());
    for (std::size_t ci = 0; ci < challenges.size(); ++ci)
        for (int chip = 1; chip <= numChips; ++chip)
            noiseSeeds.push_back(rng.deriveSeed());
    auto remeasured = puf.responseMatrix(challenges, chipSeeds,
                                         noiseSigma, noiseSeeds);
    for (std::size_t ci = 0; ci < challenges.size(); ++ci) {
        for (int chip = 1; chip <= numChips; ++chip) {
            intraSum += hammingFraction(
                responses[ci][static_cast<std::size_t>(chip - 1)],
                remeasured[ci][static_cast<std::size_t>(chip - 1)]);
            ++intraCount;
        }
    }

    double challengeSum = 0.0;
    int challengeCount = 0;
    for (int chip = 1; chip <= numChips; ++chip) {
        for (std::size_t a = 0; a < challenges.size(); ++a) {
            for (std::size_t b = a + 1; b < challenges.size(); ++b) {
                if (challenges[a] == challenges[b])
                    continue;
                challengeSum += hammingFraction(
                    responses[a][static_cast<std::size_t>(chip - 1)],
                    responses[b][static_cast<std::size_t>(chip - 1)]);
                ++challengeCount;
            }
        }
    }

    PufMetrics metrics;
    metrics.uniqueness = interCount ? interSum / interCount : 0.0;
    metrics.reliability = intraCount ? intraSum / intraCount : 0.0;
    metrics.challengeSensitivity =
        challengeCount ? challengeSum / challengeCount : 0.0;
    return metrics;
}

} // namespace ark::apps
