#include "support/watchdog.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "support/logging.h"
#include "support/telemetry.h"

namespace ark::telemetry {

namespace detail {

struct WatchdogRunState {
  const char *kind = "run";
  std::size_t instances = 0;
  std::atomic<std::uint64_t> lastBeatNs{0};
  bool stalled = false; // monitor-owned, guarded by Impl::mutex
};

} // namespace detail

namespace {

Gauge &stalledGauge() {
  static Gauge &g =
      Registry::shared().gauge("ark.health.stalled_runs");
  return g;
}

Gauge &activeGauge() {
  static Gauge &g = Registry::shared().gauge("ark.health.active_runs");
  return g;
}

Counter &stallEvents() {
  static Counter &c =
      Registry::shared().counter("ark.health.stall_events");
  return c;
}

} // namespace

struct StallWatchdog::Impl {
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::shared_ptr<detail::WatchdogRunState>> runs;
  std::atomic<std::int64_t> intervalMs{0};
  bool running = false;
  std::thread monitor;
  std::uint64_t lastWarnNs = 0;
  std::size_t stalledCount = 0;

  void sweepLocked(std::uint64_t nowNs) {
    const std::int64_t intervalMsNow =
        intervalMs.load(std::memory_order_relaxed);
    if (intervalMsNow <= 0)
      return;
    const std::uint64_t stallNs =
        static_cast<std::uint64_t>(intervalMsNow) * 1000000ull;
    std::size_t stalled = 0;
    for (auto &run : runs) {
      const std::uint64_t beat =
          run->lastBeatNs.load(std::memory_order_relaxed);
      const std::uint64_t idle = nowNs > beat ? nowNs - beat : 0;
      if (idle > stallNs) {
        if (!run->stalled) {
          run->stalled = true;
          stallEvents().add();
          // One log per stall episode, and globally at most one per
          // second, so a wedged 64-run battery cannot flood the log.
          if (nowNs - lastWarnNs > 1000000000ull || lastWarnNs == 0) {
            lastWarnNs = nowNs;
            support::warn(support::cat(
                "watchdog: ", run->kind, " run (", run->instances,
                " instances) made no progress for ",
                idle / 1000000ull, " ms"));
          }
        }
        ++stalled;
      } else if (run->stalled) {
        run->stalled = false;
        support::inform(support::cat("watchdog: ", run->kind,
                                     " run resumed after stall"));
      }
    }
    stalledCount = stalled;
    stalledGauge().set(static_cast<double>(stalled));
    activeGauge().set(static_cast<double>(runs.size()));
  }

  void monitorLoop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (running) {
      sweepLocked(telemetry::detail::nowNs());
      const std::int64_t ms =
          intervalMs.load(std::memory_order_relaxed);
      // Sweep at half the stall interval, clamped to [10ms, 1s].
      const std::int64_t sleepMs =
          std::clamp<std::int64_t>(ms / 2, 10, 1000);
      cv.wait_for(lock, std::chrono::milliseconds(sleepMs),
                  [this] { return !running; });
    }
  }
};

StallWatchdog::StallWatchdog() : impl_(new Impl) {
  // Touch the health family so it exists in scrapes even before the
  // first sweep (the registry registers idempotently by name).
  stalledGauge();
  activeGauge();
  stallEvents();
}

StallWatchdog::~StallWatchdog() {
  setStallInterval(std::chrono::milliseconds(0));
  delete impl_;
}

StallWatchdog &StallWatchdog::shared() {
  // Leaked on purpose, like the telemetry Registry: engine threads
  // may still beat during static destruction.
  static StallWatchdog *instance = new StallWatchdog;
  return *instance;
}

void StallWatchdog::setStallInterval(std::chrono::milliseconds interval) {
  const std::int64_t ms = std::max<std::int64_t>(interval.count(), 0);
  std::thread toJoin;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->intervalMs.store(ms, std::memory_order_relaxed);
    if (ms > 0 && !impl_->running) {
      impl_->running = true;
      impl_->monitor = std::thread([this] { impl_->monitorLoop(); });
    } else if (ms == 0 && impl_->running) {
      impl_->running = false;
      toJoin = std::move(impl_->monitor);
    }
  }
  impl_->cv.notify_all();
  if (toJoin.joinable())
    toJoin.join();
  if (ms == 0) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto &run : impl_->runs)
      run->stalled = false;
    impl_->stalledCount = 0;
    stalledGauge().set(0.0);
  }
}

std::chrono::milliseconds StallWatchdog::stallInterval() const {
  return std::chrono::milliseconds(
      impl_->intervalMs.load(std::memory_order_relaxed));
}

bool StallWatchdog::enabled() const {
  return impl_->intervalMs.load(std::memory_order_relaxed) > 0;
}

std::size_t StallWatchdog::activeRuns() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->runs.size();
}

std::size_t StallWatchdog::stalledRuns() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stalledCount;
}

void StallWatchdog::pollNow() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->sweepLocked(telemetry::detail::nowNs());
}

StallWatchdog::Run::Run(const char *kind, std::size_t instances) {
  StallWatchdog &dog = shared();
  if (!dog.enabled())
    return;
  state_ = std::make_shared<detail::WatchdogRunState>();
  state_->kind = kind;
  state_->instances = instances;
  state_->lastBeatNs.store(telemetry::detail::nowNs(),
                           std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(dog.impl_->mutex);
  dog.impl_->runs.push_back(state_);
}

StallWatchdog::Run::~Run() {
  if (!state_)
    return;
  StallWatchdog &dog = shared();
  std::lock_guard<std::mutex> lock(dog.impl_->mutex);
  auto &runs = dog.impl_->runs;
  runs.erase(std::remove(runs.begin(), runs.end(), state_),
             runs.end());
  if (state_->stalled && dog.impl_->stalledCount > 0) {
    --dog.impl_->stalledCount;
    stalledGauge().set(static_cast<double>(dog.impl_->stalledCount));
  }
  activeGauge().set(static_cast<double>(runs.size()));
}

void StallWatchdog::Run::heartbeat() {
  if (!state_)
    return;
  state_->lastBeatNs.store(telemetry::detail::nowNs(),
                           std::memory_order_relaxed);
}

} // namespace ark::telemetry
