#ifndef ARK_SUPPORT_LOGGING_H
#define ARK_SUPPORT_LOGGING_H

/**
 * @file
 * Status-message and invariant helpers.
 *
 * Following the gem5 convention: inform() reports normal operating
 * status, warn() flags suspicious-but-survivable conditions, and
 * panic() aborts on conditions that indicate a bug in Ark itself.
 * User mistakes should raise ArkError subclasses instead of panicking.
 */

#include <functional>
#include <sstream>
#include <string>

namespace ark::support {

/** Verbosity levels for the global logger. */
enum class LogLevel : int {
    Quiet = 0,  ///< Suppress inform(); warnings still print.
    Normal = 1, ///< inform() and warn() print.
    Debug = 2,  ///< Also print debug() messages.
};

/** Severity tag attached to each emitted log line. */
enum class LogSeverity : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Panic = 3,
};

/** Sets the process-wide log level. */
void setLogLevel(LogLevel level);

/** Returns the process-wide log level. */
LogLevel logLevel();

/**
 * Redirects log output. Each call receives one fully formatted,
 * timestamped, level-tagged line (no trailing newline) together with
 * its severity; the sink is invoked under the logging mutex, so lines
 * from concurrent workers never interleave. Passing nullptr restores
 * the default stderr sink. Used by services (e.g. a future arkd) to
 * capture engine logs.
 */
using LogSink = std::function<void(LogSeverity, const std::string &)>;
void setLogSink(LogSink sink);

/** Prints an informational status message to stderr. */
void inform(const std::string &message);

/** Prints a warning to stderr; never stops execution. */
void warn(const std::string &message);

/** Prints a debug message when the level is Debug. */
void debug(const std::string &message);

/**
 * Aborts the process after printing a message; reserved for internal
 * invariant violations (never for user errors).
 */
[[noreturn]] void panic(const std::string &message);

/** panic() unless the given condition holds. */
inline void
panicIf(bool condition, const std::string &message)
{
    if (condition)
        panic(message);
}

/**
 * Builds a string from stream-insertable pieces:
 * cat("x=", 3, " y=", 4.5) == "x=3 y=4.5".
 */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace ark::support

#endif // ARK_SUPPORT_LOGGING_H
