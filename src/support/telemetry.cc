#include "support/telemetry.h"

#include "support/logging.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

namespace ark::telemetry {

namespace detail {

std::atomic<bool> metricsOn{false};
std::atomic<bool> tracingOn{false};

std::uint64_t
nowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             epoch)
            .count());
}

} // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::metricsOn.store(on, std::memory_order_relaxed);
}

void
setTracingEnabled(bool on)
{
    detail::tracingOn.store(on, std::memory_order_relaxed);
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

struct Registry::Impl
{
    // deques-of-nodes via unique_ptr keep metric addresses stable
    // across registrations; the maps are only touched at bind time.
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::vector<std::pair<std::string, MetricsSnapshot::Kind>> order;
};

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry()
{
    delete impl_;
}

Registry &
Registry::shared()
{
    static Registry *instance = new Registry; // never destroyed: metrics
                                              // may be touched by worker
                                              // threads during shutdown
    return *instance;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    support::panicIf(impl_->gauges.count(name) != 0 ||
                         impl_->histograms.count(name) != 0,
                     support::cat("telemetry metric '", name,
                                  "' already registered with another kind"));
    auto &slot = impl_->counters[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
        impl_->order.emplace_back(name, MetricsSnapshot::Kind::Counter);
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    support::panicIf(impl_->counters.count(name) != 0 ||
                         impl_->histograms.count(name) != 0,
                     support::cat("telemetry metric '", name,
                                  "' already registered with another kind"));
    auto &slot = impl_->gauges[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
        impl_->order.emplace_back(name, MetricsSnapshot::Kind::Gauge);
    }
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    support::panicIf(impl_->counters.count(name) != 0 ||
                         impl_->gauges.count(name) != 0,
                     support::cat("telemetry metric '", name,
                                  "' already registered with another kind"));
    auto &slot = impl_->histograms[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
        impl_->order.emplace_back(name, MetricsSnapshot::Kind::Histogram);
    }
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    MetricsSnapshot snap;
    snap.entries.reserve(impl_->order.size());
    for (const auto &[name, kind] : impl_->order) {
        MetricsSnapshot::Entry entry;
        entry.name = name;
        entry.kind = kind;
        switch (kind) {
        case MetricsSnapshot::Kind::Counter:
            entry.value =
                static_cast<double>(impl_->counters.at(name)->value());
            break;
        case MetricsSnapshot::Kind::Gauge:
            entry.value = impl_->gauges.at(name)->value();
            break;
        case MetricsSnapshot::Kind::Histogram: {
            const Histogram &h = *impl_->histograms.at(name);
            entry.count = h.count();
            entry.sum = h.sum();
            entry.value = static_cast<double>(entry.count);
            entry.buckets = h.bucketCounts();
            while (!entry.buckets.empty() && entry.buckets.back() == 0)
                entry.buckets.pop_back();
            entry.p50 = histogramQuantile(entry.buckets, 0.50);
            entry.p95 = histogramQuantile(entry.buckets, 0.95);
            entry.p99 = histogramQuantile(entry.buckets, 0.99);
            break;
        }
        }
        snap.entries.push_back(std::move(entry));
    }
    return snap;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto &[name, c] : impl_->counters)
        c->reset();
    for (auto &[name, g] : impl_->gauges)
        g->reset();
    for (auto &[name, h] : impl_->histograms)
        h->reset();
}

namespace {

/** Shortest round-trippable formatting for snapshot values. */
std::string
formatNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer a compact form when it round-trips exactly.
    char shortBuf[32];
    std::snprintf(shortBuf, sizeof(shortBuf), "%g", v);
    double back = 0.0;
    if (std::sscanf(shortBuf, "%lf", &back) == 1 && back == v)
        return shortBuf;
    return buf;
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

double
histogramQuantile(const std::vector<std::uint64_t> &buckets, double q)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : buckets)
        total += c;
    if (total == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double rank = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        const double before = cumulative;
        cumulative += static_cast<double>(buckets[b]);
        if (cumulative >= rank) {
            // Bucket 0 holds exactly {0}; bucket b holds
            // [2^(b-1), 2^b - 1].
            const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
            const double hi = b == 0 ? 0.0 : std::ldexp(1.0, b) - 1.0;
            double frac = (rank - before) /
                          static_cast<double>(buckets[b]);
            frac = std::min(std::max(frac, 0.0), 1.0);
            return lo + (hi - lo) * frac;
        }
    }
    // Unreachable when the counts sum to `total`, but stay defined.
    return std::ldexp(1.0, static_cast<int>(buckets.size())) - 1.0;
}

double
MetricsSnapshot::value(std::string_view name, double fallback) const
{
    for (const auto &entry : entries)
        if (entry.name == name)
            return entry.value;
    return fallback;
}

std::string
MetricsSnapshot::str() const
{
    std::ostringstream oss;
    for (const auto &entry : entries) {
        oss << entry.name << " = ";
        switch (entry.kind) {
        case Kind::Counter:
        case Kind::Gauge:
            oss << formatNumber(entry.value);
            break;
        case Kind::Histogram: {
            const double mean =
                entry.count == 0
                    ? 0.0
                    : static_cast<double>(entry.sum) /
                          static_cast<double>(entry.count);
            oss << entry.count << " samples, sum " << entry.sum << ", mean "
                << formatNumber(mean) << ", p50 " << formatNumber(entry.p50)
                << ", p95 " << formatNumber(entry.p95) << ", p99 "
                << formatNumber(entry.p99);
            break;
        }
        }
        oss << "\n";
    }
    return oss.str();
}

std::string
MetricsSnapshot::json() const
{
    std::ostringstream oss;
    oss << "{";
    bool first = true;
    for (const auto &entry : entries) {
        if (!first)
            oss << ",";
        first = false;
        oss << "\"" << escapeJson(entry.name) << "\":";
        switch (entry.kind) {
        case Kind::Counter:
        case Kind::Gauge:
            oss << formatNumber(entry.value);
            break;
        case Kind::Histogram: {
            const double mean =
                entry.count == 0
                    ? 0.0
                    : static_cast<double>(entry.sum) /
                          static_cast<double>(entry.count);
            oss << "{\"count\":" << entry.count << ",\"sum\":" << entry.sum
                << ",\"mean\":" << formatNumber(mean)
                << ",\"p50\":" << formatNumber(entry.p50)
                << ",\"p95\":" << formatNumber(entry.p95)
                << ",\"p99\":" << formatNumber(entry.p99)
                << ",\"buckets\":[";
            for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
                if (i != 0)
                    oss << ",";
                oss << entry.buckets[i];
            }
            oss << "]}";
            break;
        }
        }
    }
    oss << "}";
    return oss.str();
}

// --------------------------------------------------------------------
// Trace spans
// --------------------------------------------------------------------

namespace {

struct TraceEvent
{
    const char *name;
    std::uint64_t startNs;
    std::uint64_t endNs;
    std::uint64_t arg;
    bool hasArg;
};

/**
 * One bounded span buffer per recording thread. Each buffer has its
 * own mutex so recording threads never contend with each other — only
 * with the (rare) exporter. Buffers are registered once per thread
 * and kept alive by shared_ptr so export works even after the thread
 * exits.
 */
struct ThreadBuffer
{
    static constexpr std::size_t kCapacity = 1u << 16;

    std::mutex mutex;
    int tid;
    std::vector<TraceEvent> events;

    explicit ThreadBuffer(int id) : tid(id) { events.reserve(256); }
};

struct TraceState
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int nextTid = 1;
    std::atomic<std::uint64_t> dropped{0};
};

TraceState &
traceState()
{
    static TraceState *state = new TraceState; // intentionally leaked:
                                               // threads may record
                                               // during static teardown
    return *state;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        TraceState &state = traceState();
        std::lock_guard<std::mutex> lock(state.mutex);
        auto buf = std::make_shared<ThreadBuffer>(state.nextTid++);
        state.buffers.push_back(buf);
        return buf;
    }();
    return *buffer;
}

} // namespace

namespace detail {

void
recordSpan(const char *name, std::uint64_t startNs, std::uint64_t endNs,
           std::uint64_t arg, bool hasArg)
{
    ThreadBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.events.size() >= ThreadBuffer::kCapacity) {
        traceState().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.events.push_back({name, startNs, endNs, arg, hasArg});
}

} // namespace detail

void
clearTrace()
{
    TraceState &state = traceState();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto &buf : state.buffers) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        buf->events.clear();
    }
    state.dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t
droppedSpans()
{
    return traceState().dropped.load(std::memory_order_relaxed);
}

void
writeChromeTrace(std::ostream &out)
{
    struct Flat
    {
        TraceEvent event;
        int tid;
    };
    std::vector<Flat> all;
    {
        TraceState &state = traceState();
        std::lock_guard<std::mutex> lock(state.mutex);
        for (auto &buf : state.buffers) {
            std::lock_guard<std::mutex> bufLock(buf->mutex);
            for (const TraceEvent &event : buf->events)
                all.push_back({event, buf->tid});
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Flat &a, const Flat &b) {
                         return a.event.startNs < b.event.startNs;
                     });

    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Flat &flat : all) {
        if (!first)
            out << ",";
        first = false;
        const TraceEvent &e = flat.event;
        // Chrome trace timestamps are microseconds; keep sub-µs
        // resolution with fractional values.
        const double ts = static_cast<double>(e.startNs) / 1000.0;
        const double dur =
            static_cast<double>(e.endNs - e.startNs) / 1000.0;
        out << "{\"name\":\"" << escapeJson(e.name)
            << "\",\"cat\":\"ark\",\"ph\":\"X\",\"ts\":" << formatNumber(ts)
            << ",\"dur\":" << formatNumber(dur)
            << ",\"pid\":1,\"tid\":" << flat.tid;
        if (e.hasArg)
            out << ",\"args\":{\"v\":" << e.arg << "}";
        out << "}";
    }
    out << "]}\n";
}

TraceSession::TraceSession(std::string path)
    : path_(std::move(path)), previous_(tracingEnabled())
{
    clearTrace();
    setTracingEnabled(true);
}

TraceSession::~TraceSession()
{
    setTracingEnabled(previous_);
    std::ofstream out(path_);
    if (!out) {
        support::warn(support::cat("could not open trace file '", path_,
                                   "' for writing; trace discarded"));
        return;
    }
    writeChromeTrace(out);
    if (!out)
        support::warn(
            support::cat("error writing trace file '", path_, "'"));
    const std::uint64_t dropped = droppedSpans();
    if (dropped != 0)
        support::warn(support::cat("trace ring buffers overflowed: ",
                                   dropped, " spans dropped"));
}

} // namespace ark::telemetry
