#include "support/sparse.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/faultinject.h"
#include "support/logging.h"

namespace ark::support {

namespace {

constexpr std::size_t kNoPivot = static_cast<std::size_t>(-1);
constexpr double kPivotFloor = 1e-300;

/**
 * Refactor-time pivot adequacy: a reused pivot must stay within this
 * factor of its column's magnitude, or the replay reports failure so
 * the caller can fall back to a fresh pivot search. Guards against
 * silently accepting a pivot order that is fine for the leader's
 * values but numerically degenerate for a member's.
 */
constexpr double kRefactorPivotTol = 1e-3;

} // namespace

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), rowPtr_(rows + 1, 0)
{
}

SparseMatrix
SparseMatrix::fromTriplets(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
{
    for (const Triplet &t : triplets) {
        panicIf(t.row >= rows || t.col >= cols,
                "SparseMatrix::fromTriplets: triplet out of range");
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    SparseMatrix m(rows, cols);
    m.col_.reserve(triplets.size());
    m.values_.reserve(triplets.size());
    std::size_t nextRow = 0; // first row whose pointer is still unset
    for (const Triplet &t : triplets) {
        while (nextRow <= t.row)
            m.rowPtr_[nextRow++] = m.col_.size();
        if (m.col_.size() > m.rowPtr_[t.row] && m.col_.back() == t.col) {
            m.values_.back() += t.value; // duplicate position: sum
        } else {
            m.col_.push_back(t.col);
            m.values_.push_back(t.value);
        }
    }
    while (nextRow <= rows)
        m.rowPtr_[nextRow++] = m.col_.size();
    return m;
}

double
SparseMatrix::at(std::size_t r, std::size_t c) const
{
    panicIf(r >= rows_ || c >= cols_, "SparseMatrix::at out of range");
    for (std::size_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
        if (col_[i] == c)
            return values_[i];
    return 0.0;
}

void
SparseMatrix::applyInto(const double *x, double *y) const
{
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            acc += values_[i] * x[col_[i]];
        y[r] = acc;
    }
}

std::vector<double>
SparseMatrix::apply(const std::vector<double> &x) const
{
    panicIf(x.size() != cols_, "SparseMatrix::apply dimension mismatch");
    std::vector<double> y(rows_);
    applyInto(x.data(), y.data());
    return y;
}

bool
SparseMatrix::samePattern(const SparseMatrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           rowPtr_ == other.rowPtr_ && col_ == other.col_;
}

bool
SparseMatrix::sameValues(const SparseMatrix &other) const
{
    return samePattern(other) && values_ == other.values_;
}

Matrix
SparseMatrix::toDense() const
{
    Matrix dense(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            dense(r, col_[i]) += values_[i];
    return dense;
}

SparseLu::SparseLu(const SparseMatrix &a)
    : n_(a.rows()), aRowPtr_(a.rowPtr()), aCol_(a.colIndex())
{
    panicIf(a.rows() != a.cols(), "SparseLu requires a square matrix");

    // Deterministic fault injection: present as the singular-pivot
    // failure a numerically degenerate matrix would raise, so tests
    // can drive the sparse->dense fallback ladder on demand.
    if (FaultInjector::shouldFire(FaultSite::SparseLuPivot))
        throw ArkError(ErrorKind::Sim,
                       "fault injection: forced pivot failure");

    // CSC view of A keeping each entry's CSR value index, so refactor
    // can scatter a new instance's values without re-walking the CSR.
    std::vector<std::size_t> colCount(n_, 0);
    for (std::size_t c : aCol_)
        ++colCount[c];
    std::vector<std::size_t> cscPtr(n_ + 1, 0);
    for (std::size_t c = 0; c < n_; ++c)
        cscPtr[c + 1] = cscPtr[c] + colCount[c];
    std::vector<std::size_t> cscRow(aCol_.size());
    std::vector<std::size_t> cscCsr(aCol_.size());
    {
        std::vector<std::size_t> next(cscPtr.begin(), cscPtr.end() - 1);
        for (std::size_t r = 0; r < n_; ++r) {
            for (std::size_t i = aRowPtr_[r]; i < aRowPtr_[r + 1]; ++i) {
                std::size_t slot = next[aCol_[i]]++;
                cscRow[slot] = r;
                cscCsr[slot] = i;
            }
        }
    }

    // Left-looking factorization in original row space; lCols/uCols
    // collect the growing factors per column and are flattened into
    // CSC arrays (rows renumbered into pivot space) afterwards.
    const std::vector<double> &aVal = a.values();
    std::vector<std::size_t> pinv(n_, kNoPivot);
    rowOfPivot_.assign(n_, kNoPivot);
    std::vector<std::vector<std::pair<std::size_t, double>>> lCols(n_);
    std::vector<std::vector<std::pair<std::size_t, double>>> uCols(n_);
    uDiag_.assign(n_, 0.0);

    std::vector<double> x(n_, 0.0);
    std::vector<char> visited(n_, 0);
    std::vector<std::size_t> reach, stack, pivoted, unpivoted;

    for (std::size_t j = 0; j < n_; ++j) {
        // Structural reach of A(:,j) through the graph of L.
        reach.clear();
        stack.clear();
        for (std::size_t i = cscPtr[j]; i < cscPtr[j + 1]; ++i) {
            if (!visited[cscRow[i]]) {
                visited[cscRow[i]] = 1;
                stack.push_back(cscRow[i]);
            }
        }
        while (!stack.empty()) {
            std::size_t node = stack.back();
            stack.pop_back();
            reach.push_back(node);
            if (pinv[node] == kNoPivot)
                continue;
            for (const auto &[row, value] : lCols[pinv[node]]) {
                (void)value;
                if (!visited[row]) {
                    visited[row] = 1;
                    stack.push_back(row);
                }
            }
        }

        pivoted.clear();
        unpivoted.clear();
        for (std::size_t node : reach) {
            (pinv[node] == kNoPivot ? unpivoted : pivoted)
                .push_back(node);
        }
        std::sort(pivoted.begin(), pivoted.end(),
                  [&](std::size_t lhs, std::size_t rhs) {
                      return pinv[lhs] < pinv[rhs];
                  });

        // Numeric sparse triangular solve x = L \ A(:,j).
        for (std::size_t i = cscPtr[j]; i < cscPtr[j + 1]; ++i)
            x[cscRow[i]] = aVal[cscCsr[i]];
        for (std::size_t node : pivoted) {
            std::size_t k = pinv[node];
            double xk = x[node];
            uCols[j].emplace_back(k, xk);
            for (const auto &[row, value] : lCols[k])
                x[row] -= value * xk;
        }

        // Partial pivot: largest magnitude among unpivoted rows.
        std::size_t pivotRow = kNoPivot;
        double best = -1.0;
        for (std::size_t node : unpivoted) {
            double mag = std::fabs(x[node]);
            if (mag > best) {
                best = mag;
                pivotRow = node;
            }
        }
        if (pivotRow == kNoPivot || best < kPivotFloor) {
            throw ArkError(ErrorKind::Sim,
                           cat("singular matrix in sparse LU "
                               "factorization (column ", j, ")"));
        }
        double pivot = x[pivotRow];
        uDiag_[j] = pivot;
        pinv[pivotRow] = j;
        rowOfPivot_[j] = pivotRow;
        for (std::size_t node : unpivoted) {
            if (node != pivotRow)
                lCols[j].emplace_back(node, x[node] / pivot);
        }

        for (std::size_t node : reach) {
            x[node] = 0.0;
            visited[node] = 0;
        }
    }

    // Flatten L and U into CSC with rows in pivot space.
    lColPtr_.assign(n_ + 1, 0);
    uColPtr_.assign(n_ + 1, 0);
    for (std::size_t j = 0; j < n_; ++j) {
        lColPtr_[j + 1] = lColPtr_[j] + lCols[j].size();
        uColPtr_[j + 1] = uColPtr_[j] + uCols[j].size();
    }
    lRow_.reserve(lColPtr_[n_]);
    lVal_.reserve(lColPtr_[n_]);
    uRow_.reserve(uColPtr_[n_]);
    uVal_.reserve(uColPtr_[n_]);
    for (std::size_t j = 0; j < n_; ++j) {
        std::sort(lCols[j].begin(), lCols[j].end(),
                  [&](const auto &lhs, const auto &rhs) {
                      return pinv[lhs.first] < pinv[rhs.first];
                  });
        for (const auto &[row, value] : lCols[j]) {
            lRow_.push_back(pinv[row]);
            lVal_.push_back(value);
        }
        // uCols entries were appended in ascending pivot order.
        for (const auto &[row, value] : uCols[j]) {
            uRow_.push_back(row);
            uVal_.push_back(value);
        }
    }

    // A's entries in pivot space, per column, for refactor scatter.
    aEntryPtr_.assign(n_ + 1, 0);
    for (std::size_t j = 0; j < n_; ++j)
        aEntryPtr_[j + 1] = aEntryPtr_[j] + (cscPtr[j + 1] - cscPtr[j]);
    aEntryRow_.resize(aCol_.size());
    aEntryCsr_.resize(aCol_.size());
    for (std::size_t j = 0; j < n_; ++j) {
        std::size_t out = aEntryPtr_[j];
        for (std::size_t i = cscPtr[j]; i < cscPtr[j + 1]; ++i) {
            aEntryRow_[out] = pinv[cscRow[i]];
            aEntryCsr_[out] = cscCsr[i];
            ++out;
        }
    }
}

void
SparseLu::refactor(const SparseMatrix &a)
{
    if (a.rows() != n_ || a.cols() != n_ || a.rowPtr() != aRowPtr_ ||
        a.colIndex() != aCol_) {
        throw ArkError(ErrorKind::Sim,
                       "SparseLu::refactor: matrix pattern differs from "
                       "the factored structure");
    }
    if (FaultInjector::shouldFire(FaultSite::SparseLuPivot))
        throw ArkError(ErrorKind::Sim,
                       "fault injection: forced pivot failure");
    const std::vector<double> &aVal = a.values();
    std::vector<double> w(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
        for (std::size_t i = aEntryPtr_[j]; i < aEntryPtr_[j + 1]; ++i)
            w[aEntryRow_[i]] += aVal[aEntryCsr_[i]];
        for (std::size_t i = uColPtr_[j]; i < uColPtr_[j + 1]; ++i) {
            std::size_t k = uRow_[i];
            double ukj = w[k];
            uVal_[i] = ukj;
            for (std::size_t li = lColPtr_[k]; li < lColPtr_[k + 1];
                 ++li) {
                w[lRow_[li]] -= lVal_[li] * ukj;
            }
        }
        double pivot = w[j];
        // Pivot adequacy, not just nonzero: the recorded order was
        // chosen for the originally factored values; on new values
        // the same position may be dwarfed by its column, which
        // would amplify rounding by colMax/|pivot|.
        double colMax = std::fabs(pivot);
        for (std::size_t li = lColPtr_[j]; li < lColPtr_[j + 1]; ++li)
            colMax = std::max(colMax, std::fabs(w[lRow_[li]]));
        if (std::fabs(pivot) < kPivotFloor ||
            std::fabs(pivot) < kRefactorPivotTol * colMax) {
            throw ArkError(ErrorKind::Sim,
                           cat("sparse LU refactor: reused pivot ", j,
                               " collapsed on the new values; the "
                               "matrix needs its own pivot order"));
        }
        uDiag_[j] = pivot;
        for (std::size_t li = lColPtr_[j]; li < lColPtr_[j + 1]; ++li)
            lVal_[li] = w[lRow_[li]] / pivot;

        // The touched workspace is exactly this column's fill pattern.
        for (std::size_t i = uColPtr_[j]; i < uColPtr_[j + 1]; ++i)
            w[uRow_[i]] = 0.0;
        for (std::size_t li = lColPtr_[j]; li < lColPtr_[j + 1]; ++li)
            w[lRow_[li]] = 0.0;
        w[j] = 0.0;
    }
}

void
SparseLu::solveInto(const double *b, double *x) const
{
    // Forward: x <- L^{-1} P b (unit diagonal), in pivot space.
    for (std::size_t k = 0; k < n_; ++k)
        x[k] = b[rowOfPivot_[k]];
    for (std::size_t j = 0; j < n_; ++j) {
        double xj = x[j];
        if (xj == 0.0)
            continue;
        for (std::size_t i = lColPtr_[j]; i < lColPtr_[j + 1]; ++i)
            x[lRow_[i]] -= lVal_[i] * xj;
    }
    // Backward: x <- U^{-1} x; solution lands in natural column order.
    for (std::size_t jj = n_; jj-- > 0;) {
        double xj = x[jj] / uDiag_[jj];
        x[jj] = xj;
        if (xj == 0.0)
            continue;
        for (std::size_t i = uColPtr_[jj]; i < uColPtr_[jj + 1]; ++i)
            x[uRow_[i]] -= uVal_[i] * xj;
    }
}

std::vector<double>
SparseLu::solve(const std::vector<double> &b) const
{
    panicIf(b.size() != n_, "SparseLu::solve dimension mismatch");
    std::vector<double> x(n_);
    solveInto(b.data(), x.data());
    return x;
}

} // namespace ark::support
