#ifndef ARK_SUPPORT_LINALG_H
#define ARK_SUPPORT_LINALG_H

/**
 * @file
 * Dense linear algebra for the MNA circuit simulator.
 *
 * The SPICE substrate assembles small dense systems (tens to a few
 * hundred unknowns), so a partial-pivoting LU with factor reuse is the
 * right tool; no sparse machinery is needed at this scale.
 */

#include <cstddef>
#include <vector>

namespace ark::support {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Creates a rows x cols matrix of zeros. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Sets every entry to zero without reallocating. */
    void setZero();

    /** Returns an n x n identity. */
    static Matrix identity(std::size_t n);

    /** Matrix-vector product; x.size() must equal cols(). */
    std::vector<double> apply(const std::vector<double> &x) const;

    /** this + other (dimensions must match). */
    Matrix plus(const Matrix &other) const;

    /** this scaled by a constant. */
    Matrix scaled(double factor) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * LU factorization with partial pivoting.
 *
 * Factor once, then solve() against many right-hand sides — the
 * transient MNA loop re-solves the same conductance matrix every step
 * while the timestep stays fixed.
 */
class LuSolver
{
  public:
    /**
     * Factors a square matrix.
     * @throws ark::support::ArkError (Sim) if the matrix is singular.
     */
    explicit LuSolver(Matrix a);

    std::size_t size() const { return n_; }

    /** Solves A x = b; b.size() must equal size(). */
    std::vector<double> solve(const std::vector<double> &b) const;

  private:
    std::size_t n_;
    Matrix lu_;
    std::vector<std::size_t> perm_;
};

/** Euclidean norm of a vector. */
double norm2(const std::vector<double> &v);

/**
 * Root-mean-square error between two equal-length sequences.
 * @throws ark::support::ArkError (Sim) on length mismatch.
 */
double rmse(const std::vector<double> &a, const std::vector<double> &b);

/**
 * RMSE normalized by the RMS of the reference sequence `a`;
 * returns plain RMSE when the reference is all-zero.
 */
double relativeRmse(const std::vector<double> &a,
                    const std::vector<double> &b);

} // namespace ark::support

#endif // ARK_SUPPORT_LINALG_H
