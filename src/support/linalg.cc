#include "support/linalg.h"

#include <cmath>
#include <numeric>

#include "support/error.h"
#include "support/logging.h"

namespace ark::support {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    panicIf(r >= rows_ || c >= cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    panicIf(r >= rows_ || c >= cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
}

void
Matrix::setZero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

std::vector<double>
Matrix::apply(const std::vector<double> &x) const
{
    panicIf(x.size() != cols_, "Matrix::apply dimension mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += (*this)(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

Matrix
Matrix::plus(const Matrix &other) const
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "Matrix::plus dimension mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::scaled(double factor) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * factor;
    return out;
}

LuSolver::LuSolver(Matrix a)
    : n_(a.rows()), lu_(std::move(a)), perm_(n_)
{
    panicIf(lu_.rows() != lu_.cols(), "LuSolver requires a square matrix");
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});

    for (std::size_t k = 0; k < n_; ++k) {
        // Partial pivot: largest magnitude in column k at or below row k.
        std::size_t pivot = k;
        double best = std::fabs(lu_(k, k));
        for (std::size_t r = k + 1; r < n_; ++r) {
            double mag = std::fabs(lu_(r, k));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best < 1e-300) {
            throw ArkError(ErrorKind::Sim,
                           cat("singular matrix in LU factorization "
                               "(pivot column ", k, ")"));
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n_; ++c)
                std::swap(lu_(k, c), lu_(pivot, c));
            std::swap(perm_[k], perm_[pivot]);
        }
        for (std::size_t r = k + 1; r < n_; ++r) {
            double factor = lu_(r, k) / lu_(k, k);
            lu_(r, k) = factor;
            for (std::size_t c = k + 1; c < n_; ++c)
                lu_(r, c) -= factor * lu_(k, c);
        }
    }
}

std::vector<double>
LuSolver::solve(const std::vector<double> &b) const
{
    panicIf(b.size() != n_, "LuSolver::solve dimension mismatch");
    std::vector<double> x(n_);
    // Forward substitution on the permuted right-hand side.
    for (std::size_t r = 0; r < n_; ++r) {
        double acc = b[perm_[r]];
        for (std::size_t c = 0; c < r; ++c)
            acc -= lu_(r, c) * x[c];
        x[r] = acc;
    }
    // Back substitution.
    for (std::size_t ri = n_; ri-- > 0;) {
        double acc = x[ri];
        for (std::size_t c = ri + 1; c < n_; ++c)
            acc -= lu_(ri, c) * x[c];
        x[ri] = acc / lu_(ri, ri);
    }
    return x;
}

double
norm2(const std::vector<double> &v)
{
    double acc = 0.0;
    for (double x : v)
        acc += x * x;
    return std::sqrt(acc);
}

double
rmse(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size()) {
        throw ArkError(ErrorKind::Sim,
                       cat("rmse length mismatch: ", a.size(), " vs ",
                           b.size()));
    }
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

double
relativeRmse(const std::vector<double> &a, const std::vector<double> &b)
{
    double err = rmse(a, b);
    if (a.empty())
        return 0.0;
    double ref = norm2(a) / std::sqrt(static_cast<double>(a.size()));
    if (ref < 1e-300)
        return err;
    return err / ref;
}

} // namespace ark::support
