#include "support/faultinject.h"

#include <cstddef>

namespace ark::support {

namespace {

struct SiteState
{
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> skip{0};
    std::atomic<std::uint64_t> fires{0};
    std::atomic<std::uint64_t> seen{0};
    std::atomic<std::uint64_t> fired{0};
};

constexpr std::size_t kSiteCount =
    static_cast<std::size_t>(FaultSite::kSiteCount_);

SiteState &stateOf(FaultSite site)
{
    static SiteState states[kSiteCount];
    return states[static_cast<std::size_t>(site)];
}

} // namespace

std::atomic<bool> FaultInjector::anyArmed_{false};

void FaultInjector::arm(FaultSite site, std::uint64_t skip,
                        std::uint64_t fires)
{
    auto &s = stateOf(site);
    s.seen.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
    s.skip.store(skip, std::memory_order_relaxed);
    s.fires.store(fires, std::memory_order_relaxed);
    s.armed.store(true, std::memory_order_relaxed);
    anyArmed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarmAll()
{
    for (std::size_t i = 0; i < kSiteCount; ++i)
        stateOf(static_cast<FaultSite>(i))
            .armed.store(false, std::memory_order_relaxed);
    anyArmed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::seen(FaultSite site)
{
    return stateOf(site).seen.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSite site)
{
    return stateOf(site).fired.load(std::memory_order_relaxed);
}

bool FaultInjector::fireSlow(FaultSite site)
{
    auto &s = stateOf(site);
    if (!s.armed.load(std::memory_order_relaxed))
        return false;
    auto n = s.seen.fetch_add(1, std::memory_order_relaxed);
    if (n < s.skip.load(std::memory_order_relaxed))
        return false;
    if (n >= s.skip.load(std::memory_order_relaxed) +
                 s.fires.load(std::memory_order_relaxed))
        return false;
    s.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace ark::support
