#include "support/statsserver.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "support/logging.h"
#include "support/socket.h"
#include "support/telemetry.h"
#include "support/watchdog.h"

namespace ark::telemetry {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// scheme maps onto it by swapping every other character for '_'.
std::string promName(const std::string &name) {
  std::string out = name;
  for (char &c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok)
      c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9')
    out.insert(out.begin(), '_');
  return out;
}

std::string formatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Upper bound of power-of-two bucket b: bucket 0 holds {0}, bucket b
// holds [2^(b-1), 2^b - 1].
std::uint64_t bucketUpperBound(std::size_t b) {
  if (b == 0)
    return 0;
  if (b >= 64)
    return ~0ull;
  return (1ull << b) - 1;
}

std::string renderPrometheus(const MetricsSnapshot &snap) {
  std::ostringstream out;
  for (const auto &entry : snap.entries) {
    const std::string name = promName(entry.name);
    switch (entry.kind) {
    case MetricsSnapshot::Kind::Counter:
      out << "# TYPE " << name << " counter\n"
          << name << " " << formatValue(entry.value) << "\n";
      break;
    case MetricsSnapshot::Kind::Gauge:
      out << "# TYPE " << name << " gauge\n"
          << name << " " << formatValue(entry.value) << "\n";
      break;
    case MetricsSnapshot::Kind::Histogram: {
      out << "# TYPE " << name << " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < entry.buckets.size(); ++b) {
        cumulative += entry.buckets[b];
        out << name << "_bucket{le=\"" << bucketUpperBound(b)
            << "\"} " << cumulative << "\n";
      }
      out << name << "_bucket{le=\"+Inf\"} " << entry.count << "\n"
          << name << "_sum " << entry.sum << "\n"
          << name << "_count " << entry.count << "\n";
      break;
    }
    }
  }
  return out.str();
}

std::string httpResponse(int status, const char *reason,
                         const char *contentType,
                         const std::string &body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << reason << "\r\n"
      << "Content-Type: " << contentType << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

} // namespace

struct StatsServer::Impl {
  support::TcpListener listener;
  support::OwnedFd wakeRead;
  support::OwnedFd wakeWrite;
  std::thread worker;
  std::atomic<bool> running{false};
  std::atomic<bool> stopRequested{false};
  std::atomic<std::uint64_t> scrapes{0};

  // Previous /stats.json snapshot, for counter rates. Only the
  // exporter thread touches these.
  std::unordered_map<std::string, double> lastCounters;
  std::uint64_t lastSnapshotNs = 0;

  struct Client {
    support::OwnedFd fd;
    std::string request;
    std::uint64_t acceptedNs = 0;
  };
  std::vector<Client> clients;

  std::string statsJson() {
    const std::uint64_t now = detail::nowNs();
    MetricsSnapshot snap = Registry::shared().snapshot();
    std::ostringstream out;
    out << "{\"uptime_ns\": " << now;
    if (lastSnapshotNs != 0 && now > lastSnapshotNs) {
      const double intervalS =
          static_cast<double>(now - lastSnapshotNs) / 1e9;
      out << ", \"interval_s\": " << formatValue(intervalS);
      out << ", \"rates\": {";
      bool first = true;
      for (const auto &entry : snap.entries) {
        if (entry.kind != MetricsSnapshot::Kind::Counter)
          continue;
        auto it = lastCounters.find(entry.name);
        const double prev =
            it == lastCounters.end() ? 0.0 : it->second;
        const double rate = (entry.value - prev) / intervalS;
        if (!first)
          out << ", ";
        first = false;
        out << "\"" << entry.name
            << "\": " << formatValue(rate < 0.0 ? 0.0 : rate);
      }
      out << "}";
    } else {
      out << ", \"interval_s\": 0, \"rates\": {}";
    }
    out << ", \"metrics\": " << snap.json() << "}";
    lastCounters.clear();
    for (const auto &entry : snap.entries)
      if (entry.kind == MetricsSnapshot::Kind::Counter)
        lastCounters[entry.name] = entry.value;
    lastSnapshotNs = now;
    return out.str();
  }

  // Returns the full HTTP response for one complete request header.
  std::string respond(const std::string &request) {
    const std::size_t lineEnd = request.find("\r\n");
    const std::string line =
        lineEnd == std::string::npos ? request
                                     : request.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      return httpResponse(400, "Bad Request", "text/plain",
                          "malformed request\n");
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
      path.resize(query);
    if (method != "GET")
      return httpResponse(405, "Method Not Allowed", "text/plain",
                          "GET only\n");
    if (path == "/metrics") {
      scrapes.fetch_add(1, std::memory_order_relaxed);
      return httpResponse(
          200, "OK", "text/plain; version=0.0.4; charset=utf-8",
          renderPrometheus(Registry::shared().snapshot()));
    }
    if (path == "/stats.json" || path == "/json") {
      scrapes.fetch_add(1, std::memory_order_relaxed);
      return httpResponse(200, "OK", "application/json",
                          statsJson());
    }
    if (path == "/healthz" || path == "/") {
      scrapes.fetch_add(1, std::memory_order_relaxed);
      return httpResponse(200, "OK", "text/plain", "ok\n");
    }
    return httpResponse(404, "Not Found", "text/plain",
                        "unknown path\n");
  }

  void serveLoop() {
    constexpr std::size_t kMaxRequestBytes = 8192;
    constexpr std::uint64_t kClientIdleNs = 5000000000ull; // 5s
    while (!stopRequested.load(std::memory_order_acquire)) {
      std::vector<pollfd> fds;
      fds.push_back({listener.fd(), POLLIN, 0});
      fds.push_back({wakeRead.get(), POLLIN, 0});
      for (const Client &client : clients)
        fds.push_back({client.fd.get(), POLLIN, 0});
      ::poll(fds.data(), fds.size(), 100);

      if (fds[1].revents & POLLIN) {
        char drain[64];
        while (::read(wakeRead.get(), drain, sizeof(drain)) > 0) {
        }
      }
      if (fds[0].revents & POLLIN) {
        // Accept everything pending; the loop stays nonblocking.
        for (;;) {
          support::OwnedFd client = listener.accept();
          if (!client.valid())
            break;
          clients.push_back(
              {std::move(client), std::string(), detail::nowNs()});
        }
      }

      const std::uint64_t now = detail::nowNs();
      for (std::size_t i = 0; i < clients.size();) {
        Client &client = clients[i];
        bool drop = false;
        const std::size_t fdIndex = 2 + i;
        if (fdIndex < fds.size() &&
            (fds[fdIndex].revents & (POLLIN | POLLHUP | POLLERR))) {
          const int got =
              support::readAvailable(client.fd.get(), &client.request);
          if (got == 0) {
            drop = true; // closed (possibly mid-request): just drop
          }
        }
        if (!drop &&
            client.request.find("\r\n\r\n") != std::string::npos) {
          const std::string response = respond(client.request);
          support::writeAll(client.fd.get(), response.data(),
                            response.size());
          drop = true;
        } else if (!drop && client.request.size() > kMaxRequestBytes) {
          const std::string response = httpResponse(
              400, "Bad Request", "text/plain", "request too large\n");
          support::writeAll(client.fd.get(), response.data(),
                            response.size());
          drop = true;
        } else if (!drop && now - client.acceptedNs > kClientIdleNs) {
          drop = true; // partial request that never completed
        }
        if (drop)
          clients.erase(clients.begin() + i);
        else
          ++i;
      }
    }
    clients.clear();
  }
};

StatsServer::StatsServer() : impl_(new Impl) {}

StatsServer::~StatsServer() {
  stop();
  delete impl_;
}

bool StatsServer::start(std::uint16_t port, std::string *error) {
  if (impl_->running.load(std::memory_order_acquire)) {
    if (error)
      *error = "stats server already running";
    return false;
  }
  if (!impl_->listener.open(port, error))
    return false;
  if (!support::makeWakePipe(&impl_->wakeRead, &impl_->wakeWrite)) {
    if (error)
      *error = "failed to create wake pipe";
    impl_->listener.close();
    return false;
  }
  // Make sure the health family is registered before the first
  // scrape, even when no engine has run yet.
  StallWatchdog::shared();
  impl_->stopRequested.store(false, std::memory_order_release);
  impl_->lastCounters.clear();
  impl_->lastSnapshotNs = 0;
  impl_->worker = std::thread([this] { impl_->serveLoop(); });
  impl_->running.store(true, std::memory_order_release);
  return true;
}

void StatsServer::stop() {
  if (!impl_->running.load(std::memory_order_acquire))
    return;
  impl_->stopRequested.store(true, std::memory_order_release);
  if (impl_->wakeWrite.valid()) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n =
        ::write(impl_->wakeWrite.get(), &byte, 1);
  }
  if (impl_->worker.joinable())
    impl_->worker.join();
  impl_->listener.close();
  impl_->wakeRead.reset();
  impl_->wakeWrite.reset();
  impl_->running.store(false, std::memory_order_release);
}

bool StatsServer::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t StatsServer::port() const {
  return impl_->listener.port();
}

std::uint64_t StatsServer::scrapes() const {
  return impl_->scrapes.load(std::memory_order_relaxed);
}

} // namespace ark::telemetry
