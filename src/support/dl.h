#ifndef ARK_SUPPORT_DL_H
#define ARK_SUPPORT_DL_H

/**
 * @file
 * RAII wrappers around POSIX dynamic loading and temporary
 * directories, for the tier-5 JIT (expr/cjit.h).
 *
 * DynamicLibrary owns a dlopen handle: the library stays mapped for
 * the wrapper's lifetime and is dlclosed exactly once. On Linux the
 * backing file may be unlinked while the handle is open (the mapping
 * pins the inode), which is how ephemeral kernel compilations avoid
 * leaving files behind.
 *
 * TempDir owns an mkdtemp directory and removes it (recursively,
 * best-effort) on destruction.
 */

#include <string>

namespace ark::support {

/** Movable owner of one dlopen handle. */
class DynamicLibrary
{
  public:
    DynamicLibrary() = default;
    ~DynamicLibrary();

    DynamicLibrary(DynamicLibrary &&other) noexcept;
    DynamicLibrary &operator=(DynamicLibrary &&other) noexcept;
    DynamicLibrary(const DynamicLibrary &) = delete;
    DynamicLibrary &operator=(const DynamicLibrary &) = delete;

    /**
     * dlopens `path` (RTLD_NOW | RTLD_LOCAL). On failure returns a
     * default-constructed wrapper and, when `error` is non-null,
     * stores the dlerror text.
     */
    static DynamicLibrary open(const std::string &path,
                               std::string *error = nullptr);

    /** Whether a handle is held. */
    bool ok() const { return handle_ != nullptr; }

    /** Resolves a symbol; null when missing or no handle is held. */
    void *symbol(const char *name) const;

    /** The path the handle was opened from (diagnostics). */
    const std::string &path() const { return path_; }

  private:
    void *handle_ = nullptr;
    std::string path_;
};

/** Movable owner of one mkdtemp directory. */
class TempDir
{
  public:
    TempDir() = default;
    ~TempDir();

    TempDir(TempDir &&other) noexcept;
    TempDir &operator=(TempDir &&other) noexcept;
    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    /**
     * Creates `$TMPDIR/<prefix>XXXXXX` (falling back to /tmp). On
     * failure returns a wrapper with ok() == false and, when `error`
     * is non-null, stores the errno text.
     */
    static TempDir create(const std::string &prefix,
                          std::string *error = nullptr);

    bool ok() const { return !path_.empty(); }

    /** Absolute directory path; empty when creation failed. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace ark::support

#endif // ARK_SUPPORT_DL_H
