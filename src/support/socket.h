// Thin nonblocking-socket wrapper for the loopback telemetry plane.
//
// Deliberately minimal: a loopback-only TCP listener plus the few
// nonblocking read/write helpers the stats server needs. Everything
// here is plain POSIX (the pattern ponyc's runtime uses for its
// asio sockets): sockets are switched to O_NONBLOCK at creation,
// callers multiplex with poll(), and short writes are completed with
// a bounded poll-retry loop. No global state, no signals (SIGPIPE is
// avoided with MSG_NOSIGNAL), and every descriptor is owned by RAII.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ark::support {

// Owning file descriptor with close-on-destroy semantics.
class OwnedFd {
public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }

  OwnedFd(const OwnedFd &) = delete;
  OwnedFd &operator=(const OwnedFd &) = delete;
  OwnedFd(OwnedFd &&other) noexcept : fd_(other.release()) {}
  OwnedFd &operator=(OwnedFd &&other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

private:
  int fd_ = -1;
};

// Nonblocking TCP listener bound to 127.0.0.1. Port 0 asks the kernel
// for an ephemeral port; port() reports the one actually bound.
class TcpListener {
public:
  TcpListener() = default;

  // Opens, binds, and listens. Returns false with a structured
  // message in *error (e.g. "bind failed: Address already in use")
  // on failure; the listener is left closed.
  bool open(std::uint16_t port, std::string *error);

  // Accepts one pending connection as a nonblocking fd, or returns an
  // invalid OwnedFd when none is ready (or on transient error).
  OwnedFd accept();

  bool listening() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  std::uint16_t port() const { return port_; }
  void close();

private:
  OwnedFd fd_;
  std::uint16_t port_ = 0;
};

// Reads whatever is available without blocking. Returns the number of
// bytes appended to *buffer, 0 when the peer closed the connection,
// or -1 when nothing is available right now (EAGAIN) — transient
// errors are folded into -1, hard errors into 0 (treat as closed).
int readAvailable(int fd, std::string *buffer);

// Writes the whole payload, polling briefly for writability on short
// writes. Returns false when the peer vanished or the per-call
// deadline (~2s) expired; the telemetry plane treats either as a
// dropped scrape, never an error that propagates into the engines.
bool writeAll(int fd, const char *data, std::size_t size);

// Creates a nonblocking self-pipe (read end first). Used to wake a
// poll() loop from another thread. Returns false on failure.
bool makeWakePipe(OwnedFd *readEnd, OwnedFd *writeEnd);

} // namespace ark::support
