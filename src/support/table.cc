#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/logging.h"

namespace ark::support {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    panicIf(row.size() != header_.size(),
            cat("table row width ", row.size(), " != header width ",
                header_.size()));
    rows_.push_back(std::move(row));
}

void
Table::addNumericRow(const std::vector<double> &row, int precision)
{
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (double v : row) {
        std::ostringstream oss;
        oss << std::setprecision(precision) << v;
        fields.push_back(oss.str());
    }
    addRow(std::move(fields));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    CsvWriter writer(os);
    writer.writeRow(header_);
    for (const auto &row : rows_)
        writer.writeRow(row);
}

CsvWriter::CsvWriter(std::ostream &os)
    : os_(os)
{
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += "\"";
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            os_ << ",";
        os_ << escape(fields[i]);
    }
    os_ << "\n";
}

void
CsvWriter::writeRow(const std::vector<double> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            os_ << ",";
        os_ << fields[i];
    }
    os_ << "\n";
}

} // namespace ark::support
