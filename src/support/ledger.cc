#include "support/ledger.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace ark::telemetry {

namespace {

// Minimal JSON string escaping (mirrors telemetry.cc): ledger
// payloads carry failure messages that may contain quotes/newlines.
std::string escapeJson(const std::string &text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

} // namespace

RunLedger::RunLedger(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::uint64_t RunLedger::beginRun(Workload, std::size_t) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++runs_;
  return nextRunId_++;
}

std::uint64_t RunLedger::lastRunId() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nextRunId_ - 1;
}

void RunLedger::append(Record record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(record));
}

std::size_t RunLedger::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::uint64_t RunLedger::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<RunLedger::Record> RunLedger::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void RunLedger::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  dropped_ = 0;
}

const char *RunLedger::name(Workload workload) {
  switch (workload) {
  case Workload::Ode: return "ode";
  case Workload::Spice: return "spice";
  }
  return "unknown";
}

const char *RunLedger::name(Tier tier) {
  switch (tier) {
  case Tier::Scalar: return "scalar";
  case Tier::Lane: return "lane";
  case Tier::Dense: return "dense";
  case Tier::Sparse: return "sparse";
  case Tier::Jit: return "jit";
  }
  return "unknown";
}

const char *RunLedger::name(CacheOutcome outcome) {
  switch (outcome) {
  case CacheOutcome::None: return "none";
  case CacheOutcome::Hit: return "hit";
  case CacheOutcome::Miss: return "miss";
  }
  return "unknown";
}

const char *RunLedger::name(RetryAction action) {
  switch (action) {
  case RetryAction::None: return "none";
  case RetryAction::ScalarRetry: return "scalar_retry";
  case RetryAction::RelaxedRetry: return "relaxed_retry";
  case RetryAction::DenseFallback: return "dense_fallback";
  }
  return "unknown";
}

std::string RunLedger::json() const {
  std::vector<Record> copy;
  std::uint64_t runs = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = records_;
    runs = runs_;
    dropped = dropped_;
  }
  std::ostringstream out;
  out << "{\"runs\": " << runs << ", \"dropped\": " << dropped
      << ", \"records\": [";
  bool first = true;
  for (const Record &r : copy) {
    if (!first)
      out << ", ";
    first = false;
    out << "{\"run\": " << r.runId << ", \"index\": " << r.index
        << ", \"workload\": \"" << name(r.workload) << "\""
        << ", \"tier\": \"" << name(r.tier) << "\""
        << ", \"lane_width\": " << r.laneWidth
        << ", \"lanes\": " << r.lanes << ", \"block\": " << r.blockId
        << ", \"attempt\": " << r.attempt
        << ", \"action\": \"" << name(r.action) << "\""
        << ", \"steps_accepted\": " << r.stepsAccepted
        << ", \"steps_rejected\": " << r.stepsRejected
        << ", \"cache\": \"" << name(r.cache) << "\""
        << ", \"ok\": " << (r.ok ? "true" : "false");
    if (!r.ok) {
      out << ", \"failure_reason\": \"" << escapeJson(r.failureReason)
          << "\", \"failure_message\": \""
          << escapeJson(r.failureMessage) << "\"";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

} // namespace ark::telemetry
