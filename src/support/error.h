#ifndef ARK_SUPPORT_ERROR_H
#define ARK_SUPPORT_ERROR_H

/**
 * @file
 * Error types shared by every Ark module.
 *
 * All user-facing failures (bad DSL source, invalid dynamical graphs,
 * mis-parameterized simulations) raise an ArkError subclass carrying an
 * ErrorKind and, where available, a source location. Internal invariant
 * violations use panic() from logging.h instead.
 */

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ark::support {

/** Category of a user-facing Ark failure. */
enum class ErrorKind : std::uint8_t {
    Lex,        ///< Tokenization failure in Ark source.
    Parse,      ///< Grammar violation in Ark source.
    Sema,       ///< Semantic-check failure (names, arity, inheritance).
    Type,       ///< Datatype or range violation.
    Validation, ///< Dynamical graph rejected by a language's rules.
    Compile,    ///< Dynamical-system compilation failure.
    Sim,        ///< Simulation failure (step collapse, NaN state).
    Io,         ///< File or format error.
};

/** Human-readable name for an ErrorKind (e.g.\ "parse error"). */
const char *errorKindName(ErrorKind kind);

/**
 * Position in an Ark source buffer. Lines and columns are 1-based;
 * a zero line means "no location available".
 */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }

    /** Formats as "line:column", or "?" when invalid. */
    std::string str() const;
};

/**
 * Base class for all user-facing Ark errors.
 *
 * what() returns "<kind>: <message>" or
 * "<kind> at <line>:<col>: <message>" when a location is known.
 */
class ArkError : public std::runtime_error
{
  public:
    ArkError(ErrorKind kind, const std::string &message,
             SourceLoc loc = SourceLoc{});

    ErrorKind kind() const { return kind_; }
    SourceLoc loc() const { return loc_; }

    /** The raw message without the kind/location prefix. */
    const std::string &message() const { return message_; }

  private:
    ErrorKind kind_;
    SourceLoc loc_;
    std::string message_;
};

/** Convenience subclasses; each pins the ErrorKind. */
class LexError : public ArkError
{
  public:
    explicit LexError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Lex, m, l) {}
};

class ParseError : public ArkError
{
  public:
    explicit ParseError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Parse, m, l) {}
};

class SemaError : public ArkError
{
  public:
    explicit SemaError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Sema, m, l) {}
};

class TypeError : public ArkError
{
  public:
    explicit TypeError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Type, m, l) {}
};

class ValidationError : public ArkError
{
  public:
    explicit ValidationError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Validation, m, l) {}
};

class CompileError : public ArkError
{
  public:
    explicit CompileError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Compile, m, l) {}
};

class SimError : public ArkError
{
  public:
    explicit SimError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Sim, m, l) {}
};

class IoError : public ArkError
{
  public:
    explicit IoError(const std::string &m, SourceLoc l = SourceLoc{})
        : ArkError(ErrorKind::Io, m, l) {}
};

} // namespace ark::support

#endif // ARK_SUPPORT_ERROR_H
