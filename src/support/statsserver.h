// Live metrics endpoint: a background exporter thread serving
// registry snapshots over a nonblocking loopback TCP socket.
//
// Endpoints (HTTP/1.1, GET only, Connection: close):
//   /metrics     Prometheus text exposition (version 0.0.4). Metric
//                names swap the registry's dots for underscores
//                (ark.cache.system_hits -> ark_cache_system_hits);
//                histograms export cumulative `_bucket{le=...}`
//                series on the power-of-two boundaries plus _sum and
//                _count.
//   /stats.json  JSON snapshot: the registry's json() payload plus
//                per-second rates for every counter, computed as the
//                delta against the previous /stats.json scrape served
//                by this server instance.
//   /healthz     200 "ok" liveness probe.
//
// One thread, one poll() loop, loopback only. start() binds the
// listener (port 0 = ephemeral; port() reports the bound port) and
// spawns the thread; a failure to bind (e.g. port in use) is a
// structured error, not an exception. stop() — also run by the
// destructor — wakes the loop via a self-pipe, joins the thread, and
// closes the listener. The server only reads the metrics registry;
// it can never affect engine results. See docs/TELEMETRY.md.

#pragma once

#include <cstdint>
#include <string>

namespace ark::telemetry {

class StatsServer {
public:
  StatsServer();
  ~StatsServer();

  StatsServer(const StatsServer &) = delete;
  StatsServer &operator=(const StatsServer &) = delete;

  // Binds 127.0.0.1:port and starts the exporter thread. Returns
  // false (with a message in *error, e.g. "bind failed: Address
  // already in use") when the socket cannot be opened or the server
  // is already running.
  bool start(std::uint16_t port, std::string *error = nullptr);

  // Graceful shutdown: joins the thread, closes the listener. Safe
  // to call when not running.
  void stop();

  bool running() const;

  // Bound port while running (resolves port 0), 0 otherwise.
  std::uint16_t port() const;

  // Requests answered with 200 so far (diagnostics and tests).
  std::uint64_t scrapes() const;

private:
  struct Impl;
  Impl *impl_;
};

} // namespace ark::telemetry
