#ifndef ARK_SUPPORT_FAULTINJECT_H
#define ARK_SUPPORT_FAULTINJECT_H

/**
 * @file
 * Deterministic, site-addressed fault injection.
 *
 * Error-recovery code is the least exercised code in a simulator: a
 * forced pivot failure or a NaN mid-tape happens once a month in
 * production and never under test. FaultInjector turns each such
 * hazard into a named site that tier-1 tests can arm on demand:
 *
 *     support::FaultInjector::arm(support::FaultSite::SparseLuPivot);
 *     ... run the engine: the first sparse factorization fails ...
 *     support::FaultInjector::disarmAll();
 *
 * Firing is count-addressed and therefore deterministic: arm(site,
 * skip, fires) makes occurrences [skip, skip+fires) of the site fire
 * and every other occurrence pass through. Tests assert on fired() to
 * prove the fault actually happened (a recovery test that never
 * reached its fault proves nothing).
 *
 * The injector is compiled in always — recovery paths must be
 * testable in every build — but is zero-cost when disarmed: the hot
 * path is one relaxed atomic load of a process-wide flag that is
 * false outside of fault tests. Sites are process-global, so tests
 * that arm sites must not run concurrently with each other; gtest's
 * default serial execution within a binary guarantees that.
 */

#include <atomic>
#include <cstdint>

namespace ark::support {

/** Addressable injection points, one per recovery path under test. */
enum class FaultSite : std::uint8_t
{
    TapeNan = 0,   ///< Tape execution poisons output 0 with NaN.
    SparseLuPivot, ///< Sparse LU factor/refactor fails as singular.
    CacheMiss,     ///< ArtifactCache lookup reports a miss.
    CacheEvict,    ///< ArtifactCache evicts an entry right after insert.
    WorkerTask,    ///< BatchRunner worker task throws mid-job.
    JitCompile,    ///< Tier-5 kernel compilation fails (forces the
                   ///< interpreted-tier fallback path).
    kSiteCount_,   ///< Sentinel; not a site.
};

class FaultInjector
{
  public:
    /**
     * Arms a site: occurrences [skip, skip + fires) fire, counted
     * from this call (arming resets the site's counters).
     */
    static void arm(FaultSite site, std::uint64_t skip = 0,
                    std::uint64_t fires = 1);

    /**
     * Disarms every site. Counters survive until the next arm() so
     * tests can assert fired() after the run completes.
     */
    static void disarmAll();

    /** Occurrences of the site observed since it was last armed. */
    static std::uint64_t seen(FaultSite site);

    /** Occurrences that actually fired since the site was last armed. */
    static std::uint64_t fired(FaultSite site);

    /**
     * The hook the instrumented code calls. One relaxed load when no
     * site is armed anywhere in the process.
     */
    static bool shouldFire(FaultSite site)
    {
        if (!anyArmed_.load(std::memory_order_relaxed))
            return false;
        return fireSlow(site);
    }

  private:
    static bool fireSlow(FaultSite site);

    static std::atomic<bool> anyArmed_;
};

} // namespace ark::support

#endif // ARK_SUPPORT_FAULTINJECT_H
