#ifndef ARK_SUPPORT_TABLE_H
#define ARK_SUPPORT_TABLE_H

/**
 * @file
 * Tabular report output for benchmarks and experiment harnesses.
 *
 * Every bench binary regenerating a paper table/figure emits its data
 * through Table (aligned text for humans) and/or CsvWriter (for
 * plotting), so outputs stay uniform across experiments.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace ark::support {

/**
 * Builds an aligned text table with a header row.
 *
 * Usage:
 * @code
 *   Table t({"d", "sync %", "solved %"});
 *   t.addRow({"0.01pi", "94.1", "94.1"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Appends a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: formats doubles with the given precision.
     *  (Distinctly named: a braced list of string literals would
     *  otherwise match vector<double>'s iterator-pair constructor.) */
    void addNumericRow(const std::vector<double> &row, int precision = 4);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

    /** Renders with column alignment and a separator rule. */
    void print(std::ostream &os) const;

    /** Renders as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Streams rows of comma-separated values to any ostream; quotes fields
 * containing commas or quotes.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os);

    /** Writes one row of raw string fields. */
    void writeRow(const std::vector<std::string> &fields);

    /** Writes one row of numeric fields. */
    void writeRow(const std::vector<double> &fields);

  private:
    std::ostream &os_;

    static std::string escape(const std::string &field);
};

} // namespace ark::support

#endif // ARK_SUPPORT_TABLE_H
