#include "support/rng.h"

#include <cmath>
#include <numbers>

#include "support/logging.h"

namespace ark::support {

Rng::Rng(std::uint64_t seed)
    : state_(seed)
{
}

std::uint64_t
Rng::nextU64()
{
    // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, tiny state.
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "uniformInt: lo > hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~0ull - (~0ull % span);
    std::uint64_t draw;
    do {
        draw = nextU64();
    } while (draw > limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    // Box-Muller transform; u clamped away from zero for log().
    double u = uniform();
    if (u < 1e-300)
        u = 1e-300;
    double v = uniform();
    double radius = std::sqrt(-2.0 * std::log(u));
    double angle = 2.0 * std::numbers::pi * v;
    spare_ = radius * std::sin(angle);
    hasSpare_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::deriveSeed()
{
    return nextU64();
}

} // namespace ark::support
